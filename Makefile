# Convenience targets for the RPSLyzer reproduction.

PYTHON ?= python

.PHONY: install test ci chaos-serve perf-regression bench examples figures lint-world clean

install:
	pip install -e . --no-build-isolation || \
	  echo "$(CURDIR)/src" > $$($(PYTHON) -c 'import site; print(site.getsitepackages()[0])')/repro.pth

test:
	$(PYTHON) -m pytest tests/

# Mirror .github/workflows/ci.yml locally: lint (when ruff is present),
# tier-1, the resident-daemon smoke, the serve-supervisor chaos layer,
# and the strict prefix-engine perf gate.
ci:
	@if command -v ruff >/dev/null 2>&1; then \
	  ruff check src tests; \
	else \
	  echo "ruff not installed; skipping lint"; \
	fi
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	PYTHONPATH=src $(PYTHON) scripts/serve_smoke.py
	$(MAKE) chaos-serve
	$(MAKE) perf-regression

# The strict perf benchmarks (prefix engine, incremental delta
# ingestion, serve telemetry), then the measured ratios diffed against
# benchmarks/baselines.json (a slide past a gated metric's tolerance
# fails).  After an intentional perf change, re-pin:
#   python scripts/check_perf_regression.py --bench <name> --update
perf-regression:
	PYTHONPATH=src RPSLYZER_PERF_STRICT=1 $(PYTHON) -m pytest \
	  benchmarks/test_perf_prefix_engine.py -q -p no:cacheprovider
	$(PYTHON) scripts/check_perf_regression.py --bench prefix_engine
	PYTHONPATH=src RPSLYZER_PERF_STRICT=1 $(PYTHON) -m pytest \
	  benchmarks/test_perf_delta.py -q -p no:cacheprovider
	$(PYTHON) scripts/check_perf_regression.py --bench delta_ingest
	PYTHONPATH=src RPSLYZER_PERF_STRICT=1 $(PYTHON) -m pytest \
	  benchmarks/test_perf_serve_telemetry.py -q -p no:cacheprovider
	$(PYTHON) scripts/check_perf_regression.py --bench serve_telemetry

# The serve-supervisor self-healing lifecycle against a live daemon:
# SIGKILL mid-flood, heartbeat replacement of a hung worker, restart
# accounting in /metrics and the degradation report.
chaos-serve:
	PYTHONPATH=src $(PYTHON) -m repro.cli chaos --only serve-supervisor

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every table/figure artifact into benchmarks/results/.
figures: bench
	@ls benchmarks/results/

examples:
	@for script in examples/*.py; do \
	  echo "== $$script"; $(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

# End-to-end CLI walkthrough into ./world-demo.
lint-world:
	$(PYTHON) -m repro synth world-demo --preset tiny --routes
	$(PYTHON) -m repro parse world-demo -o world-demo/ir.json
	$(PYTHON) -m repro lint --ir world-demo/ir.json --as-rel world-demo/as-rel.txt
	$(PYTHON) -m repro verify --ir world-demo/ir.json \
	  --as-rel world-demo/as-rel.txt --table world-demo/table.txt

clean:
	rm -rf world-demo benchmarks/results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
