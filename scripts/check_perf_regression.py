#!/usr/bin/env python
"""Diff a benchmark's measured ratios against the committed baselines.

The strict perf benchmarks (``RPSLYZER_PERF_STRICT=1``) write their
measured ratio metrics to ``benchmarks/results/BENCH_<name>.json``;
``benchmarks/baselines.json`` pins the expected value, direction, and
tolerance for each gated metric.  This script fails (exit 1) when a
metric regresses past its tolerance band:

* ``direction: higher`` (speedups) — fail when
  ``measured < baseline * (1 - tolerance)``;
* ``direction: lower`` (sizes, latencies) — fail when
  ``measured > baseline * (1 + tolerance)``.

Improvements never fail; rerun with ``--update`` after an intentional
performance change to re-pin the baselines to the measured values.
Metrics present in the results but absent from the baselines are
reported informationally and do not gate.

Usage::

    python scripts/check_perf_regression.py --bench prefix_engine
    python scripts/check_perf_regression.py --bench prefix_engine --update
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_TOLERANCE = 0.20


def load_json(path: Path) -> dict:
    """Read one JSON document, with a pointed error on absence."""
    if not path.exists():
        sys.exit(f"error: {path} does not exist")
    return json.loads(path.read_text())


def check(bench: str, results_dir: Path, baselines_path: Path,
          tolerance: float | None, update: bool) -> int:
    """Compare one bench's results against its baselines; return rc."""
    results = load_json(results_dir / f"BENCH_{bench}.json")
    measured = results.get("metrics", {})
    baselines = load_json(baselines_path)
    gates = baselines.get(bench, {})

    if update:
        for name, value in measured.items():
            slot = gates.setdefault(
                name, {"direction": "higher", "tolerance": DEFAULT_TOLERANCE}
            )
            slot["value"] = value
        baselines[bench] = dict(sorted(gates.items()))
        baselines_path.write_text(
            json.dumps(baselines, indent=2, sort_keys=True) + "\n"
        )
        print(f"re-pinned {len(measured)} baselines for '{bench}'")
        return 0

    failures = []
    for name, gate in sorted(gates.items()):
        if name not in measured:
            failures.append(f"{name}: gated metric missing from results")
            continue
        value = measured[name]
        pinned = gate["value"]
        band = tolerance if tolerance is not None else gate.get(
            "tolerance", DEFAULT_TOLERANCE
        )
        direction = gate.get("direction", "higher")
        if direction == "higher":
            floor = pinned * (1 - band)
            ok = value >= floor
            bound = f">= {floor:.3f}"
        else:
            ceiling = pinned * (1 + band)
            ok = value <= ceiling
            bound = f"<= {ceiling:.3f}"
        verdict = "ok" if ok else "REGRESSED"
        print(
            f"{name:32s} measured {value:8.3f}  baseline {pinned:8.3f}"
            f"  ({direction}, {bound})  {verdict}"
        )
        if not ok:
            failures.append(
                f"{name}: measured {value:.3f} vs baseline {pinned:.3f} "
                f"({direction}, tolerance {band:.0%})"
            )
    for name in sorted(set(measured) - set(gates)):
        print(f"{name:32s} measured {measured[name]:8.3f}  (ungated)")

    if failures:
        print(f"\n{len(failures)} perf regression(s) past tolerance:",
              file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        print(
            "\nIf intentional, re-pin with: "
            f"python scripts/check_perf_regression.py --bench {bench} --update",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(gates)} gated metrics within tolerance")
    return 0


def main() -> int:
    """Parse arguments and run the comparison."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench", required=True,
        help="bench name (reads benchmarks/results/BENCH_<name>.json)",
    )
    parser.add_argument(
        "--baselines", type=Path, default=REPO / "benchmarks" / "baselines.json",
        help="baselines file (default: benchmarks/baselines.json)",
    )
    parser.add_argument(
        "--results-dir", type=Path, default=REPO / "benchmarks" / "results",
        help="directory holding BENCH_*.json results",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="override every metric's tolerance band (e.g. 0.2 = 20%%)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="re-pin baselines to the measured values instead of gating",
    )
    args = parser.parse_args()
    return check(
        args.bench, args.results_dir, args.baselines, args.tolerance, args.update
    )


if __name__ == "__main__":
    sys.exit(main())
