#!/usr/bin/env python
"""CI smoke test for ``rpslyzer serve``: boot, query, drain, exit.

Synthesizes the tiny world, launches the daemon as a real subprocess
(both front-ends on ephemeral ports, telemetry on), and checks the
serving contract end to end:

1. the startup banner reports both ports and the IR digest;
2. ``GET /healthz`` answers ``ok`` with a bound queue and a live
   ``--workers 2`` supervisor pool;
3. ``POST /verify`` returns a verdict character-identical to the batch
   verifier for the same route, and echoes the client's
   ``X-Request-Id`` back on the response;
4. the WHOIS ``!v`` command returns the same rendering, IRRd-framed,
   with the ``%% id`` correlation comment;
5. ``GET /metrics`` shows exactly one index adoption (no per-request
   reload/recompile) and the served-request counters;
6. ``GET /debug/flight`` exposes the live flight ring, including the
   request event for the correlation id from step 3;
7. SIGTERM drains and the process exits 0, releasing its ports — and
   the ``--access-log`` file holds one schema-complete JSONL record
   per served request.

Exits non-zero with a diagnostic on the first violated check.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
if not any((Path(p) / "repro").is_dir() for p in sys.path if p):
    sys.path.insert(0, str(REPO / "src"))

from repro import api  # noqa: E402
from repro.bgp.routegen import collector_routes  # noqa: E402

ACCESS_FIELDS = {
    "ts",
    "type",
    "id",
    "frontend",
    "endpoint",
    "outcome",
    "verdicts",
    "total_ms",
    "stages_ms",
}
STAGES = {"accept", "queue", "coalesce", "dispatch", "execute", "respond"}


def fail(message: str) -> None:
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def http_json(port: int, method: str, path: str, payload=None, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=15)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        send_headers = {"Content-Type": "application/json"} if body else {}
        send_headers.update(headers or {})
        connection.request(method, path, body=body, headers=send_headers)
        response = connection.getresponse()
        return (
            response.status,
            {name.lower(): value for name, value in response.getheaders()},
            response.read(),
        )
    finally:
        connection.close()


def whois(port: int, query: str) -> str:
    with socket.create_connection(("127.0.0.1", port), timeout=15) as conn:
        conn.sendall(query.encode() + b"\n!q\n")
        chunks = []
        while True:
            data = conn.recv(65536)
            if not data:
                break
            chunks.append(data)
    return b"".join(chunks).decode().rstrip()


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    access_log = workdir / "access.jsonl"
    world = api.synthesize("tiny", seed=42)
    world.write_to_dir(workdir / "world")
    entry = next(
        iter(
            collector_routes(world.topology, world.announced, world.collectors)
        )
    )
    with api.open_session(world) as session:
        expected = str(
            session.verify_route(
                str(entry.prefix), entry.as_path, collector="serve"
            )
        )

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--ir",
            str(workdir / "world"),
            "--as-rel",
            str(workdir / "world" / "as-rel.txt"),
            "--http-port",
            "0",
            "--whois-port",
            "0",
            "--cache-dir",
            str(workdir / "cache"),
            "--workers",
            "2",
            "--access-log",
            str(access_log),
            "--slow-ms",
            "30000",
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        http_port = whois_port = None
        banner = []
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline and (
            http_port is None or whois_port is None
        ):
            line = process.stderr.readline()
            if not line:
                break
            banner.append(line)
            matched = re.search(r"http on [\d.]+:(\d+)", line)
            if matched:
                http_port = int(matched.group(1))
            matched = re.search(r"whois on [\d.]+:(\d+)", line)
            if matched:
                whois_port = int(matched.group(1))
        if http_port is None or whois_port is None:
            fail(f"startup banner incomplete: {''.join(banner)!r}")
        print(f"serve-smoke: daemon up (http={http_port}, whois={whois_port})")

        status, _, body = http_json(http_port, "GET", "/healthz")
        health = json.loads(body)
        if status != 200 or health["status"] != "ok":
            fail(f"healthz: {status} {health}")
        if not health["index_digest"] or health["queue_size"] <= 0:
            fail(f"healthz shape: {health}")
        supervisor = health.get("supervisor")
        if not supervisor or supervisor["live"] != 2 or supervisor["degraded"]:
            fail(f"healthz supervisor block: {supervisor}")
        print("serve-smoke: supervisor pool up (2 live workers)")

        request_id = "smoke-cafe0123"
        payload = {"prefix": str(entry.prefix), "as_path": list(entry.as_path)}
        status, response_headers, body = http_json(
            http_port,
            "POST",
            "/verify",
            payload,
            headers={"X-Request-Id": request_id},
        )
        if status != 200:
            fail(f"POST /verify: {status} {body!r}")
        if response_headers.get("x-request-id") != request_id:
            fail(
                "X-Request-Id not echoed: "
                f"{response_headers.get('x-request-id')!r}"
            )
        verdict = json.loads(body)
        if verdict["text"] != expected:
            fail(
                "serve verdict diverges from batch verifier:\n"
                f"--- serve ---\n{verdict['text']}\n--- batch ---\n{expected}"
            )
        print(
            "serve-smoke: /verify bit-identical to the batch verifier, "
            "id echoed"
        )

        path = " ".join(str(asn) for asn in entry.as_path)
        framed = whois(whois_port, f"!v {entry.prefix} {path}")
        id_match = re.match(r"%% id ([-A-Za-z0-9_.:/+=]+)\n", framed)
        if not id_match:
            fail(f"whois !v missing %% id comment: {framed!r}")
        framed = framed[id_match.end() :]
        if not framed.startswith("A"):
            fail(f"whois !v not framed: {framed!r}")
        unframed = framed[framed.index("\n") + 1 :].rstrip("\nC").rstrip()
        if unframed != expected.rstrip():
            fail(f"whois !v diverges from batch verifier: {unframed!r}")
        print("serve-smoke: whois !v bit-identical to the batch verifier")

        status, _, body = http_json(http_port, "GET", "/metrics")
        text = body.decode()
        if status != 200:
            fail(f"GET /metrics: {status}")
        adoptions = sum(
            float(m.group(1))
            for m in re.finditer(r'^index_cache_total\{[^}]*\} (\d+)', text, re.M)
        )
        if adoptions != 1:
            fail(f"expected exactly one index adoption, saw {adoptions}")
        if "serve_requests_total" not in text:
            fail("serve_requests_total missing from /metrics")
        if "serve_stage_seconds" not in text:
            fail("serve_stage_seconds missing from /metrics")
        print("serve-smoke: metrics confirm one index adoption, warm serving")

        status, _, body = http_json(
            http_port, "GET", f"/debug/flight?id={request_id}"
        )
        if status != 200:
            fail(f"GET /debug/flight: {status}")
        flight = json.loads(body)
        if not flight.get("enabled") or flight["stats"]["events"] <= 0:
            fail(f"flight recorder not live: {flight.get('stats')}")
        kinds = {event["type"] for event in flight["events"]}
        if "request" not in kinds:
            fail(
                f"no request event for id {request_id} in flight ring: "
                f"{sorted(kinds)}"
            )
        print("serve-smoke: flight ring carries the correlated request event")

        process.send_signal(signal.SIGTERM)
        process.wait(timeout=30)
        if process.returncode != 0:
            fail(f"SIGTERM exit code {process.returncode}, want 0")
        try:
            http_json(http_port, "GET", "/healthz")
        except OSError:
            pass
        else:
            fail("http port still accepting after drain")
        print("serve-smoke: SIGTERM drained cleanly (exit 0), ports released")

        if not access_log.exists():
            fail(f"access log never written: {access_log}")
        records = [
            json.loads(line)
            for line in access_log.read_text().splitlines()
            if line.strip()
        ]
        if not records:
            fail("access log is empty")
        for record in records:
            if not ACCESS_FIELDS <= set(record):
                fail(f"access record missing fields: {record}")
            if set(record["stages_ms"]) != STAGES:
                fail(f"access record stage keys: {record['stages_ms']}")
        if not any(record["id"] == request_id for record in records):
            fail(f"access log never saw request id {request_id}")
        print(
            f"serve-smoke: access log holds {len(records)} schema-complete "
            "records"
        )
        print("serve-smoke: OK")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()


if __name__ == "__main__":
    main()
