#!/usr/bin/env python3
"""Quickstart: parse RPSL, inspect the IR, verify one route.

Run: ``python examples/quickstart.py``
"""

from repro import Verifier, parse_dump_text
from repro.bgp.topology import AsRelationships
from repro.ir.json_io import dumps_ir

# A miniature IRR dump: a provider (AS3356-like), a transit customer, and
# an edge AS originating one prefix.
DUMP = """\
aut-num:    AS100
as-name:    BIG-TRANSIT
import:     from AS-ANY accept ANY
export:     to AS-ANY announce AS-BIG-CONE

as-set:     AS-BIG-CONE
members:    AS100, AS200, AS300

aut-num:    AS200
as-name:    REGIONAL
import:     from AS300 accept AS300
import:     from AS100 accept ANY
export:     to AS100 announce AS200:AS-CUSTOMERS
export:     to AS300 announce ANY

as-set:     AS200:AS-CUSTOMERS
members:    AS200, AS300

aut-num:    AS300
as-name:    EDGE
import:     from AS200 accept ANY
export:     to AS200 announce AS300

route:      203.0.113.0/24
origin:     AS300
"""

# Business relationships, CAIDA as-rel style: provider|customer|-1.
AS_REL = """\
100|200|-1
200|300|-1
"""


def main() -> None:
    # 1. Parse the dump into the intermediate representation.
    ir, errors = parse_dump_text(DUMP, source="EXAMPLE")
    print(f"parsed objects: {ir.counts()}")
    print(f"parse issues:   {len(errors)}")

    # 2. The IR is JSON-exportable for other tools.
    print(f"IR JSON size:   {len(dumps_ir(ir))} bytes")

    # 3. Verify a route as a collector would observe it: AS-path
    #    neighbor-first, origin-last.
    relationships = AsRelationships.from_as_rel_text(AS_REL)
    verifier = Verifier(ir, relationships)
    report = verifier.verify_route("203.0.113.0/24", (100, 200, 300))
    print("\nverification report (origin side first):")
    print(report)

    # 4. A route that AS300 never registered: the import-customer and
    #    missing-routes relaxations kick in.
    report = verifier.verify_route("198.51.100.0/24", (100, 200, 300))
    print("\nunregistered prefix:")
    print(report)


if __name__ == "__main__":
    main()
