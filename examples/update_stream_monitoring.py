#!/usr/bin/env python3
"""Monitoring a live BGP update feed with RPSL verification.

An operational scenario the paper motivates: watch collector updates and
surface announcements that (i) fail origin validation against route
objects, or (ii) traverse hops whose policies mismatch.  The synthetic
feed includes flaps and path changes; a few "hijacks" (wrong-origin
announcements) are injected to show both detectors firing.

Run: ``python examples/update_stream_monitoring.py``
"""

import random

from repro.baseline.origin_validation import OriginStatus, OriginValidator
from repro.bgp.routegen import collector_routes
from repro.bgp.updates import StreamVerifier, UpdateEntry, synthesize_updates
from repro.core.status import VerifyStatus
from repro.core.verify import Verifier
from repro.irr.synth import build_world, tiny_config


def inject_hijacks(updates, world, count=5, seed=5):
    """Announce victim prefixes from unrelated origins."""
    rng = random.Random(seed)
    victims = [
        (asn, prefix)
        for asn, prefixes in sorted(world.announced.items())
        for prefix in prefixes
        if prefix.version == 4
    ]
    peers = sorted(world.collectors[0].peer_asns)
    hijacked = []
    for _ in range(count):
        victim_asn, prefix = rng.choice(victims)
        attacker = rng.choice(sorted(world.topology.ases()))
        peer = rng.choice(peers)
        if attacker in (victim_asn, peer):
            continue
        timestamp = updates[len(updates) // 2].timestamp
        hijacked.append(
            UpdateEntry(timestamp, "A", "rrc00", peer, prefix, (peer, attacker))
        )
    merged = sorted(updates + hijacked, key=lambda u: u.timestamp)
    return merged, hijacked


def main() -> None:
    world = build_world(tiny_config(seed=21))
    ir = world.merged_ir()
    verifier = Verifier(ir, world.topology)
    validator = OriginValidator(ir, verifier.query)

    table = list(collector_routes(world.topology, world.announced, world.collectors))
    updates = synthesize_updates(table[:2000], flap_probability=0.2)
    updates, hijacks = inject_hijacks(updates, world)
    print(f"monitoring {len(updates)} updates ({len(hijacks)} injected hijacks)\n")

    stream = StreamVerifier(verifier)
    alerts = 0
    for update in updates:
        report = stream.apply(update)
        if report is None or report.ignored is not None:
            continue
        origin_status = validator.validate(update.prefix, update.as_path[-1])
        bad_hops = [h for h in report.hops if h.status is VerifyStatus.UNVERIFIED]
        if origin_status is OriginStatus.INVALID_ORIGIN:
            alerts += 1
            print(
                f"ALERT origin  t={update.timestamp} {update.prefix} from "
                f"AS{update.as_path[-1]}: registered to another origin"
            )
        elif len(bad_hops) >= 2 and alerts < 12:
            alerts += 1
            print(
                f"alert policy  t={update.timestamp} {update.prefix} path "
                f"{' '.join(map(str, update.as_path))}: {len(bad_hops)} "
                "unverified hops"
            )

    print(
        f"\nprocessed {stream.announcements} announcements, "
        f"{stream.withdrawals} withdrawals; RIB size {len(stream.rib)}; "
        f"{alerts} alerts raised"
    )
    assert alerts > 0


if __name__ == "__main__":
    main()
