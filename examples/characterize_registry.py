#!/usr/bin/env python3
"""Section 4 characterization on a synthetic multi-IRR registry.

Regenerates, at example scale, the paper's Table 1, Table 2, Figure 1
samples, and the route-object / as-set statistics.

Run: ``python examples/characterize_registry.py [seed]``
"""

import sys

from repro.irr.synth import build_world, default_config
from repro.stats.as_sets import as_set_stats
from repro.stats.ccdf import fraction_at_least
from repro.stats.routes import route_object_stats
from repro.stats.usage import (
    error_census,
    filter_kind_census,
    peering_simplicity,
    reference_census,
    rules_per_aut_num,
)


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    world = build_world(default_config(seed))
    registry = world.registry()
    ir = registry.merged()

    print("== Table 1: IRRs used ==")
    print(f"{'IRR':8} {'KiB':>8} {'aut-num':>8} {'route':>8} {'import':>8} {'export':>8}")
    for name, row in registry.table1():
        print(
            f"{name:8} {row['size_bytes'] / 1024:>8.1f} {row['aut-num']:>8} "
            f"{row['route']:>8} {row['import']:>8} {row['export']:>8}"
        )

    print("\n== Table 2: defined vs referenced ==")
    census = reference_census(ir)
    print(f"{'class':12} {'defined':>8} {'overall':>8} {'peering':>8} {'filter':>8}")
    for row in census.table():
        print(f"{row[0]:12} {row[1]:>8} {row[2]:>8} {row[3]:>8} {row[4]:>8}")

    print("\n== Figure 1: rules per aut-num (CCDF samples) ==")
    counts = list(rules_per_aut_num(ir).values())
    for threshold in (0, 1, 5, 10, 50):
        print(f"  P[rules >= {threshold:>3}] = {fraction_at_least(counts, threshold):.3f}")

    print("\n== Peering simplicity ==")
    simple = peering_simplicity(ir)
    total = sum(simple.values())
    for kind, count in sorted(simple.items(), key=lambda item: -item[1]):
        print(f"  {kind:12}: {count:>6} ({count / total:.1%})")

    print("\n== Filter kinds ==")
    kinds = filter_kind_census(ir)
    total = sum(kinds.values())
    for kind, count in sorted(kinds.items(), key=lambda item: -item[1]):
        print(f"  {kind:14}: {count:>6} ({count / total:.1%})")

    print("\n== Route objects ==")
    for key, value in route_object_stats(ir).as_dict().items():
        print(f"  {key:40}: {value}")

    print("\n== As-sets ==")
    for key, value in as_set_stats(ir, huge_threshold=50, deep_threshold=3).as_dict().items():
        print(f"  {key:20}: {value}")

    print("\n== RPSL errors ==")
    for key, value in error_census(registry.all_errors()).items():
        print(f"  {key:24}: {value}")


if __name__ == "__main__":
    main()
