#!/usr/bin/env python3
"""Tour of the tooling layer: WHOIS serving, linting, inference, classes.

The paper's conclusion calls for "further RPSL tooling such as linters"
and lists AS-relationship inference and usage classification as future
applications; this example runs all of them on one synthetic registry,
including live queries against the IRRd-style WHOIS server.

Run: ``python examples/irr_tooling.py``
"""

from repro.irr.synth import build_world, tiny_config
from repro.irr.whois import WhoisServer, whois_query
from repro.tools.asrel import infer_relationships, score_inference
from repro.tools.classify import classify_ir
from repro.tools.lint import lint_ir
from repro.tools.recommend import recommend_route_set


def main() -> None:
    world = build_world(tiny_config(seed=7))
    registry = world.registry()
    ir = registry.merged()

    print("== WHOIS / IRRd server ==")
    some_asn = next(asn for asn, aut in sorted(ir.aut_nums.items()) if aut.rule_count)
    some_set = sorted(name for name in ir.as_sets if ":" in name)[0]
    with WhoisServer(ir) as server:
        print(f"(serving {ir.counts()['aut-num']} aut-nums on port {server.port})")
        print(f"$ whois AS{some_asn}")
        print(whois_query("127.0.0.1", server.port, f"AS{some_asn}")[:400])
        print(f"\n$ whois !i{some_set},1   # recursive set expansion")
        print(whois_query("127.0.0.1", server.port, f"!i{some_set},1")[:200])
        print(f"\n$ whois !gAS{some_asn}   # prefixes originated")
        print(whois_query("127.0.0.1", server.port, f"!gAS{some_asn}")[:200])

    print("\n== Linter ==")
    report = lint_ir(ir, registry.all_errors(), world.topology)
    print(f"{len(report)} findings; counts per check: {report.counts()}")
    for finding in report.findings[:8]:
        print(f"  {finding}")

    print("\n== AS-relationship inference vs ground truth ==")
    inferred = infer_relationships(ir)
    for key, value in score_inference(world.topology, inferred).as_dict().items():
        print(f"  {key:24}: {value}")

    print("\n== Usage archetypes ==")
    _, census = classify_ir(ir, world.topology.ases(), world.topology)
    for label, count in census.most_common():
        print(f"  {label:18}: {count}")

    print("\n== Route-set migration advisor (the paper's §4 recommendation) ==")
    advised = 0
    for asn in sorted(ir.aut_nums):
        recommendation = recommend_route_set(ir, asn, relationships=world.topology)
        if recommendation is not None:
            print(recommendation.summary())
            advised += 1
            if advised >= 2:
                break


if __name__ == "__main__":
    main()
