#!/usr/bin/env python3
"""Detecting a route leak with RPSL verification.

The paper argues RPSL rules could inform filters that curtail route leaks
(Section 5.1.2).  This example stages the classic leak: a multihomed
customer re-exports one provider's routes to its other provider, which
violates both the customer's declared export policy and valley-freeness.
The verifier flags exactly the leaked hop as unverified.

Run: ``python examples/route_leak_detection.py``
"""

from repro import Verifier, VerifyOptions, parse_dump_text
from repro.bgp.topology import AsRelationships
from repro.core.status import VerifyStatus

DUMP = """\
aut-num:    AS100
as-name:    PROVIDER-A
import:     from AS-ANY accept ANY
export:     to AS-ANY announce ANY

aut-num:    AS200
as-name:    PROVIDER-B
import:     from AS-ANY accept ANY
export:     to AS-ANY announce ANY

aut-num:    AS300
as-name:    MULTIHOMED-CUSTOMER
import:     from AS100 accept ANY
import:     from AS200 accept ANY
export:     to AS100 announce AS300
export:     to AS200 announce AS300

route:      203.0.113.0/24
origin:     AS300

route:      198.51.100.0/24
origin:     AS100
"""

AS_REL = """\
100|300|-1
200|300|-1
100|200|0
"""


def leaked_hop_of(report):
    return next(
        hop
        for hop in report.hops
        if hop.direction == "export" and (hop.from_asn, hop.to_asn) == (300, 200)
    )


def main() -> None:
    ir, _ = parse_dump_text(DUMP, "EXAMPLE")
    relationships = AsRelationships.from_as_rel_text(AS_REL)

    print("== legitimate announcement: AS300 exports its own prefix ==")
    paper_mode = Verifier(ir, relationships)
    print(paper_mode.verify_route("203.0.113.0/24", (100, 300)))

    print("\n== LEAK: AS300 re-exports AS100's prefix to AS200 ==")
    print("paper-mode verification (measurement defaults):")
    leak = paper_mode.verify_route("198.51.100.0/24", (200, 300, 100))
    print(leak)
    assert leaked_hop_of(leak).status is VerifyStatus.SAFELISTED
    print(
        "\nThe leaked export is SAFELISTED: the paper's measurement mode\n"
        "deliberately safelists uphill (customer→provider) propagation —\n"
        "and notes that exactly these hops are 'opportunities where RPSL\n"
        "rules could inform route filters ... to curtail route leaks'."
    )

    print("\nstrict filtering mode (safelists off — an operator's filter):")
    strict = Verifier(ir, relationships, VerifyOptions(safelists=False))
    leak = strict.verify_route("198.51.100.0/24", (200, 300, 100))
    print(leak)
    leaked = leaked_hop_of(leak)
    assert leaked.status is VerifyStatus.UNVERIFIED
    print(
        "\nWith safelists off, AS300's 'export: to AS200 announce AS300'\n"
        "does not cover the leaked prefix: the leak surfaces as "
        f"{leaked.status.label!r}\non the AS300→AS200 export — a filter built"
        " from the RPSL would have dropped it."
    )


if __name__ == "__main__":
    main()
