#!/usr/bin/env python3
"""Section 5 end-to-end: verify collector routes against IRR policies.

Builds a synthetic Internet, simulates BGP route collection, verifies
every route, and prints the per-AS / per-pair / per-route summaries
(Figures 2–6) plus one Appendix-C-style report.

Run: ``python examples/verify_bgp_routes.py [seed]``
"""

import sys

from repro.bgp.routegen import collector_routes
from repro.core.status import SpecialCase, UnrecordedReason, VerifyStatus
from repro.core.verify import Verifier
from repro.irr.synth import build_world, default_config
from repro.stats.verification import VerificationStats


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    world = build_world(default_config(seed))
    ir = world.merged_ir()
    verifier = Verifier(ir, world.topology)

    stats = VerificationStats()
    sample_report = None
    for entry in collector_routes(world.topology, world.announced, world.collectors):
        report = verifier.verify_entry(entry)
        stats.add_report(report)
        if (
            sample_report is None
            and report.ignored is None
            and len(report.hops) >= 6
            and len({hop.status for hop in report.hops}) >= 3
        ):
            sample_report = report

    summary = stats.summary()
    print(f"routes verified: {summary['routes']}  (ignored: {summary['routes_ignored']})")
    print(f"hop checks:      {summary['hops']}")

    print("\n== hop status mix (Figure 4 areas) ==")
    for label, fraction in summary["hop_fractions"].items():
        print(f"  {label:12}: {fraction:.1%}")

    print("\n== per AS (Figure 2) ==")
    singles = stats.ases_with_single_status()
    print(f"  ASes observed: {summary['ases']}")
    print(f"  single-status ASes: {summary['ases_single_status']}")
    for status in VerifyStatus:
        print(f"    all-{status.label:12}: {singles.get(status, 0)}")

    print("\n== per AS pair (Figure 3) ==")
    print(f"  pairs: {summary['pairs']}")
    print(f"  import single-status: {summary['import_pairs_single_status_fraction']:.1%}")
    print(f"  export single-status: {summary['export_pairs_single_status_fraction']:.1%}")

    print("\n== unrecorded breakdown (Figure 5) ==")
    for reason in UnrecordedReason:
        print(f"  {reason.value:16}: {stats.unrecorded_breakdown().get(reason, 0)} ASes")

    print("\n== special cases (Figure 6) ==")
    for case in SpecialCase:
        print(f"  {case.value:24}: {stats.special_breakdown().get(case, 0)} ASes")

    print(
        f"\nunverified hops failing on the peering alone: "
        f"{summary['unverified_hops_peering_only_fraction']:.1%}"
    )

    if sample_report is not None:
        print("\n== sample report (Appendix C style) ==")
        print(sample_report)


if __name__ == "__main__":
    main()
