#!/usr/bin/env python3
"""BGPq4-style router filter generation from IRR objects.

The operational use case that motivates keeping *route* objects accurate:
transit providers feed customer as-sets into tools like BGPq4/IRRToolSet
to build ingress prefix filters.  This example resolves an as-set through
the query engine and renders the filter in three formats.

Run: ``python examples/generate_filters.py``
"""

from repro.baseline.bgpq4 import Bgpq4Resolver
from repro import parse_dump_text

DUMP = """\
as-set:     AS64500:AS-CUSTOMERS
members:    AS64510, AS64520, AS64500:AS-RESELLERS

as-set:     AS64500:AS-RESELLERS
members:    AS64530

route:      198.51.100.0/24
origin:     AS64510

route:      203.0.113.0/24
origin:     AS64520

route:      192.0.2.0/24
origin:     AS64530

route6:     2001:db8:10::/48
origin:     AS64510

route-set:  RS-STATICS
members:    100.64.0.0/10^24-24, 198.18.0.0/15
"""


def main() -> None:
    ir, _ = parse_dump_text(DUMP, "EXAMPLE")
    resolver = Bgpq4Resolver(ir)

    print("== plain (bgpq4 -4 AS64500:AS-CUSTOMERS) ==")
    print(resolver.render_prefix_list("AS64500:AS-CUSTOMERS"))

    print("\n== IPv6 (bgpq4 -6) ==")
    print(resolver.render_prefix_list("AS64500:AS-CUSTOMERS", version=6))

    print("\n== Juniper ==")
    print(resolver.render_prefix_list("AS64500:AS-CUSTOMERS", style="junos"))

    print("\n== Cisco, from a route-set ==")
    print(resolver.render_prefix_list("RS-STATICS", style="cisco"))


if __name__ == "__main__":
    main()
