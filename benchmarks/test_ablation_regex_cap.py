"""A2 — Ablation: symbolic-regex Cartesian-product cap sensitivity.

Appendix B's matcher enumerates the product of per-position symbol sets.
This ablation measures match cost and result stability across caps, using
adversarial paths whose ASes map to several symbols each.
"""

from conftest import emit

from repro.core.aspath_match import AsPathMatcher
from repro.core.query import QueryEngine
from repro.irr.dump import parse_dump_text
from repro.rpsl.aspath import parse_as_path_regex

DUMP = """
as-set:  AS-A
members: AS1, AS2, AS3, AS4

as-set:  AS-B
members: AS2, AS3, AS4, AS5

as-set:  AS-C
members: AS3, AS4, AS5, AS6
"""

REGEX = parse_as_path_regex("<^AS-A (AS-B | AS-C)* AS6$>")
PATH = (3, 4, 3, 4, 3, 4, 3, 4, 6)  # every position maps to 3-4 symbols


def run_matches(matcher) -> bool:
    result = None
    for _ in range(20):
        result = matcher.match(REGEX, PATH, peer_asn=3)
    return result.matched


def test_regex_cap_sensitivity(benchmark, capsys):
    ir, _ = parse_dump_text(DUMP, "T")
    query = QueryEngine(ir)

    outcomes = {}
    for cap in (16, 256, 65536):
        matcher = AsPathMatcher(query, product_cap=cap)
        result = matcher.match(REGEX, PATH, peer_asn=3)
        outcomes[cap] = (result.matched, result.approximate)

    matcher = AsPathMatcher(query, product_cap=65536)
    matched = benchmark(run_matches, matcher)

    lines = [f"{'cap':>8} {'matched':>8} {'approximate':>12}"]
    for cap, (hit, approximate) in outcomes.items():
        lines.append(f"{cap:>8} {str(hit):>8} {str(approximate):>12}")
    emit("ablation_regex_cap", "\n".join(lines))

    # The exact (uncapped) evaluation matches; tiny caps may only flag
    # approximation, never flip a found match to a false positive.
    assert outcomes[65536] == (True, False)
    assert matched is True
    for cap, (hit, approximate) in outcomes.items():
        if not approximate:
            assert hit is True
