"""Shared benchmark fixtures: one mid-scale world, verified once.

Every table/figure benchmark consumes the same session-scoped artifacts:
the synthetic world, its parsed registry, the merged IR, and a full
verification pass aggregated into :class:`VerificationStats`.  Each
benchmark times its own (re-)aggregation and writes the regenerated
table/figure rows to ``benchmarks/results/``, plus a run manifest
(``<name>.manifest.json``) snapshotting the session's metrics registry so
perf runs are diffable against each other (see docs/observability.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bgp.routegen import collector_routes
from repro.core.verify import Verifier
from repro.irr.synth import SynthConfig, build_world
from repro.obs import MetricsRegistry, build_manifest, get_registry, set_registry, write_manifest
from repro.stats.verification import VerificationStats

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def obs_registry():
    """One live metrics registry for the whole benchmark session."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    yield registry
    set_registry(previous)


def bench_config(seed: int = 42) -> SynthConfig:
    """The benchmark world: ~500 ASes, 3 collectors."""
    return SynthConfig(
        seed=seed,
        n_tier1=6,
        n_tier2=30,
        n_tier3=100,
        n_stub=360,
        n_collectors=3,
        peers_per_collector=10,
    )


@pytest.fixture(scope="session")
def world(obs_registry):
    return build_world(bench_config())


@pytest.fixture(scope="session")
def registry(world):
    return world.registry()


@pytest.fixture(scope="session")
def ir(registry):
    return registry.merged()


@pytest.fixture(scope="session")
def verifier(ir, world):
    return Verifier(ir, world.topology)


@pytest.fixture(scope="session")
def routes(world):
    return list(
        collector_routes(world.topology, world.announced, world.collectors)
    )


@pytest.fixture(scope="session")
def verification(verifier, routes):
    """The full verification pass, aggregated (runs once per session)."""
    stats = VerificationStats()
    for entry in routes:
        stats.add_report(verifier.verify_entry(entry))
    return stats


def emit(name: str, text: str) -> None:
    """Persist a regenerated table/figure and echo it for the console.

    Alongside each result file a run manifest is written from the session's
    metrics registry, so every benchmark leaves an auditable record of the
    phase timings and counters accumulated up to that point.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    registry = get_registry()
    if registry.enabled:
        manifest = build_manifest(command=f"benchmark:{name}", registry=registry)
        write_manifest(RESULTS_DIR / f"{name}.manifest.json", manifest)
    print(f"\n=== {name} ===\n{text}")
