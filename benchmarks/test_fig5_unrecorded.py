"""F5 — Figure 5: breakdown of unrecorded verification failures."""

from conftest import emit

from repro.core.status import UnrecordedReason


def render_fig5(verification) -> str:
    breakdown = verification.unrecorded_breakdown()
    total_ases = len(verification.per_as)
    lines = [f"ASes with >=1 unrecorded case: {len(verification.unrec_reasons_per_as)}"]
    for reason in UnrecordedReason:
        count = breakdown.get(reason, 0)
        lines.append(f"  {reason.value:16}: {count:>6} ASes ({count / total_ases:.1%})")
    return "\n".join(lines)


def test_fig5(benchmark, verification):
    text = benchmark(render_fig5, verification)
    emit("fig5_unrecorded", text)

    breakdown = verification.unrecorded_breakdown()
    # Paper ordering: missing aut-num (22,562) > zero rules (20,048) >
    # zero-route ASes (2,706) > missing sets (414).
    no_aut_num = breakdown.get(UnrecordedReason.NO_AUT_NUM, 0)
    no_rules = breakdown.get(UnrecordedReason.NO_RULES, 0)
    zero_route = breakdown.get(UnrecordedReason.ZERO_ROUTE_AS, 0)
    assert no_aut_num > 0 and no_rules > 0
    assert no_aut_num + no_rules > zero_route
    assert no_aut_num + no_rules > breakdown.get(UnrecordedReason.MISSING_SET, 0)
