"""F6 — Figure 6: breakdown of special cases per AS."""

from conftest import emit

from repro.core.status import SpecialCase


def render_fig6(verification) -> str:
    breakdown = verification.special_breakdown()
    total_ases = len(verification.per_as)
    lines = [
        f"ASes with >=1 special-cased import/export: "
        f"{verification.ases_with_special_cases()} "
        f"({verification.ases_with_special_cases() / total_ases:.1%})"
    ]
    for case in SpecialCase:
        count = breakdown.get(case, 0)
        lines.append(f"  {case.value:24}: {count:>6} ASes ({count / total_ases:.2%})")
    return "\n".join(lines)


def test_fig6(benchmark, verification):
    text = benchmark(render_fig6, verification)
    emit("fig6_special", text)

    breakdown = verification.special_breakdown()
    uphill = breakdown.get(SpecialCase.UPHILL, 0)
    export_self = breakdown.get(SpecialCase.EXPORT_SELF, 0)
    import_customer = breakdown.get(SpecialCase.IMPORT_CUSTOMER, 0)
    # Paper shape: uphill (28.1% of ASes) >> export-self (1.2%) >
    # import-customer (0.4%); missing routes sit in between.
    assert uphill == max(breakdown.values())
    assert export_self >= import_customer
    assert verification.ases_with_special_cases() > 0
