"""T2 — Table 2: objects defined vs referenced in rules."""

from conftest import emit

from repro.stats.usage import reference_census


def render_table2(ir) -> str:
    census = reference_census(ir)
    lines = [f"{'class':12} {'defined':>8} {'overall':>8} {'peering':>8} {'filter':>8}"]
    for cls, defined, overall, peering, in_filter in census.table():
        lines.append(f"{cls:12} {defined:>8} {overall:>8} {peering:>8} {in_filter:>8}")
    return "\n".join(lines)


def test_table2(benchmark, ir):
    text = benchmark(render_table2, ir)
    emit("table2_references", text)

    census = reference_census(ir)
    rows = {row[0]: row for row in census.table()}
    # Shape relations from the paper: a majority of aut-nums are referenced
    # in filters; more as-sets are defined than referenced; route-sets are
    # defined but referenced by only a minority of rules.
    assert rows["aut-num"][2] > 0
    assert rows["as-set"][1] >= rows["as-set"][2]
    assert rows["route-set"][1] > 0
    # Referenced counts never exceed defined counts (referenced ∩ defined).
    for cls, defined, overall, peering, in_filter in census.table():
        assert overall <= defined
        assert peering <= defined and in_filter <= defined
