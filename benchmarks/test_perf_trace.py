"""P3 — decision-trace overhead: default-sampled tracing vs no tracing.

One comparison over the mid-scale world with a warm compiled index: the
serial verification pass with the null tracer against the same pass with
a default :class:`TraceConfig` (1-in-128 head sampling plus always-trace
non-verified verdicts) — the configuration ``rpslyzer verify --trace``
installs.

The differential gate is always enforced: tracing must not change a
single aggregate of the verification output.  The overhead ceiling
(traced within 10% of untraced wall time) only fails under
``RPSLYZER_PERF_STRICT`` so a noisy CI runner cannot flake the build; the
measured figures are recorded as gauges and land in the emitted manifest
either way.
"""

import os
import time

from conftest import emit

from repro.core.compiled import compile_index
from repro.core.parallel import verify_table
from repro.obs import get_registry
from repro.obs.trace import TraceConfig, Tracer, use_tracer

STRICT = bool(os.environ.get("RPSLYZER_PERF_STRICT"))


def _best_of(runs, fn):
    """Min-of-N wall time plus the last result (comparison-friendly)."""
    best = float("inf")
    result = None
    for _ in range(runs):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_default_sampled_tracing_overhead(ir, world, routes):
    index = compile_index(ir)

    base_s, base = _best_of(
        2, lambda: verify_table(ir, world.topology, routes, processes=1, index=index)
    )

    def traced_run():
        with use_tracer(Tracer(TraceConfig())) as tracer:
            stats = verify_table(
                ir, world.topology, routes, processes=1, index=index
            )
        return stats, tracer

    traced_s, (traced, tracer) = _best_of(2, traced_run)

    # The differential gate: tracing is observation, never interference.
    assert traced.summary() == base.summary()
    assert traced.hop_totals == base.hop_totals
    assert tracer.emitted > 0  # the default config does sample this world

    overhead = traced_s / base_s - 1.0
    registry = get_registry()
    registry.gauge("bench_verify_untraced_seconds").set(base_s)
    registry.gauge("bench_verify_traced_seconds").set(traced_s)
    registry.gauge("bench_trace_overhead_ratio").set(traced_s / base_s)
    emit(
        "perf_trace_overhead",
        f"routes: {len(routes)} (serial, warm index)\n"
        f"untraced: {base_s:.3f}s\ntraced (default sampling): {traced_s:.3f}s\n"
        f"overhead: {overhead:+.1%}\n"
        f"events: {tracer.emitted} "
        f"({tracer.sampled['head']} head / {tracer.sampled['verdict']} verdict)",
    )
    if STRICT:
        # The acceptance ceiling: default-sampled tracing adds <10% wall.
        assert traced_s <= base_s * 1.10
