"""P4 — the full pipeline, end to end: synth → parse → merge → verify.

One number summarizing the whole reproduction: wall time from nothing to
Figure 4 data on a small world.  The paper's equivalent is "dumps to
results" turnaround; here it guards against regressions anywhere in the
stack.
"""

from conftest import emit

from repro.bgp.routegen import collector_routes
from repro.core.status import VerifyStatus
from repro.core.verify import Verifier
from repro.irr.synth import SynthConfig, build_world
from repro.stats.verification import VerificationStats


def full_pipeline(seed: int) -> VerificationStats:
    config = SynthConfig(
        seed=seed, n_tier1=4, n_tier2=12, n_tier3=40, n_stub=120,
        n_collectors=2, peers_per_collector=6,
    )
    world = build_world(config)
    ir = world.merged_ir()
    verifier = Verifier(ir, world.topology)
    stats = VerificationStats()
    for entry in collector_routes(world.topology, world.announced, world.collectors):
        stats.add_report(verifier.verify_entry(entry))
    return stats


def test_full_pipeline(benchmark):
    stats = benchmark.pedantic(full_pipeline, args=(77,), rounds=3, iterations=1)
    seconds = benchmark.stats.stats.mean
    emit(
        "perf_pipeline",
        f"synth+parse+merge+verify: {seconds:.2f}s\n"
        f"routes: {stats.routes_verified()}, hops: {sum(stats.hop_totals.values())}",
    )
    assert stats.routes_verified() > 1000
    assert stats.hop_totals[VerifyStatus.VERIFIED] > 0
