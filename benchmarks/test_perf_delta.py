"""P4 — incremental delta ingestion vs full recompilation.

The tentpole claim: an NRTM-style journal patches the live
:class:`~repro.core.compiled.CompiledIndex` orders of magnitude faster
than recompiling it from scratch.  Measured at production scale — the
benchmark IR spliced with a ~100k-prefix route table, the size real IRR
snapshots reach:

* **single-object delta** — one route ADD journal, measured
  update-to-queryable (journal replay onto the IR plus ``patch_index``)
  against a from-scratch ``compile_index`` over the same patched IR;
* **batch delta** — a 200-entry mixed ADD/DEL journal through the same
  pipeline;
* **identity gate** — the patched index's trie contents and byref
  tables are hard-asserted equal to the fresh compile's, every run.

Timing floors only fail under ``RPSLYZER_PERF_STRICT`` (the
perf-regression CI job sets it).  Ratios accumulate into
``benchmarks/results/BENCH_delta_ingest.json``, diffed against
``benchmarks/baselines.json`` by ``scripts/check_perf_regression.py``.
"""

import json
import os
import random
import time

import pytest
from conftest import RESULTS_DIR, emit

from repro.core.compiled import compile_index, patch_index
from repro.ir.model import Ir, RouteObject
from repro.irr.journal import Journal, JournalEntry, apply_journal_to_ir
from repro.net.prefix import Prefix
from repro.obs import get_registry

STRICT = bool(os.environ.get("RPSLYZER_PERF_STRICT"))

_metrics: dict[str, float] = {}

_SCALE_PREFIXES = 100_000


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Write the accumulated ratio metrics once the module finishes."""
    yield
    RESULTS_DIR.mkdir(exist_ok=True)
    document = {
        "bench": "delta_ingest",
        "strict": STRICT,
        "metrics": dict(sorted(_metrics.items())),
    }
    path = RESULTS_DIR / "BENCH_delta_ingest.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"\n=== BENCH_delta_ingest ===\n{json.dumps(document['metrics'], indent=2)}")


def _best_of(runs, fn):
    best = float("inf")
    result = None
    for _ in range(runs):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


@pytest.fixture(scope="module")
def big_ir(ir):
    """The benchmark IR spliced with a ~100k-prefix route table."""
    rng = random.Random(1)
    extra = []
    seen = set()
    while len(extra) < _SCALE_PREFIXES:
        length = rng.randint(16, 24)
        network = rng.getrandbits(length) << (32 - length)
        origin = rng.randint(1, 30_000)
        if (network, length, origin) in seen:
            continue
        seen.add((network, length, origin))
        extra.append(
            RouteObject(
                prefix=Prefix(4, network, length),
                origin=origin,
                mnt_by=[f"MNT-AS{origin}"],
                source="SYNTH",
            )
        )
    return Ir(
        aut_nums=dict(ir.aut_nums),
        as_sets=dict(ir.as_sets),
        route_sets=dict(ir.route_sets),
        peering_sets=dict(ir.peering_sets),
        filter_sets=dict(ir.filter_sets),
        route_objects=list(ir.route_objects) + extra,
    )


def _route_add_journal(start_serial: int, count: int) -> Journal:
    """ADD journals for fresh /24s in an otherwise-unused range."""
    entries = []
    for offset in range(count):
        prefix = Prefix(4, (198 << 24) + (offset << 8), 24)
        route = RouteObject(
            prefix=prefix, origin=64500, mnt_by=["MNT-DELTA"], source="SYNTH"
        )
        entries.append(
            JournalEntry(
                serial=start_serial + offset,
                action="ADD",
                cls="route",
                key=(str(prefix), 64500, "SYNTH"),
                obj=route,
                source="SYNTH",
            )
        )
    return Journal(entries=entries)


def _assert_equivalent(patched, fresh) -> None:
    assert dict(patched.route_trie.iter_exact()) == dict(
        fresh.route_trie.iter_exact()
    )
    assert patched.as_set_byref == fresh.as_set_byref
    assert {k: tuple(v) for k, v in patched.route_set_byref.items()} == {
        k: tuple(v) for k, v in fresh.route_set_byref.items()
    }


def test_single_object_delta_vs_full_recompile(big_ir):
    compile_s, index = _best_of(2, lambda: compile_index(big_ir))
    journal = _route_add_journal(1, 1)

    def delta():
        new_ir, report = apply_journal_to_ir(big_ir, journal)
        assert not report
        return new_ir, patch_index(index, big_ir, new_ir, journal)

    delta_s, (new_ir, patched) = _best_of(5, delta)
    fresh = compile_index(new_ir)
    _assert_equivalent(patched, fresh)  # the identity gate
    assert patched.generation == 1
    assert patched.serials == {"SYNTH": 1}

    speedup = compile_s / delta_s
    _metrics["delta_ingest_speedup"] = round(speedup, 1)
    _metrics["delta_apply_ms"] = round(delta_s * 1e3, 3)
    registry = get_registry()
    registry.gauge("bench_delta_apply_seconds").set(delta_s)
    registry.gauge("bench_full_compile_seconds").set(compile_s)
    emit(
        "perf_delta_ingest_single",
        f"route table: {len(big_ir.route_objects)} objects\n"
        f"full compile: {compile_s * 1e3:.1f}ms\n"
        f"single-ADD delta (update-to-queryable): {delta_s * 1e3:.3f}ms\n"
        f"speedup: {speedup:.0f}x",
    )
    if STRICT:
        assert speedup >= 50.0, f"delta path only {speedup:.1f}x over recompile"


def test_batch_delta_vs_full_recompile(big_ir):
    compile_s, index = _best_of(1, lambda: compile_index(big_ir))
    # 100 ADDs of fresh prefixes plus 100 DELs of spliced routes.
    journal = _route_add_journal(1, 100)
    serial = 101
    rng = random.Random(5)
    for route in rng.sample(big_ir.route_objects[-_SCALE_PREFIXES:], 100):
        journal.entries.append(
            JournalEntry(
                serial=serial,
                action="DEL",
                cls="route",
                key=(str(route.prefix), route.origin, route.source),
                source=route.source,
            )
        )
        serial += 1

    def delta():
        new_ir, report = apply_journal_to_ir(big_ir, journal)
        assert not report
        return new_ir, patch_index(index, big_ir, new_ir, journal)

    delta_s, (new_ir, patched) = _best_of(3, delta)
    fresh = compile_index(new_ir)
    _assert_equivalent(patched, fresh)

    speedup = compile_s / delta_s
    _metrics["delta_batch_speedup"] = round(speedup, 1)
    emit(
        "perf_delta_ingest_batch",
        f"journal: {len(journal)} entries (100 ADD + 100 DEL)\n"
        f"full compile: {compile_s * 1e3:.1f}ms\n"
        f"batch delta: {delta_s * 1e3:.3f}ms\n"
        f"speedup: {speedup:.0f}x",
    )
    if STRICT:
        assert speedup >= 20.0, f"batch delta only {speedup:.1f}x over recompile"
