"""Extension: longitudinal verification across registry snapshots.

The paper's future work includes "tracking the evolution of RPSL policy
usage over time"; with the history substrate we can run that study
offline: evolve the registry through epochs of churn and verify the same
route sample against each snapshot, watching statuses drift as route
objects decay and rules churn.
"""

from collections import Counter

from conftest import emit

from repro.core.status import VerifyStatus
from repro.core.verify import Verifier
from repro.irr.history import ChurnConfig, snapshot_series
from repro.stats.routes import route_object_stats


def verify_sample(ir, topology, sample) -> Counter:
    verifier = Verifier(ir, topology)
    counts: Counter = Counter()
    for entry in sample:
        for hop in verifier.verify_entry(entry).hops:
            counts[hop.status] += 1
    return counts


def test_verification_across_epochs(benchmark, ir, world, routes):
    sample = routes[:1500]
    # Aggressive decay so the trend is visible at bench scale.
    config = ChurnConfig(
        route_removal=0.15, route_addition=0.10,
        rule_removal=0.05, rule_addition=0.01, seed=3,
    )
    series = benchmark.pedantic(
        snapshot_series, args=(ir, 3, config), rounds=1, iterations=1
    )

    lines = [f"{'epoch':>6} {'routes-reg':>11} {'verified':>9} {'unrec':>7} {'unverified':>11}"]
    verified_trend = []
    for epoch, snapshot in enumerate(series):
        counts = verify_sample(snapshot, world.topology, sample)
        total = sum(counts.values())
        verified_trend.append(counts[VerifyStatus.VERIFIED] / total)
        lines.append(
            f"{epoch:>6} {route_object_stats(snapshot).total_objects:>11} "
            f"{counts[VerifyStatus.VERIFIED] / total:>9.3f} "
            f"{counts[VerifyStatus.UNRECORDED] / total:>7.3f} "
            f"{counts[VerifyStatus.UNVERIFIED] / total:>11.3f}"
        )
    emit("ext_evolution", "\n".join(lines))

    # Route-object decay erodes strict matches: the verified fraction at
    # the end of the series is below the starting point.
    assert verified_trend[-1] < verified_trend[0]
    # Each snapshot still verifies a meaningful share (registries decay
    # gradually, not catastrophically).
    assert all(fraction > 0.02 for fraction in verified_trend)
