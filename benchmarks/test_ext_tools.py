"""Extension benchmarks: the paper's future-work tooling.

Not paper figures — these quantify the extensions (linter, relationship
inference, usage classification, WHOIS engine, history diffing) on the
same benchmark world, so regressions in the tooling layer are visible.
"""

from collections import Counter

from conftest import emit

from repro.irr.history import ChurnConfig, diff_irs, evolve_ir
from repro.irr.whois import WhoisEngine
from repro.tools.asrel import infer_relationships, score_inference
from repro.tools.classify import classify_ir
from repro.tools.lint import lint_ir


def test_lint_throughput(benchmark, ir, registry, world):
    report = benchmark(lint_ir, ir, registry.all_errors(), world.topology)
    counts = report.counts()
    lines = [f"{code}: {count}" for code, count in sorted(counts.items())]
    emit("ext_lint", f"{len(report)} findings\n" + "\n".join(lines))
    # The generator injects every pathology the linter knows about.
    assert counts.get("RPS030", 0) > 0  # export-self
    assert counts.get("RPS031", 0) > 0  # import-customer
    assert counts.get("RPS012", 0) > 0  # as-set loops
    assert counts.get("RPS051", 0) > 0  # multi-origin prefixes


def test_relationship_inference_accuracy(benchmark, ir, world):
    inferred = benchmark(infer_relationships, ir)
    score = score_inference(world.topology, inferred)
    lines = [f"{key}: {value}" for key, value in score.as_dict().items()]
    emit("ext_asrel", "\n".join(lines))
    # Where RPSL speaks, it speaks truly: high transit precision; recall is
    # bounded by adoption (~half the ASes are silent).
    assert score.transit_precision > 0.85
    assert 0.1 < score.transit_recall < 0.95


def test_classification_census(benchmark, ir, world):
    labels, census = benchmark(
        classify_ir, ir, world.topology.ases(), world.topology
    )
    lines = [f"{label}: {count}" for label, count in census.most_common()]
    emit("ext_classify", "\n".join(lines))
    # Shape: silent + ghost ≈ the paper's ~53% non-declaring ASes.
    total = sum(census.values())
    assert 0.3 < (census["silent"] + census["ghost"]) / total < 0.75
    assert census["power-user"] < census["documented"] + census["minimal"]
    # Generator ground truth: absent ASes are classified silent.
    absent = [asn for asn, profile in world.profiles.items() if profile == "absent"]
    assert all(labels[asn] == "silent" for asn in absent)


def test_whois_engine_throughput(benchmark, ir):
    engine = WhoisEngine(ir)
    asns = sorted(ir.aut_nums)[:50]
    set_names = sorted(ir.as_sets)[:50]

    def query_mix() -> int:
        answered = 0
        for asn in asns:
            answered += engine.bang(f"!gAS{asn}") != "D"
        for name in set_names:
            answered += engine.bang(f"!i{name},1") != "D"
        return answered

    answered = benchmark(query_mix)
    emit("ext_whois", f"{answered}/{len(asns) + len(set_names)} queries answered")
    assert answered > 50


def test_history_churn(benchmark, ir):
    config = ChurnConfig(seed=7)

    def one_epoch():
        evolved = evolve_ir(ir, config, epoch=1)
        return diff_irs(ir, evolved)

    diff = benchmark(one_epoch)
    summary = diff.summary()
    emit(
        "ext_history",
        "\n".join(f"{kind}: {count}" for kind, count in summary.items()),
    )
    assert summary["added"] > 0
    assert summary["removed"] > 0
