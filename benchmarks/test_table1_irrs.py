"""T1 — Table 1: per-IRR dataset summary (size, objects, rules)."""

from conftest import emit


def render_table1(registry) -> str:
    rows = registry.table1()
    lines = [f"{'IRR':10} {'SIZE(KiB)':>10} {'aut-num':>8} {'route':>8} {'import':>8} {'export':>8}"]
    for name, row in rows:
        lines.append(
            f"{name:10} {row['size_bytes'] / 1024:>10.1f} {row['aut-num']:>8} "
            f"{row['route']:>8} {row['import']:>8} {row['export']:>8}"
        )
    return "\n".join(lines)


def test_table1(benchmark, registry):
    text = benchmark(render_table1, registry)
    emit("table1_irrs", text)

    rows = dict(registry.table1())
    total = rows["Total"]
    # Shape: every IRR present, totals add up, RIPE is the largest
    # authoritative registry and LACNIC carries no rules (as in the paper).
    assert total["aut-num"] == sum(
        row["aut-num"] for name, row in rows.items() if name != "Total"
    )
    assert rows["RIPE"]["aut-num"] >= rows["ARIN"]["aut-num"]
    assert rows["LACNIC"]["import"] == 0 and rows["LACNIC"]["export"] == 0
    assert total["route"] > total["aut-num"]
