"""F1 — Figure 1: CCDF of rules per aut-num (all vs BGPq4-compatible)."""

from conftest import emit

from repro.stats.ccdf import fraction_at_least
from repro.stats.usage import rules_ccdf, rules_per_aut_num


def render_fig1(ir) -> str:
    all_points = rules_ccdf(ir)
    compatible_points = rules_ccdf(ir, bgpq4_compatible_only=True)
    lines = [f"{'rules>=':>8} {'all':>8} {'bgpq4-ok':>9}"]
    compatible = dict(compatible_points)
    for threshold in (0, 1, 2, 5, 10, 20, 50, 100):
        all_fraction = next(
            (fraction for value, fraction in reversed(all_points) if value <= threshold),
            0.0,
        )
        lines.append(
            f"{threshold:>8} "
            f"{fraction_at_least(list(rules_per_aut_num(ir).values()), threshold):>8.3f} "
            f"{fraction_at_least(list(rules_per_aut_num(ir, True).values()), threshold):>9.3f}"
        )
    return "\n".join(lines)


def test_fig1(benchmark, ir, world):
    from repro.stats.usage import rules_per_group

    text = benchmark(render_fig1, ir)
    tier1_counts = rules_per_group(ir, world.topology.tier1)
    annotations = " ".join(
        f"AS{asn}={count}" for asn, count in tier1_counts.items()
    )
    emit("fig1_rules_ccdf", text + f"\ntier-1 markers (red crosses): {annotations}")

    counts = list(rules_per_aut_num(ir).values())
    zero_fraction = sum(1 for count in counts if count == 0) / len(counts)
    # Paper: 35.2% of aut-nums contain no rules; our generator lands in a
    # loose band around that.
    assert 0.15 < zero_fraction < 0.65
    # Heavy tail: some ASes declare an order of magnitude more rules.
    assert max(counts) >= 10
    # BGPq4-compatible counts are dominated by (≤) the full counts, and the
    # two distributions are quantitatively similar (paper's observation).
    compatible = rules_per_aut_num(ir, bgpq4_compatible_only=True)
    for asn, count in rules_per_aut_num(ir).items():
        assert compatible[asn] <= count
    total_all = sum(counts)
    total_compatible = sum(compatible.values())
    assert total_compatible > 0.75 * total_all
    # Figure 1's red crosses: Tier-1s spread across the whole range — some
    # silent, some documented (the "high RPSL adoption variance").
    from repro.stats.usage import rules_per_group

    tier1_counts = rules_per_group(ir, world.topology.tier1)
    assert min(tier1_counts.values()) == 0
    assert max(tier1_counts.values()) > 0
