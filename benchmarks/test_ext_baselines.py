"""Extension benchmarks: baselines and engineering ablations.

* origin-validation (the binary prior-work baseline) vs full path
  verification — what Section 6 says path verification adds;
* community-matching ablation (paper skips community filters);
* hop-cache ablation (the memoization that amortizes bulk verification).
"""

import time
from collections import Counter

from conftest import emit

from repro.baseline.origin_validation import OriginStatus, OriginValidator
from repro.core.status import VerifyStatus
from repro.core.verify import Verifier, VerifyOptions


def test_origin_validation_vs_path_verification(benchmark, ir, world, routes, verification):
    validator = OriginValidator(ir)
    census = benchmark(validator.census, routes)

    total = sum(census.values())
    lines = ["origin validation (binary baseline):"]
    for status in OriginStatus:
        lines.append(f"  {status.value:16}: {census.get(status, 0):>8} ({census.get(status, 0) / total:.1%})")
    hop_fractions = verification.summary()["hop_fractions"]
    lines.append("full path verification hop mix, for contrast:")
    for label, fraction in hop_fractions.items():
        lines.append(f"  {label:16}: {fraction:.1%}")
    emit("ext_origin_validation", "\n".join(lines))

    # Shape: origin validation answers for most routes (route objects are
    # well-populated) yet says nothing about the ~60% of hops path
    # verification classifies as unrecorded/unverified policy-wise.
    valid = census.get(OriginStatus.VALID, 0) + census.get(OriginStatus.VALID_COVERING, 0)
    assert valid / total > 0.5
    assert census.get(OriginStatus.INVALID_ORIGIN, 0) >= 0
    assert hop_fractions["unrecorded"] > 0.3


def test_community_matching_ablation(benchmark, ir, world, routes):
    sample = routes[:4000]

    def run(options: VerifyOptions) -> Counter:
        verifier = Verifier(ir, world.topology, options)
        counts: Counter = Counter()
        for entry in sample:
            for hop in verifier.verify_entry(entry).hops:
                counts[hop.status] += 1
        return counts

    skipping = run(VerifyOptions())
    matching = benchmark.pedantic(
        run, args=(VerifyOptions(community_matches=True),), rounds=3, iterations=1
    )

    lines = [f"{'status':12} {'skip-mode':>10} {'match-mode':>10}"]
    for status in VerifyStatus:
        lines.append(
            f"{status.label:12} {skipping.get(status, 0):>10} {matching.get(status, 0):>10}"
        )
    emit("ext_community_ablation", "\n".join(lines))

    # Matching communities can only reduce SKIP hops; verified never drops.
    assert matching[VerifyStatus.SKIP] <= skipping[VerifyStatus.SKIP]
    assert matching[VerifyStatus.VERIFIED] >= skipping[VerifyStatus.VERIFIED]
    assert sum(matching.values()) == sum(skipping.values())


def test_hop_cache_ablation(benchmark, ir, world, routes):
    sample = routes[:4000]

    def run(cache_size: int) -> tuple[Counter, float]:
        verifier = Verifier(ir, world.topology, VerifyOptions(hop_cache_size=cache_size))
        start = time.perf_counter()
        counts: Counter = Counter()
        for entry in sample:
            for hop in verifier.verify_entry(entry).hops:
                counts[hop.status] += 1
        return counts, time.perf_counter() - start

    cold_counts, cold_seconds = run(0)
    warm_counts, warm_seconds = benchmark.pedantic(
        lambda: run(1 << 20), rounds=3, iterations=1
    )

    emit(
        "ext_cache_ablation",
        f"no cache : {cold_seconds:.3f}s\nwith cache: {warm_seconds:.3f}s\n"
        f"speedup   : {cold_seconds / warm_seconds:.2f}x",
    )
    # Correctness must be cache-invariant; speed should not regress badly.
    assert warm_counts == cold_counts
    assert warm_seconds < cold_seconds * 1.5
