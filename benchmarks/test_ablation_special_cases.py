"""A1 — Ablation: verification with relaxations/safelists toggled off.

Quantifies how much of the paper's "explained mismatches" the Section 5.1
special cases account for: with them disabled, every relaxed/safelisted
hop falls through to UNVERIFIED.
"""

from collections import Counter

from conftest import emit

from repro.core.status import VerifyStatus
from repro.core.verify import Verifier, VerifyOptions


def verify_sample(verifier, sample) -> Counter:
    counts: Counter = Counter()
    for entry in sample:
        report = verifier.verify_entry(entry)
        for hop in report.hops:
            counts[hop.status] += 1
    return counts


def test_ablation_no_special_cases(benchmark, ir, world, routes):
    sample = routes[:: max(1, len(routes) // 800)][:800]
    baseline = verify_sample(Verifier(ir, world.topology), sample)
    strict_verifier = Verifier(
        ir, world.topology, VerifyOptions(relaxations=False, safelists=False)
    )
    strict = benchmark(verify_sample, strict_verifier, sample)

    lines = [f"{'status':12} {'paper-mode':>10} {'strict':>10}"]
    for status in VerifyStatus:
        lines.append(
            f"{status.label:12} {baseline.get(status, 0):>10} {strict.get(status, 0):>10}"
        )
    emit("ablation_special_cases", "\n".join(lines))

    # Special cases never change verified/skip/unrecorded hops...
    assert strict[VerifyStatus.VERIFIED] == baseline[VerifyStatus.VERIFIED]
    assert strict[VerifyStatus.SKIP] == baseline[VerifyStatus.SKIP]
    assert strict[VerifyStatus.UNRECORDED] == baseline[VerifyStatus.UNRECORDED]
    # ...and everything they explained becomes unverified.
    assert strict[VerifyStatus.RELAXED] == 0
    assert strict[VerifyStatus.SAFELISTED] == 0
    explained = baseline[VerifyStatus.RELAXED] + baseline[VerifyStatus.SAFELISTED]
    assert strict[VerifyStatus.UNVERIFIED] == baseline[VerifyStatus.UNVERIFIED] + explained
    # The special cases explain a majority of mismatches (paper: 19.0% of
    # hops explained vs ~1% residual unverified... loose band here).
    assert explained > baseline[VerifyStatus.UNVERIFIED] * 0.5
