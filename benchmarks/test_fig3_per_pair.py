"""F3 — Figure 3: verification status per AS pair (both directions)."""

from conftest import emit

from repro.core.status import VerifyStatus


def render_fig3(verification) -> str:
    import_single, import_total = verification.pairs_with_single_status("import")
    export_single, export_total = verification.pairs_with_single_status("export")
    lines = [
        f"AS pairs observed: {verification.total_pairs()}",
        f"import pairs single-status: {import_single}/{import_total} "
        f"({import_single / import_total:.1%})",
        f"export pairs single-status: {export_single}/{export_total} "
        f"({export_single / export_total:.1%})",
        f"pairs with >=1 unverified hop: "
        f"{verification.pairs_with_status(VerifyStatus.UNVERIFIED)}",
    ]
    return "\n".join(lines)


def test_fig3(benchmark, verification):
    text = benchmark(render_fig3, verification)
    emit("fig3_per_pair", text)

    import_single, import_total = verification.pairs_with_single_status("import")
    export_single, export_total = verification.pairs_with_single_status("export")
    # Paper: 91.7% (imports) and 92% (exports) of pairs are single-status.
    assert import_single / import_total > 0.6
    assert export_single / export_total > 0.6
    # A large share of pairs carries unverified routes (paper: 63%).
    assert verification.pairs_with_status(VerifyStatus.UNVERIFIED) > 0
