"""P? — serve telemetry overhead: correlation ids + stage timings + flight.

PR 10's telemetry is *always on* by default — every request gets a
correlation id, six stage timestamps, labeled histogram observations, an
access-log line, and a flight-recorder event.  The contract is that all
of that costs less than 5% of the per-request serve cost versus the
telemetry-disabled configuration, or it could never stay on in
production.

Measuring that contract by differencing two end-to-end floods does not
work on a shared machine: run-to-run variance of a full HTTP flood is
routinely ±10-15%, so two floods differing by <5% are indistinguishable
and the gate flakes in both directions (this was tried, extensively).
The benchmark instead composes the ratio from two quantities that each
measure *stably*:

* **denominator** — the end-to-end CPU cost of one request through the
  real HTTP front-end (raw keep-alive sockets POSTing ``/verify``
  against a threaded :class:`ServeDaemon`, telemetry off).  The minimum
  over several floods is the noise-floor estimate, and a ±15% wobble in
  a ~hundreds-of-µs denominator moves the final ratio by well under a
  percent.
* **numerator** — the telemetry work itself, measured deterministically
  by driving the *production* code path (``new_telemetry`` →
  stage marks → ``_finish_request`` with its histogram observes,
  access-log write, and flight splice) in a tight loop, min-of-repeats
  like ``timeit``.  This is the part a code change can regress, and it
  resolves to fractions of a microsecond.

``telemetry_overhead_ratio = 1 + direct_cost / request_cost`` (1.0
means free, above 1.05 means the tax exceeds 5%) lands in
``benchmarks/results/BENCH_serve_telemetry.json`` and is diffed against
``benchmarks/baselines.json`` by ``make perf-regression``.  An on-flood
also runs to *prove* the instrumented path is live end-to-end (the
``X-Request-Id`` echo and the access log are asserted on) and to report
the end-to-end ratio informationally.  The <1.05 ceiling only *fails*
under ``RPSLYZER_PERF_STRICT``.
"""

import json
import os
import socket
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from conftest import RESULTS_DIR, emit

from repro import api
from repro.obs import MetricsRegistry
from repro.serve import ServeConfig
from repro.serve.core import VerifyService
from repro.serve.daemon import ServeDaemon

STRICT = bool(os.environ.get("RPSLYZER_PERF_STRICT"))
N_QUERIES = 2000
CLIENTS = 8
BASELINE_FLOODS = 3
DIRECT_REPEATS = 7
DIRECT_BATCH = 5000
OVERHEAD_CEILING = 1.05

_metrics: dict[str, float] = {}


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Write the accumulated ratio metrics once the module finishes."""
    yield
    RESULTS_DIR.mkdir(exist_ok=True)
    document = {
        "bench": "serve_telemetry",
        "strict": STRICT,
        "metrics": dict(sorted(_metrics.items())),
    }
    path = RESULTS_DIR / "BENCH_serve_telemetry.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(
        f"\n=== BENCH_serve_telemetry ===\n"
        f"{json.dumps(document['metrics'], indent=2)}"
    )


def _request_bytes(body: bytes) -> bytes:
    return (
        b"POST /verify HTTP/1.1\r\n"
        b"Host: bench\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
    )


def _drive_connection(port: int, requests: list[bytes]) -> tuple[int, int]:
    """One keep-alive connection; returns (200s, X-Request-Id echoes)."""
    ok = echoed = 0
    with socket.create_connection(("127.0.0.1", port), timeout=60) as sock:
        stream = sock.makefile("rb")
        for request in requests:
            sock.sendall(request)
            status_line = stream.readline()
            if status_line.split(b" ", 2)[1] == b"200":
                ok += 1
            length = 0
            while True:
                header = stream.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _, value = header.partition(b":")
                if name.lower() == b"content-length":
                    length = int(value)
                elif name.lower() == b"x-request-id":
                    echoed += 1
            if length:
                stream.read(length)
    return ok, echoed


def _flood(port: int, shards: list[list[bytes]]) -> tuple[float, float, int, int]:
    """Flood the daemon: (cpu_us/req, req/s, 200-count, id-echo-count)."""
    total = sum(len(shard) for shard in shards)
    with ThreadPoolExecutor(max_workers=len(shards)) as pool:
        cpu_start = time.process_time()
        wall_start = time.perf_counter()
        counts = list(
            pool.map(lambda shard: _drive_connection(port, shard), shards)
        )
        wall = time.perf_counter() - wall_start
        cpu = time.process_time() - cpu_start
    oks = sum(ok for ok, _ in counts)
    echoed = sum(e for _, e in counts)
    return cpu / total * 1e6, total / wall, oks, echoed


def _direct_cost_us(service: VerifyService) -> float:
    """Per-request µs of the full production telemetry path, min-of-repeats.

    Exercises exactly what one served request pays: id mint + record
    creation, the four stage marks, and ``_finish_request`` (stage
    histograms, pre-serialized line, access-log write, flight splice).
    """
    best = float("inf")
    for _ in range(DIRECT_REPEATS):
        started = time.process_time()
        for _ in range(DIRECT_BATCH):
            telemetry = service.new_telemetry("http", None)
            telemetry.endpoint = "verify"
            telemetry.mark_submitted()
            telemetry.mark_collected()
            telemetry.mark_admitted()
            telemetry.dispatch_s = 0.0002
            telemetry.execute_s = 0.004
            service._finish_request(telemetry, "ok", verdicts=5)
        best = min(best, (time.process_time() - started) / DIRECT_BATCH)
    return best * 1e6


def test_telemetry_overhead_under_ceiling(world, routes):
    bodies = [
        json.dumps(
            {"prefix": str(entry.prefix), "as_path": list(entry.as_path)}
        ).encode("utf-8")
        for entry in (routes[i % len(routes)] for i in range(N_QUERIES))
    ]
    requests = [_request_bytes(body) for body in bodies]
    shards = [requests[i::CLIENTS] for i in range(CLIENTS)]
    access_dir = Path(tempfile.mkdtemp(prefix="rpslyzer-bench-telemetry-"))
    base = dict(
        host="127.0.0.1",
        http_port=0,
        workers=0,
        queue_size=4096,
        default_deadline=120.0,
        max_deadline=120.0,
        shed_target=0.0,
    )
    on_config = ServeConfig(
        **base,
        telemetry=True,
        flight_events=2048,
        access_log=str(access_dir / "access.jsonl"),
        incident_dir=str(access_dir),
    )
    off_config = ServeConfig(**base, telemetry=False, flight_events=0)

    def flood_once(session, config: ServeConfig):
        with ServeDaemon(session, config).start_in_thread() as handle:
            return _flood(handle.http_port, shards)

    with api.open_session(
        world, registry=MetricsRegistry(), use_cache=False
    ) as session:
        session.warm()
        flood_once(session, off_config)  # warm the flood path
        # Denominator: end-to-end CPU per request, telemetry off.
        baseline_cpus = []
        for _ in range(BASELINE_FLOODS):
            cpu_us, rate, oks, _ = flood_once(session, off_config)
            assert oks == N_QUERIES
            baseline_cpus.append((cpu_us, rate))
        request_cpu_us = min(cpu for cpu, _ in baseline_cpus)
        # Proof the instrumented path is live end-to-end: every response
        # echoes an id and every request reaches the access log.
        on_cpu_us, on_rate, oks, echoed = flood_once(session, on_config)
        assert oks == N_QUERIES
        assert echoed == N_QUERIES
        # Numerator: the telemetry work itself, deterministically.
        service = VerifyService(session, on_config)
        direct_us = _direct_cost_us(service)
        service._access_log.close()

    access_lines = (access_dir / "access.jsonl").read_text().count("\n")
    assert access_lines >= N_QUERIES

    ratio = 1.0 + direct_us / request_cpu_us
    _metrics["telemetry_overhead_ratio"] = round(ratio, 4)
    _metrics["telemetry_direct_us"] = round(direct_us, 3)
    _metrics["serve_request_cpu_us"] = round(request_cpu_us, 1)
    best_rate = max(rate for _, rate in baseline_cpus)
    emit(
        "perf_serve_telemetry",
        f"queries: {N_QUERIES} over HTTP ({CLIENTS} keep-alive connections)\n"
        f"request cost (telemetry off): {request_cpu_us:.1f} us cpu "
        f"(best {best_rate:.0f} req/s over {BASELINE_FLOODS} floods)\n"
        f"telemetry path (ids + stages + access log + flight): "
        f"{direct_us:.2f} us/request\n"
        f"overhead ratio: {ratio:.4f} (ceiling {OVERHEAD_CEILING})\n"
        f"end-to-end on-flood: {on_cpu_us:.1f} us cpu, {on_rate:.0f} req/s "
        f"(informational; flood-vs-flood differencing is noise-bound)",
    )
    assert direct_us > 0 and request_cpu_us > 0
    if STRICT:
        assert ratio <= OVERHEAD_CEILING, (
            f"telemetry costs {(ratio - 1) * 100:.1f}% of a request "
            f"({direct_us:.1f} us of {request_cpu_us:.1f} us; "
            f"ceiling {(OVERHEAD_CEILING - 1) * 100:.0f}%)"
        )
