"""P3 — flat-plane prefix engine vs the legacy dict engine.

Four comparisons over the mid-scale benchmark world:

* **prefix-match microbenchmark** — the engine's mask-pruned hash
  probes (``match_origin``/``match_any``/``match_members``) against the
  legacy ancestor enumeration, over balanced IPv4+IPv6 probe sets and
  the full range-op alphabet (``^-``, ``^+``, ``^n``, ``^n-m``, exact).
  Probes mix the verifier's three real shapes: the origin hop (declared
  exact hit), a transit hop (origin miss), and a perturbed network
  (ancestor miss);
* **route-set op index** — :meth:`PrefixOpIndex.matches` (flat op
  planes) against the preserved dict-walk oracle;
* **warm start** — attaching the format-2 mmap envelope against
  unpickling the whole artifact, measured with a production-scale
  (~100k-prefix) route table spliced into the compiled index;
* **end-to-end verify** — full verification flat engine vs legacy
  engine, the bit-identity gate.

Every comparison hard-asserts identical answers; timing floors only fail
under ``RPSLYZER_PERF_STRICT`` (the perf-regression CI job sets it).  The
measured ratios accumulate into ``benchmarks/results/BENCH_prefix_engine.json``,
which ``scripts/check_perf_regression.py`` diffs against
``benchmarks/baselines.json``.
"""

import dataclasses
import json
import os
import pickle
import random
import time

import pytest
from conftest import RESULTS_DIR, emit

from repro.core.compiled import compile_index, load_index, save_index
from repro.core.parallel import verify_table
from repro.core.prefixtrie import RouteTrieBuilder
from repro.core.query import PrefixOpIndex, QueryEngine
from repro.core.verify import Verifier
from repro.net.prefix import Prefix, RangeOp, RangeOpKind
from repro.obs import get_registry
from repro.stats.verification import VerificationStats

STRICT = bool(os.environ.get("RPSLYZER_PERF_STRICT"))

_metrics: dict[str, float] = {}


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Write the accumulated ratio metrics once the module finishes."""
    yield
    RESULTS_DIR.mkdir(exist_ok=True)
    document = {
        "bench": "prefix_engine",
        "strict": STRICT,
        "metrics": dict(sorted(_metrics.items())),
    }
    path = RESULTS_DIR / "BENCH_prefix_engine.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"\n=== BENCH_prefix_engine ===\n{json.dumps(document['metrics'], indent=2)}")


def _best_of(runs, fn):
    """Min-of-N wall time plus the last result (comparison-friendly)."""
    best = float("inf")
    result = None
    for _ in range(runs):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


_OPS = (
    RangeOp(RangeOpKind.NONE),
    RangeOp(RangeOpKind.MINUS),
    RangeOp(RangeOpKind.PLUS),
    RangeOp(RangeOpKind.EXACT, 24, 24),
    RangeOp(RangeOpKind.RANGE, 20, 28),
)

_PROBES_PER_FAMILY = 2000


def _family_probes(routes, version, count):
    """A balanced probe set for one family, mirroring the verifier's mix.

    For every observed route the verifier checks the origin hop (usually
    a declared exact hit), the transit hops (origin misses — the legacy
    engine rescans every ancestor length), and occasionally prefixes
    with no declared ancestor at all (perturbed network).
    """
    entries = [e for e in routes if e.prefix.version == version]
    flip = 1 << (8 if version == 4 else 80)
    probes = []
    for i in range(count):
        entry = entries[i % len(entries)]
        prefix = entry.prefix
        if i % 3 == 0:
            probes.append((entry.origin, version, prefix.network, prefix.length))
        elif i % 3 == 1:
            probes.append((entry.as_path[0], version, prefix.network, prefix.length))
        else:
            probes.append(
                (entry.origin, version, prefix.network ^ flip, prefix.length)
            )
    return probes


def test_prefix_match_microbenchmark(ir, routes):
    flat = QueryEngine(ir, prefix_engine="trie").routes
    naive = QueryEngine(ir, prefix_engine="naive").routes

    def run(engine, probes):
        answers = []
        for i, (asn, version, net, length) in enumerate(probes):
            op = _OPS[i % len(_OPS)]
            answers.append(engine.match_origin(asn, version, net, length, op))
            answers.append(engine.match_any(version, net, length, op))
            answers.append(
                engine.match_members(
                    frozenset((asn, asn + 1)), version, net, length, op
                )
            )
        return answers

    flat_total = naive_total = 0.0
    report_lines = []
    for version in (4, 6):
        probes = _family_probes(routes, version, _PROBES_PER_FAMILY)
        flat_s, flat_answers = _best_of(3, lambda: run(flat, probes))
        naive_s, naive_answers = _best_of(3, lambda: run(naive, probes))
        assert flat_answers == naive_answers  # the identity gate
        flat_total += flat_s
        naive_total += naive_s
        family_speedup = naive_s / flat_s
        _metrics[f"prefix_match_speedup_v{version}"] = round(family_speedup, 3)
        report_lines.append(
            f"v{version}: legacy {naive_s * 1e3:.2f}ms  flat {flat_s * 1e3:.2f}ms"
            f"  speedup {family_speedup:.2f}x"
        )

    speedup = naive_total / flat_total
    _metrics["prefix_match_speedup"] = round(speedup, 3)
    registry = get_registry()
    registry.gauge("bench_prefix_match_flat_seconds").set(flat_total)
    registry.gauge("bench_prefix_match_naive_seconds").set(naive_total)
    emit(
        "perf_prefix_engine_match",
        f"probes: {_PROBES_PER_FAMILY} per family x3 queries x {len(_OPS)} ops\n"
        + "\n".join(report_lines)
        + f"\ncomposite speedup: {speedup:.2f}x",
    )
    if STRICT:
        assert speedup >= 2.0, f"flat engine only {speedup:.2f}x over legacy"


def test_route_set_op_index_vs_dict_walk(routes):
    rng = random.Random(42)
    index = PrefixOpIndex()
    seen = set()
    for entry in routes:
        if entry.prefix in seen:
            continue
        seen.add(entry.prefix)
        index.add(entry.prefix, _OPS[rng.randrange(len(_OPS))])
    index.freeze()
    by_family = {4: [], 6: []}
    for entry in routes:
        by_family[entry.prefix.version].append(entry.prefix)
    probes = by_family[4][:2000] + by_family[6][:2000]
    overrides = [None, RangeOp(RangeOpKind.PLUS)]

    def run(fn):
        return [
            fn(probe, overrides[i % 2]) for i, probe in enumerate(probes)
        ]

    flat_s, flat_answers = _best_of(3, lambda: run(index.matches))
    naive_s, naive_answers = _best_of(3, lambda: run(index._matches_naive))
    assert flat_answers == naive_answers

    speedup = naive_s / flat_s
    _metrics["op_index_speedup"] = round(speedup, 3)
    emit(
        "perf_prefix_engine_ops",
        f"entries: {len(index)}  probes: {len(probes)}\n"
        f"dict walk: {naive_s:.3f}s\nop planes: {flat_s:.3f}s\n"
        f"speedup: {speedup:.2f}x",
    )
    if STRICT:
        assert speedup >= 1.0, f"op planes slower than dict walk ({speedup:.2f}x)"


_WARM_PREFIXES = 100_000


def _production_scale_trie():
    """A ~100k-prefix route table, the scale real IRR snapshots reach."""
    rng = random.Random(1)
    builder = RouteTrieBuilder()
    for _ in range(_WARM_PREFIXES):
        length = rng.randint(16, 24)
        network = rng.getrandbits(length) << (32 - length)
        builder.add(Prefix(4, network, length), rng.randint(1, 30_000))
    return builder.build()


def test_warm_start_mmap_vs_pickle(ir, tmp_path_factory):
    index = dataclasses.replace(compile_index(ir), route_trie=_production_scale_trie())
    directory = tmp_path_factory.mktemp("envelope")
    path = directory / "index.rpslidx"
    save_index(index, path)
    blob = pickle.dumps(index)

    def attach():
        loaded = load_index(path)
        loaded.close()
        return loaded

    mmap_s, _ = _best_of(5, attach)
    pickle_s, _ = _best_of(5, lambda: pickle.loads(blob))

    artifact_bytes = path.stat().st_size
    size_ratio = artifact_bytes / len(blob)
    speedup = pickle_s / mmap_s
    _metrics["warm_load_speedup"] = round(speedup, 3)
    _metrics["artifact_size_ratio"] = round(size_ratio, 4)
    registry = get_registry()
    registry.gauge("bench_index_mmap_load_seconds").set(mmap_s)
    registry.gauge("bench_index_pickle_load_seconds").set(pickle_s)
    emit(
        "perf_prefix_engine_warm_start",
        f"route table: {_WARM_PREFIXES} prefixes\n"
        f"artifact: {artifact_bytes} bytes (pickle: {len(blob)} bytes, "
        f"ratio {size_ratio:.3f})\n"
        f"full unpickle: {pickle_s * 1e3:.2f}ms\nmmap attach: {mmap_s * 1e3:.2f}ms\n"
        f"speedup: {speedup:.2f}x",
    )
    if STRICT:
        assert speedup >= 2.0, f"mmap attach only {speedup:.2f}x over unpickle"


def test_end_to_end_verify_identical_and_recorded(ir, world, routes, monkeypatch):
    sample = routes[:3000]

    def run_legacy():
        monkeypatch.setenv("RPSLYZER_PREFIX_ENGINE", "naive")
        try:
            verifier = Verifier(ir, world.topology)
            stats = VerificationStats()
            for entry in sample:
                stats.add_report(verifier.verify_entry(entry))
            return stats
        finally:
            monkeypatch.delenv("RPSLYZER_PREFIX_ENGINE")

    index = compile_index(ir)
    legacy_s, legacy = _best_of(1, run_legacy)
    flat_s, flat = _best_of(
        2,
        lambda: verify_table(ir, world.topology, sample, processes=1, index=index),
    )
    # Bit-identity, always enforced.
    assert flat.summary() == legacy.summary()
    assert flat.hop_totals == legacy.hop_totals
    assert flat.route_single_status == legacy.route_single_status

    speedup = legacy_s / flat_s
    _metrics["e2e_verify_speedup"] = round(speedup, 3)
    emit(
        "perf_prefix_engine_e2e",
        f"routes: {len(sample)}\nlegacy engine: {legacy_s:.3f}s\n"
        f"flat engine (compiled): {flat_s:.3f}s\nspeedup: {speedup:.2f}x",
    )
