"""F4 — Figure 4: verification status across all hops of each route."""

from conftest import emit

from repro.core.status import VerifyStatus


def render_fig4(verification) -> str:
    total = verification.routes_verified()
    lines = [f"routes: {total} (ignored: {dict(verification.routes_ignored)})"]
    uniform = verification.single_status_route_fractions()
    lines.append(f"single-status routes: {sum(uniform.values()):.1%}")
    for status, fraction in sorted(uniform.items()):
        lines.append(f"  all-{status.label:12}: {fraction:.3%}")
    lines.append("distinct statuses per route:")
    for count, routes in sorted(verification.route_status_count_hist.items()):
        lines.append(f"  {count} statuses: {routes:>8} ({routes / total:.1%})")
    lines.append("hop-level status fractions:")
    hop_total = sum(verification.hop_totals.values())
    for status in VerifyStatus:
        lines.append(
            f"  {status.label:12}: {verification.hop_totals.get(status, 0) / hop_total:.3f}"
        )
    return "\n".join(lines)


def test_fig4(benchmark, verification):
    text = benchmark(render_fig4, verification)
    emit("fig4_per_route", text)

    # Paper: only 6.6% of routes have one status across all hops; most mix
    # two or three. Loose banding for the synthetic world:
    uniform_fraction = sum(verification.single_status_route_fractions().values())
    assert uniform_fraction < 0.5
    histogram = verification.route_status_count_hist
    mixed = sum(count for statuses, count in histogram.items() if statuses >= 2)
    assert mixed > histogram.get(1, 0)
    # The paper ignores a small trickle of AS_SET and single-AS routes.
    total = verification.routes_total
    ignored = sum(verification.routes_ignored.values())
    assert ignored / total < 0.02
