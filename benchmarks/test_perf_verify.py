"""P2 — Section 5 performance: route verification throughput.

The paper verifies 779.3 M routes in 2h49m (~77k routes/s on 128 Rust
threads).  We measure single-thread Python routes/s on a route sample;
the claim that carries over is the *feasibility* of bulk verification —
per-hop checks are cache-friendly and amortize to microseconds.
"""

from conftest import emit


def verify_sample(verifier, sample):
    verified = 0
    for entry in sample:
        report = verifier.verify_entry(entry)
        verified += report.ignored is None
    return verified


def test_verify_throughput(benchmark, verifier, routes):
    sample = routes[:: max(1, len(routes) // 1000)][:1000]
    benchmark(verify_sample, verifier, sample)
    seconds = benchmark.stats.stats.mean
    rate = len(sample) / seconds
    hops = sum(len(entry.as_path) for entry in sample)
    emit(
        "perf_verify",
        f"sample routes: {len(sample)}\nmean time: {seconds:.3f}s\n"
        f"throughput: {rate:.0f} routes/s (~{hops / seconds:.0f} hop-checks/s)",
    )
    assert rate > 50  # sanity floor for single-thread Python


def test_verify_throughput_parallel(benchmark, ir, world, routes):
    from repro.core.parallel import verify_table

    sample = routes[:6000]

    def run():
        return verify_table(
            ir, world.topology, sample, processes=4, chunk_size=1000
        )

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    seconds = benchmark.stats.stats.mean
    emit(
        "perf_verify_parallel",
        f"sample routes: {len(sample)} (4 workers)\nmean time: {seconds:.3f}s\n"
        f"throughput: {len(sample) / seconds:.0f} routes/s",
    )
    assert stats.routes_total == len(sample)


def test_verify_single_route_latency(benchmark, verifier, routes):
    entry = max(routes, key=lambda route: len(route.as_path))
    report = benchmark(verifier.verify_entry, entry)
    emit(
        "perf_verify_latency",
        f"longest path: {len(entry.as_path)} hops\n"
        f"mean latency: {benchmark.stats.stats.mean * 1e6:.1f} µs",
    )
    assert report.hops
