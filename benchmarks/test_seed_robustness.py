"""R1 — robustness: the paper-shape claims hold across generator seeds.

A reproduction whose shapes only hold for one random world would be
fragile; this benchmark regenerates three small worlds from different
seeds and asserts the headline orderings on each.
"""

from collections import Counter

from conftest import emit

from repro.bgp.routegen import collector_routes
from repro.core.status import SpecialCase, VerifyStatus
from repro.core.verify import Verifier
from repro.irr.synth import SynthConfig, build_world
from repro.stats.verification import VerificationStats

SEEDS = (101, 202, 303)


def world_config(seed: int) -> SynthConfig:
    return SynthConfig(
        seed=seed, n_tier1=4, n_tier2=15, n_tier3=50, n_stub=160,
        n_collectors=2, peers_per_collector=8,
    )


def run_seed(seed: int) -> VerificationStats:
    world = build_world(world_config(seed))
    ir = world.merged_ir()
    verifier = Verifier(ir, world.topology)
    stats = VerificationStats()
    for entry in collector_routes(world.topology, world.announced, world.collectors):
        stats.add_report(verifier.verify_entry(entry))
    return stats


def test_shapes_hold_across_seeds(benchmark):
    results = {seed: run_seed(seed) for seed in SEEDS[:-1]}
    results[SEEDS[-1]] = benchmark.pedantic(
        run_seed, args=(SEEDS[-1],), rounds=1, iterations=1
    )

    lines = [f"{'seed':>6} {'verified':>9} {'unrec':>7} {'special':>8} {'unverified':>11}"]
    for seed, stats in results.items():
        total = sum(stats.hop_totals.values())
        fractions = {
            status: stats.hop_totals.get(status, 0) / total for status in VerifyStatus
        }
        lines.append(
            f"{seed:>6} {fractions[VerifyStatus.VERIFIED]:>9.3f} "
            f"{fractions[VerifyStatus.UNRECORDED]:>7.3f} "
            f"{fractions[VerifyStatus.RELAXED] + fractions[VerifyStatus.SAFELISTED]:>8.3f} "
            f"{fractions[VerifyStatus.UNVERIFIED]:>11.3f}"
        )

        # The paper's orderings, per seed:
        assert fractions[VerifyStatus.UNRECORDED] == max(fractions.values())
        assert fractions[VerifyStatus.VERIFIED] > fractions[VerifyStatus.UNVERIFIED]
        assert fractions[VerifyStatus.SKIP] < 0.05
        breakdown = stats.special_breakdown()
        if breakdown:
            assert breakdown.get(SpecialCase.UPHILL, 0) == max(breakdown.values())
        # most unverified hops fail on the undeclared peering
        if stats.unverified_hops:
            assert stats.unverified_peering_only / stats.unverified_hops > 0.5

    emit("seed_robustness", "\n".join(lines))
