"""S4a — Section 4 text: route-object multiplicity statistics."""

from conftest import emit

from repro.stats.routes import route_object_stats


def render(ir) -> str:
    stats = route_object_stats(ir)
    return "\n".join(f"{key:40}: {value}" for key, value in stats.as_dict().items())


def test_route_object_stats(benchmark, ir, world):
    text = benchmark(render, ir)
    emit("sec4_route_objects", text)

    stats = route_object_stats(ir)
    announced = sum(len(prefixes) for prefixes in world.announced.values())
    # Paper: ~3× more registered prefixes than announced (stale objects,
    # pre-registrations). The generator injects a >1 inflation factor.
    assert stats.unique_prefixes > announced * 0.9
    # Multi-origin and multi-maintainer pathologies exist.
    assert stats.prefixes_with_multiple_objects > 0
    assert stats.prefixes_with_multiple_origins > 0
    assert stats.prefixes_with_multiple_maintainers > 0
    # Multi-origin prefixes are a minority of multi-object prefixes.
    assert stats.prefixes_with_multiple_origins <= stats.prefixes_with_multiple_objects
    assert stats.unique_prefix_origin_pairs <= stats.total_objects
