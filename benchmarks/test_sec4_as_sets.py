"""S4b — Section 4 text: as-set structure statistics."""

from conftest import emit

from repro.stats.as_sets import as_set_stats


def render(ir) -> str:
    stats = as_set_stats(ir, huge_threshold=50, deep_threshold=3)
    return "\n".join(f"{key:20}: {value}" for key, value in stats.as_dict().items())


def test_as_set_stats(benchmark, ir):
    text = benchmark(render, ir)
    emit("sec4_as_sets", text)

    stats = as_set_stats(ir, huge_threshold=50, deep_threshold=3)
    # Paper shape: empty (14.5%) and singleton (32.7%) sets are common;
    # a quarter of sets are recursive; some loop; few are huge.
    assert stats.empty > 0
    assert stats.single_member > 0
    assert stats.recursive > 0
    assert stats.looping > 0
    assert stats.looping <= stats.recursive
    assert stats.with_any_member >= 1  # the injected ANY-member sets
    assert 0 < stats.recursive < stats.total
