"""F2 — Figure 2: verification status per AS."""

from conftest import emit

from repro.core.status import VerifyStatus


def render_fig2(verification) -> str:
    singles = verification.ases_with_single_status()
    total = len(verification.per_as)
    lines = [f"ASes observed: {total}"]
    lines.append(
        f"ASes with one uniform status: {sum(singles.values())} "
        f"({sum(singles.values()) / total:.1%})"
    )
    for status in VerifyStatus:
        lines.append(f"  all-{status.label:12}: {singles.get(status, 0):>6}")
    # stacked-bar data: average status mix across ASes
    lines.append("mean per-AS status fractions:")
    sums = {status: 0.0 for status in VerifyStatus}
    for mix in verification.per_as.values():
        for status, fraction in mix.fractions().items():
            sums[status] += fraction
    for status in VerifyStatus:
        lines.append(f"  {status.label:12}: {sums[status] / total:.3f}")
    return "\n".join(lines)


def test_fig2(benchmark, verification):
    text = benchmark(render_fig2, verification)
    emit("fig2_per_as", text)

    total = len(verification.per_as)
    singles = verification.ases_with_single_status()
    # Paper: 74.4% of ASes have a single uniform status.
    assert sum(singles.values()) / total > 0.4
    # Unrecorded-only ASes are the biggest uniform group (paper: 51.6%).
    assert singles.get(VerifyStatus.UNRECORDED, 0) == max(singles.values())
    # Some ASes are fully verified (paper: 14.2%).
    assert singles.get(VerifyStatus.VERIFIED, 0) > 0
