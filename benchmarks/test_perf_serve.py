"""P? — serve throughput: the supervised worker pool vs in-process.

The pool exists for isolation first (a crashed evaluation must not take
the daemon down), but it must not *cost* throughput: with 4 workers the
warm pool has to at least match the single-executor-thread baseline.

The flood drives :meth:`VerifyService.submit` directly rather than going
through HTTP — the front-end is identical (and asyncio-serialized) in
both configurations, so routing the comparison through it would measure
connection handling, not the execution core the pool parallelizes.
Batches amortize the pipe/pickle cost: one coalesced batch ships as a
single frame and verifies on a truly parallel process, while the
baseline executes every batch GIL-serialized on one executor thread.

The ≥-baseline floor only fails under ``RPSLYZER_PERF_STRICT`` — and
only when the machine actually has cores for the workers to run on
(``workers + 1`` at minimum): on a single-core box the pool's processes
all time-share one CPU with the parent, so there is no parallelism to
harvest and the floor is physically unreachable.  The measured rates
and the core count are always emitted to ``benchmarks/results/`` for
auditing.
"""

import asyncio
import os
import time

from conftest import emit

from repro import api
from repro.obs import MetricsRegistry
from repro.serve import Query, ServeConfig, ServeDaemon

STRICT = bool(os.environ.get("RPSLYZER_PERF_STRICT"))
N_QUERIES = 4000
IN_FLIGHT = 512
POOL_WORKERS = 4
CORES = len(os.sched_getaffinity(0))


def _throughput(session, workers: int, queries: list[Query]) -> float:
    """Requests/s for one flood against a fresh service."""
    from repro.serve.core import VerifyService

    async def flood() -> float:
        service = VerifyService(
            session,
            ServeConfig(
                workers=workers,
                queue_size=1024,
                default_deadline=120.0,
                max_deadline=120.0,
                shed_target=0.0,
            ),
        )
        await service.start()
        try:
            await service.submit(queries[0])  # warm the path
            semaphore = asyncio.Semaphore(IN_FLIGHT)

            async def one(query: Query) -> dict:
                async with semaphore:
                    return await service.submit(query)

            started = time.perf_counter()
            results = await asyncio.gather(*(one(query) for query in queries))
            elapsed = time.perf_counter() - started
        finally:
            await service.stop()
        assert len(results) == len(queries)
        assert all(isinstance(result, dict) for result in results)
        return len(queries) / elapsed

    return asyncio.run(flood())


def test_pool_throughput_at_least_single_thread(world, routes):
    sample = [routes[i % len(routes)] for i in range(N_QUERIES)]
    queries = [
        Query(
            kind="verify",
            prefix=str(entry.prefix),
            as_path=tuple(entry.as_path),
        )
        for entry in sample
    ]
    with api.open_session(
        world, registry=MetricsRegistry(), use_cache=False
    ) as session:
        session.warm()
        baseline = _throughput(session, 0, queries)
        pooled = _throughput(session, POOL_WORKERS, queries)
    emit(
        "perf_serve_pool",
        f"queries: {N_QUERIES} ({IN_FLIGHT} in flight, {CORES} cores)\n"
        f"single-thread: {baseline:.0f} req/s\n"
        f"pool ({POOL_WORKERS} workers): {pooled:.0f} req/s\n"
        f"speedup: {pooled / baseline:.2f}x",
    )
    assert baseline > 0 and pooled > 0
    if STRICT and CORES > POOL_WORKERS:
        assert pooled >= baseline


# The daemon-level flag wiring (``rpslyzer serve --workers``) is covered
# functionally in tests/; this module only measures the execution core.
assert ServeDaemon is not None
