"""A3 — Ablation: single-IRR vs aggregated multi-IRR verification.

Section 4: "to minimize the impact of inaccuracies in the RPSL, our
analyses consider aggregate data from all major IRRs."  This ablation
quantifies that choice: verifying against RIPE alone vs the full
priority-merged registry.
"""

from collections import Counter

from conftest import emit

from repro.core.status import VerifyStatus
from repro.core.verify import Verifier


def verify_sample(verifier, sample) -> Counter:
    counts: Counter = Counter()
    for entry in sample:
        for hop in verifier.verify_entry(entry).hops:
            counts[hop.status] += 1
    return counts


def test_single_irr_vs_merged(benchmark, world, registry, ir, routes):
    sample = routes[:3000]
    merged_counts = verify_sample(Verifier(ir, world.topology), sample)

    ripe_only = registry.sources["RIPE"].ir

    def run_ripe_only():
        return verify_sample(Verifier(ripe_only, world.topology), sample)

    ripe_counts = benchmark.pedantic(run_ripe_only, rounds=3, iterations=1)

    lines = [f"{'status':12} {'RIPE-only':>10} {'merged':>10}"]
    for status in VerifyStatus:
        lines.append(
            f"{status.label:12} {ripe_counts.get(status, 0):>10} "
            f"{merged_counts.get(status, 0):>10}"
        )
    emit("ablation_merge", "\n".join(lines))

    # Aggregating all IRRs strictly reduces missing information and
    # increases strict matches — the reason the paper merges.
    assert merged_counts[VerifyStatus.UNRECORDED] < ripe_counts[VerifyStatus.UNRECORDED]
    assert merged_counts[VerifyStatus.VERIFIED] > ripe_counts[VerifyStatus.VERIFIED]
    assert sum(merged_counts.values()) == sum(ripe_counts.values())
