"""P3 — update-stream verification throughput.

The paper's claim: throughput high enough to process collector update
feeds.  Incremental verification rides the hop cache — re-announcements
of known ⟨prefix, path⟩ pairs are near-free.
"""

from conftest import emit

from repro.bgp.updates import StreamVerifier, synthesize_updates
from repro.core.verify import Verifier


def test_update_stream_throughput(benchmark, ir, world, routes):
    updates = synthesize_updates(
        routes[:8000], flap_probability=0.3, path_change_probability=0.1
    )
    verifier = Verifier(ir, world.topology)
    # Warm the cache as a long-running daemon would be.
    StreamVerifier(verifier).run(updates)

    def run():
        return StreamVerifier(verifier).run(updates)

    stats = benchmark(run)
    seconds = benchmark.stats.stats.mean
    rate = (stats.announcements + stats.withdrawals) / seconds
    emit(
        "perf_updates",
        f"updates: {stats.announcements} announces + {stats.withdrawals} withdraws\n"
        f"mean time: {seconds:.3f}s\nthroughput: {rate:.0f} updates/s (warm cache)",
    )
    assert rate > 1000
    assert stats.rib_size >= 0
