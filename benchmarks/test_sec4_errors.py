"""S4c — Section 4 text: the RPSL error census."""

from conftest import emit

from repro.stats.usage import error_census


def render(registry) -> str:
    census = error_census(registry.all_errors())
    return "\n".join(f"{key:24}: {value}" for key, value in census.items())


def test_error_census(benchmark, registry, ir):
    text = benchmark(render, registry)
    emit("sec4_errors", text)

    census = error_census(registry.all_errors())
    counts = ir.counts()
    total_rules = counts["import"] + counts["export"]
    # Paper: 663 syntax errors against 822k rules — errors are rare but
    # nonzero; the reserved AS-ANY set is flagged.
    assert census["syntax"] > 0
    assert census["syntax"] < total_rules * 0.05
    assert census["reserved-name"] >= 1  # sets with literal ANY members
