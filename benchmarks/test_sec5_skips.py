"""S5a — Section 5: rules skipped, RPSLyzer vs a BGPq4-class tool.

The paper reports RPSLyzer skips 114 of 822,207 rules (~0.01%) while
BGPq4 cannot handle 21,463 (~2.6%) — two orders of magnitude apart.
"""

from conftest import emit

from repro.baseline.bgpq4 import bgpq4_skip_census
from repro.core.verify import rule_skip_census


def render(ir) -> str:
    ours = rule_skip_census(ir)
    theirs = bgpq4_skip_census(ir)
    lines = [
        f"total rules          : {ours['total']}",
        f"RPSLyzer skipped     : {ours['skipped']} "
        f"({ours['skipped'] / ours['total']:.3%})",
        f"  community filters  : {ours.get('community-filter', 0)}",
        f"  regex ASN ranges   : {ours.get('regex-asn-range', 0)}",
        f"  regex ~ operators  : {ours.get('regex-same-pattern', 0)}",
        f"  unparsed           : {ours.get('unparsed', 0)}",
        f"BGPq4 skipped        : {theirs['skipped']} "
        f"({theirs['skipped'] / theirs['total']:.3%})",
    ]
    return "\n".join(lines)


def test_skip_comparison(benchmark, ir):
    text = benchmark(render, ir)
    emit("sec5_skips", text)

    ours = rule_skip_census(ir)
    theirs = bgpq4_skip_census(ir)
    assert ours["total"] == theirs["total"]
    # RPSLyzer handles strictly more rules than the BGPq4 envelope, by a
    # wide margin (paper: 114 vs 21,463 — two orders of magnitude).
    assert ours["skipped"] < theirs["skipped"]
    assert ours["skipped"] / ours["total"] < 0.02
    assert theirs["skipped"] >= 3 * max(ours["skipped"], 1)
