"""P2 — compile-once verification index: cold vs warm, 1 vs N processes.

Three comparisons, all over the same mid-scale world:

* **compile cold vs cache warm** — the first :func:`get_or_compile` pays
  the compilation pass and populates the digest-keyed disk cache; the
  second run loads the artifact instead;
* **serial: lazy vs compiled** — one verifier deriving its memo caches on
  demand against one adopting the precompiled index;
* **multi-process warm vs serial lazy** — the headline: workers sharing
  one prebuilt artifact against the single-process lazy baseline.

Every comparison hard-asserts *identical* ``VerificationStats`` between
the paths — that differential check is what the CI perf-smoke job gates
on.  Timing assertions (warm no slower than lazy, multi-process speedup)
only fail when ``RPSLYZER_PERF_STRICT`` is set, so a loaded CI machine
cannot flake the build on noise.  The measured figures are recorded as
gauges and land in the emitted run manifest either way.
"""

import os
import time

from conftest import emit

from repro.core.compiled import compile_index, get_or_compile, ir_digest
from repro.core.parallel import verify_table
from repro.core.verify import Verifier
from repro.obs import get_registry

STRICT = bool(os.environ.get("RPSLYZER_PERF_STRICT"))


def _best_of(runs, fn):
    """Min-of-N wall time plus the last result (comparison-friendly)."""
    best = float("inf")
    result = None
    for _ in range(runs):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _verify_lazy_serial(ir, world, sample):
    verifier = Verifier(ir, world.topology)  # cold caches, derived on demand
    from repro.stats.verification import VerificationStats

    stats = VerificationStats()
    for entry in sample:
        stats.add_report(verifier.verify_entry(entry))
    return stats


def test_cold_compile_vs_warm_cache(ir, tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("index-cache")
    digest = ir_digest(ir)

    cold_s, index = _best_of(
        1, lambda: get_or_compile(ir, digest=digest, cache_dir=cache_dir)
    )
    warm_s, warmed = _best_of(
        3, lambda: get_or_compile(ir, digest=digest, cache_dir=cache_dir)
    )
    assert warmed.stats() == index.stats()

    registry = get_registry()
    registry.gauge("bench_index_cold_seconds").set(cold_s)
    registry.gauge("bench_index_warm_seconds").set(warm_s)
    emit(
        "perf_compiled_index_cache",
        f"cold compile+save: {cold_s:.3f}s\nwarm cache load: {warm_s:.3f}s\n"
        f"cold/warm ratio: {cold_s / warm_s:.1f}x\n"
        f"tables: {index.stats()}",
    )
    if STRICT:
        assert warm_s <= cold_s


def test_serial_compiled_no_slower_than_lazy(ir, world, routes):
    sample = routes[:2000]
    index = compile_index(ir)

    lazy_s, lazy = _best_of(2, lambda: _verify_lazy_serial(ir, world, sample))
    compiled_s, compiled = _best_of(
        2,
        lambda: verify_table(ir, world.topology, sample, processes=1, index=index),
    )
    assert compiled.summary() == lazy.summary()
    assert compiled.hop_totals == lazy.hop_totals

    registry = get_registry()
    registry.gauge("bench_verify_lazy_serial_seconds").set(lazy_s)
    registry.gauge("bench_verify_compiled_serial_seconds").set(compiled_s)
    emit(
        "perf_compiled_index_serial",
        f"sample routes: {len(sample)}\nlazy serial: {lazy_s:.3f}s\n"
        f"compiled serial: {compiled_s:.3f}s\n"
        f"speedup: {lazy_s / compiled_s:.2f}x",
    )
    if STRICT:
        # "No slower" with headroom for scheduler noise.
        assert compiled_s <= lazy_s * 1.10


def test_multiprocess_warm_beats_serial_lazy(ir, world, routes):
    processes = min(4, os.cpu_count() or 1)
    index = compile_index(ir)

    lazy_s, lazy = _best_of(1, lambda: _verify_lazy_serial(ir, world, routes))
    warm_s, warm = _best_of(
        2,
        lambda: verify_table(
            ir,
            world.topology,
            routes,
            processes=processes,
            chunk_size=max(200, len(routes) // (processes * 4)),
            index=index,
        ),
    )
    # The differential gate: identical aggregates, always enforced.
    assert warm.summary() == lazy.summary()
    assert warm.hop_totals == lazy.hop_totals
    assert warm.route_single_status == lazy.route_single_status

    speedup = lazy_s / warm_s
    registry = get_registry()
    registry.gauge("bench_verify_lazy_full_seconds").set(lazy_s)
    registry.gauge("bench_verify_warm_parallel_seconds").set(warm_s)
    registry.gauge("bench_verify_warm_parallel_speedup").set(speedup)
    emit(
        "perf_compiled_index_parallel",
        f"routes: {len(routes)} ({processes} workers, warm index)\n"
        f"lazy serial: {lazy_s:.3f}s\nwarm parallel: {warm_s:.3f}s\n"
        f"speedup: {speedup:.2f}x",
    )
    if STRICT:
        # The 1.5x floor needs actual cores; a single-CPU box can only
        # show that the warm path is not slower.
        assert speedup >= (1.5 if processes > 1 else 0.90)
