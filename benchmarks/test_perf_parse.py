"""P1 — Section 3 performance: parse all 13 IRR dumps and export the IR.

The paper parses 6.9 GiB in under five minutes on an Apple M1 (Rust); we
report single-thread Python throughput on the synthetic dumps — the shape
claim is that parsing is fast enough to ingest full dumps routinely.
"""

from conftest import emit

from repro.ir.json_io import dumps_ir
from repro.irr.dump import parse_dump_text


def parse_all(dumps: dict[str, str]):
    total = 0
    for name, text in dumps.items():
        ir, errors = parse_dump_text(text, name)
        total += ir.counts()["aut-num"]
    return total


def test_parse_throughput(benchmark, world):
    total_bytes = sum(len(text) for text in world.irr_dumps.values())
    benchmark(parse_all, world.irr_dumps)
    seconds = benchmark.stats.stats.mean
    throughput = total_bytes / seconds / (1024 * 1024)
    emit(
        "perf_parse",
        f"dump bytes: {total_bytes}\nmean parse time: {seconds:.3f}s\n"
        f"throughput: {throughput:.2f} MiB/s",
    )
    assert throughput > 0.2  # sanity floor: not pathologically slow


def test_ir_export_time(benchmark, ir):
    text = benchmark(dumps_ir, ir)
    emit(
        "perf_ir_export",
        f"IR JSON size: {len(text)} bytes\nmean export time: "
        f"{benchmark.stats.stats.mean:.3f}s",
    )
    assert len(text) > 1000
