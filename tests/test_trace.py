"""Tests for decision-provenance tracing (repro.obs.trace).

The load-bearing guarantees under test:

* tracing never changes what verification computes (identical stats with
  tracing on and off, serial and parallel);
* serial, parallel, and parallel-with-a-killed-worker runs canonicalize
  to the same events (content-keyed sampling + spill-file dedup);
* every route with an unverified hop is traced (tail sampling);
* ``rpslyzer explain`` names the aut-num rule and filter term that
  decided a verdict.
"""

import json

import pytest

from repro import api
from repro.chaos.faults import KillWorkerChunk, RaiseOnChunk
from repro.cli import main
from repro.core.parallel import verify_table
from repro.core.verify import Verifier
from repro.obs.trace import (
    NULL_TRACER,
    TraceConfig,
    Tracer,
    canonical_events,
    get_tracer,
    read_trace_events,
    route_trace_id,
    summarize_events,
    use_tracer,
)

# A low sample rate so head sampling actually keeps routes on the tiny
# world, and a non-default seed so the seed provably reaches the ids.
TRACE_CONFIG = TraceConfig(sample_rate=7, seed=1)


def _traced_run(ir, world, routes, **kwargs):
    with use_tracer(Tracer(TRACE_CONFIG)) as tracer:
        stats = verify_table(ir, world.topology, routes, **kwargs)
    return stats, tracer


def _chunk_size(routes):
    return max(1, len(routes) // 6)


@pytest.fixture(scope="module")
def serial_traced(tiny_ir, tiny_world, tiny_routes):
    return _traced_run(tiny_ir, tiny_world, tiny_routes, processes=1)


@pytest.fixture(scope="module")
def untraced(tiny_ir, tiny_world, tiny_routes):
    return verify_table(tiny_ir, tiny_world.topology, tiny_routes, processes=1)


class TestSampling:
    def test_trace_id_is_content_keyed_and_seeded(self, tiny_routes):
        entry = tiny_routes[0]
        trace_id = route_trace_id(entry, seed=1)
        assert trace_id == route_trace_id(entry, seed=1)
        assert len(trace_id) == 16
        int(trace_id, 16)  # hex
        assert trace_id != route_trace_id(entry, seed=2)
        assert trace_id != route_trace_id(tiny_routes[1], seed=1)

    def test_head_decision_matches_trace_id(self, tiny_routes):
        tracer = Tracer(TRACE_CONFIG)
        for entry in tiny_routes[:50]:
            trace = tracer.route(entry)
            expected = (
                int(route_trace_id(entry, TRACE_CONFIG.seed), 16)
                % TRACE_CONFIG.sample_rate
                == 0
            )
            # Tail sampling is configured, so a buffer comes back either
            # way; only the head flag differs.
            assert trace is not None
            assert trace.head is expected

    def test_sample_rate_one_traces_every_route(self, tiny_routes):
        tracer = Tracer(TraceConfig(sample_rate=1))
        assert all(tracer.route(entry).head for entry in tiny_routes[:20])

    def test_no_head_no_statuses_skips_route(self, tiny_routes):
        tracer = Tracer(
            TraceConfig(sample_rate=10**9, trace_statuses=frozenset())
        )
        assert all(tracer.route(entry) is None for entry in tiny_routes[:20])

    def test_null_tracer_is_default_and_inert(self, tiny_routes):
        assert get_tracer() is NULL_TRACER
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.route(tiny_routes[0]) is None
        assert NULL_TRACER.events == []

    def test_tail_sampling_keeps_only_matching_verdicts(
        self, tiny_ir, tiny_world, tiny_routes
    ):
        config = TraceConfig(sample_rate=10**9, trace_statuses=frozenset({"unverified"}))
        with use_tracer(Tracer(config)) as tracer:
            verify_table(tiny_ir, tiny_world.topology, tiny_routes, processes=1)
        route_events = [e for e in tracer.events if e["event"] == "route"]
        assert route_events
        assert all(e["sampled"] == "verdict" for e in route_events)
        assert all("unverified" in e["verdicts"] for e in route_events)


class TestDifferential:
    def test_tracing_leaves_verification_output_identical(
        self, serial_traced, untraced
    ):
        traced_stats, _ = serial_traced
        assert traced_stats.summary() == untraced.summary()
        assert traced_stats.hop_totals == untraced.hop_totals

    def test_parallel_canonicalizes_like_serial(
        self, serial_traced, tiny_ir, tiny_world, tiny_routes
    ):
        serial_stats, serial_tracer = serial_traced
        parallel_stats, parallel_tracer = _traced_run(
            tiny_ir,
            tiny_world,
            tiny_routes,
            processes=2,
            chunk_size=_chunk_size(tiny_routes),
        )
        assert parallel_stats.summary() == serial_stats.summary()
        assert canonical_events(parallel_tracer.events) == canonical_events(
            serial_tracer.events
        )
        # The parallel run's events carry worker attribution.
        summary = summarize_events(parallel_tracer.events)
        assert summary["workers"] >= 1

    def test_survives_worker_kill(
        self, serial_traced, tiny_ir, tiny_world, tiny_routes
    ):
        serial_stats, serial_tracer = serial_traced
        chaos_stats, chaos_tracer = _traced_run(
            tiny_ir,
            tiny_world,
            tiny_routes,
            processes=2,
            chunk_size=_chunk_size(tiny_routes),
            fault_hook=KillWorkerChunk(1),
        )
        # Stats match up to the degradation account of the injected kill.
        expected = serial_stats.summary()
        observed = chaos_stats.summary()
        expected.pop("degradation")
        observed.pop("degradation")
        assert observed == expected
        assert len(chaos_stats.degradation) >= 1
        assert canonical_events(chaos_tracer.events) == canonical_events(
            serial_tracer.events
        )

    def test_unverified_routes_always_traced(self, tiny_ir, tiny_world, tiny_routes):
        unverified: set[str] = set()

        def note(report) -> None:
            if any(hop.status.label == "unverified" for hop in report.hops):
                unverified.add(route_trace_id(report.entry, TRACE_CONFIG.seed))

        with use_tracer(Tracer(TRACE_CONFIG)) as tracer:
            verify_table(
                tiny_ir, tiny_world.topology, tiny_routes, processes=1, on_report=note
            )
        traced = {e["trace"] for e in tracer.events if e["event"] == "route"}
        assert unverified  # the tiny world does produce unverified hops
        assert unverified <= traced


class TestSpillAndMerge:
    def test_sink_spills_line_buffered_jsonl(
        self, tmp_path, tiny_ir, tiny_world, tiny_routes
    ):
        path = tmp_path / "spill.jsonl"
        tracer = Tracer(TRACE_CONFIG, sink=path, worker_id=1234)
        try:
            with use_tracer(tracer):
                verify_table(
                    tiny_ir, tiny_world.topology, tiny_routes[:300], processes=1
                )
        finally:
            tracer.close()
        assert tracer.events == []  # stream mode keeps nothing in memory
        events = read_trace_events(path)
        assert len(events) == tracer.emitted > 0
        assert all(event["worker"] == 1234 for event in events)

    def test_reader_tolerates_truncated_and_garbage_lines(self, tmp_path):
        first = {"event": "route", "trace": "00" * 8, "sampled": "head"}
        second = {"event": "hop", "trace": "00" * 8, "seq": 0, "status": "verified"}
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps(first)
            + "\n\nnot json at all\n"
            + json.dumps(second)
            + "\n"
            + '{"event":"hop","trace":"dead',  # SIGKILL mid-write
            encoding="utf-8",
        )
        assert read_trace_events(path) == [first, second]

    def test_merge_events_dedups(self, serial_traced):
        _, tracer = serial_traced
        fresh = Tracer(TRACE_CONFIG)
        assert fresh.merge_events(tracer.events) == len(tracer.events)
        assert fresh.merge_events(tracer.events) == 0
        assert fresh.emitted == len(tracer.events)

    def test_max_events_cap_counts_drops(self, tiny_ir, tiny_world, tiny_routes):
        sample = tiny_routes[:50]
        capped = Tracer(TraceConfig(sample_rate=1, max_events=5))
        with use_tracer(capped):
            stats = verify_table(tiny_ir, tiny_world.topology, sample, processes=1)
        assert capped.emitted == 5
        assert capped.dropped > 0
        baseline = verify_table(tiny_ir, tiny_world.topology, sample, processes=1)
        assert stats.summary() == baseline.summary()

    def test_write_read_round_trip(self, tmp_path, serial_traced):
        _, tracer = serial_traced
        path = tmp_path / "out.jsonl"
        tracer.write(path)
        assert canonical_events(read_trace_events(path)) == canonical_events(
            tracer.events
        )

    def test_stats_shape(self, serial_traced):
        _, tracer = serial_traced
        stats = tracer.stats()
        assert stats["events"] == tracer.emitted
        assert stats["sample_rate"] == TRACE_CONFIG.sample_rate
        assert stats["seed"] == TRACE_CONFIG.seed
        assert set(stats["sampled"]) == {"head", "verdict"}


@pytest.fixture(scope="module")
def verified_entry(tiny_ir, tiny_world, tiny_routes):
    """A route whose verification yields at least one VERIFIED hop."""
    verifier = Verifier(tiny_ir, tiny_world.topology)
    for entry in tiny_routes:
        report = verifier.verify_entry(entry)
        if report.ignored is None and any(
            hop.status.label == "verified" for hop in report.hops
        ):
            return entry
    pytest.fail("tiny world produced no verified hop")


class TestExplain:
    def test_explain_names_rule_and_filter_term(
        self, tiny_ir, tiny_world, verified_entry
    ):
        with api.Session(tiny_ir, tiny_world.topology) as session:
            report, events = session.explain(
                str(verified_entry.prefix), verified_entry.as_path
            )
        (route_event,) = [e for e in events if e["event"] == "route"]
        assert route_event["sampled"] == "head"
        hop_events = [e for e in events if e["event"] == "hop"]
        assert len(hop_events) == len(report.hops)
        verified = [e for e in hop_events if e["status"] == "verified"]
        assert verified
        for event in verified:
            # The matched aut-num rule, by index, from a named registry.
            assert isinstance(event["rule"], int) and event["rule"] >= 0
        # Deep chains: a fresh verifier means every hop is a cache miss,
        # so the filter-term evaluation path is recorded.
        assert any(event.get("chain") for event in verified)

    def test_explain_is_pure_replay(self, tiny_verifier, tiny_ir, tiny_world, verified_entry):
        with api.Session(tiny_ir, tiny_world.topology) as session:
            report, _ = session.explain(
                str(verified_entry.prefix), verified_entry.as_path
            )
        baseline = tiny_verifier.verify_entry(verified_entry)
        assert [hop.status for hop in report.hops] == [
            hop.status for hop in baseline.hops
        ]


@pytest.fixture(scope="module")
def ir_path(tiny_world_dir, tmp_path_factory):
    path = tmp_path_factory.mktemp("trace-cli") / "ir.json"
    assert main(["parse", str(tiny_world_dir), "-o", str(path)]) == 0
    return path


@pytest.fixture(scope="module")
def trace_file(tiny_world_dir, ir_path, tmp_path_factory):
    path = tmp_path_factory.mktemp("trace-cli") / "events.jsonl"
    code = main(
        [
            "verify",
            "--ir", str(ir_path),
            "--as-rel", str(tiny_world_dir / "as-rel.txt"),
            "--table", str(tiny_world_dir / "table.txt"),
            "--no-index-cache",
            "--trace", str(path),
            "--trace-sample", "7",
        ]
    )
    assert code == 0
    return path


class TestCli:
    def test_verify_trace_flag_writes_sorted_events(self, trace_file):
        events = read_trace_events(trace_file)
        assert events
        # Stable order: within one trace id the route event leads its hops.
        by_trace: dict[str, list[str]] = {}
        for event in events:
            by_trace.setdefault(event["trace"], []).append(event["event"])
        assert all(kinds[0] == "route" for kinds in by_trace.values())

    def test_verify_trace_restores_null_tracer(self, trace_file):
        assert get_tracer() is NULL_TRACER

    def test_trace_summary(self, trace_file, capsys):
        assert main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "route(s)" in out
        assert "sampled:" in out

    def test_trace_status_filter_json(self, trace_file, capsys):
        assert main(
            ["trace", str(trace_file), "--status", "unverified", "--json"]
        ) == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line]
        assert lines
        events = [json.loads(line) for line in lines]
        kept = {e["trace"] for e in events}
        for trace_id in kept:
            statuses = {
                e["status"]
                for e in events
                if e["event"] == "hop" and e["trace"] == trace_id
            }
            assert "unverified" in statuses

    def test_trace_id_filter(self, trace_file, capsys):
        events = read_trace_events(trace_file)
        target = events[0]["trace"]
        assert main(
            ["trace", str(trace_file), "--trace-id", target, "--json"]
        ) == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line]
        assert lines
        assert all(json.loads(line)["trace"] == target for line in lines)

    def test_explain_cli_prints_rule(
        self, tiny_world_dir, ir_path, verified_entry, capsys
    ):
        argv = [
            "explain",
            "--ir", str(ir_path),
            "--as-rel", str(tiny_world_dir / "as-rel.txt"),
            str(verified_entry.prefix),
        ] + [str(asn) for asn in verified_entry.as_path]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert f"route {verified_entry.prefix}" in out
        assert "verified" in out
        assert "rule[" in out

    def test_explain_cli_json(self, tiny_world_dir, ir_path, verified_entry, capsys):
        argv = [
            "explain",
            "--ir", str(ir_path),
            "--as-rel", str(tiny_world_dir / "as-rel.txt"),
            "--json",
            str(verified_entry.prefix),
        ] + [str(asn) for asn in verified_entry.as_path]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"]
        assert any(e["event"] == "route" for e in payload["events"])


class TestRaiseOnChunkTracing:
    def test_chunk_retry_does_not_duplicate_events(
        self, serial_traced, tiny_ir, tiny_world, tiny_routes
    ):
        _, serial_tracer = serial_traced
        _, retry_tracer = _traced_run(
            tiny_ir,
            tiny_world,
            tiny_routes,
            processes=2,
            chunk_size=_chunk_size(tiny_routes),
            fault_hook=RaiseOnChunk(2),
        )
        assert canonical_events(retry_tracer.events) == canonical_events(
            serial_tracer.events
        )
