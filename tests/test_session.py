"""Tests for the session-oriented facade: Session, open_session, LoadResult."""

import pytest

from repro import api
from repro.core.compiled import CompiledIndex, save_index
from repro.obs import MetricsRegistry


class TestLoadResult:
    def test_synthesize_returns_load_result(self):
        load = api.synthesize("tiny")
        assert isinstance(load, api.LoadResult)
        # SynthWorld surface still reachable (delegation).
        assert load.irr_dumps
        assert load.topology is not None
        # Parsed lazily from the world's dumps.
        assert load.ir.counts()["aut-num"] > 0

    def test_tuple_unpack_compat(self, tiny_world_dir):
        ir, errors = api.parse_dumps(tiny_world_dir)
        assert ir.counts()["aut-num"] > 0
        assert hasattr(errors, "issues")  # the ErrorCollector, as before 1.4

    def test_degradation_folds_ingest_damage(self, tmp_path):
        (tmp_path / "ripe.db").write_text(
            "aut-num:    AS64500\nas-name:    TEST\nmnt-by: MNT-T\nsource: RIPE\n"
            "\naut-num: AS64501\nas-name: CUT"  # truncated final paragraph
        )
        load = api.parse_dumps(tmp_path)
        assert load.degradation is not None

    def test_world_delegation_misses_raise(self):
        load = api.synthesize("tiny")
        with pytest.raises(AttributeError):
            load.not_a_real_attribute


class TestOpenSession:
    def test_from_synth_world_implies_topology(self, tiny_world, tiny_routes):
        with api.open_session(tiny_world) as session:
            entry = tiny_routes[0]
            report = session.verify_route(str(entry.prefix), entry.as_path)
        assert report.hops or report.ignored is not None

    def test_from_directory(self, tiny_world_dir, tiny_routes, tmp_path):
        with api.open_session(
            tiny_world_dir,
            as_rel=tiny_world_dir / "as-rel.txt",
            cache_dir=tmp_path,
        ) as session:
            assert session.index is not None
            entry = tiny_routes[0]
            report = session.verify_route(str(entry.prefix), entry.as_path)
            assert report.entry.collector == "session"

    def test_from_ir_with_relationships(self, tiny_ir, tiny_world):
        with api.open_session(
            tiny_ir, as_rel=tiny_world.topology, warm=False
        ) as session:
            assert session.index is None  # not warmed yet
            session.warm()
            first = session.index
            session.warm()
            assert session.index is first  # idempotent

    def test_index_artifact_pinning(self, tiny_ir, tiny_world, tmp_path):
        index = api.compile_index(tiny_ir, digest=api.ir_digest(tiny_ir))
        artifact = tmp_path / "index.pkl"
        save_index(index, artifact)
        with api.open_session(
            tiny_ir, as_rel=tiny_world.topology, index=artifact
        ) as session:
            assert isinstance(session.index, CompiledIndex)
            assert session.index.digest == api.ir_digest(tiny_ir)

    def test_no_relationships_verify_raises(self, tiny_ir):
        with api.open_session(tiny_ir, warm=False) as session:
            with pytest.raises(ValueError, match="relationships"):
                session.verify_route("10.0.0.0/24", [64500, 64501])

    def test_closed_session_raises(self, tiny_ir, tiny_world):
        session = api.open_session(tiny_ir, as_rel=tiny_world.topology, warm=False)
        session.close()
        assert session.closed
        with pytest.raises(api.SessionClosedError):
            session.verify_route("10.0.0.0/24", [64500, 64501])
        session.close()  # idempotent


class TestSessionQueries:
    def test_verify_route_matches_verify_entry(self, tiny_world, tiny_routes):
        with api.open_session(tiny_world) as session:
            verifier = api.make_verifier(session.ir, session.relationships)
            for entry in tiny_routes[:10]:
                warm = session.verify_route(
                    str(entry.prefix), entry.as_path, collector=entry.collector
                )
                cold = verifier.verify_entry(entry)
                assert str(warm) == str(cold)

    def test_verify_table_uses_session_defaults(self, tiny_world, tiny_routes):
        with api.open_session(tiny_world, processes=1) as session:
            stats = session.verify_table(tiny_routes[:25])
        assert stats.routes_total == 25

    def test_explain_returns_events(self, tiny_world, tiny_routes):
        entry = tiny_routes[0]
        with api.open_session(tiny_world, warm=False) as session:
            report, events = session.explain(str(entry.prefix), entry.as_path)
        assert any(event.get("event") == "route" for event in events)
        assert len([e for e in events if e.get("event") == "hop"]) == len(report.hops)

    def test_characterize(self, tiny_world):
        with api.open_session(tiny_world, warm=False) as session:
            result = session.characterize()
        assert result["counts"]["aut-num"] > 0


class TestSessionMetrics:
    def test_private_registry_captures_operations(self, tiny_world, tiny_routes):
        registry = MetricsRegistry()
        with api.open_session(tiny_world, registry=registry) as session:
            entry = tiny_routes[0]
            session.verify_route(str(entry.prefix), entry.as_path)
            snapshot = session.metrics_snapshot()
        names = {counter["name"] for counter in snapshot["counters"]}
        assert "index_cache_total" in names

    def test_index_adopted_once_across_queries(self, tiny_world, tiny_routes, tmp_path):
        registry = MetricsRegistry()
        with api.open_session(
            tiny_world, registry=registry, cache_dir=tmp_path
        ) as session:
            for entry in tiny_routes[:20]:
                session.verify_route(str(entry.prefix), entry.as_path)
            snapshot = session.metrics_snapshot()
        cache_events = [
            counter
            for counter in snapshot["counters"]
            if counter["name"] == "index_cache_total"
        ]
        # Exactly one compile/adoption, no matter how many queries ran.
        assert sum(counter["value"] for counter in cache_events) == 1
