"""Tests for the synthetic world generator."""

from collections import Counter

from repro.bgp.topology import Rel
from repro.irr.synth import IRR_NAMES, build_world, tiny_config


class TestTopologyGeneration:
    def test_deterministic(self):
        left = build_world(tiny_config(seed=1))
        right = build_world(tiny_config(seed=1))
        assert left.irr_dumps == right.irr_dumps
        assert left.topology.to_as_rel_text() == right.topology.to_as_rel_text()

    def test_seed_changes_world(self):
        left = build_world(tiny_config(seed=1))
        right = build_world(tiny_config(seed=2))
        assert left.irr_dumps != right.irr_dumps

    def test_scale(self, tiny_world):
        config = tiny_world.config
        expected = config.n_tier1 + config.n_tier2 + config.n_tier3 + config.n_stub
        assert len(tiny_world.topology.ases()) == expected

    def test_tier1_clique(self, tiny_world):
        tier1 = sorted(tiny_world.topology.tier1)
        assert len(tier1) == tiny_world.config.n_tier1
        for index, left in enumerate(tier1):
            for right in tier1[index + 1 :]:
                assert tiny_world.topology.rel(left, right) is Rel.PEER

    def test_everyone_reaches_tier1(self, tiny_world):
        topology = tiny_world.topology
        for asn in topology.ases():
            if asn in topology.tier1:
                continue
            # walk up providers; must terminate at a tier-1
            seen = set()
            frontier = {asn}
            reached = False
            while frontier:
                current = frontier.pop()
                if current in topology.tier1:
                    reached = True
                    break
                seen.add(current)
                frontier.update(topology.providers.get(current, set()) - seen)
            assert reached, f"AS{asn} cannot reach the tier-1 clique"

    def test_prefixes_allocated_disjoint_v4(self, tiny_world):
        seen = set()
        for prefixes in tiny_world.announced.values():
            for prefix in prefixes:
                if prefix.version == 4:
                    assert prefix not in seen
                    seen.add(prefix)


class TestDumpGeneration:
    def test_all_irrs_present(self, tiny_world):
        assert set(tiny_world.irr_dumps) == set(IRR_NAMES)

    def test_dumps_parse_with_few_errors(self, tiny_registry):
        # Injected syntax errors are rare; everything else must parse.
        errors = sum(len(s.errors) for s in tiny_registry.sources.values())
        objects = sum(
            s.ir.counts()["aut-num"] + s.ir.counts()["route"]
            for s in tiny_registry.sources.values()
        )
        assert errors <= max(10, objects // 20)

    def test_profiles_respected(self, tiny_world, tiny_ir):
        for asn, profile in tiny_world.profiles.items():
            if profile == "absent":
                assert asn not in tiny_ir.aut_nums
            elif profile == "documented":
                # LACNIC-homed ASes lose their rules (dump quirk).
                aut = tiny_ir.aut_nums.get(asn)
                assert aut is not None

    def test_lacnic_has_no_rules(self, tiny_registry):
        lacnic = tiny_registry.sources["LACNIC"].ir
        for aut in lacnic.aut_nums.values():
            assert aut.rule_count == 0

    def test_as_any_pathology_present(self, tiny_ir):
        assert "AS-ANY" in tiny_ir.as_sets

    def test_route_set_adopters_export_them(self, tiny_world, tiny_ir):
        adopters = [
            name for name in tiny_ir.route_sets if name.startswith("RS-SYNTH")
        ]
        referenced = Counter()
        for aut in tiny_ir.aut_nums.values():
            for rule in aut.exports:
                if any(name in rule.raw for name in adopters):
                    referenced[aut.asn] += 1
        if adopters:
            assert referenced, "route-sets generated but never referenced"

    def test_collectors_peer_with_real_ases(self, tiny_world):
        ases = tiny_world.topology.ases()
        for collector in tiny_world.collectors:
            assert set(collector.peer_asns) <= ases
            assert collector.peer_asns

    def test_write_to_dir(self, tiny_world, tmp_path):
        tiny_world.write_to_dir(tmp_path)
        assert (tmp_path / "ripe.db").exists()
        assert (tmp_path / "as-rel.txt").exists()
        assert (tmp_path / "collectors.txt").exists()
        from repro.bgp.topology import AsRelationships

        restored = AsRelationships.load(tmp_path / "as-rel.txt")
        assert restored.providers == tiny_world.topology.providers


class TestWorldShape:
    def test_majority_of_documented_rules_parse(self, tiny_ir):
        bad = sum(len(a.bad_rules) for a in tiny_ir.aut_nums.values())
        good = sum(a.rule_count for a in tiny_ir.aut_nums.values())
        assert good > 10 * max(bad, 1)

    def test_profile_mix_close_to_config(self, tiny_world):
        profiles = Counter(tiny_world.profiles.values())
        total = sum(profiles.values())
        absent_fraction = profiles["absent"] / total
        # loose bounds — the tiny world is small
        assert 0.1 < absent_fraction < 0.45

    def test_merged_counts_nonzero(self, tiny_ir):
        counts = tiny_ir.counts()
        assert counts["aut-num"] > 0
        assert counts["route"] > 0
        assert counts["as-set"] > 0
        assert counts["import"] > 0
