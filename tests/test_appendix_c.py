"""Fidelity test: the paper's Appendix C worked example, end to end.

Reconstructs the IRR state and relationships behind the verification
report for route ⟨103.162.114.0/23, {3257 1299 6939 133840 56239 141893}⟩
and asserts the verifier reproduces the appendix's per-hop outcome:

.. code-block:: text

    BadExport  { from: 141893, to: 56239, ... }
    MehImport  { from: 141893, to: 56239, ... OnlyProviderPolicies }
    MehExport  { from: 56239, to: 133840, ... MatchFilterAsNum, SpecUphill }
    MehImport  { from: 56239, to: 133840, ... OnlyProviderPolicies }
    MehExport  { from: 133840, to: 6939, ... SpecUphill }
    OkImport   { from: 133840, to: 6939 }
    OkExport   { from: 6939, to: 1299 }
    OkImport   { from: 6939, to: 1299 }
    UnrecExport{ from: 1299, to: 3257, UnrecordedAsSet(...) }
    MehImport  { from: 1299, to: 3257, ... SpecTier1Pair }

Notably, the appendix shows Export Self *failing* for the 56239→133840
hop because nothing in AS56239's customer cone registered the prefix —
the route object for 103.162.114.0/23 is absent here for that reason, and
the counterpoint test adds it back to watch Export Self fire.
"""

import pytest

from repro.bgp.topology import AsRelationships
from repro.core.report import ItemKind
from repro.core.status import SpecialCase, VerifyStatus
from repro.core.verify import Verifier
from repro.irr.dump import parse_dump_text

# Objects quoted in the appendix, plus the minimum consistent surroundings.
DUMP = """
aut-num:    AS141893
export:     to AS58552 announce AS141893
export:     to AS131755 announce AS141893
import:     from AS58552 accept ANY

aut-num:    AS56239
import:     from AS55685 accept ANY
import:     from AS133840 accept ANY
export:     to AS133840 announce AS56239
export:     to AS55685 announce AS56239

aut-num:    AS133840
import:     from AS55685 accept ANY
import:     from AS6939 accept ANY
export:     to AS55685 announce AS133840

aut-num:    AS6939
as-name:    HURRICANE
import:     from AS-ANY accept ANY
export:     to AS-ANY announce ANY

aut-num:    AS1299
as-name:    TWELVE99
import:     from AS-ANY accept ANY
export:     to AS3257 announce AS1299:AS-TWELVE99-CUSTOMER-V4 AS1299:AS-TWELVE99-PEER-V4
export:     to AS6939 announce ANY

aut-num:    AS3257
as-name:    GTT
import:     from AS12 accept ANY
export:     to AS12 announce ANY

route:      103.57.0.0/16
origin:     AS56239

route:      103.58.0.0/16
origin:     AS133840
"""
# AS1299's customer/peer as-sets are *not* defined (the unrecorded case),
# and 103.162.114.0/23 has no route object at all.

AS_REL = """
# providers above customers
56239|141893|-1
133840|56239|-1
6939|133840|-1
55685|56239|-1
55685|133840|-1
1299|6939|-1
1299|3257|0
"""

PATH = (3257, 1299, 6939, 133840, 56239, 141893)
PREFIX = "103.162.114.0/23"


def build_verifier(extra_dump: str = "") -> Verifier:
    ir, errors = parse_dump_text(DUMP + extra_dump, "RADB")
    assert not errors.issues
    relationships = AsRelationships.from_as_rel_text(AS_REL)
    relationships.tier1 = {1299, 3257}
    return Verifier(ir, relationships)


@pytest.fixture(scope="module")
def report():
    return build_verifier().verify_route(PREFIX, PATH)


def hop_of(report, direction, from_asn, to_asn):
    for hop in report.hops:
        if (hop.direction, hop.from_asn, hop.to_asn) == (direction, from_asn, to_asn):
            return hop
    raise AssertionError(f"hop {direction} {from_asn}->{to_asn} missing")


class TestAppendixC:
    def test_hop_count(self, report):
        assert len(report.hops) == 10  # 5 AS pairs × 2 directions

    def test_bad_export_origin(self, report):
        hop = hop_of(report, "export", 141893, 56239)
        assert hop.status is VerifyStatus.UNVERIFIED
        expected = {
            (ItemKind.MATCH_REMOTE_AS_NUM, 58552),
            (ItemKind.MATCH_REMOTE_AS_NUM, 131755),
        }
        assert {(item.kind, item.asn) for item in hop.items} == expected
        assert not hop.peer_matched  # undeclared peering, the 98.98% case

    def test_meh_import_only_provider(self, report):
        hop = hop_of(report, "import", 141893, 56239)
        assert hop.status is VerifyStatus.SAFELISTED
        assert hop.special_case is SpecialCase.ONLY_PROVIDER_POLICIES
        remote_items = {
            item.asn for item in hop.items if item.kind is ItemKind.MATCH_REMOTE_AS_NUM
        }
        assert remote_items == {55685, 133840}

    def test_meh_export_uphill_not_export_self(self, report):
        # Peering matches, filter fails (MatchFilterAsNum(56239, NoOp)),
        # export-self does NOT fire (nothing in the cone registered the
        # prefix), uphill does.
        hop = hop_of(report, "export", 56239, 133840)
        assert hop.status is VerifyStatus.SAFELISTED
        assert hop.special_case is SpecialCase.UPHILL
        assert hop.peer_matched
        filter_items = {
            (item.kind, item.asn, item.op)
            for item in hop.items
            if item.kind is ItemKind.MATCH_FILTER_AS_NUM
        }
        assert (ItemKind.MATCH_FILTER_AS_NUM, 56239, "NoOp") in filter_items

    def test_meh_import_mid(self, report):
        hop = hop_of(report, "import", 56239, 133840)
        assert hop.status is VerifyStatus.SAFELISTED
        assert hop.special_case is SpecialCase.ONLY_PROVIDER_POLICIES

    def test_meh_export_uphill_high_peering_mismatch(self, report):
        # "does not even match the peering of any rule defined by AS133840"
        hop = hop_of(report, "export", 133840, 6939)
        assert hop.status is VerifyStatus.SAFELISTED
        assert hop.special_case is SpecialCase.UPHILL
        assert not hop.peer_matched

    def test_ok_import_hurricane(self, report):
        assert hop_of(report, "import", 133840, 6939).status is VerifyStatus.VERIFIED

    def test_ok_both_6939_1299(self, report):
        assert hop_of(report, "export", 6939, 1299).status is VerifyStatus.VERIFIED
        assert hop_of(report, "import", 6939, 1299).status is VerifyStatus.VERIFIED

    def test_unrec_export_twelve99(self, report):
        hop = hop_of(report, "export", 1299, 3257)
        assert hop.status is VerifyStatus.UNRECORDED
        names = {item.name for item in hop.items if item.kind is ItemKind.UNRECORDED_AS_SET}
        assert names == {
            "AS1299:AS-TWELVE99-CUSTOMER-V4",
            "AS1299:AS-TWELVE99-PEER-V4",
        }

    def test_meh_import_tier1(self, report):
        hop = hop_of(report, "import", 1299, 3257)
        assert hop.status is VerifyStatus.SAFELISTED
        assert hop.special_case is SpecialCase.TIER1_PAIR

    def test_rendered_report_shape(self, report):
        lines = str(report).splitlines()[1:]
        words = [line.split(" ", 1)[0] for line in lines]
        assert words == [
            "BadExport", "MehImport",
            "MehExport", "MehImport",
            "MehExport", "OkImport",
            "OkExport", "OkImport",
            "UnrecExport", "MehImport",
        ]

    def test_export_self_fires_when_cone_registers_route(self):
        # Counterpoint: register the prefix to the customer (AS141893, in
        # AS56239's cone here) and Export Self fires before Uphill.
        verifier = build_verifier("\nroute: 103.162.114.0/23\norigin: AS141893\n")
        report = verifier.verify_route(PREFIX, PATH)
        hop = hop_of(report, "export", 56239, 133840)
        assert hop.status is VerifyStatus.RELAXED
        assert hop.special_case is SpecialCase.EXPORT_SELF
        # And the first hop's export is now missing-routes relaxed? No —
        # its peerings still do not cover AS56239: stays unverified.
        first = hop_of(report, "export", 141893, 56239)
        assert first.status is VerifyStatus.UNVERIFIED
