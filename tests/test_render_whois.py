"""Tests for IR rendering and the WHOIS server/client."""

import pytest

from repro.ir.render import render_ir, render_object
from repro.irr.dump import parse_dump_text
from repro.irr.whois import WhoisEngine, WhoisServer, whois_query

DUMP = """
aut-num:    AS2914
as-name:    NTT
import:     from AS1 action pref = 10; accept AS-ONE
export:     to AS1 announce ANY
mnt-by:     MAINT-NTT

as-set:     AS-ONE
members:    AS1, AS-NESTED
mbrs-by-ref: ANY

as-set:     AS-NESTED
members:    AS5

route-set:  RS-STATIC
members:    192.0.2.0/24^+, AS1

route:      10.1.0.0/16
origin:     AS1
mnt-by:     M1

route6:     2001:db8::/32
origin:     AS1

peering-set: PRNG-P
peering:    AS7 192.0.2.9

filter-set: FLTR-F
filter:     AS1 AND NOT {0.0.0.0/0}
"""


@pytest.fixture(scope="module")
def ir():
    parsed, errors = parse_dump_text(DUMP, "TEST")
    assert not errors.issues
    return parsed


class TestRendering:
    def test_roundtrip_whole_ir(self, ir):
        text = render_ir(ir)
        reparsed, errors = parse_dump_text(text, "TEST")
        assert not errors.issues
        assert reparsed.counts() == ir.counts()
        assert render_ir(reparsed) == text

    def test_aut_num_rule_preserved(self, ir):
        text = render_ir(ir)
        reparsed, _ = parse_dump_text(text, "TEST")
        assert reparsed.aut_nums[2914].imports == ir.aut_nums[2914].imports

    def test_route6_class(self, ir):
        six = next(r for r in ir.route_objects if r.prefix.version == 6)
        assert render_object(six).startswith("route6:")

    def test_bad_rules_rendered_verbatim(self):
        source, _ = parse_dump_text(
            "aut-num: AS1\nimport: from AS2 accept UNPARSEABLE !!\n", "T"
        )
        text = render_object(source.aut_nums[1])
        assert "UNPARSEABLE" in text

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            render_object(object())


class TestWhoisEngine:
    def test_aut_num_lookup(self, ir):
        engine = WhoisEngine(ir)
        text = engine.lookup("as2914")
        assert text is not None and text.startswith("aut-num:")

    def test_set_lookups(self, ir):
        engine = WhoisEngine(ir)
        assert engine.lookup("AS-ONE").startswith("as-set:")
        assert engine.lookup("RS-STATIC").startswith("route-set:")
        assert engine.lookup("PRNG-P").startswith("peering-set:")
        assert engine.lookup("FLTR-F").startswith("filter-set:")

    def test_prefix_lookup(self, ir):
        engine = WhoisEngine(ir)
        assert "origin" in engine.lookup("10.1.0.0/16")
        assert engine.lookup("10.9.0.0/16") is None

    def test_origin_inverse_lookup(self, ir):
        engine = WhoisEngine(ir)
        text = engine.lookup("-i origin AS1")
        assert text.count("origin:") == 2  # v4 + v6

    def test_missing(self, ir):
        engine = WhoisEngine(ir)
        assert engine.lookup("AS9999") is None
        assert engine.lookup("AS-NOPE") is None

    def test_bang_g(self, ir):
        engine = WhoisEngine(ir)
        assert "10.1.0.0/16" in engine.bang("!gAS1")
        assert engine.bang("!gAS9999") == "D"

    def test_bang_6(self, ir):
        engine = WhoisEngine(ir)
        assert "2001:db8::/32" in engine.bang("!6AS1")

    def test_bang_i_direct_and_recursive(self, ir):
        engine = WhoisEngine(ir)
        direct = engine.bang("!iAS-ONE")
        assert "AS-NESTED" in direct and "AS5" not in direct
        recursive = engine.bang("!iAS-ONE,1")
        assert "AS5" in recursive and "AS-NESTED" not in recursive

    def test_bang_i_missing(self, ir):
        assert WhoisEngine(ir).bang("!iAS-NOPE,1") == "D"

    def test_bang_framing(self, ir):
        response = WhoisEngine(ir).bang("!gAS1")
        assert response.startswith("A") and response.endswith("C")
        length = int(response[1 : response.index("\n")])
        payload = response[response.index("\n") + 1 : -1]
        assert len(payload.encode()) == length

    def test_bang_unknown(self, ir):
        assert WhoisEngine(ir).bang("!zwhat").startswith("F ")

    def test_bang_j(self, ir):
        assert "aut-num=1" in WhoisEngine(ir).bang("!j")


class TestWhoisServer:
    def test_query_over_tcp(self, ir):
        with WhoisServer(ir) as server:
            text = whois_query("127.0.0.1", server.port, "AS2914")
            assert "as-name:    NTT" in text

    def test_bang_over_tcp(self, ir):
        with WhoisServer(ir) as server:
            text = whois_query("127.0.0.1", server.port, "!gAS1")
            assert "10.1.0.0/16" in text

    def test_not_found_over_tcp(self, ir):
        with WhoisServer(ir) as server:
            text = whois_query("127.0.0.1", server.port, "AS4242")
            assert "No entries found" in text

    def test_multiple_sequential_connections(self, ir):
        with WhoisServer(ir) as server:
            for query in ("AS2914", "AS-ONE", "!iAS-ONE,1"):
                assert whois_query("127.0.0.1", server.port, query)

    def test_clean_stop_reports_no_degradation(self, ir):
        server = WhoisServer(ir).start()
        whois_query("127.0.0.1", server.port, "AS2914")
        report = server.stop()
        assert not report

    def test_stop_reports_wedged_handler_thread(self, ir):
        """A slow client wedges its handler on read; stop() must return
        promptly and report the leak instead of swallowing it."""
        import time

        from repro.chaos.faults import SlowClient

        server = WhoisServer(ir).start()
        with SlowClient("127.0.0.1", server.port, partial=b"AS29"):
            deadline = time.monotonic() + 5
            while (
                not server._server.live_handler_threads()
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            started = time.monotonic()
            report = server.stop(join_timeout=0.3)
            elapsed = time.monotonic() - started
        assert report.by_kind().get("whois/handler-thread-leaked") == 1
        assert elapsed < 3  # bounded: no hang on the wedged thread

    def test_stop_without_start_is_safe(self, ir):
        report = WhoisServer(ir).stop()
        assert not report
