"""Tests for multi-IRR priority merging and the registry model."""

from repro.ir.merge import IRR_PRIORITY, merge_irs
from repro.irr.dump import parse_dump_text
from repro.irr.registry import Registry, parse_registry_dir


def ir_of(text: str, source: str):
    ir, _ = parse_dump_text(text, source)
    return ir


class TestMerge:
    def test_priority_wins_for_aut_num(self):
        ripe = ir_of("aut-num: AS1\nas-name: RIPE-VIEW\n", "RIPE")
        radb = ir_of("aut-num: AS1\nas-name: RADB-VIEW\n", "RADB")
        merged = merge_irs({"RADB": radb, "RIPE": ripe})
        assert merged.aut_nums[1].as_name == "RIPE-VIEW"

    def test_priority_wins_for_sets(self):
        ripe = ir_of("as-set: AS-X\nmembers: AS1\n", "RIPE")
        radb = ir_of("as-set: AS-X\nmembers: AS2\n", "RADB")
        merged = merge_irs({"RADB": radb, "RIPE": ripe})
        assert merged.as_sets["AS-X"].members_asn == [1]

    def test_route_objects_all_kept(self):
        ripe = ir_of("route: 10.0.0.0/8\norigin: AS1\n", "RIPE")
        radb = ir_of("route: 10.0.0.0/8\norigin: AS2\n", "RADB")
        merged = merge_irs({"RADB": radb, "RIPE": ripe})
        assert len(merged.route_objects) == 2

    def test_unknown_irr_appended(self):
        custom = ir_of("aut-num: AS9\n", "CUSTOM")
        merged = merge_irs({"CUSTOM": custom})
        assert 9 in merged.aut_nums

    def test_priority_covers_table1(self):
        for name in ("RIPE", "APNIC", "RADB", "ALTDB", "LACNIC", "REACH"):
            assert name in IRR_PRIORITY

    def test_disjoint_union(self):
        left = ir_of("aut-num: AS1\n", "RIPE")
        right = ir_of("aut-num: AS2\n", "RADB")
        merged = merge_irs({"RIPE": left, "RADB": right})
        assert set(merged.aut_nums) == {1, 2}


class TestRegistry:
    def test_add_text_and_merge(self):
        registry = Registry()
        registry.add_text("RIPE", "aut-num: AS1\nimport: from AS2 accept ANY\n")
        registry.add_text("RADB", "aut-num: AS2\n")
        merged = registry.merged()
        assert set(merged.aut_nums) == {1, 2}

    def test_table1_rows(self):
        registry = Registry()
        registry.add_text(
            "RIPE",
            "aut-num: AS1\nimport: from AS2 accept ANY\nexport: to AS2 announce AS1\n"
            "\nroute: 10.0.0.0/8\norigin: AS1\n",
        )
        rows = registry.table1()
        names = [name for name, _ in rows]
        assert names == ["RIPE", "Total"]
        ripe_row = rows[0][1]
        assert ripe_row["aut-num"] == 1
        assert ripe_row["route"] == 1
        assert ripe_row["import"] == 1
        assert ripe_row["export"] == 1
        assert rows[-1][1]["aut-num"] == 1

    def test_all_errors_concatenated(self):
        registry = Registry()
        registry.add_text("RIPE", "aut-num: AS1\nimport: from AS2 accept NONSENSE\n")
        registry.add_text("RADB", "aut-num: ASX\n")
        assert len(registry.all_errors()) == 2

    def test_parse_registry_dir(self, tmp_path):
        (tmp_path / "ripe.db").write_text("aut-num: AS1\n", encoding="utf-8")
        (tmp_path / "radb.db").write_text("aut-num: AS2\n", encoding="utf-8")
        registry = parse_registry_dir(tmp_path)
        assert set(registry.sources) == {"RIPE", "RADB"}
        assert registry.sources["RIPE"].raw_bytes > 0

    def test_world_registry_matches_names(self, tiny_world, tiny_registry):
        assert set(tiny_registry.sources) == set(tiny_world.irr_dumps)
