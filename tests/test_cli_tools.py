"""CLI tests for the tooling subcommands (lint / asrel / classify)."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    directory = tmp_path_factory.mktemp("tooling")
    main(["synth", str(directory / "world"), "--preset", "tiny"])
    main(["parse", str(directory / "world"), "-o", str(directory / "ir.json")])
    return directory


class TestLintCommand:
    def test_lint_runs(self, artifacts, capsys):
        code = main(
            [
                "lint",
                "--ir", str(artifacts / "ir.json"),
                "--as-rel", str(artifacts / "world" / "as-rel.txt"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RPS0" in out

    def test_lint_strict_exit_code(self, artifacts, capsys):
        code = main(["lint", "--ir", str(artifacts / "ir.json"), "--strict"])
        assert code == 1  # the tiny world has injected pathologies


class TestAsrelCommand:
    def test_asrel_stdout(self, artifacts, capsys):
        assert main(["asrel", "--ir", str(artifacts / "ir.json")]) == 0
        out = capsys.readouterr().out
        assert "|-1" in out

    def test_asrel_with_truth(self, artifacts, capsys, tmp_path):
        output = tmp_path / "inferred.txt"
        code = main(
            [
                "asrel",
                "--ir", str(artifacts / "ir.json"),
                "-o", str(output),
                "--truth", str(artifacts / "world" / "as-rel.txt"),
            ]
        )
        assert code == 0
        assert output.exists()


class TestClassifyCommand:
    def test_classify_census(self, artifacts, capsys):
        code = main(
            [
                "classify",
                "--ir", str(artifacts / "ir.json"),
                "--as-rel", str(artifacts / "world" / "as-rel.txt"),
            ]
        )
        assert code == 0
        census = json.loads(capsys.readouterr().out)["census"]
        assert census.get("silent", 0) > 0
        assert sum(census.values()) > 50


class TestRecommendCommand:
    def test_recommend_emits_migrations(self, artifacts, capsys):
        code = main(
            [
                "recommend",
                "--ir", str(artifacts / "ir.json"),
                "--as-rel", str(artifacts / "world" / "as-rel.txt"),
                "--limit", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RS-EXPORT" in out
        assert "route-set:" in out


class TestParserWiring:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers = next(
            action for action in parser._actions if action.choices is not None
        )
        assert set(subparsers.choices) == {
            "synth", "parse", "verify", "compile", "stats", "metrics", "explain",
            "trace", "lint", "asrel", "classify", "recommend", "whois", "chaos",
            "serve", "debug",
        }
