"""Tests for the observability subsystem (repro.obs)."""

import io
import json
import time

import pytest

from repro.cli import main
from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    PhaseProfiler,
    SpanStore,
    build_manifest,
    cache_summary,
    digest_inputs,
    get_registry,
    load_manifest,
    parse_prometheus,
    render_prometheus,
    render_prometheus_snapshot,
    set_registry,
    timed_iter,
    use_registry,
    write_manifest,
)


class TestNullRegistry:
    def test_default_registry_is_null(self):
        registry = get_registry()
        assert isinstance(registry, NullRegistry)
        assert registry.enabled is False

    def test_instruments_have_zero_side_effects(self):
        registry = NULL_REGISTRY
        counter = registry.counter("anything", label="x")
        counter.inc()
        counter.inc(100)
        registry.gauge("g").set(3.5)
        registry.histogram("h").observe(0.25)
        snapshot = registry.snapshot()
        assert snapshot == {"counters": [], "gauges": [], "histograms": [], "spans": []}
        assert counter.value == 0

    def test_span_is_noop_context_manager(self):
        with NULL_REGISTRY.span("phase") as span:
            with NULL_REGISTRY.span("nested"):
                pass
        assert NULL_REGISTRY.snapshot()["spans"] == []
        assert span is not None

    def test_merge_snapshot_is_noop(self):
        live = MetricsRegistry()
        live.counter("c").inc(5)
        NULL_REGISTRY.merge_snapshot(live.snapshot())
        assert NULL_REGISTRY.snapshot()["counters"] == []


class TestRegistryInstallation:
    def test_use_registry_restores_previous(self):
        before = get_registry()
        with use_registry() as registry:
            assert get_registry() is registry
            assert registry.enabled
        assert get_registry() is before

    def test_set_registry_none_restores_null(self):
        previous = set_registry(MetricsRegistry())
        try:
            assert get_registry().enabled
        finally:
            set_registry(None)
        assert not get_registry().enabled
        set_registry(previous)


class TestCounterGauge:
    def test_counter_accumulates_and_is_keyed_by_labels(self):
        registry = MetricsRegistry()
        registry.counter("objects", irr="RIPE").inc(3)
        registry.counter("objects", irr="RIPE").inc(4)
        registry.counter("objects", irr="RADB").inc(1)
        assert registry.counter("objects", irr="RIPE").value == 7
        assert registry.counter("objects", irr="RADB").value == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("dual")
        with pytest.raises(TypeError):
            registry.gauge("dual")


class TestHistogramBuckets:
    def test_boundary_values_land_in_their_le_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.0001, 2.0, 4.0, 4.5, 100.0):
            histogram.observe(value)
        # le=1: {0.5, 1.0}; le=2: {1.0001, 2.0}; le=4: {4.0}; +Inf: {4.5, 100}
        assert histogram.bucket_counts == [2, 2, 1, 2]
        assert histogram.count == 7
        assert histogram.sum == pytest.approx(113.0001)

    def test_cumulative_ends_with_total(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        for value in (0.1, 1.5, 9.0):
            histogram.observe(value)
        assert histogram.cumulative() == [(1.0, 1), (2.0, 2), (float("inf"), 3)]

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=(2.0, 1.0))


class TestSpans:
    def test_nested_paths_and_monotonic_timing(self):
        store = SpanStore()
        with store.span("parse"):
            with store.span("lex"):
                time.sleep(0.01)
            time.sleep(0.01)
        parent = store.get("parse")
        child = store.get("parse/lex")
        assert parent.count == 1 and child.count == 1
        assert child.wall_s > 0
        # A parent span's wall time includes all of its children's.
        assert parent.wall_s >= child.wall_s
        assert parent.cpu_s >= 0 and child.cpu_s >= 0

    def test_repeat_spans_aggregate(self):
        store = SpanStore()
        for _ in range(3):
            with store.span("phase"):
                pass
        assert store.get("phase").count == 3

    def test_add_timing_folds_external_measurements(self):
        store = SpanStore()
        store.add_timing("verify/worker", 1.5, 0.5, count=2)
        store.add_timing("verify/worker", 0.5, 0.25, count=1)
        aggregate = store.get("verify/worker")
        assert aggregate.count == 3
        assert aggregate.wall_s == pytest.approx(2.0)
        assert aggregate.cpu_s == pytest.approx(0.75)

    def test_timed_iter_charges_producer_time(self):
        store = SpanStore()

        def slow_gen():
            for item in range(3):
                time.sleep(0.002)
                yield item

        with store.span("parse"):
            assert list(timed_iter(slow_gen(), store, "lex")) == [0, 1, 2]
        lex = store.get("parse/lex")
        assert lex.count == 3
        assert 0 < lex.wall_s <= store.get("parse").wall_s


class TestSnapshotMerge:
    def test_merge_sums_counters_and_histograms(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for registry, n in ((a, 2), (b, 5)):
            registry.counter("c", k="v").inc(n)
            h = registry.histogram("h", buckets=(1.0, 2.0))
            h.observe(0.5)
            registry.spans.add_timing("phase", float(n))
        a.merge_snapshot(b.snapshot())
        assert a.counter("c", k="v").value == 7
        assert a.histogram("h", buckets=(1.0, 2.0)).count == 2
        assert a.spans.get("phase").wall_s == pytest.approx(7.0)
        assert a.spans.get("phase").count == 2

    def test_merge_round_trips_through_json(self):
        source = MetricsRegistry()
        source.counter("c").inc(3)
        source.gauge("g").set(0.5)
        wire = json.loads(json.dumps(source.snapshot()))
        target = MetricsRegistry()
        target.merge_snapshot(wire)
        assert target.counter("c").value == 3
        assert target.gauge("g").value == 0.5

    def test_merge_keeps_label_sets_distinct(self):
        source = MetricsRegistry()
        source.counter("hops", status="verified").inc(2)
        source.counter("hops", status="skip").inc(5)
        source.counter("hops", status="verified", irr="RIPE").inc(1)
        target = MetricsRegistry()
        target.counter("hops", status="verified").inc(10)
        target.merge_snapshot(source.snapshot())
        assert target.counter("hops", status="verified").value == 12
        assert target.counter("hops", status="skip").value == 5
        assert target.counter("hops", status="verified", irr="RIPE").value == 1

    def test_merge_rejects_histogram_bucket_mismatch(self):
        source = MetricsRegistry()
        source.histogram("h", buckets=(1.0, 2.0, 4.0)).observe(0.5)
        target = MetricsRegistry()
        target.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            target.merge_snapshot(source.snapshot())

    def test_merge_rejects_kind_conflict(self):
        source = MetricsRegistry()
        source.counter("dual").inc(1)
        target = MetricsRegistry()
        target.gauge("dual").set(1.0)
        with pytest.raises(TypeError):
            target.merge_snapshot(source.snapshot())

    def test_merge_null_snapshot_changes_nothing(self):
        target = MetricsRegistry()
        target.counter("c").inc(4)
        before = target.snapshot()
        target.merge_snapshot(NULL_REGISTRY.snapshot())
        assert target.snapshot() == before

    def test_merge_empty_and_partial_snapshots(self):
        target = MetricsRegistry()
        target.merge_snapshot({})  # no sections at all
        target.merge_snapshot({"counters": [{"name": "c", "labels": {}, "value": 2}]})
        assert target.counter("c").value == 2
        assert target.snapshot()["gauges"] == []


class TestPrometheusRoundTrip:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("verify_hops_total", status="verified").inc(7)
        registry.counter("verify_hops_total", status="unverified").inc(3)
        registry.counter("lex_objects_total").inc(100)
        registry.gauge("verify_hop_cache_hit_rate").set(0.625)
        histogram = registry.histogram("verify_hop_seconds", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.005, 0.05, 5.0):
            histogram.observe(value)
        return registry.snapshot()

    def test_text_round_trips_to_snapshot_shape(self):
        snapshot = self._snapshot()
        text = render_prometheus_snapshot(snapshot)
        parsed = parse_prometheus(text)

        def by_key(records):
            return {
                (r["name"], tuple(sorted(r["labels"].items()))): r for r in records
            }

        assert by_key(parsed["counters"]) == by_key(snapshot["counters"])
        assert by_key(parsed["gauges"]) == by_key(snapshot["gauges"])
        (histogram,) = parsed["histograms"]
        (original,) = snapshot["histograms"]
        assert histogram["buckets"] == original["buckets"]
        assert histogram["bucket_counts"] == original["bucket_counts"]
        assert histogram["count"] == original["count"]
        assert histogram["sum"] == pytest.approx(original["sum"])

    def test_merged_parse_result_is_mergeable(self):
        # The parsed snapshot must satisfy merge_snapshot's expectations.
        parsed = parse_prometheus(render_prometheus_snapshot(self._snapshot()))
        registry = MetricsRegistry()
        registry.merge_snapshot(parsed)
        assert registry.counter("verify_hops_total", status="verified").value == 7

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus_snapshot(
            {"counters": [], "gauges": [], "histograms": []}
        ) == ""
        assert parse_prometheus("") == {"counters": [], "gauges": [], "histograms": []}


class TestPhaseProfiler:
    def test_samples_are_tagged_with_active_phase(self):
        registry = MetricsRegistry()
        profiler = PhaseProfiler(registry, interval=0.005)
        with profiler:
            with registry.span("work"):
                deadline = time.monotonic() + 0.1
                while time.monotonic() < deadline:
                    pass
        snapshot = profiler.snapshot()
        assert snapshot["sample_count"] == len(snapshot["samples"]) > 0
        assert snapshot["peak_rss_kb"] > 0
        assert snapshot["duration_s"] > 0
        assert "work" in snapshot["phase_sample_counts"]
        sample = snapshot["samples"][0]
        assert set(sample) == {"t", "phase", "cpu_s", "rss_kb"}

    def test_bounded_memory_halves_and_slows(self):
        profiler = PhaseProfiler(None, interval=1.0, max_samples=4)
        for _ in range(4):
            profiler._sample()
        # Hitting the cap halves the samples and doubles the interval.
        assert len(profiler.samples) == 2
        assert profiler.interval == 2.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PhaseProfiler(None, interval=0)
        with pytest.raises(ValueError):
            PhaseProfiler(None, max_samples=2)
        profiler = PhaseProfiler(None)
        with profiler:
            with pytest.raises(RuntimeError):
                profiler.start()


class TestCacheSummary:
    def test_missing_cache_dir_reports_none(self, tmp_path):
        manifest = build_manifest("run", MetricsRegistry())
        absent = tmp_path / "never-created"
        caches = cache_summary(manifest, cache_dir=absent)
        assert caches["disk_cache_entries"] is None
        assert caches["disk_cache_bytes"] == 0
        assert caches["disk_cache_dir"] == str(absent)

    def test_populated_cache_dir_is_counted(self, tmp_path):
        (tmp_path / "a.idx").write_bytes(b"x" * 10)
        (tmp_path / "b.idx").write_bytes(b"y" * 5)
        caches = cache_summary(build_manifest("run", MetricsRegistry()), cache_dir=tmp_path)
        assert caches["disk_cache_entries"] == 2
        assert caches["disk_cache_bytes"] == 15


class TestManifest:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("verify_hops_total", status="verified").inc(10)
        registry.gauge("verify_hop_cache_hit_rate").set(0.75)
        registry.histogram("verify_hop_seconds", buckets=(0.001, 0.01)).observe(0.005)
        with registry.span("verify"):
            pass
        return registry

    def test_round_trips_through_json(self, tmp_path):
        manifest = build_manifest("test-run", self._registry(), config={"seed": 42})
        path = tmp_path / "run.json"
        write_manifest(path, manifest)
        assert load_manifest(path) == json.loads(json.dumps(manifest))

    def test_stream_round_trip(self):
        manifest = build_manifest("test-run", self._registry())
        buffer = io.StringIO()
        write_manifest(buffer, manifest)
        buffer.seek(0)
        assert load_manifest(buffer) == manifest

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            load_manifest(path)

    def test_contains_versions_phases_and_digests(self, tmp_path):
        data = tmp_path / "input.txt"
        data.write_text("hello\n")
        manifest = build_manifest("run", self._registry(), inputs=[data])
        assert manifest["versions"]["repro"]
        assert manifest["versions"]["python"]
        assert "verify" in manifest["phases"]
        assert set(manifest["phases"]["verify"]) == {"count", "wall_s", "cpu_s"}
        (record,) = manifest["inputs"]
        assert record["bytes"] == 6
        assert len(record["sha256"]) == 64

    def test_missing_input_digested_as_absent(self):
        records = digest_inputs(["/nonexistent/file.txt"])
        assert records[0]["sha256"] is None

    def test_prometheus_rendering(self):
        manifest = build_manifest("run", self._registry())
        text = render_prometheus(manifest)
        assert '# TYPE verify_hops_total counter' in text
        assert 'verify_hops_total{status="verified"} 10' in text
        assert "verify_hop_cache_hit_rate 0.75" in text
        assert 'verify_hop_seconds_bucket{le="+Inf"} 1' in text
        assert 'repro_phase_wall_seconds{phase="verify"}' in text


class TestCliMetrics:
    @pytest.fixture(scope="class")
    def world_dir(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("obs-world")
        assert main(["synth", str(directory), "--preset", "tiny", "--routes"]) == 0
        return directory

    def test_verify_writes_manifest(self, world_dir, tmp_path, capsys):
        ir_path = tmp_path / "ir.json"
        assert main(["parse", str(world_dir), "-o", str(ir_path)]) == 0
        manifest_path = tmp_path / "run.json"
        code = main(
            [
                "verify",
                "--ir", str(ir_path),
                "--as-rel", str(world_dir / "as-rel.txt"),
                "--table", str(world_dir / "table.txt"),
                "--metrics", str(manifest_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        manifest = load_manifest(manifest_path)
        # per-phase wall/CPU timings
        assert manifest["phases"]["verify"]["wall_s"] > 0
        assert manifest["phases"]["verify"]["cpu_s"] >= 0
        # per-status hop counters
        statuses = {
            record["labels"]["status"]: record["value"]
            for record in manifest["metrics"]["counters"]
            if record["name"] == "verify_hops_total"
        }
        assert sum(statuses.values()) > 0
        # hop-cache hit rate gauge
        (rate,) = [
            record["value"]
            for record in manifest["metrics"]["gauges"]
            if record["name"] == "verify_hop_cache_hit_rate"
        ]
        assert 0.0 <= rate <= 1.0
        # input digests cover all three files
        assert len(manifest["inputs"]) == 3
        assert all(record["sha256"] for record in manifest["inputs"])

    def test_parse_manifest_has_lex_phases(self, world_dir, tmp_path, capsys):
        manifest_path = tmp_path / "parse.json"
        ir_path = tmp_path / "ir.json"
        assert main(
            ["parse", str(world_dir), "-o", str(ir_path), "--metrics", str(manifest_path)]
        ) == 0
        capsys.readouterr()
        manifest = load_manifest(manifest_path)
        assert any(path.startswith("parse/") for path in manifest["phases"])
        assert any(path.endswith("/lex") for path in manifest["phases"])
        assert "merge" in manifest["phases"]
        counters = {record["name"] for record in manifest["metrics"]["counters"]}
        assert "lex_objects_total" in counters
        assert "merge_wins_total" in counters

    def test_metrics_subcommand_renders(self, world_dir, tmp_path, capsys):
        ir_path = tmp_path / "ir.json"
        manifest_path = tmp_path / "run.json"
        main(["parse", str(world_dir), "-o", str(ir_path), "--metrics", str(manifest_path)])
        capsys.readouterr()
        assert main(["metrics", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE lex_objects_total counter" in out
        assert "repro_phase_wall_seconds" in out

    def test_no_metrics_flag_leaves_registry_null(self, world_dir, tmp_path, capsys):
        ir_path = tmp_path / "ir.json"
        assert main(["parse", str(world_dir), "-o", str(ir_path)]) == 0
        capsys.readouterr()
        assert not get_registry().enabled


class TestCliMetricsFormats:
    @pytest.fixture(scope="class")
    def manifest_path(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("metrics-world")
        assert main(["synth", str(directory), "--preset", "tiny"]) == 0
        path = tmp_path_factory.mktemp("metrics-out") / "parse.json"
        ir_path = path.parent / "ir.json"
        assert main(
            ["parse", str(directory), "-o", str(ir_path), "--metrics", str(path)]
        ) == 0
        return path

    def test_format_json_dumps_whole_manifest(self, manifest_path, capsys):
        assert main(["metrics", str(manifest_path), "--format", "json"]) == 0
        out = capsys.readouterr().out
        document = json.loads(out)
        assert document == load_manifest(manifest_path)

    def test_prom_output_round_trips(self, manifest_path, capsys):
        assert main(["metrics", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        parsed = parse_prometheus(out)
        counters = {record["name"] for record in parsed["counters"]}
        assert "lex_objects_total" in counters
        # repro_phase_* gauges ride along in the same parseable text.
        gauges = {record["name"] for record in parsed["gauges"]}
        assert any(name.startswith("repro_phase_") for name in gauges)

    def test_json_histograms_carry_cumulative_buckets(self, tmp_path, capsys):
        """``--format json`` must spell out each histogram's cumulative
        [le, count] pairs, aligned with what the Prometheus rendering
        exposes — external percentile math never reverse-engineers the
        implicit +Inf bucket."""
        from repro.obs import cumulative_view

        registry = MetricsRegistry()
        histogram = registry.histogram(
            "demo_seconds", buckets=(0.1, 1.0), stage="queue"
        )
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        manifest = build_manifest("verify", registry)
        path = tmp_path / "hist.json"
        write_manifest(path, manifest)
        assert main(["metrics", str(path), "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        record = next(
            r
            for r in document["metrics"]["histograms"]
            if r["name"] == "demo_seconds"
        )
        assert record["cumulative"] == [[0.1, 1], [1.0, 3], ["+Inf", 4]]
        assert record["cumulative"] == cumulative_view(record)
        # round-trip: the prom text's cumulative bucket samples agree
        parsed = parse_prometheus(render_prometheus(manifest))
        prom = next(
            r for r in parsed["histograms"] if r["name"] == "demo_seconds"
        )
        assert prom["count"] == record["count"] == 4

    def test_out_writes_file_instead_of_stdout(self, manifest_path, tmp_path, capsys):
        out_path = tmp_path / "metrics.prom"
        assert main(
            ["metrics", str(manifest_path), "--out", str(out_path)]
        ) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert str(out_path) in captured.err
        assert "# TYPE" in out_path.read_text(encoding="utf-8")

    def test_missing_cache_dir_prints_no_cache_line(
        self, manifest_path, tmp_path, capsys
    ):
        absent = tmp_path / "no-such-cache"
        assert main(
            ["metrics", str(manifest_path), "--cache-dir", str(absent)]
        ) == 0
        err = capsys.readouterr().err
        assert f"index disk cache: none ({absent} does not exist)" in err

    def test_existing_cache_dir_prints_artifact_count(
        self, manifest_path, tmp_path, capsys
    ):
        (tmp_path / "one.idx").write_bytes(b"abc")
        assert main(
            ["metrics", str(manifest_path), "--cache-dir", str(tmp_path)]
        ) == 0
        err = capsys.readouterr().err
        assert "index disk cache: 1 artifact(s), 3 bytes" in err


class TestCliProfile:
    def test_profile_lands_in_manifest(self, tmp_path, capsys):
        directory = tmp_path / "world"
        assert main(["synth", str(directory), "--preset", "tiny"]) == 0
        manifest_path = tmp_path / "run.json"
        assert main(
            [
                "parse", str(directory),
                "-o", str(tmp_path / "ir.json"),
                "--metrics", str(manifest_path),
                "--profile",
            ]
        ) == 0
        capsys.readouterr()
        manifest = load_manifest(manifest_path)
        profile = manifest["profile"]
        assert profile is not None
        assert profile["duration_s"] > 0
        assert profile["sample_count"] == len(profile["samples"])
        assert set(profile["phase_sample_counts"]) or profile["sample_count"] == 0

    def test_profile_without_metrics_warns_and_continues(self, tmp_path, capsys):
        directory = tmp_path / "world"
        assert main(["synth", str(directory), "--preset", "tiny"]) == 0
        assert main(
            ["parse", str(directory), "-o", str(tmp_path / "ir.json"), "--profile"]
        ) == 0
        err = capsys.readouterr().err
        assert "--profile requires --metrics" in err
