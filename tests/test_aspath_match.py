"""Tests for the symbolic AS-path regex matcher (Appendix B)."""

import pytest

from repro.core.aspath_match import AsPathMatcher
from repro.core.query import QueryEngine
from repro.irr.dump import parse_dump_text
from repro.rpsl.aspath import parse_as_path_regex


@pytest.fixture()
def matcher():
    ir, _ = parse_dump_text(
        "as-set: AS-X\nmembers: AS10, AS11\n\nas-set: AS-Y\nmembers: AS20, AS-X\n",
        "TEST",
    )
    return AsPathMatcher(QueryEngine(ir))


def match(matcher, regex: str, path: tuple[int, ...], peer: int = 0):
    return matcher.match(parse_as_path_regex(regex), path, peer)


class TestBasicMatching:
    def test_single_asn_search_semantics(self, matcher):
        assert match(matcher, "AS2", (1, 2, 3)).matched
        assert not match(matcher, "AS9", (1, 2, 3)).matched

    def test_anchored_both_ends(self, matcher):
        assert match(matcher, "^AS1 AS2 AS3$", (1, 2, 3)).matched
        assert not match(matcher, "^AS1 AS2$", (1, 2, 3)).matched

    def test_begin_anchor(self, matcher):
        assert match(matcher, "^AS1", (1, 2)).matched
        assert not match(matcher, "^AS2", (1, 2)).matched

    def test_end_anchor_origin(self, matcher):
        assert match(matcher, "AS2$", (1, 2)).matched
        assert not match(matcher, "AS1$", (1, 2)).matched

    def test_paper_example(self, matcher):
        # <^AS13911 AS6327+$>: received from AS13911, originated by AS6327.
        regex = "^AS13911 AS6327+$"
        assert match(matcher, regex, (13911, 6327)).matched
        assert match(matcher, regex, (13911, 6327, 6327)).matched
        assert not match(matcher, regex, (13911, 1299, 6327)).matched
        assert not match(matcher, regex, (6327,)).matched

    def test_wildcard(self, matcher):
        assert match(matcher, "^AS1 . AS3$", (1, 999, 3)).matched
        assert not match(matcher, "^AS1 . AS3$", (1, 3)).matched

    def test_wildcard_star(self, matcher):
        regex = "^AS1 .* AS3$"
        assert match(matcher, regex, (1, 3)).matched
        assert match(matcher, regex, (1, 7, 8, 9, 3)).matched

    def test_optional(self, matcher):
        regex = "^AS1 AS2? AS3$"
        assert match(matcher, regex, (1, 3)).matched
        assert match(matcher, regex, (1, 2, 3)).matched
        assert not match(matcher, regex, (1, 2, 2, 3)).matched

    def test_bounded_repeat(self, matcher):
        regex = "^AS2{2,3}$"
        assert not match(matcher, regex, (2,)).matched
        assert match(matcher, regex, (2, 2)).matched
        assert match(matcher, regex, (2, 2, 2)).matched
        assert not match(matcher, regex, (2, 2, 2, 2)).matched

    def test_alternation(self, matcher):
        regex = "^(AS1 | AS2) AS3$"
        assert match(matcher, regex, (1, 3)).matched
        assert match(matcher, regex, (2, 3)).matched
        assert not match(matcher, regex, (4, 3)).matched


class TestAsSetTokens:
    def test_as_set_member(self, matcher):
        assert match(matcher, "^AS-X$", (10,)).matched
        assert match(matcher, "^AS-X$", (11,)).matched
        assert not match(matcher, "^AS-X$", (12,)).matched

    def test_nested_as_set(self, matcher):
        assert match(matcher, "^AS-Y$", (10,)).matched
        assert match(matcher, "^AS-Y$", (20,)).matched

    def test_unrecorded_as_set_flagged(self, matcher):
        result = match(matcher, "^AS-MISSING$", (10,))
        assert not result.matched
        assert "AS-MISSING" in result.unrecorded_sets

    def test_peeras(self, matcher):
        assert match(matcher, "^PeerAS+$", (5, 5), peer=5).matched
        assert not match(matcher, "^PeerAS+$", (5, 6), peer=5).matched


class TestCharSets:
    def test_positive_set(self, matcher):
        regex = "^[AS1 AS2]$"
        assert match(matcher, regex, (1,)).matched
        assert match(matcher, regex, (2,)).matched
        assert not match(matcher, regex, (3,)).matched

    def test_complemented_set(self, matcher):
        regex = "^[^AS1 AS2]$"
        assert not match(matcher, regex, (1,)).matched
        assert match(matcher, regex, (3,)).matched

    def test_complemented_set_with_as_set(self, matcher):
        regex = "^[^AS-X]+$"
        assert match(matcher, regex, (1, 2)).matched
        assert not match(matcher, regex, (1, 10)).matched

    def test_set_with_repeat(self, matcher):
        assert match(matcher, "^[AS1 AS2]+$", (1, 2, 1)).matched


class TestAdvanced:
    def test_asn_range_token(self, matcher):
        regex = "^AS64512-AS65534$"
        assert match(matcher, regex, (64512,)).matched
        assert match(matcher, regex, (65000,)).matched
        assert not match(matcher, regex, (66000,)).matched

    def test_same_pattern_plus(self, matcher):
        regex = "^AS1 [AS2 AS3]~+$"
        assert match(matcher, regex, (1, 2, 2)).matched
        assert match(matcher, regex, (1, 3, 3, 3)).matched
        assert not match(matcher, regex, (1, 2, 3)).matched  # must be SAME AS

    def test_same_pattern_star_empty_ok(self, matcher):
        regex = "^AS1 .~* AS9$"
        assert match(matcher, regex, (1, 9)).matched
        assert match(matcher, regex, (1, 5, 5, 9)).matched
        assert not match(matcher, regex, (1, 5, 6, 9)).matched

    def test_overlapping_tokens_product(self, matcher):
        # 10 matches both AS10 and AS-X: product must explore both symbols.
        regex = "^AS-X AS10$"
        assert match(matcher, regex, (11, 10)).matched
        assert match(matcher, regex, (10, 10)).matched

    def test_product_cap_flags_approximate(self):
        ir, _ = parse_dump_text("as-set: AS-X\nmembers: AS1\n", "TEST")
        matcher = AsPathMatcher(QueryEngine(ir), product_cap=2)
        result = match(matcher, "^(AS1 | AS-X | .){6}$", (1, 1, 1, 1, 1, 1))
        assert result.approximate
        assert result.matched  # found within the sampled candidates

    def test_compile_cached(self, matcher):
        node = parse_as_path_regex("^AS1$")
        assert matcher.compile(node) is matcher.compile(node)

    def test_empty_path_with_star(self, matcher):
        assert match(matcher, "^.*$", ()).matched
