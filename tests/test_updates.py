"""Tests for BGP update streams and incremental verification."""

import pytest

from repro.bgp.table import RouteEntry
from repro.bgp.updates import (
    StreamVerifier,
    UpdateEntry,
    parse_update_text,
    synthesize_updates,
)
from repro.net.prefix import Prefix


def announce(prefix="10.0.0.0/16", path=(1, 2), ts=100):
    return UpdateEntry(ts, "A", "rrc00", path[0], Prefix.parse(prefix), tuple(path))


def withdraw(prefix="10.0.0.0/16", peer=1, ts=200):
    return UpdateEntry(ts, "W", "rrc00", peer, Prefix.parse(prefix))


class TestUpdateFormat:
    def test_announce_roundtrip(self):
        update = announce()
        (parsed,) = list(parse_update_text(update.to_line()))
        assert parsed == update

    def test_withdraw_roundtrip(self):
        update = withdraw()
        (parsed,) = list(parse_update_text(update.to_line()))
        assert parsed == update
        assert parsed.as_path == ()

    def test_malformed_skipped(self):
        text = "junk\nBGP4MP|x|A|c|1|10.0.0.0/8|1 2|IGP\nTABLE_DUMP2|1|B|c|1|10.0.0.0/8|1|IGP\n"
        assert list(parse_update_text(text)) == []

    def test_withdraw_has_no_route_entry(self):
        with pytest.raises(ValueError):
            withdraw().to_route_entry()

    def test_announce_to_route_entry(self):
        entry = announce().to_route_entry()
        assert isinstance(entry, RouteEntry)
        assert entry.as_path == (1, 2)


class TestSynthesize:
    def table(self):
        return [
            RouteEntry("rrc00", 1, Prefix.parse(f"10.{i}.0.0/16"), (1, 2, 3))
            for i in range(100)
        ]

    def test_flaps_generate_pairs(self):
        updates = synthesize_updates(
            self.table(), flap_probability=1.0, path_change_probability=0.0
        )
        kinds = [update.kind for update in updates]
        assert kinds.count("W") == 100
        assert kinds.count("A") == 100

    def test_timestamp_ordered(self):
        updates = synthesize_updates(self.table(), flap_probability=0.5)
        stamps = [update.timestamp for update in updates]
        assert stamps == sorted(stamps)

    def test_path_changes_reannounce_different_path(self):
        updates = synthesize_updates(
            self.table(), flap_probability=0.0, path_change_probability=1.0
        )
        assert updates
        for update in updates:
            assert update.kind == "A"
            assert update.as_path != (1, 2, 3)

    def test_deterministic(self):
        left = synthesize_updates(self.table(), seed=3)
        right = synthesize_updates(self.table(), seed=3)
        assert left == right


class TestStreamVerifier:
    def test_rib_tracking(self, tiny_verifier):
        stream = StreamVerifier(tiny_verifier)
        stream.apply(announce(ts=1))
        assert stream.rib
        stream.apply(withdraw(ts=2))
        assert not stream.rib
        assert (stream.announcements, stream.withdrawals) == (1, 1)

    def test_implicit_withdrawal_counted(self, tiny_verifier):
        stream = StreamVerifier(tiny_verifier)
        stream.apply(announce(ts=1, path=(1, 2)))
        stream.apply(announce(ts=2, path=(1, 5, 2)))
        assert stream.implicit_withdrawals == 1
        assert stream.rib[("rrc00", 1, Prefix.parse("10.0.0.0/16"))] == (1, 5, 2)

    def test_run_over_synthetic_stream(self, tiny_verifier, tiny_routes):
        updates = synthesize_updates(tiny_routes[:500], flap_probability=0.3)
        stats = StreamVerifier(tiny_verifier).run(updates)
        assert stats.announcements > 0
        assert stats.withdrawals > 0
        assert sum(stats.hop_statuses.values()) > 0

    def test_announcement_verification_matches_table(self, tiny_verifier, tiny_routes):
        entry = next(e for e in tiny_routes if e.as_set is None and len(e.as_path) > 2)
        table_report = tiny_verifier.verify_entry(entry)
        update = UpdateEntry(
            1, "A", entry.collector, entry.peer_asn, entry.prefix, entry.as_path
        )
        stream_report = StreamVerifier(tiny_verifier).apply(update)
        assert [h.status for h in stream_report.hops] == [
            h.status for h in table_report.hops
        ]
