"""Tests for the BGPq4-class baseline."""

import pytest

from repro.baseline.bgpq4 import (
    Bgpq4Resolver,
    bgpq4_skip_census,
    is_filter_compatible,
    is_rule_compatible,
)
from repro.irr.dump import parse_dump_text
from repro.rpsl.filter import parse_filter_text
from repro.rpsl.policy import parse_policy

DUMP = """
as-set:  AS-CUST
members: AS10, AS20

route-set: RS-X
members:   192.0.2.0/24, 10.0.0.0/8^+, 172.16.0.0/12^-, AS30

route:   10.10.0.0/16
origin:  AS10

route:   10.20.0.0/16
origin:  AS20

route6:  2001:db8::/32
origin:  AS10

route:   10.30.0.0/16
origin:  AS30
"""


@pytest.fixture(scope="module")
def resolver():
    ir, _ = parse_dump_text(DUMP, "TEST")
    return Bgpq4Resolver(ir)


class TestCompatibility:
    @pytest.mark.parametrize(
        "text", ["ANY", "PeerAS", "AS1", "AS-FOO", "RS-X", "{10.0.0.0/8}"]
    )
    def test_compatible_filters(self, text):
        assert is_filter_compatible(parse_filter_text(text))

    @pytest.mark.parametrize(
        "text",
        [
            "AS1 AND AS2",
            "AS1 OR AS2",
            "NOT AS1",
            "<^AS1$>",
            "community(65000:1)",
            "FLTR-MARTIAN",
        ],
    )
    def test_incompatible_filters(self, text):
        assert not is_filter_compatible(parse_filter_text(text))

    def test_compatible_rule(self):
        assert is_rule_compatible(parse_policy("import", "from AS1 accept AS-FOO"))

    def test_structured_policy_incompatible(self):
        rule = parse_policy("import", "from AS1 accept ANY REFINE from AS1 accept AS2")
        assert not is_rule_compatible(rule)

    def test_census(self):
        ir, _ = parse_dump_text(
            "aut-num: AS1\nimport: from AS2 accept ANY\n"
            "import: from AS2 accept <^AS2$>\n"
            "import: from AS2 accept NONSENSE AND\n",
            "T",
        )
        census = bgpq4_skip_census(ir)
        assert census == {"total": 3, "skipped": 2}

    def test_rpslyzer_skips_fewer_than_bgpq4(self, tiny_ir):
        from repro.core.verify import rule_skip_census

        ours = rule_skip_census(tiny_ir)
        theirs = bgpq4_skip_census(tiny_ir)
        assert ours["skipped"] <= theirs["skipped"]


class TestResolver:
    def test_resolve_asn(self, resolver):
        assert [str(p) for p in resolver.resolve("AS10")] == ["10.10.0.0/16"]

    def test_resolve_asn_v6(self, resolver):
        assert [str(p) for p in resolver.resolve("AS10", version=6)] == ["2001:db8::/32"]

    def test_resolve_as_set(self, resolver):
        prefixes = [str(p) for p in resolver.resolve("AS-CUST")]
        assert prefixes == ["10.10.0.0/16", "10.20.0.0/16"]

    def test_resolve_route_set(self, resolver):
        prefixes = [str(p) for p in resolver.resolve("RS-X")]
        # ^- members are excluded (exclusive more-specifics have no base);
        # AS30's route objects are included.
        assert "192.0.2.0/24" in prefixes
        assert "10.0.0.0/8" in prefixes
        assert "10.30.0.0/16" in prefixes
        assert "172.16.0.0/12" not in prefixes

    def test_resolve_unknown_name_raises(self, resolver):
        with pytest.raises(ValueError):
            resolver.resolve("FLTR-MARTIAN")
        with pytest.raises(ValueError):
            resolver.resolve("banana")

    def test_empty_for_unknown_asn(self, resolver):
        assert resolver.resolve("AS999") == []

    def test_render_plain(self, resolver):
        text = resolver.render_prefix_list("AS-CUST")
        assert text.splitlines() == ["10.10.0.0/16", "10.20.0.0/16"]

    def test_render_junos(self, resolver):
        text = resolver.render_prefix_list("AS-CUST", style="junos")
        assert "prefix-list AS-CUST" in text
        assert "    10.10.0.0/16;" in text

    def test_render_cisco(self, resolver):
        text = resolver.render_prefix_list("AS10", style="cisco")
        assert text.splitlines()[0] == "no ip prefix-list AS10"
        assert "ip prefix-list AS10 permit 10.10.0.0/16" in text

    def test_render_unknown_style(self, resolver):
        with pytest.raises(ValueError):
            resolver.render_prefix_list("AS10", style="htmlx")
