"""Property suite for the radix-trie prefix engine.

The contract: :class:`RouteTrie` and :class:`OpTrie` answer every query
identically to :class:`NaiveRouteIndex` / the dict-walk oracle — the
pre-trie algorithms preserved verbatim.  Hypothesis drives both engines
over arbitrary IPv4+IPv6 prefix sets (including the degenerate ``/0``
and max-length corners) and compares insert/lookup/ancestor/descendant
answers; the nightly CI profile raises the example budget.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prefixtrie import NaiveRouteIndex, RouteTrieBuilder
from repro.core.query import PrefixOpIndex
from repro.net.prefix import Prefix, RangeOp, RangeOpKind

# -- strategies -------------------------------------------------------------


@st.composite
def prefixes(draw, version: int | None = None) -> Prefix:
    """An arbitrary canonical prefix, both families, all lengths."""
    v = draw(st.sampled_from([4, 6])) if version is None else version
    maxlen = 32 if v == 4 else 128
    length = draw(st.integers(min_value=0, max_value=maxlen))
    network = draw(st.integers(min_value=0, max_value=(1 << maxlen) - 1))
    shift = maxlen - length
    return Prefix(v, (network >> shift) << shift, length)


@st.composite
def range_ops(draw) -> RangeOp:
    """An arbitrary range operator, bounds beyond any real length included."""
    kind = draw(st.sampled_from(list(RangeOpKind)))
    if kind is RangeOpKind.EXACT:
        n = draw(st.integers(min_value=0, max_value=140))
        return RangeOp(kind, n, n)
    if kind is RangeOpKind.RANGE:
        low = draw(st.integers(min_value=0, max_value=140))
        high = draw(st.integers(min_value=low, max_value=150))
        return RangeOp(kind, low, high)
    return RangeOp(kind)


pairs = st.lists(
    st.tuples(prefixes(), st.integers(min_value=1, max_value=30)),
    min_size=0,
    max_size=60,
)


def _engines(route_pairs):
    builder = RouteTrieBuilder()
    naive = NaiveRouteIndex()
    for prefix, origin in route_pairs:
        builder.add(prefix, origin)
        naive.add(prefix, origin)
    return builder.build(), naive


def _probe_pool(route_pairs, extra):
    """Declared prefixes + arbitrary ones: ancestors/exacts get exercised."""
    return [prefix for prefix, _ in route_pairs] + list(extra)


# -- RouteTrie vs NaiveRouteIndex ------------------------------------------


@given(pairs, st.lists(prefixes(), max_size=10), range_ops(), st.integers(1, 35))
def test_match_queries_agree(route_pairs, extra, op, asn):
    trie, naive = _engines(route_pairs)
    for probe in _probe_pool(route_pairs, extra):
        args = (probe.version, probe.network, probe.length, op)
        assert trie.match_origin(asn, *args) == naive.match_origin(asn, *args)
        assert trie.match_any(*args) == naive.match_any(*args)
        members = frozenset(range(asn, asn + 3))
        assert trie.match_members(members, *args) == naive.match_members(
            members, *args
        )


@given(pairs, st.lists(prefixes(), max_size=10))
def test_exact_and_ancestor_queries_agree(route_pairs, extra):
    trie, naive = _engines(route_pairs)
    for probe in _probe_pool(route_pairs, extra):
        args = (probe.version, probe.network, probe.length)
        assert trie.has_exact(*args) == naive.has_exact(*args)
        assert trie.exact_origins(*args) == naive.exact_origins(*args)
        trie_cover = {(pl, frozenset(o)) for pl, o in trie.covering_origins(*args)}
        naive_cover = {(pl, frozenset(o)) for pl, o in naive.covering_origins(*args)}
        assert trie_cover == naive_cover


@given(pairs, st.lists(prefixes(), max_size=6))
def test_descendant_enumeration_agrees(route_pairs, extra):
    trie, naive = _engines(route_pairs)
    for probe in _probe_pool(route_pairs, extra):
        args = (probe.version, probe.network, probe.length)
        assert dict(trie.covered(*args)) == dict(naive.covered(*args))


@given(pairs)
def test_per_origin_tables_agree(route_pairs):
    trie, naive = _engines(route_pairs)
    assert list(trie.origins()) == list(naive.origins())
    for _, origin in route_pairs:
        assert trie.has_origin(origin) == naive.has_origin(origin)
        assert trie.origin_keys(origin) == naive.origin_keys(origin)
    assert not trie.has_origin(10**9)
    assert trie.origin_keys(10**9) == ()
    assert dict(trie.iter_exact()) == dict(naive.iter_exact())
    assert trie.stats()["prefixes"] == naive.stats()["prefixes"]
    assert trie.stats()["origins"] == naive.stats()["origins"]


@given(pairs, st.lists(prefixes(), max_size=8), range_ops())
@settings(max_examples=30)
def test_pickle_roundtrip_preserves_answers(route_pairs, extra, op):
    trie, _ = _engines(route_pairs)
    clone = pickle.loads(pickle.dumps(trie))
    assert clone.stats() == trie.stats()
    for probe in _probe_pool(route_pairs, extra):
        args = (probe.version, probe.network, probe.length)
        assert clone.exact_origins(*args) == trie.exact_origins(*args)
        assert clone.match_any(*args, op) == trie.match_any(*args, op)


# -- OpTrie (via PrefixOpIndex) vs the dict-walk oracle ---------------------


@given(
    st.lists(st.tuples(prefixes(), range_ops()), max_size=50),
    st.lists(prefixes(), max_size=10),
    st.one_of(st.none(), range_ops()),
)
def test_prefix_op_index_matches_naive_walk(entries, extra, override):
    index = PrefixOpIndex()
    for prefix, op in entries:
        index.add(prefix, op)
    probe_pool = [prefix for prefix, _ in entries] + list(extra)
    for probe in probe_pool:
        assert index.matches(probe, override) == index._matches_naive(
            probe, override
        ), (probe, override)


@given(st.lists(st.tuples(prefixes(), range_ops()), max_size=40))
@settings(max_examples=30)
def test_prefix_op_index_pickle_compat(entries):
    index = PrefixOpIndex()
    for prefix, op in entries:
        index.add(prefix, op)
    clone = pickle.loads(pickle.dumps(index))
    assert len(clone) == len(index)
    for probe, _ in entries:
        assert clone.matches(probe) == index.matches(probe)
    # the dict view reconstructs from the trie (bounds may clamp at 255,
    # unreachable for real prefixes)
    assert clone.entries.keys() == index.entries.keys()


# -- degenerate corners (explicit, not property-driven) ---------------------


def test_default_route_and_host_routes_coexist():
    builder = RouteTrieBuilder()
    builder.add(Prefix(4, 0, 0), 1)  # 0.0.0.0/0
    builder.add(Prefix(4, (1 << 32) - 1, 32), 2)  # 255.255.255.255/32
    builder.add(Prefix(6, 0, 0), 3)  # ::/0
    builder.add(Prefix(6, (1 << 128) - 1, 128), 4)  # ff..ff/128
    trie = builder.build()
    assert trie.exact_origins(4, 0, 0) == {1}
    assert trie.exact_origins(4, (1 << 32) - 1, 32) == {2}
    assert trie.exact_origins(6, 0, 0) == {3}
    assert trie.exact_origins(6, (1 << 128) - 1, 128) == {4}
    plus = RangeOp(RangeOpKind.PLUS)
    # /0^+ covers everything in its family
    assert trie.match_origin(1, 4, 0xC0000200, 24, plus)
    assert trie.match_origin(3, 6, 0x20010DB8 << 96, 32, plus)
    assert not trie.match_origin(1, 6, 0, 0, plus)  # families are disjoint
    # a max-length probe walks to the bottom without shifting past it
    assert trie.match_origin(2, 4, (1 << 32) - 1, 32, plus)
    assert trie.match_origin(4, 6, (1 << 128) - 1, 128, plus)


def test_empty_trie_answers_negative():
    trie = RouteTrieBuilder().build()
    none = RangeOp()
    assert not trie.has_origin(1)
    assert not trie.match_any(4, 0, 0, none)
    assert not trie.match_origin(1, 6, 0, 128, RangeOp(RangeOpKind.PLUS))
    assert trie.exact_origins(4, 0, 0) == frozenset()
    assert trie.covering_origins(6, 0, 128) == []
    assert list(trie.covered(4, 0, 0)) == []
    assert trie.stats()["prefixes"] == 0


def test_duplicate_adds_are_idempotent():
    builder = RouteTrieBuilder()
    naive = NaiveRouteIndex()
    for _ in range(3):
        builder.add(Prefix(4, 0xC0000200, 24), 65000)
        naive.add(Prefix(4, 0xC0000200, 24), 65000)
    trie = builder.build()
    assert trie.stats()["prefixes"] == 1
    assert trie.exact_origins(4, 0xC0000200, 24) == {65000}
    assert trie.origin_keys(65000) == naive.origin_keys(65000)
