"""A corpus of real-world-style RPSL, mostly lifted from RFC 2622 and the
paper, parsed and structurally asserted — the parser's fidelity anchor."""

import pytest

from repro.irr.dump import parse_dump_text
from repro.net.prefix import RangeOpKind
from repro.rpsl.filter import (
    FilterAnd,
    FilterAsn,
    FilterCommunity,
    FilterPrefixSet,
    parse_filter_text,
)
from repro.rpsl.policy import PolicyExcept, PolicyRefine, PolicyTerm, parse_policy


class TestRfc2622Sets:
    def test_as_set_example(self):
        # RFC 2622 §5.1
        ir, errors = parse_dump_text(
            "as-set: as-foo\nmembers: AS1, AS2, as-bar\n", "T"
        )
        assert not errors.issues
        as_set = ir.as_sets["AS-FOO"]
        assert as_set.members_asn == [1, 2]
        assert as_set.members_set == ["AS-BAR"]

    def test_route_set_examples(self):
        # RFC 2622 §5.2: rs-foo and rs-bar with range operators
        ir, errors = parse_dump_text(
            "route-set: rs-foo\nmembers: 128.9.0.0/16, 128.9.0.0/24\n\n"
            "route-set: rs-bar\nmembers: 5.0.0.0/8^+, 30.0.0.0/8^24-32, rs-foo^+\n",
            "T",
        )
        assert not errors.issues
        bar = ir.route_sets["RS-BAR"]
        ops = [op.kind for _, op in bar.prefix_members]
        assert ops == [RangeOpKind.PLUS, RangeOpKind.RANGE]
        assert bar.name_members[0].name == "RS-FOO"
        assert bar.name_members[0].op.kind is RangeOpKind.PLUS

    def test_hierarchical_set_names(self):
        ir, errors = parse_dump_text(
            "as-set: AS1:AS-CUSTOMERS\nmembers: AS2\n\n"
            "route-set: AS1:RS-EXPORT:AS2\nmembers: 128.8.0.0/16\n",
            "T",
        )
        assert not errors.issues
        assert "AS1:AS-CUSTOMERS" in ir.as_sets
        assert "AS1:RS-EXPORT:AS2" in ir.route_sets


class TestRfc2622Policies:
    def test_simple_pref(self):
        # RFC 2622 §6.1 example 1
        rule = parse_policy("import", "from AS2 action pref = 1; accept { 128.9.0.0/16 }")
        factor = rule.expr.factors[0]
        assert factor.peerings[0].actions[0].values == ("1",)
        assert isinstance(factor.filter, FilterPrefixSet)

    def test_action_list(self):
        # RFC 2622 §6.1.1: med and community actions
        rule = parse_policy(
            "import",
            "from AS2 action pref = 10; med = 0; community.append(10250, 3561:10); accept { 128.9.0.0/16 }",
        )
        actions = rule.expr.factors[0].peerings[0].actions
        assert [a.attribute for a in actions] == ["pref", "med", "community"]
        assert actions[2].values == ("10250", "3561:10")

    def test_nested_except_inside_braces(self):
        # RFC 2622 §6.6, verbatim shape
        rule = parse_policy(
            "import",
            """from AS1 action pref = 1; accept as-foo;
               except {
                 from AS2 action pref = 2; accept AS226;
                 except {
                   from AS3 action pref = 3; accept {128.9.0.0/16};
                 }
               }""",
        )
        assert isinstance(rule.expr, PolicyExcept)
        middle = rule.expr.rest
        assert isinstance(middle, PolicyExcept)
        inner = middle.rest
        assert isinstance(inner, PolicyTerm)
        assert isinstance(inner.factors[0].filter, FilterPrefixSet)

    def test_nested_except_roundtrip(self):
        rule = parse_policy(
            "import",
            "from AS1 accept as-foo; except { from AS2 accept AS226; "
            "except { from AS3 accept {128.9.0.0/16}; } }",
        )
        once = rule.to_rpsl()
        assert parse_policy("import", once).to_rpsl() == once

    def test_refine_with_community_filter(self):
        # RFC 2622 §6.6 refine example
        rule = parse_policy(
            "import",
            "{ from AS-ANY action pref = 1; accept community(3560:10); } refine "
            "{ from AS1 accept AS1; from AS2 accept AS2; }",
        )
        assert isinstance(rule.expr, PolicyRefine)
        head = rule.expr.term.factors[0]
        assert isinstance(head.filter, FilterCommunity)
        assert len(rule.expr.rest.factors) == 2

    def test_as_path_regex_filter(self):
        # RFC 2622 §5.4 style
        node = parse_filter_text("<^AS1 .* AS2$> AND AS226")
        assert isinstance(node, FilterAnd)
        assert node.right == FilterAsn(226)

    def test_protocol_qualified_rule(self):
        # RFC 2622 §6.2: protocol injection
        rule = parse_policy(
            "import",
            "protocol OSPF into RIP from AS1 accept {128.9.0.0/16}",
        )
        assert (rule.protocol, rule.into_protocol) == ("OSPF", "RIP")


class TestPaperExamples:
    def test_as38639_export(self):
        rule = parse_policy("export", "to AS4713 announce AS-HANABI")
        assert rule.expr.factors[0].filter.name == "AS-HANABI"

    def test_as14595_compound(self):
        rule = parse_policy(
            "import",
            "afi any.unicast from AS13911 accept ANY AND NOT {0.0.0.0/0, ::0/0} "
            "REFINE afi ipv4.unicast from AS13911 action pref=200; "
            "accept <^AS13911 AS6327+$>",
            multiprotocol=True,
        )
        assert isinstance(rule.expr, PolicyRefine)
        assert rule.expr.afis[0].matches_version(4)
        assert not rule.expr.afis[0].matches_version(6)

    def test_as8323_shared_filter(self):
        rule = parse_policy(
            "import",
            "from AS8267:AS-Krakow-1014 action pref=50; "
            "from AS8267:AS-Krakow-1015 action pref=50; accept PeerAS",
        )
        factor = rule.expr.factors[0]
        assert len(factor.peerings) == 2
        assert all(pa.actions for pa in factor.peerings)

    def test_whois_route_object(self):
        ir, errors = parse_dump_text(
            "route:      8.8.8.0/24\norigin:     AS15169\ndescr:      Google\n", "RADB"
        )
        assert not errors.issues
        route = ir.route_objects[0]
        assert (str(route.prefix), route.origin) == ("8.8.8.0/24", 15169)

    def test_as199284_monster(self):
        rule = parse_policy(
            "import",
            """afi any {
    from AS-ANY action community.delete(64628:10, 64628:11, 64628:12);
    accept ANY;
} REFINE afi any {
    from AS-ANY action pref = 65535; accept community(65535:0);
    from AS-ANY action pref = 65435; accept ANY;
} REFINE afi any {
    from AS-ANY accept NOT AS199284^+;
} REFINE afi ipv4 {
    from AS-ANY accept NOT fltr-martian;
} REFINE afi ipv4 {
    from AS-ANY accept { 0.0.0.0/0^24 } AND NOT community(65535:666);
    from AS-ANY accept { 0.0.0.0/0^24-32 } AND community(65535:666);
} REFINE afi ipv6 {
    from AS-ANY accept { 2000::/3^4-48 } AND NOT community(65535:666);
} REFINE afi any {
    from AS15725 action community .= { 64628:20 };
    accept AS-IKS AND <AS-IKS+$>;
    from AS199284:AS-UP action community .= { 64628:21 };
    accept ANY;
    from AS-ANY action community .= { 64628:22 };
    accept PeerAS and <^PeerAS+$>;
} REFINE afi any {
    from AS-ANY EXCEPT (AS40027 OR AS63293 OR AS65535)
    accept ANY;
}""",
            multiprotocol=True,
        )
        # seven chained REFINEs
        depth = 0
        expr = rule.expr
        while isinstance(expr, PolicyRefine):
            depth += 1
            expr = expr.rest
        assert depth == 7
        once = rule.to_rpsl()
        assert parse_policy("import", once, multiprotocol=True).to_rpsl() == once
