"""Differential tests for the compile-once verification index.

The contract under test: verification over a :class:`CompiledIndex` is
*bit-identical* to the lazy path — same :class:`VerificationStats`, same
per-route reports — serial, multi-process, and under injected worker
death.  Plus the cache envelope (digest keying, format/version refusal,
mmap attach/release lifecycle) and the evidence-merging fast path the
compilation pass leans on.

The trie-vs-legacy differential at the bottom scales through
``RPSLYZER_DIFF_ROUTES`` / ``RPSLYZER_DIFF_SEEDS`` — the nightly CI job
raises both to fuzz fresh worlds at higher route counts.
"""

import os
import pickle

import pytest

from repro.bgp.routegen import collector_routes
from repro.chaos.faults import KillWorkerChunk
from repro.core.compiled import (
    CompiledIndex,
    IndexCacheError,
    compile_index,
    get_or_compile,
    index_cache_path,
    ir_digest,
    load_index,
    save_index,
)
from repro.core.filter_match import MAX_ITEMS, _merge_items
from repro.core.parallel import verify_table
from repro.core.report import ItemKind, ReportItem
from repro.core.verify import Verifier
from repro.irr.synth import build_world, tiny_config
from repro.obs import MetricsRegistry, use_registry


@pytest.fixture(scope="module")
def index(tiny_ir):
    return compile_index(tiny_ir, digest=ir_digest(tiny_ir))


@pytest.fixture(scope="module")
def lazy_stats(tiny_ir, tiny_world, tiny_routes):
    return verify_table(tiny_ir, tiny_world.topology, tiny_routes, processes=1)


def _assert_stats_equal(actual, expected):
    assert actual.summary() == expected.summary()
    assert actual.hop_totals == expected.hop_totals
    assert actual.route_single_status == expected.route_single_status
    assert actual.per_as.keys() == expected.per_as.keys()
    for asn in expected.per_as:
        assert actual.per_as[asn].counts == expected.per_as[asn].counts
    assert actual.per_pair.keys() == expected.per_pair.keys()
    for key in expected.per_pair:
        assert actual.per_pair[key].counts == expected.per_pair[key].counts


class TestCompilation:
    def test_tables_are_populated(self, index, tiny_ir):
        stats = index.stats()
        assert stats["as_sets"] >= len(tiny_ir.as_sets)
        assert stats["route_index"] > 0
        assert stats["origins"] > 0
        assert index.compile_seconds > 0

    def test_artifact_is_picklable(self, index):
        clone = pickle.loads(pickle.dumps(index))
        assert isinstance(clone, CompiledIndex)
        assert clone.stats() == index.stats()
        assert clone.as_sets.keys() == index.as_sets.keys()

    def test_digest_is_content_addressed(self, tiny_ir):
        assert ir_digest(tiny_ir) == ir_digest(tiny_ir)
        assert len(ir_digest(tiny_ir)) == 64

    def test_adopting_engines_do_not_mutate_the_artifact(
        self, index, tiny_ir, tiny_world, tiny_routes
    ):
        before = {
            "as_sets": dict(index.as_sets),
            "regexes": dict(index.aspath_regexes),
        }
        verifier = Verifier(tiny_ir, tiny_world.topology, index=index)
        for entry in tiny_routes[:200]:
            verifier.verify_entry(entry)
        assert index.as_sets == before["as_sets"]
        assert index.aspath_regexes == before["regexes"]


class TestDifferentialIdentity:
    def test_serial_compiled_matches_lazy(
        self, tiny_ir, tiny_world, tiny_routes, index, lazy_stats
    ):
        compiled = verify_table(
            tiny_ir, tiny_world.topology, tiny_routes, processes=1, index=index
        )
        _assert_stats_equal(compiled, lazy_stats)

    def test_per_route_reports_match_lazy(
        self, tiny_ir, tiny_world, tiny_routes, index
    ):
        lazy = Verifier(tiny_ir, tiny_world.topology)
        compiled = Verifier(tiny_ir, tiny_world.topology, index=index)
        for entry in tiny_routes[:500]:
            assert compiled.verify_entry(entry) == lazy.verify_entry(entry)

    def test_parallel_compiled_matches_lazy(
        self, tiny_ir, tiny_world, tiny_routes, index, lazy_stats
    ):
        parallel = verify_table(
            tiny_ir,
            tiny_world.topology,
            tiny_routes,
            processes=2,
            chunk_size=200,
            index=index,
        )
        _assert_stats_equal(parallel, lazy_stats)

    def test_parallel_auto_compiles_when_no_index_given(
        self, tiny_ir, tiny_world, tiny_routes, lazy_stats
    ):
        parallel = verify_table(
            tiny_ir, tiny_world.topology, tiny_routes, processes=2, chunk_size=200
        )
        _assert_stats_equal(parallel, lazy_stats)

    def test_identical_under_worker_death(
        self, tiny_ir, tiny_world, tiny_routes, index, lazy_stats
    ):
        chaotic = verify_table(
            tiny_ir,
            tiny_world.topology,
            tiny_routes,
            processes=2,
            chunk_size=200,
            index=index,
            fault_hook=KillWorkerChunk(2),
        )
        # Degradation events differ by design (the run *was* degraded);
        # every verification aggregate must still be exact.
        assert chaotic.degradation.events()
        assert chaotic.hop_totals == lazy_stats.hop_totals
        assert chaotic.routes_total == lazy_stats.routes_total
        assert chaotic.route_single_status == lazy_stats.route_single_status


class TestOnDiskCache:
    def test_save_load_roundtrip(self, index, tmp_path):
        path = tmp_path / "index.pkl"
        save_index(index, path)
        loaded = load_index(path, expect_digest=index.digest)
        assert loaded.stats() == index.stats()

    def test_load_rejects_digest_mismatch(self, index, tmp_path):
        path = tmp_path / "index.pkl"
        save_index(index, path)
        with pytest.raises(IndexCacheError, match="digest mismatch"):
            load_index(path, expect_digest="0" * 64)

    def test_load_rejects_foreign_format(self, tmp_path):
        path = tmp_path / "bogus.pkl"
        path.write_bytes(pickle.dumps({"format": "something-else/9"}))
        with pytest.raises(IndexCacheError, match="not a compiled index"):
            load_index(path)

    def test_load_rejects_version_skew(self, index, tmp_path, monkeypatch):
        path = tmp_path / "index.pkl"
        save_index(index, path)
        import repro

        monkeypatch.setattr(repro, "__version__", "0.0.0-other")
        with pytest.raises(IndexCacheError, match="compiled by repro"):
            load_index(path)

    def test_get_or_compile_miss_then_hit(self, tiny_ir, tmp_path):
        with use_registry(MetricsRegistry()) as registry:
            first = get_or_compile(tiny_ir, cache_dir=tmp_path)
            assert registry.counter("index_cache_total", result="miss").value == 1
            second = get_or_compile(tiny_ir, cache_dir=tmp_path)
            assert registry.counter("index_cache_total", result="hit").value == 1
        assert first.stats() == second.stats()
        assert index_cache_path(ir_digest(tiny_ir), tmp_path).exists()

    def test_corrupt_cache_degrades_to_recompile(self, tiny_ir, tmp_path):
        path = index_cache_path(ir_digest(tiny_ir), tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle")
        index = get_or_compile(tiny_ir, cache_dir=tmp_path)
        assert index.stats()["route_index"] > 0
        # ... and the recompile heals the cache entry in place.
        assert load_index(path).stats() == index.stats()

    def test_use_cache_false_never_touches_disk(self, tiny_ir, tmp_path):
        get_or_compile(tiny_ir, cache_dir=tmp_path, use_cache=False)
        assert not index_cache_path(ir_digest(tiny_ir), tmp_path).exists()


class TestMergeItems:
    def test_reuses_existing_tuples(self):
        items = (ReportItem.of(ItemKind.MATCH_FILTER_AS_PATH),)
        assert _merge_items(items, ()) is items
        assert _merge_items((), items) is items
        assert _merge_items((), ()) == ()

    def test_caps_at_max_items(self):
        left = tuple(
            ReportItem.of(ItemKind.UNRECORDED_AS_SET, name=f"AS-L{i}")
            for i in range(MAX_ITEMS - 2)
        )
        right = tuple(
            ReportItem.of(ItemKind.UNRECORDED_AS_SET, name=f"AS-R{i}")
            for i in range(5)
        )
        merged = _merge_items(left, right)
        assert len(merged) == MAX_ITEMS
        assert merged == (left + right)[:MAX_ITEMS]

    def test_full_left_side_short_circuits(self):
        left = tuple(
            ReportItem.of(ItemKind.UNRECORDED_AS_SET, name=f"AS-L{i}")
            for i in range(MAX_ITEMS)
        )
        right = (ReportItem.of(ItemKind.MATCH_FILTER_AS_PATH),)
        assert _merge_items(left, right) is left


# -- mmap envelope and descriptor lifecycle ---------------------------------

_PROC_FD = "/proc/self/fd"
needs_procfs = pytest.mark.skipif(
    not os.path.isdir(_PROC_FD), reason="needs /proc/self/fd (Linux procfs)"
)


def _fd_count() -> int:
    return len(os.listdir(_PROC_FD))


class TestMmapEnvelope:
    """The format-2 flat envelope: file-backed planes, explicit release."""

    def test_loaded_index_serves_identical_reports(
        self, index, tiny_ir, tiny_world, tiny_routes, tmp_path
    ):
        path = tmp_path / "index.rpslidx"
        save_index(index, path)
        loaded = load_index(path, expect_digest=index.digest)
        try:
            memory = Verifier(tiny_ir, tiny_world.topology, index=index)
            mapped = Verifier(tiny_ir, tiny_world.topology, index=loaded)
            for entry in tiny_routes[:300]:
                assert mapped.verify_entry(entry) == memory.verify_entry(entry)
        finally:
            loaded.close()

    def test_loaded_index_is_picklable_without_resource(self, index, tmp_path):
        path = tmp_path / "index.rpslidx"
        save_index(index, path)
        loaded = load_index(path)
        try:
            clone = pickle.loads(pickle.dumps(loaded))
        finally:
            loaded.close()
        assert clone.resource is None
        assert clone.stats() == index.stats()

    @needs_procfs
    def test_close_releases_the_mapping_descriptor(self, index, tmp_path):
        path = tmp_path / "index.rpslidx"
        save_index(index, path)
        base = _fd_count()
        loaded = load_index(path)
        assert _fd_count() == base + 1  # the mmap dup is the only new fd
        loaded.close()
        assert _fd_count() == base
        loaded.close()  # idempotent: no double-release, no error
        assert _fd_count() == base

    def test_queries_after_close_do_not_touch_dead_planes(self, index, tmp_path):
        path = tmp_path / "index.rpslidx"
        save_index(index, path)
        loaded = load_index(path)
        loaded.close()
        with pytest.raises((AttributeError, TypeError, ValueError)):
            loaded.route_trie.origins()


class TestSessionIndexLifecycle:
    """Sessions own (and must release) the mapping they attach."""

    @needs_procfs
    def test_fd_count_stable_across_open_close_cycles(self, tiny_ir, tmp_path):
        from repro.api import Session

        # Cycle 0 compiles and populates the cache (its save fd churn is
        # not the regression under test); cycles 1..n each mmap-attach.
        with Session(tiny_ir, cache_dir=tmp_path) as session:
            session.warm()
        base = _fd_count()
        for _ in range(3):
            session = Session(tiny_ir, cache_dir=tmp_path)
            session.warm()
            assert session.index is not None
            session.close()
            assert _fd_count() == base, "descriptor leaked by a session cycle"

    @needs_procfs
    def test_evict_index_releases_and_rewarm_reattaches(self, tiny_ir, tmp_path):
        from repro.api import Session

        with Session(tiny_ir, cache_dir=tmp_path) as session:
            session.warm()
        base = _fd_count()
        with Session(tiny_ir, cache_dir=tmp_path) as session:
            session.warm()
            first = session.index
            assert _fd_count() == base + 1
            session.evict_index()
            assert session.index is None
            assert _fd_count() == base
            session.warm()
            assert session.index is not None
            assert session.index is not first
            assert _fd_count() == base + 1
        assert _fd_count() == base

    def test_shared_index_is_not_closed_by_the_session(self, tiny_ir, index):
        from repro.api import Session

        with Session(tiny_ir, index=index) as session:
            session.warm()
            assert session.index is index
        # the caller-owned artifact stays live after session close
        assert index.route_trie.stats()["prefixes"] > 0


class TestDeltaSwapFdLifecycle:
    """apply_deltas must release the mmap the old index held."""

    @needs_procfs
    def test_swap_closes_the_old_mapping(self, tiny_ir, tiny_world, tmp_path):
        from repro.api import Session
        from repro.irr.history import ChurnConfig, evolve_with_journal

        with Session(tiny_ir, tiny_world.topology, cache_dir=tmp_path) as session:
            session.warm()
        base = _fd_count()
        with Session(tiny_ir, tiny_world.topology, cache_dir=tmp_path) as session:
            session.warm()
            assert session.index.resource is not None  # mmap-backed
            assert _fd_count() == base + 1
            _, journal = evolve_with_journal(session.ir, ChurnConfig(seed=3))
            report = session.apply_deltas(journal)
            assert not report
            # The patched index is heap-backed; the old mapping's fd must
            # be gone, not kept alive by a lingering reference.
            assert session.index.resource is None
            assert _fd_count() == base, "old mmap fd leaked across the swap"
            route = session.ir.route_objects[0]
            assert session.verify_route(
                str(route.prefix), (64500, route.origin)
            ).hops
        assert _fd_count() == base

    @needs_procfs
    def test_swap_under_query_load(self, tiny_ir, tiny_world, tmp_path):
        """Queries interleaved with swaps (serve's lock discipline) never
        leak a descriptor or read a dead plane."""
        import threading

        from repro.api import Session
        from repro.irr.history import ChurnConfig, evolve_with_journal

        with Session(tiny_ir, tiny_world.topology, cache_dir=tmp_path) as session:
            session.warm()
        base = _fd_count()
        lock = threading.Lock()  # serve serializes session access the same way
        failures: list = []
        with Session(tiny_ir, tiny_world.topology, cache_dir=tmp_path) as session:
            session.warm()
            routes = [
                (str(r.prefix), (64500, r.origin))
                for r in session.ir.route_objects[:20]
            ]
            stop = threading.Event()

            def hammer() -> None:
                while not stop.is_set():
                    prefix, as_path = routes[0]
                    try:
                        with lock:
                            session.verify_route(prefix, as_path)
                    except Exception as exc:  # noqa: BLE001 - collected
                        failures.append(exc)
                        return

            thread = threading.Thread(target=hammer)
            thread.start()
            try:
                serial = 1
                for epoch in range(3):
                    _, journal = evolve_with_journal(
                        session.ir,
                        ChurnConfig(seed=3),
                        epoch=epoch,
                        start_serial=serial,
                    )
                    with lock:
                        report = session.apply_deltas(journal)
                    assert not report
                    serial = max(journal.serials().values(), default=serial) + 1
            finally:
                stop.set()
                thread.join(timeout=30)
            assert not failures
            assert session.generation == 3
        assert _fd_count() == base, "descriptor leaked by swap-under-load"


# -- trie vs legacy engine, fresh worlds ------------------------------------

_DIFF_ROUTES = int(os.environ.get("RPSLYZER_DIFF_ROUTES", "1500"))
_DIFF_SEEDS = int(os.environ.get("RPSLYZER_DIFF_SEEDS", "2"))


class TestTrieLegacyDifferential:
    """The trie engine is bit-identical to the legacy dict engine.

    Each seed builds a fresh synthetic world; the legacy engine runs via
    ``RPSLYZER_PREFIX_ENGINE=naive`` on the lazy path, the trie engine
    both serially (compiled index) and pooled.  Nightly CI raises
    ``RPSLYZER_DIFF_ROUTES`` and ``RPSLYZER_DIFF_SEEDS``.
    """

    @pytest.mark.parametrize("seed", [7700 + i for i in range(_DIFF_SEEDS)])
    def test_trie_matches_legacy_serial_and_pooled(self, seed, monkeypatch):
        world = build_world(tiny_config(seed=seed))
        ir = world.registry().merged()
        routes = list(
            collector_routes(world.topology, world.announced, world.collectors)
        )[:_DIFF_ROUTES]
        assert routes, "world produced no collector routes"

        monkeypatch.setenv("RPSLYZER_PREFIX_ENGINE", "naive")
        legacy = verify_table(ir, world.topology, routes, processes=1)
        monkeypatch.delenv("RPSLYZER_PREFIX_ENGINE")

        index = compile_index(ir, digest=ir_digest(ir))
        trie_serial = verify_table(
            ir, world.topology, routes, processes=1, index=index
        )
        _assert_stats_equal(trie_serial, legacy)

        pooled = verify_table(
            ir,
            world.topology,
            routes,
            processes=2,
            chunk_size=max(1, len(routes) // 4),
            index=index,
        )
        _assert_stats_equal(pooled, legacy)

    def test_per_route_reports_identical_across_engines(self, monkeypatch):
        world = build_world(tiny_config(seed=7790))
        ir = world.registry().merged()
        routes = list(
            collector_routes(world.topology, world.announced, world.collectors)
        )[: min(500, _DIFF_ROUTES)]

        monkeypatch.setenv("RPSLYZER_PREFIX_ENGINE", "naive")
        legacy = Verifier(ir, world.topology)
        legacy_reports = [legacy.verify_entry(entry) for entry in routes]
        monkeypatch.delenv("RPSLYZER_PREFIX_ENGINE")

        trie = Verifier(ir, world.topology, index=compile_index(ir))
        for entry, expected in zip(routes, legacy_reports):
            assert trie.verify_entry(entry) == expected
