"""Tests for object-class parsing (paragraph → IR) and error recording."""

import io

from repro.ir.model import Ir
from repro.net.prefix import RangeOpKind
from repro.rpsl.errors import ErrorCollector, ErrorKind
from repro.rpsl.lexer import split_dump
from repro.rpsl.names import NameKind
from repro.rpsl.objects import collect_into_ir


def parse(text: str):
    errors = ErrorCollector()
    ir = collect_into_ir(split_dump(io.StringIO(text)), "TEST", errors)
    return ir, errors


class TestAutNum:
    def test_basic(self):
        ir, errors = parse(
            "aut-num: AS1\nas-name: ONE\nimport: from AS2 accept ANY\n"
            "export: to AS2 announce AS1\nmnt-by: MNT-ONE\n"
        )
        aut = ir.aut_nums[1]
        assert aut.as_name == "ONE"
        assert len(aut.imports) == 1
        assert len(aut.exports) == 1
        assert aut.mnt_by == ["MNT-ONE"]
        assert not errors.issues

    def test_mp_rules(self):
        ir, _ = parse(
            "aut-num: AS1\nmp-import: afi ipv6.unicast from AS2 accept ANY\n"
        )
        assert ir.aut_nums[1].imports[0].multiprotocol

    def test_bad_rule_recorded_good_rules_kept(self):
        ir, errors = parse(
            "aut-num: AS1\nimport: from AS2 accept ANY\nimport: from AS3 accept NONSENSE\n"
        )
        aut = ir.aut_nums[1]
        assert len(aut.imports) == 1
        assert len(aut.bad_rules) == 1
        assert errors.count_by_kind()[ErrorKind.SYNTAX] == 1

    def test_invalid_asn_dropped(self):
        ir, errors = parse("aut-num: ASX\n")
        assert not ir.aut_nums
        assert errors.count_by_kind()[ErrorKind.INVALID_ASN] == 1

    def test_stray_lines_are_syntax_errors(self):
        _, errors = parse("aut-num: AS1\n*** corrupted line\n")
        assert errors.count_by_kind()[ErrorKind.SYNTAX] == 1

    def test_member_of(self):
        ir, _ = parse("aut-num: AS1\nmember-of: AS-FOO, AS-BAR\n")
        assert ir.aut_nums[1].member_of == ["AS-FOO", "AS-BAR"]

    def test_duplicate_kept_first(self):
        ir, _ = parse(
            "aut-num: AS1\nas-name: FIRST\n\naut-num: AS1\nas-name: SECOND\n"
        )
        assert ir.aut_nums[1].as_name == "FIRST"


class TestAsSet:
    def test_members(self):
        ir, _ = parse("as-set: AS-FOO\nmembers: AS1, AS2, AS-BAR\n")
        as_set = ir.as_sets["AS-FOO"]
        assert as_set.members_asn == [1, 2]
        assert as_set.members_set == ["AS-BAR"]

    def test_name_uppercased(self):
        ir, _ = parse("as-set: as-foo\n")
        assert "AS-FOO" in ir.as_sets

    def test_any_member_flagged(self):
        ir, errors = parse("as-set: AS-FOO\nmembers: ANY\n")
        assert ir.as_sets["AS-FOO"].contains_any
        assert errors.count_by_kind()[ErrorKind.RESERVED_NAME] == 1

    def test_invalid_member_recorded(self):
        _, errors = parse("as-set: AS-FOO\nmembers: banana\n")
        assert errors.count_by_kind()[ErrorKind.SYNTAX] == 1

    def test_invalid_name_recorded_but_kept(self):
        ir, errors = parse("as-set: WRONG-NAME\nmembers: AS1\n")
        assert "WRONG-NAME" in ir.as_sets
        assert errors.count_by_kind()[ErrorKind.INVALID_AS_SET_NAME] == 1

    def test_mbrs_by_ref(self):
        ir, _ = parse("as-set: AS-FOO\nmbrs-by-ref: ANY\n")
        assert ir.as_sets["AS-FOO"].mbrs_by_ref == ["ANY"]


class TestRouteSet:
    def test_prefix_members_with_ops(self):
        ir, _ = parse("route-set: RS-X\nmembers: 10.0.0.0/8^16-24, 192.0.2.0/24\n")
        route_set = ir.route_sets["RS-X"]
        assert len(route_set.prefix_members) == 2
        assert route_set.prefix_members[0][1].kind is RangeOpKind.RANGE

    def test_name_members(self):
        ir, _ = parse("route-set: RS-X\nmembers: RS-Y, AS-FOO, AS174\n")
        kinds = [member.kind for member in ir.route_sets["RS-X"].name_members]
        assert kinds == [NameKind.ROUTE_SET, NameKind.AS_SET, NameKind.ASN]

    def test_name_member_with_op(self):
        ir, _ = parse("route-set: RS-X\nmembers: RS-Y^+\n")
        member = ir.route_sets["RS-X"].name_members[0]
        assert member.op.kind is RangeOpKind.PLUS

    def test_invalid_prefix_recorded(self):
        _, errors = parse("route-set: RS-X\nmembers: 10.0.0.0/99\n")
        assert errors.count_by_kind()[ErrorKind.INVALID_PREFIX] == 1

    def test_mp_members(self):
        ir, _ = parse("route-set: RS-X\nmp-members: 2001:db8::/32\n")
        assert ir.route_sets["RS-X"].prefix_members[0][0].version == 6


class TestRoute:
    def test_route4(self):
        ir, _ = parse("route: 10.0.0.0/8\norigin: AS1\nmnt-by: M1\n")
        route = ir.route_objects[0]
        assert (str(route.prefix), route.origin) == ("10.0.0.0/8", 1)

    def test_route6(self):
        ir, _ = parse("route6: 2001:db8::/32\norigin: AS1\n")
        assert ir.route_objects[0].prefix.version == 6

    def test_missing_origin_dropped(self):
        ir, errors = parse("route: 10.0.0.0/8\n")
        assert not ir.route_objects
        assert len(errors) == 1

    def test_bad_prefix_dropped(self):
        ir, errors = parse("route: banana\norigin: AS1\n")
        assert not ir.route_objects
        assert errors.count_by_kind()[ErrorKind.INVALID_PREFIX] == 1

    def test_member_of(self):
        ir, _ = parse("route: 10.0.0.0/8\norigin: AS1\nmember-of: RS-X\n")
        assert ir.route_objects[0].member_of == ["RS-X"]

    def test_duplicates_all_kept(self):
        ir, _ = parse(
            "route: 10.0.0.0/8\norigin: AS1\n\nroute: 10.0.0.0/8\norigin: AS2\n"
        )
        assert len(ir.route_objects) == 2


class TestPeeringAndFilterSets:
    def test_peering_set(self):
        ir, _ = parse("peering-set: PRNG-X\npeering: AS1\npeering: AS2 192.0.2.1\n")
        assert len(ir.peering_sets["PRNG-X"].peerings) == 2

    def test_peering_set_bad_peering_recorded(self):
        ir, errors = parse("peering-set: PRNG-X\npeering: banana\n")
        assert len(ir.peering_sets["PRNG-X"].peerings) == 0
        assert len(errors) == 1

    def test_filter_set(self):
        ir, _ = parse("filter-set: FLTR-X\nfilter: AS1 AND NOT {0.0.0.0/0}\n")
        assert ir.filter_sets["FLTR-X"].filter is not None

    def test_filter_set_mp_filter_fallback(self):
        ir, _ = parse("filter-set: FLTR-X\nmp-filter: ANY\n")
        assert ir.filter_sets["FLTR-X"].filter is not None

    def test_filter_set_missing_filter(self):
        ir, errors = parse("filter-set: FLTR-X\n")
        assert ir.filter_sets["FLTR-X"].filter is None
        assert len(errors) == 1


class TestDispatch:
    def test_unknown_classes_ignored(self):
        ir, errors = parse("person: John Doe\naddress: nowhere\n\nmntner: M1\n")
        assert ir.counts()["aut-num"] == 0
        assert not errors.issues

    def test_accumulation_into_existing_ir(self):
        errors = ErrorCollector()
        ir = Ir()
        collect_into_ir(split_dump(io.StringIO("aut-num: AS1\n")), "A", errors, ir)
        collect_into_ir(split_dump(io.StringIO("aut-num: AS2\n")), "B", errors, ir)
        assert set(ir.aut_nums) == {1, 2}
        assert ir.aut_nums[1].source == "A"
        assert ir.aut_nums[2].source == "B"
