"""Repository quality gates: docstring coverage and API hygiene.

These tests enforce the documentation contract mechanically: every public
module, class, and function in ``repro`` carries a docstring, every
``__all__`` entry resolves, and the packages import cleanly in isolation.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.net", "repro.rpsl", "repro.ir", "repro.irr",
    "repro.bgp", "repro.core", "repro.stats", "repro.baseline", "repro.tools",
    "repro.chaos",
]


def all_modules():
    names = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            names.append(f"{package_name}.{info.name}")
    # de-dup (subpackages appear twice)
    return sorted(set(names))


@pytest.mark.parametrize("module_name", all_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("module_name", all_modules())
def test_public_api_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        member = getattr(module, name, None)
        assert member is not None, f"{module_name}.__all__ lists missing {name!r}"
        if inspect.isclass(member) or inspect.isfunction(member):
            if member.__module__ != module_name:
                continue  # re-export; documented at its home
            if not (member.__doc__ and member.__doc__.strip()):
                undocumented.append(name)
            if inspect.isclass(member):
                for method_name, method in vars(member).items():
                    if method_name.startswith("_"):
                        continue
                    if not inspect.isfunction(method):
                        continue
                    if method.__doc__ and method.__doc__.strip():
                        continue
                    # An override inherits its contract from a documented
                    # base-class method (e.g. the many to_rpsl renderers).
                    inherited = any(
                        getattr(base, method_name, None) is not None
                        and getattr(getattr(base, method_name), "__doc__", None)
                        for base in member.__mro__[1:]
                    )
                    if not inherited:
                        undocumented.append(f"{name}.{method_name}")
    assert not undocumented, f"{module_name}: missing docstrings on {undocumented}"


@pytest.mark.parametrize("module_name", all_modules())
def test_module_imports_standalone(module_name):
    # Fresh import must not raise (no hidden import-order dependencies).
    module = importlib.import_module(module_name)
    assert module is not None


def test_version_exported():
    assert repro.__version__
