"""Fuzz tests: the parsers must never crash on arbitrary input.

Registry dumps contain operator-typed text; the contract is that the
object parsers record issues and keep going, and the expression parsers
raise :class:`RpslSyntaxError` (never anything else) on garbage.
"""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.table import parse_table_text
from repro.bgp.updates import parse_update_text
from repro.irr.dump import parse_dump_text
from repro.rpsl.errors import RpslSyntaxError
from repro.rpsl.lexer import split_dump
from repro.rpsl.policy import parse_default, parse_policy

# Text biased toward RPSL-looking tokens so the fuzzer reaches deep paths.
_TOKENS = (
    list("abcdefgzAS0123456789-:./^+*?~$(){};,<>| \n\t#%=")
    + ["from ", "to ", "accept ", "announce ", "action ", "AS-", "AS1 ",
       "ANY ", "REFINE ", "EXCEPT ", "afi ", "ipv4", "pref=10; ", "<^AS1$>"]
)
rpsl_ish = st.lists(st.sampled_from(_TOKENS), max_size=60).map("".join)


@given(rpsl_ish)
@settings(max_examples=300)
def test_policy_parser_total(text):
    for kind in ("import", "export"):
        try:
            rule = parse_policy(kind, text)
        except RpslSyntaxError:
            continue
        # Success must yield a renderable, re-parseable rule.
        rendered = rule.to_rpsl()
        assert parse_policy(kind, rendered, multiprotocol=True).to_rpsl() == rendered


@given(rpsl_ish)
@settings(max_examples=150)
def test_default_parser_total(text):
    try:
        rule = parse_default(text)
    except RpslSyntaxError:
        return
    assert rule.to_rpsl()


@given(st.text(max_size=400))
@settings(max_examples=200)
def test_dump_parser_never_raises(text):
    ir, errors = parse_dump_text(text, "FUZZ")
    # Every produced aut-num must be internally consistent.
    for asn, aut_num in ir.aut_nums.items():
        assert aut_num.asn == asn


@given(rpsl_ish)
@settings(max_examples=200)
def test_dump_parser_never_raises_rpsl_ish(text):
    dump = f"aut-num: AS1\nimport: {text}\n\nas-set: AS-X\nmembers: {text}\n"
    ir, errors = parse_dump_text(dump, "FUZZ")
    assert 1 in ir.aut_nums or errors.issues


@given(st.text(max_size=300))
@settings(max_examples=200)
def test_lexer_total(text):
    paragraphs = list(split_dump(io.StringIO(text)))
    for paragraph in paragraphs:
        assert paragraph.attributes or paragraph.stray_lines


@given(st.text(alphabet="TABLEDUMP2BGP4MW|0123456789./: abc{},", max_size=200))
@settings(max_examples=200)
def test_table_and_update_parsers_total(text):
    for entry in parse_table_text(text):
        assert entry.as_path or entry.as_set
    for update in parse_update_text(text):
        assert update.kind in ("A", "W")
