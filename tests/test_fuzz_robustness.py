"""Fuzz tests: the parsers must never crash on arbitrary input.

Registry dumps contain operator-typed text; the contract is that the
object parsers record issues and keep going, and the expression parsers
raise :class:`RpslSyntaxError` (never anything else) on garbage.  On top
of free-form text, the chaos mutators supply *structured* damage —
truncation and binary splices over realistic dumps and TABLE_DUMP2 /
BGP4MP text — so the fuzzer also exercises the almost-valid neighborhood
real corruption lives in.

Example counts follow the loaded hypothesis profile (see
``tests/conftest.py``): ``HYPOTHESIS_PROFILE=nightly`` raises them in the
scheduled CI run.
"""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.table import parse_table_text
from repro.bgp.updates import parse_update_text
from repro.chaos.mutators import corrupt_table, splice_binary, truncate_mid_paragraph
from repro.irr.dump import parse_dump_text
from repro.rpsl.errors import RpslSyntaxError
from repro.rpsl.lexer import split_dump
from repro.rpsl.policy import parse_default, parse_policy

# Text biased toward RPSL-looking tokens so the fuzzer reaches deep paths.
_TOKENS = (
    list("abcdefgzAS0123456789-:./^+*?~$(){};,<>| \n\t#%=")
    + ["from ", "to ", "accept ", "announce ", "action ", "AS-", "AS1 ",
       "ANY ", "REFINE ", "EXCEPT ", "afi ", "ipv4", "pref=10; ", "<^AS1$>"]
)
rpsl_ish = st.lists(st.sampled_from(_TOKENS), max_size=60).map("".join)


@given(rpsl_ish)
@settings(max_examples=300)
def test_policy_parser_total(text):
    for kind in ("import", "export"):
        try:
            rule = parse_policy(kind, text)
        except RpslSyntaxError:
            continue
        # Success must yield a renderable, re-parseable rule.
        rendered = rule.to_rpsl()
        assert parse_policy(kind, rendered, multiprotocol=True).to_rpsl() == rendered


@given(rpsl_ish)
@settings(max_examples=150)
def test_default_parser_total(text):
    try:
        rule = parse_default(text)
    except RpslSyntaxError:
        return
    assert rule.to_rpsl()


@given(st.text(max_size=400))
@settings(max_examples=200)
def test_dump_parser_never_raises(text):
    ir, errors = parse_dump_text(text, "FUZZ")
    # Every produced aut-num must be internally consistent.
    for asn, aut_num in ir.aut_nums.items():
        assert aut_num.asn == asn


@given(rpsl_ish)
@settings(max_examples=200)
def test_dump_parser_never_raises_rpsl_ish(text):
    dump = f"aut-num: AS1\nimport: {text}\n\nas-set: AS-X\nmembers: {text}\n"
    ir, errors = parse_dump_text(dump, "FUZZ")
    assert 1 in ir.aut_nums or errors.issues


@given(st.text(max_size=300))
@settings(max_examples=200)
def test_lexer_total(text):
    paragraphs = list(split_dump(io.StringIO(text)))
    for paragraph in paragraphs:
        assert paragraph.attributes or paragraph.stray_lines


@given(st.text(alphabet="TABLEDUMP2BGP4MW|0123456789./: abc{},", max_size=200))
@settings(max_examples=200)
def test_table_and_update_parsers_total(text):
    for entry in parse_table_text(text):
        assert entry.as_path or entry.as_set
    for update in parse_update_text(text):
        assert update.kind in ("A", "W")


# -- structured damage: the chaos mutators over realistic inputs -------------

_DUMP = (
    "aut-num:        AS64500\n"
    "import:         from AS64501 accept ANY\n"
    "export:         to AS64501 announce AS64500\n\n"
    "as-set:         AS-FUZZ\n"
    "members:        AS64500, AS64501\n\n"
    "route:          192.0.2.0/24\n"
    "origin:         AS64500\n"
) * 3

_TABLE = "\n".join(
    f"TABLE_DUMP2|1696000000|B|rrc00|64500|10.{i}.0.0/16|64500 6450{i % 10}|IGP"
    for i in range(24)
) + "\n"

_UPDATES = "\n".join(
    f"BGP4MP|1696000000|A|rrc00|64500|10.{i}.0.0/16|64500 6450{i % 10}|IGP"
    if i % 3
    else f"BGP4MP|1696000000|W|rrc00|64500|10.{i}.0.0/16"
    for i in range(24)
) + "\n"


@given(st.integers(min_value=0, max_value=len(_DUMP)))
def test_dump_truncated_at_any_offset_never_raises(cut):
    ir, errors = parse_dump_text(_DUMP[:cut], "FUZZ")
    for asn, aut_num in ir.aut_nums.items():
        assert aut_num.asn == asn


@given(st.randoms(use_true_random=False))
def test_dump_binary_splice_never_raises(rng):
    text = splice_binary(rng, _DUMP).decode("utf-8", errors="replace")
    ir, errors = parse_dump_text(text, "FUZZ")
    for asn, aut_num in ir.aut_nums.items():
        assert aut_num.asn == asn


@given(st.randoms(use_true_random=False))
def test_dump_truncation_mutator_never_raises(rng):
    text = truncate_mid_paragraph(rng, _DUMP).decode("utf-8", errors="replace")
    ir, errors = parse_dump_text(text, "FUZZ")
    assert sum(ir.counts().values()) <= 9  # never *more* objects than clean


@given(st.randoms(use_true_random=False), st.integers(min_value=0, max_value=2))
def test_corrupted_table_and_updates_never_raise(rng, flavor):
    for clean, parser in ((_TABLE, parse_table_text), (_UPDATES, parse_update_text)):
        damaged = corrupt_table(rng, clean)
        if flavor == 1:
            damaged = splice_binary(rng, damaged.decode("utf-8", errors="replace"))
        elif flavor == 2:
            damaged = damaged[: rng.randrange(len(damaged) + 1)]
        text = damaged.decode("utf-8", errors="replace")
        for record in parser(text):
            assert record is not None
