"""Targeted tests for less-traveled branches across the engine."""

import pytest

from repro.bgp.topology import AsRelationships
from repro.core.query import QueryEngine
from repro.core.verify import Verifier, VerifyOptions
from repro.core.status import VerifyStatus
from repro.irr.dump import parse_dump_text
from repro.irr.whois import WhoisEngine, WhoisServer, whois_query
from repro.net.prefix import Prefix, RangeOp
from repro.stats.usage import rules_per_group


class TestQueryCorners:
    def test_as_set_with_any_member_matches_any_registered(self):
        ir, _ = parse_dump_text(
            "as-set: AS-W\nmembers: ANY\n\nroute: 10.0.0.0/8\norigin: AS1\n", "T"
        )
        engine = QueryEngine(ir)
        assert engine.as_set_route_match("AS-W", Prefix.parse("10.0.0.0/8"), RangeOp())
        assert engine.as_set_route_match(
            "AS-W", Prefix.parse("10.1.0.0/16"), RangeOp.parse("^+")
        )
        assert not engine.as_set_route_match(
            "AS-W", Prefix.parse("192.0.2.0/24"), RangeOp()
        )

    def test_empty_as_set_never_matches(self):
        ir, _ = parse_dump_text(
            "as-set: AS-E\n\nroute: 10.0.0.0/8\norigin: AS1\n", "T"
        )
        engine = QueryEngine(ir)
        assert not engine.as_set_route_match("AS-E", Prefix.parse("10.0.0.0/8"), RangeOp())

    def test_route_set_with_as_set_member(self):
        ir, _ = parse_dump_text(
            "route-set: RS-M\nmembers: AS-K^+\n\n"
            "as-set: AS-K\nmembers: AS1\n\n"
            "route: 10.0.0.0/8\norigin: AS1\n",
            "T",
        )
        engine = QueryEngine(ir)
        assert engine.route_set_match("RS-M", Prefix.parse("10.7.0.0/16"), RangeOp())


class TestVerifierCorners:
    DUMP = """
aut-num: AS10
import:  from AS20 accept ANY
export:  to AS20 announce ANY
"""

    def make(self, **options) -> Verifier:
        ir, _ = parse_dump_text(self.DUMP, "T")
        return Verifier(
            ir, AsRelationships.from_as_rel_text("20|10|-1\n"),
            VerifyOptions(**options),
        )

    def test_cache_disabled(self):
        verifier = self.make(hop_cache_size=0)
        for _ in range(3):
            report = verifier.verify_route("10.0.0.0/16", (20, 10))
            assert report.hops
        assert verifier.hop_cache_hits == 0
        assert not verifier._hop_cache

    def test_tiny_cache_evicts_but_stays_correct(self):
        verifier = self.make(hop_cache_size=2)
        results = []
        for octet in range(8):
            prefix = f"10.{octet}.0.0/16"
            results.append(str(verifier.verify_route(prefix, (20, 10))))
        # run again in reverse: answers identical despite evictions
        for octet in reversed(range(8)):
            prefix = f"10.{octet}.0.0/16"
            assert str(verifier.verify_route(prefix, (20, 10))) == results[octet]
        assert len(verifier._hop_cache) <= 2

    def test_two_as_path_subpath_is_whole(self):
        verifier = self.make()
        report = verifier.verify_route("10.0.0.0/16", (20, 10))
        # AS10's export verifies; AS20 has no aut-num object.
        assert [h.status for h in report.hops] == [
            VerifyStatus.VERIFIED, VerifyStatus.UNRECORDED
        ]


class TestWhoisCorners:
    @pytest.fixture(scope="class")
    def engine(self):
        ir, _ = parse_dump_text(
            "aut-num: AS1\nimport: from AS2 accept ANY\n\n"
            "route: 10.0.0.0/8\norigin: AS1\n",
            "T",
        )
        return WhoisEngine(ir)

    def test_empty_query(self, engine):
        assert engine.lookup("") is None

    def test_invalid_prefix_query(self, engine):
        assert engine.lookup("10.0.0.0/99") is None

    def test_invalid_origin_query(self, engine):
        assert engine.lookup("-i origin ASXY") is None
        assert engine.bang("!gNOTANAS").startswith("F ")

    def test_quit_commands_return_empty(self, engine):
        assert engine.bang("!q") == ""
        assert engine.bang("!e") == ""

    def test_server_handles_garbage_then_valid(self, engine):
        with WhoisServer(engine.ir) as server:
            garbage = whois_query("127.0.0.1", server.port, "\x00\xff nonsense")
            assert "No entries found" in garbage
            ok = whois_query("127.0.0.1", server.port, "AS1")
            assert ok.startswith("aut-num:")


class TestFig1Annotations:
    def test_rules_per_group(self):
        ir, _ = parse_dump_text(
            "aut-num: AS1\nimport: from AS2 accept ANY\n\naut-num: AS2\n", "T"
        )
        counts = rules_per_group(ir, {1, 2, 3})
        assert counts == {1: 1, 2: 0, 3: 0}

    def test_tier1_variance_in_tiny_world(self, tiny_ir, tiny_world):
        counts = rules_per_group(tiny_ir, tiny_world.topology.tier1)
        assert len(counts) == tiny_world.config.n_tier1
