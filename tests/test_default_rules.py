"""Tests for the ``default:`` attribute (RFC 2622 Section 6.5)."""

import pytest

from repro.ir.json_io import dumps_ir, loads_ir
from repro.ir.render import render_aut_num
from repro.irr.dump import parse_dump_text
from repro.rpsl.errors import RpslSyntaxError
from repro.rpsl.filter import FilterAny, FilterPrefixSet
from repro.rpsl.peering import PeerAsn
from repro.rpsl.policy import parse_default


class TestParseDefault:
    def test_minimal(self):
        rule = parse_default("to AS1")
        assert rule.peering.as_expr == PeerAsn(1)
        assert rule.actions == ()
        assert rule.networks is None

    def test_with_action(self):
        rule = parse_default("to AS1 action pref = 100;")
        assert rule.actions[0].attribute == "pref"

    def test_with_networks(self):
        rule = parse_default("to AS1 networks ANY")
        assert rule.networks == FilterAny()

    def test_full_form(self):
        rule = parse_default("to AS1 action pref = 10; networks {0.0.0.0/0}")
        assert isinstance(rule.networks, FilterPrefixSet)
        assert rule.actions

    def test_mp_default_with_afi(self):
        rule = parse_default("afi ipv6.unicast to AS1", multiprotocol=True)
        assert rule.afis[0].matches_version(6)

    @pytest.mark.parametrize("bad", ["", "from AS1", "to", "to AS1 networks"])
    def test_invalid(self, bad):
        with pytest.raises(RpslSyntaxError):
            parse_default(bad)

    def test_roundtrip(self):
        for text in (
            "to AS1",
            "to AS1 action pref = 10; networks ANY",
            "afi ipv6.unicast to AS1 OR AS2",
        ):
            once = parse_default(text, multiprotocol=True).to_rpsl()
            assert parse_default(once, multiprotocol=True).to_rpsl() == once


class TestDefaultInObjects:
    DUMP = """
aut-num:    AS1
import:     from AS2 accept ANY
default:    to AS2 action pref = 50;
mp-default: afi ipv6.unicast to AS2
default:    broken nonsense
"""

    def test_parsed_into_aut_num(self):
        ir, errors = parse_dump_text(self.DUMP, "T")
        aut_num = ir.aut_nums[1]
        assert len(aut_num.defaults) == 2
        assert aut_num.defaults[1].multiprotocol
        assert len(aut_num.bad_rules) == 1
        assert len(errors) == 1

    def test_render_roundtrip(self):
        ir, _ = parse_dump_text(self.DUMP, "T")
        text = render_aut_num(ir.aut_nums[1])
        assert "default:" in text and "mp-default:" in text
        reparsed, _ = parse_dump_text(text, "T")
        assert reparsed.aut_nums[1].defaults == ir.aut_nums[1].defaults

    def test_json_roundtrip(self):
        ir, _ = parse_dump_text(self.DUMP, "T")
        restored = loads_ir(dumps_ir(ir))
        assert restored.aut_nums[1].defaults == ir.aut_nums[1].defaults
