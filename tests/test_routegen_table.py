"""Tests for Gao–Rexford propagation and BGP table I/O."""

import random

import pytest

from repro.bgp.routegen import (
    Collector,
    RouteGenConfig,
    collector_routes,
    default_collectors,
    propagate,
)
from repro.bgp.table import (
    RouteEntry,
    parse_table_text,
    write_table_file,
    parse_table_file,
)
from repro.bgp.topology import AsRelationships, Rel
from repro.net.prefix import Prefix


def diamond() -> AsRelationships:
    # 1-2 Tier-1 peers; 3 customer of 1; 4 customer of 2; 5 customer of 3+4.
    rel = AsRelationships()
    rel.add_peering(1, 2)
    rel.add_transit(1, 3)
    rel.add_transit(2, 4)
    rel.add_transit(3, 5)
    rel.add_transit(4, 5)
    return rel


class TestPropagate:
    def test_origin_path(self):
        paths = propagate(diamond(), 5)
        assert paths[5] == (5,)

    def test_customers_prefer_customer_routes(self):
        paths = propagate(diamond(), 5)
        assert paths[3] == (3, 5)
        assert paths[4] == (4, 5)
        assert paths[1] == (1, 3, 5)
        assert paths[2] == (2, 4, 5)

    def test_peer_route_not_reexported_to_peer(self):
        # 6 is a peer of 1 only; it must reach 5 via 1 (peer edge at 6-1),
        # and 2 must NOT have a path through peer 1's peer-learned route.
        rel = diamond()
        rel.add_peering(6, 1)
        paths = propagate(rel, 5)
        assert paths[6] == (6, 1, 3, 5)

    def test_provider_routes_flow_downhill(self):
        rel = diamond()
        rel.add_transit(2, 7)  # 7 customer of 2
        paths = propagate(rel, 5)
        assert paths[7] == (7, 2, 4, 5)

    def test_unreachable_isolated_as(self):
        rel = diamond()
        rel.add_peering(8, 9)  # island
        paths = propagate(rel, 5)
        assert 8 not in paths and 9 not in paths

    def test_deterministic(self):
        assert propagate(diamond(), 5) == propagate(diamond(), 5)

    def test_paths_are_simple(self):
        rng = random.Random(7)
        rel = AsRelationships()
        ases = list(range(1, 40))
        for asn in ases[1:]:
            provider = rng.choice(ases[: ases.index(asn)] or [1])
            if provider != asn:
                rel.add_transit(provider, asn)
        for _ in range(15):
            left, right = rng.sample(ases, 2)
            if rel.rel(left, right) is None:
                rel.add_peering(left, right)
        for origin in rng.sample(ases, 5):
            for asn, path in propagate(rel, origin).items():
                assert len(set(path)) == len(path), "loop in path"
                assert path[0] == asn and path[-1] == origin

    def test_valley_free_types(self):
        """No AS re-exports a peer/provider route to a peer or provider."""
        rel = diamond()
        rel.add_peering(3, 4)
        for origin in (1, 2, 3, 4, 5):
            paths = propagate(rel, origin)
            for asn, path in paths.items():
                # count peer edges along the path: at most one in valley-free
                peer_edges = sum(
                    1 for a, b in zip(path, path[1:]) if rel.rel(a, b) is Rel.PEER
                )
                assert peer_edges <= 1


class TestCollectorRoutes:
    def test_routes_emitted_per_peer_origin_prefix(self):
        rel = diamond()
        prefixes = {5: [Prefix.parse("10.5.0.0/16"), Prefix.parse("10.6.0.0/16")]}
        collectors = [Collector("rrc00", (1, 2))]
        config = RouteGenConfig(prepend_probability=0.0, as_set_probability=0.0)
        entries = list(collector_routes(rel, prefixes, collectors, config))
        assert len(entries) == 4  # 2 peers × 2 prefixes
        assert {entry.as_path for entry in entries} == {(1, 3, 5), (2, 4, 5)}

    def test_prepending_injected(self):
        rel = diamond()
        prefixes = {5: [Prefix.parse("10.5.0.0/16")]}
        collectors = [Collector("rrc00", (1,))]
        config = RouteGenConfig(prepend_probability=1.0, seed=3)
        (entry,) = list(collector_routes(rel, prefixes, collectors, config))
        deprepended = entry.deprepended_path()
        assert deprepended == (1, 3, 5)
        assert len(entry.as_path) > len(deprepended)

    def test_default_collectors_have_peers(self):
        collectors = default_collectors(diamond(), count=2, peers_per_collector=3)
        assert len(collectors) == 2
        for collector in collectors:
            assert collector.peer_asns


class TestTableFormat:
    def entry(self) -> RouteEntry:
        return RouteEntry(
            collector="rrc00",
            peer_asn=1,
            prefix=Prefix.parse("10.5.0.0/16"),
            as_path=(1, 3, 5),
        )

    def test_line_roundtrip(self):
        entry = self.entry()
        (parsed,) = list(parse_table_text(entry.to_line()))
        assert parsed == entry

    def test_as_set_roundtrip(self):
        entry = RouteEntry(
            collector="rrc00",
            peer_asn=1,
            prefix=Prefix.parse("10.5.0.0/16"),
            as_path=(1, 3),
            as_set=frozenset({5, 6}),
        )
        (parsed,) = list(parse_table_text(entry.to_line()))
        assert parsed.as_set == frozenset({5, 6})

    def test_origin_and_deprepend(self):
        entry = RouteEntry("c", 1, Prefix.parse("10.0.0.0/8"), (1, 3, 3, 3, 5))
        assert entry.origin == 5
        assert entry.deprepended_path() == (1, 3, 5)

    def test_malformed_lines_skipped(self):
        text = "garbage\nTABLE_DUMP2|0|B|c|x|10.0.0.0/8|1 2|IGP\n# comment\n"
        assert list(parse_table_text(text)) == []

    def test_file_roundtrip(self, tmp_path):
        entries = [self.entry()]
        path = tmp_path / "table.txt"
        assert write_table_file(path, entries) == 1
        assert list(parse_table_file(path)) == entries

    def test_ipv6_route(self):
        entry = RouteEntry("c", 1, Prefix.parse("2001:db8::/32"), (1, 5))
        (parsed,) = list(parse_table_text(entry.to_line()))
        assert parsed.prefix.version == 6
