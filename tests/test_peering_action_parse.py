"""Tests for peering expressions and action lists."""

import pytest

from repro.rpsl.action import parse_action_tokens
from repro.rpsl.errors import RpslSyntaxError
from repro.rpsl.peering import (
    PeerAnd,
    PeerAny,
    PeerAsn,
    PeerAsSet,
    PeerExcept,
    PeerOr,
    PeeringSetRef,
    parse_peering_text,
)
from repro.rpsl.tokens import tokenize


class TestPeeringParse:
    def test_single_asn(self):
        peering = parse_peering_text("AS174")
        assert peering.as_expr == PeerAsn(174)
        assert peering.remote_router is None

    def test_as_set(self):
        assert parse_peering_text("AS-FOO").as_expr == PeerAsSet("AS-FOO")

    def test_as_any(self):
        assert parse_peering_text("AS-ANY").as_expr == PeerAny()

    def test_peering_set_ref(self):
        assert parse_peering_text("PRNG-PEERS").as_expr == PeeringSetRef("PRNG-PEERS")

    def test_and_or_except(self):
        expr = parse_peering_text("AS1 AND AS-X OR AS2 EXCEPT AS3").as_expr
        assert expr == PeerExcept(
            PeerOr(PeerAnd(PeerAsn(1), PeerAsSet("AS-X")), PeerAsn(2)), PeerAsn(3)
        )

    def test_parens(self):
        expr = parse_peering_text("AS-ANY EXCEPT (AS40027 OR AS63293)").as_expr
        assert expr == PeerExcept(PeerAny(), PeerOr(PeerAsn(40027), PeerAsn(63293)))

    def test_remote_router_ip(self):
        peering = parse_peering_text("AS1 192.0.2.1")
        assert peering.remote_router == "192.0.2.1"

    def test_at_local_router(self):
        peering = parse_peering_text("AS1 192.0.2.1 at 192.0.2.2")
        assert peering.remote_router == "192.0.2.1"
        assert peering.local_router == "192.0.2.2"

    def test_router_dns_names(self):
        peering = parse_peering_text("AS8267 rtr.example.net at peer.example.net")
        assert peering.remote_router == "rtr.example.net"
        assert peering.local_router == "peer.example.net"

    def test_at_without_router_raises(self):
        with pytest.raises(RpslSyntaxError):
            parse_peering_text("AS1 at")

    def test_garbage_raises(self):
        with pytest.raises(RpslSyntaxError):
            parse_peering_text("NOTANAS")

    def test_roundtrip(self):
        for text in (
            "AS174",
            "AS-FOO",
            "AS-ANY",
            "AS1 AND (AS2 OR AS3)",
            "AS1 192.0.2.1 at 192.0.2.2",
        ):
            once = parse_peering_text(text).to_rpsl()
            assert parse_peering_text(once).to_rpsl() == once


def actions(text: str):
    return parse_action_tokens(tokenize(text))


class TestActionParse:
    def test_simple_assignment(self):
        items = actions("pref=100")
        assert len(items) == 1
        assert (items[0].attribute, items[0].operator, items[0].values) == (
            "pref", "=", ("100",),
        )

    def test_spaced_assignment(self):
        items = actions("pref = 65535")
        assert items[0].values == ("65535",)

    def test_multiple_items(self):
        items = actions("pref=10; med=0;")
        assert [item.attribute for item in items] == ["pref", "med"]

    def test_method_call(self):
        items = actions("community.append(8226:1102)")
        assert items[0].method == "append"
        assert items[0].values == ("8226:1102",)

    def test_method_call_multi_args(self):
        items = actions("community.delete(64628:10, 64628:11)")
        assert items[0].values == ("64628:10", "64628:11")

    def test_braced_append(self):
        items = actions("community .= { 64628:20 }")
        assert items[0].operator == ".="
        assert items[0].braced
        assert items[0].values == ("64628:20",)

    def test_prepend(self):
        items = actions("aspath.prepend(AS1, AS1)")
        assert items[0].attribute == "aspath"
        assert items[0].method == "prepend"

    def test_invalid_raises(self):
        with pytest.raises(RpslSyntaxError):
            actions("pref")

    def test_roundtrip(self):
        for text in (
            "pref = 100",
            "community.append(8226:1102)",
            "community .= {64628:20}",
            "med = igp",
        ):
            items = actions(text)
            rendered = "; ".join(item.to_rpsl() for item in items)
            assert [i.to_rpsl() for i in actions(rendered)] == [
                i.to_rpsl() for i in items
            ]
