"""Tests for NRTM-style journals (:mod:`repro.irr.journal`).

Covers the delta format (roundtrip, digests, serials), the replay
property — applying the journal of an epoch of churn reproduces the
evolved snapshot exactly — and the degradation contract: corrupt,
out-of-order, or replayed journals degrade loudly instead of producing
a wrong IR.
"""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.ir.model import RouteObject
from repro.irr.history import ChurnConfig, diff_irs, evolve_with_journal
from repro.irr.journal import (
    JOURNAL_FORMAT,
    Journal,
    JournalEntry,
    JournalError,
    apply_journal_to_ir,
    journal_between,
    load_journal,
    save_journal,
)
from repro.net.prefix import Prefix


@pytest.fixture(scope="module")
def seed_ir(tiny_world):
    return tiny_world.merged_ir()


def _route_keys(ir) -> set:
    return {(str(r.prefix), r.origin, r.source) for r in ir.route_objects}


def _assert_same_ir(left, right) -> None:
    """Object-for-object equality via the repo's own diff primitive.

    Identity is keyed: duplicate declarations of the same
    ⟨prefix, origin, source⟩ collapse to one journal object (the format's
    documented contract — real registries hold byte-identical duplicate
    route objects), so multiplicity of identical copies is below object
    identity and deliberately not compared.
    """
    assert diff_irs(left, right).summary() == {
        "added": 0,
        "removed": 0,
        "modified": 0,
    }
    assert _route_keys(left) == _route_keys(right)


class TestJournalFormat:
    def test_churn_emits_a_journal(self, seed_ir):
        evolved, journal = evolve_with_journal(seed_ir, ChurnConfig(seed=5))
        assert len(journal) > 0
        # Serials are sequential from start_serial and strictly increasing
        # per source.
        serials = [entry.serial for entry in journal]
        assert serials == sorted(serials)
        assert serials[0] == 1
        last: dict[str, int] = {}
        for entry in journal:
            assert entry.serial > last.get(entry.source, 0)
            last[entry.source] = entry.serial
        assert journal.serials() == last

    def test_roundtrip_through_disk(self, seed_ir, tmp_path):
        _, journal = evolve_with_journal(seed_ir, ChurnConfig(seed=5))
        path = tmp_path / "deltas.jsonl"
        save_journal(journal, path)
        loaded = load_journal(path)
        assert not loaded.issues
        assert loaded.digest() == journal.digest()
        assert [e.key for e in loaded] == [e.key for e in journal]

    def test_roundtrip_through_jsonable(self, seed_ir):
        _, journal = evolve_with_journal(seed_ir, ChurnConfig(seed=5))
        loaded = Journal.from_jsonable(journal.to_jsonable())
        assert not loaded.issues
        assert loaded.digest() == journal.digest()

    def test_bad_header_is_fatal(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(JournalError):
            load_journal(path)
        with pytest.raises(JournalError):
            load_journal(io.StringIO(""))

    def test_corrupt_lines_become_issues(self, seed_ir, tmp_path):
        _, journal = evolve_with_journal(seed_ir, ChurnConfig(seed=5))
        path = tmp_path / "torn.jsonl"
        save_journal(journal, path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # tear one entry
        lines.append('{"action": "EXPLODE", "cls": "route", "key": 1, "serial": 9}')
        path.write_text("\n".join(lines) + "\n")
        loaded = load_journal(path)
        assert len(loaded.issues) == 2
        assert len(loaded.entries) == len(journal) - 1
        # Issues poison the replay: the report is non-empty even though
        # every surviving entry applied cleanly.
        _, report = apply_journal_to_ir(seed_ir, loaded)
        assert "journal/corrupt-entry" in report.by_kind()


class TestReplay:
    def test_single_epoch_replay(self, seed_ir):
        evolved, journal = evolve_with_journal(seed_ir, ChurnConfig(seed=5))
        replayed, report = apply_journal_to_ir(seed_ir, journal)
        assert not report
        _assert_same_ir(evolved, replayed)
        # The input IR is never mutated.
        assert diff_irs(seed_ir, evolved).count("added") > 0

    @settings(max_examples=8, deadline=None)
    @given(
        churn_seed=st.integers(min_value=0, max_value=10_000),
        epochs=st.integers(min_value=1, max_value=3),
    )
    def test_replay_property(self, seed_ir, churn_seed, epochs):
        """apply_journal ∘ seed == evolve_ir for any churn seed, chained."""
        config = ChurnConfig(seed=churn_seed)
        current = seed_ir
        replayed = seed_ir
        serial = 1
        for epoch in range(epochs):
            evolved, journal = evolve_with_journal(
                current, config, epoch=epoch, start_serial=serial
            )
            replayed, report = apply_journal_to_ir(replayed, journal)
            assert not report
            _assert_same_ir(evolved, replayed)
            current = evolved
            serial = max(journal.serials().values(), default=serial) + 1

    def test_journal_between_is_exact(self, seed_ir):
        evolved, _ = evolve_with_journal(seed_ir, ChurnConfig(seed=17))
        journal = journal_between(seed_ir, evolved, start_serial=100)
        replayed, report = apply_journal_to_ir(seed_ir, journal)
        assert not report
        _assert_same_ir(evolved, replayed)
        assert min(e.serial for e in journal) == 100


class TestDegradation:
    def _route_entry(self, ir, serial, action, **overrides):
        route = ir.route_objects[0]
        key = (str(route.prefix), route.origin, route.source)
        defaults = dict(
            serial=serial,
            action=action,
            cls="route",
            key=key,
            obj=route if action in ("ADD", "MOD") else None,
            source=route.source or "",
        )
        defaults.update(overrides)
        return JournalEntry(**defaults)

    def test_out_of_order_serials_degrade(self, seed_ir):
        entries = [
            self._route_entry(seed_ir, 5, "MOD"),
            self._route_entry(seed_ir, 5, "MOD"),
            self._route_entry(seed_ir, 3, "MOD"),
        ]
        _, report = apply_journal_to_ir(seed_ir, Journal(entries=entries))
        kinds = report.by_kind()
        assert "journal/out-of-order-serial" in kinds
        assert "journal/duplicate-serial" in kinds

    def test_missing_target_degrades(self, seed_ir):
        gone = JournalEntry(
            serial=1,
            action="DEL",
            cls="route",
            key=("203.0.113.0/24", 64999, "NOPE"),
        )
        patched, report = apply_journal_to_ir(seed_ir, Journal(entries=[gone]))
        assert "journal/missing-target" in report.by_kind()
        assert len(patched.route_objects) == len(seed_ir.route_objects)

    def test_duplicate_add_degrades_but_replaces(self, seed_ir):
        dup = self._route_entry(seed_ir, 1, "ADD")
        patched, report = apply_journal_to_ir(seed_ir, Journal(entries=[dup]))
        assert "journal/duplicate-add" in report.by_kind()
        # Replace semantics: the table holds exactly one copy afterwards.
        assert len(patched.route_objects) == len(seed_ir.route_objects)

    def test_missing_payload_degrades(self, seed_ir):
        hollow = self._route_entry(seed_ir, 1, "ADD", obj=None)
        _, report = apply_journal_to_ir(seed_ir, Journal(entries=[hollow]))
        assert "journal/missing-payload" in report.by_kind()

    def test_key_mismatch_degrades(self, seed_ir):
        """An entry whose key names a different route than its payload
        must degrade: the index layer patches the trie by *entry* keys,
        so applying such an entry incrementally would desync them."""
        route = seed_ir.route_objects[0]
        lying = self._route_entry(
            seed_ir, 1, "ADD", key=("203.0.113.0/24", 64999, route.source)
        )
        _, report = apply_journal_to_ir(seed_ir, Journal(entries=[lying]))
        assert "journal/key-mismatch" in report.by_kind()

    def test_wrong_arity_key_degrades(self, seed_ir):
        route = seed_ir.route_objects[0]
        truncated = self._route_entry(
            seed_ir, 1, "MOD", key=(str(route.prefix), route.origin)
        )
        _, report = apply_journal_to_ir(seed_ir, Journal(entries=[truncated]))
        assert "journal/key-mismatch" in report.by_kind()

    def test_wrong_arity_key_recompiles_in_session(self, tiny_world):
        """Regression: a truncated route key must fall back to the full
        recompile instead of crashing the incremental patch path."""
        with api.open_session(
            tiny_world, as_rel=tiny_world.topology, use_cache=False
        ) as session:
            route = session.ir.route_objects[0]
            journal = Journal(
                entries=[
                    JournalEntry(
                        serial=1,
                        action="MOD",
                        cls="route",
                        key=(str(route.prefix), route.origin),
                        obj=route,
                        source=route.source or "",
                    )
                ]
            )
            report = session.apply_deltas(journal)
            assert "journal/key-mismatch" in report.by_kind()
            assert session.generation == 1

    def test_stale_serials_degrade_in_session(self, tiny_world):
        """Replaying an absorbed journal through a live session degrades
        to a full recompile — and still answers correctly."""
        with api.open_session(
            tiny_world, as_rel=tiny_world.topology, use_cache=False
        ) as session:
            _, journal = evolve_with_journal(
                session.ir, ChurnConfig(seed=23), start_serial=1
            )
            first = session.apply_deltas(journal)
            assert not first
            assert session.generation == 1
            # A MOD of a live object replays cleanly at the IR level, so
            # only the session's serial-continuity check can catch that
            # its serial was already absorbed.
            route = session.ir.route_objects[0]
            stale = Journal(
                entries=[
                    JournalEntry(
                        serial=1,
                        action="MOD",
                        cls="route",
                        key=(str(route.prefix), route.origin, route.source),
                        obj=route,
                        source=route.source or "",
                    )
                ]
            )
            assert session.serials.get(route.source or "", 0) >= 1
            replay = session.apply_deltas(stale)
            kinds = replay.by_kind()
            assert any(key.endswith("stale-serial") for key in kinds)
            # The degraded path recompiled from scratch but still advanced
            # the lineage and kept the session answerable.
            assert session.generation == 2
            route = session.ir.route_objects[0]
            report = session.verify_route(
                str(route.prefix), (64500, route.origin)
            )
            assert report.hops


class TestApiSurface:
    def test_apply_journal_wrapper(self, seed_ir):
        evolved, journal = evolve_with_journal(seed_ir, ChurnConfig(seed=9))
        result = api.apply_journal(seed_ir, journal)
        assert result.source == "journal"
        assert not result.degradation
        _assert_same_ir(evolved, result.ir)

    def test_journal_entry_jsonable_shape(self, seed_ir):
        _, journal = evolve_with_journal(seed_ir, ChurnConfig(seed=9))
        doc = journal.to_jsonable()
        assert doc["format"] == JOURNAL_FORMAT
        text = json.dumps(doc)  # must be plain JSON all the way down
        assert json.loads(text)["entries"]

    def test_route_objects_decode_to_route_objects(self, seed_ir):
        _, journal = evolve_with_journal(seed_ir, ChurnConfig(seed=9))
        adds = [e for e in journal if e.cls == "route" and e.action == "ADD"]
        assert adds
        rebuilt = JournalEntry.from_jsonable(adds[0].to_jsonable())
        assert isinstance(rebuilt.obj, RouteObject)
        assert isinstance(rebuilt.obj.prefix, Prefix)
        assert rebuilt.key == adds[0].key
