"""Shared fixtures: a tiny synthetic world and its derived artifacts.

The tiny world (≈60 ASes) is generated once per session; tests that need
an IR, a verifier, or collector routes share it instead of regenerating.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.bgp.routegen import collector_routes
from repro.core.verify import Verifier
from repro.irr.synth import build_world, tiny_config

# Hypothesis effort is profile-driven: the default keeps local runs and
# per-commit CI fast; "nightly" raises example counts for the scheduled
# fuzz job (CI exports HYPOTHESIS_PROFILE=nightly).  Tests that pin their
# own @settings(max_examples=...) keep their pinned value.
settings.register_profile("default", max_examples=100, deadline=None)
settings.register_profile("nightly", max_examples=2000, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(scope="session")
def tiny_world():
    """A deterministic ~60-AS world with IRR dumps and collectors."""
    return build_world(tiny_config(seed=42))


@pytest.fixture(scope="session")
def tiny_registry(tiny_world):
    """The tiny world's dumps parsed into a multi-IRR registry."""
    return tiny_world.registry()


@pytest.fixture(scope="session")
def tiny_ir(tiny_registry):
    """The priority-merged IR of the tiny world."""
    return tiny_registry.merged()


@pytest.fixture(scope="session")
def tiny_verifier(tiny_ir, tiny_world):
    """A verifier over the tiny world with paper-default options."""
    return Verifier(tiny_ir, tiny_world.topology)


@pytest.fixture(scope="session")
def tiny_world_dir(tiny_world, tmp_path_factory):
    """The tiny world written to disk (dumps, as-rel, collectors, table)."""
    from repro.bgp.table import write_table_file

    directory = tmp_path_factory.mktemp("tiny-world")
    tiny_world.write_to_dir(directory)
    entries = collector_routes(
        tiny_world.topology, tiny_world.announced, tiny_world.collectors
    )
    write_table_file(directory / "table.txt", entries)
    return directory


@pytest.fixture(scope="session")
def tiny_routes(tiny_world):
    """All collector routes of the tiny world, materialized."""
    return list(
        collector_routes(tiny_world.topology, tiny_world.announced, tiny_world.collectors)
    )
