"""Tests for the AS relationship model and as-rel I/O."""

from repro.bgp.topology import AsRelationships, Rel


def small_topology() -> AsRelationships:
    rel = AsRelationships()
    # 1 - 2 Tier-1 clique; 3, 4 mid; 5, 6 stubs.
    rel.add_peering(1, 2)
    rel.add_transit(1, 3)
    rel.add_transit(2, 4)
    rel.add_transit(3, 5)
    rel.add_transit(4, 6)
    rel.add_peering(3, 4)
    return rel


class TestRelationships:
    def test_rel_provider(self):
        rel = small_topology()
        assert rel.rel(3, 1) is Rel.PROVIDER
        assert rel.rel(1, 3) is Rel.CUSTOMER

    def test_rel_peer_symmetric(self):
        rel = small_topology()
        assert rel.rel(3, 4) is Rel.PEER
        assert rel.rel(4, 3) is Rel.PEER

    def test_rel_none_for_strangers(self):
        assert small_topology().rel(5, 6) is None

    def test_neighbors(self):
        rel = small_topology()
        assert rel.neighbors(3) == {1, 4, 5}

    def test_ases(self):
        assert small_topology().ases() == {1, 2, 3, 4, 5, 6}

    def test_customer_cone(self):
        rel = small_topology()
        assert rel.customer_cone(1) == {3, 5}
        assert rel.customer_cone(5) == frozenset()

    def test_customer_cone_cached_and_invalidated(self):
        rel = small_topology()
        assert rel.customer_cone(1) == {3, 5}
        rel.add_transit(5, 6)
        assert rel.customer_cone(1) == {3, 5, 6}

    def test_cone_survives_cycles(self):
        rel = AsRelationships()
        rel.add_transit(1, 2)
        rel.add_transit(2, 1)  # pathological mutual transit
        assert 2 in rel.customer_cone(1)


class TestTier1Inference:
    def test_clique_detected(self):
        rel = small_topology()
        assert rel.infer_tier1() == {1, 2}

    def test_non_clique_pruned(self):
        rel = AsRelationships()
        rel.add_peering(1, 2)
        rel.add_peering(2, 3)  # 1-3 missing: not a clique
        rel.add_peering(1, 3)
        rel.add_peering(4, 1)  # 4 peers with only one member
        inferred = rel.infer_tier1()
        assert {1, 2, 3} <= inferred
        # 4 has no providers either, but lacks clique connectivity
        assert 4 not in inferred or len(inferred) == 4


class TestAsRelFormat:
    def test_roundtrip(self):
        rel = small_topology()
        text = rel.to_as_rel_text()
        restored = AsRelationships.from_as_rel_text(text)
        assert restored.providers == rel.providers
        assert restored.customers == rel.customers
        assert restored.peers == rel.peers

    def test_tier1_populated_on_parse(self):
        restored = AsRelationships.from_as_rel_text(small_topology().to_as_rel_text())
        assert restored.tier1 == {1, 2}

    def test_malformed_lines_skipped(self):
        text = "# comment\n1|2|-1\ngarbage\n3|4\n5|x|0\n"
        rel = AsRelationships.from_as_rel_text(text)
        assert rel.rel(2, 1) is Rel.PROVIDER
        assert rel.ases() == {1, 2}

    def test_save_load(self, tmp_path):
        rel = small_topology()
        path = tmp_path / "as-rel.txt"
        rel.save(path)
        assert AsRelationships.load(path).providers == rel.providers

    def test_deterministic_text(self):
        assert small_topology().to_as_rel_text() == small_topology().to_as_rel_text()
