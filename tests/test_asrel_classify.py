"""Tests for AS-relationship inference and usage classification."""

import pytest

from repro.bgp.topology import AsRelationships, Rel
from repro.irr.dump import parse_dump_text
from repro.tools.asrel import infer_relationships, score_inference
from repro.tools.classify import ARCHETYPES, classify_as, classify_ir

TRANSIT_DUMP = """
aut-num: AS10
import:  from AS99 accept ANY
export:  to AS99 announce AS10:AS-CONE
import:  from AS20 accept AS20
export:  to AS20 announce ANY

aut-num: AS99
export:  to AS10 announce ANY
import:  from AS10 accept AS10:AS-CONE

as-set:  AS10:AS-CONE
members: AS10, AS20
"""

PEER_DUMP = """
aut-num: AS1
import:  from AS2 accept AS2:AS-CONE
export:  to AS2 announce AS1:AS-CONE

aut-num: AS2
import:  from AS1 accept AS1:AS-CONE
export:  to AS1 announce AS2:AS-CONE

as-set:  AS1:AS-CONE
members: AS1

as-set:  AS2:AS-CONE
members: AS2
"""


class TestInference:
    def test_provider_inferred_from_import_any(self):
        ir, _ = parse_dump_text(TRANSIT_DUMP, "T")
        inferred = infer_relationships(ir)
        assert inferred.rel(10, 99) is Rel.PROVIDER
        assert inferred.rel(99, 10) is Rel.CUSTOMER

    def test_customer_inferred_from_export_any(self):
        ir, _ = parse_dump_text(TRANSIT_DUMP, "T")
        inferred = infer_relationships(ir)
        assert inferred.rel(10, 20) is Rel.CUSTOMER

    def test_peer_inferred_from_cone_exchange(self):
        ir, _ = parse_dump_text(PEER_DUMP, "T")
        inferred = infer_relationships(ir)
        assert inferred.rel(1, 2) is Rel.PEER

    def test_contradiction_yields_nothing(self):
        dump = """
aut-num: AS1
import:  from AS2 accept ANY

aut-num: AS2
import:  from AS1 accept ANY
"""
        ir, _ = parse_dump_text(dump, "T")
        inferred = infer_relationships(ir)
        assert inferred.rel(1, 2) is None

    def test_empty_ir(self):
        ir, _ = parse_dump_text("", "T")
        assert infer_relationships(ir).ases() == set()

    def test_inference_on_tiny_world(self, tiny_ir, tiny_world):
        inferred = infer_relationships(tiny_ir)
        score = score_inference(tiny_world.topology, inferred)
        # The synthetic world documents most provider links with
        # accept-ANY imports: inference should be precise where it speaks.
        assert score.links_inferred > 20
        assert score.transit_precision > 0.8
        assert score.transit_recall > 0.2


class TestScore:
    def test_perfect_score(self):
        truth = AsRelationships.from_as_rel_text("1|2|-1\n3|4|0\n")
        score = score_inference(truth, truth)
        assert score.transit_precision == 1.0
        assert score.transit_recall == 1.0
        assert score.peer_precision == 1.0
        assert score.links_correct == 2

    def test_direction_matters(self):
        truth = AsRelationships.from_as_rel_text("1|2|-1\n")
        wrong = AsRelationships.from_as_rel_text("2|1|-1\n")
        score = score_inference(truth, wrong)
        assert score.transit_precision == 0.0

    def test_as_dict_keys(self):
        truth = AsRelationships.from_as_rel_text("1|2|-1\n")
        assert len(score_inference(truth, truth).as_dict()) == 7


class TestClassification:
    def classify_dump(self, dump: str, asn: int, rel_text: str | None = None):
        ir, _ = parse_dump_text(dump, "T")
        relationships = (
            AsRelationships.from_as_rel_text(rel_text) if rel_text else None
        )
        return classify_as(ir.aut_nums.get(asn), relationships)

    def test_silent(self):
        assert classify_as(None) == "silent"

    def test_ghost(self):
        assert self.classify_dump("aut-num: AS1\n", 1) == "ghost"

    def test_minimal(self):
        dump = "aut-num: AS1\nimport: from AS2 accept ANY\n"
        assert self.classify_dump(dump, 1) == "minimal"

    def test_documented(self):
        rules = "".join(
            f"import: from AS{n} accept AS{n}\nexport: to AS{n} announce AS1\n"
            for n in range(2, 8)
        )
        assert self.classify_dump(f"aut-num: AS1\n{rules}", 1) == "documented"

    def test_power_user_regex(self):
        dump = "aut-num: AS1\nimport: from AS2 accept <^AS2+$>\n"
        assert self.classify_dump(dump, 1) == "power-user"

    def test_power_user_structured(self):
        dump = (
            "aut-num: AS1\n"
            "import: from AS2 accept ANY REFINE from AS2 accept AS3\n"
        )
        assert self.classify_dump(dump, 1) == "power-user"

    def test_provider_mandated(self):
        dump = (
            "aut-num: AS1\nimport: from AS99 accept ANY\n"
            "export: to AS99 announce AS1\n"
        )
        label = self.classify_dump(dump, 1, "99|1|-1\n1|5|-1\n")
        assert label == "provider-mandated"

    def test_classify_ir_census(self, tiny_ir, tiny_world):
        labels, census = classify_ir(
            tiny_ir, tiny_world.topology.ases(), tiny_world.topology
        )
        assert set(census) <= set(ARCHETYPES)
        assert census["silent"] > 0
        assert census["ghost"] > 0
        assert sum(census.values()) == len(labels)
        # ground-truth sanity: every generator-"absent" AS classifies silent
        for asn, profile in tiny_world.profiles.items():
            if profile == "absent":
                assert labels[asn] == "silent"
