"""Tests for four-valued filter evaluation."""

import pytest

from repro.core.filter_match import Eval, FilterEvaluator, MatchContext, Val
from repro.core.query import QueryEngine
from repro.core.report import ItemKind
from repro.irr.dump import parse_dump_text
from repro.net.prefix import Prefix
from repro.rpsl.filter import parse_filter_text

DUMP = """
route:   10.1.0.0/16
origin:  AS1

route:   10.2.0.0/16
origin:  AS2

as-set:  AS-BOTH
members: AS1, AS2

as-set:  AS-HOLEY
members: AS1, AS-GONE

route-set: RS-TEN
members:   10.0.0.0/8^16-24

filter-set: FLTR-ONE
filter:     AS1
"""


@pytest.fixture(scope="module")
def evaluator():
    ir, _ = parse_dump_text(DUMP, "TEST")
    return FilterEvaluator(QueryEngine(ir))


def ctx(prefix="10.1.0.0/16", path=(1,), peer=1, self_asn=9):
    return MatchContext(Prefix.parse(prefix), tuple(path), peer, self_asn)


def evaluate(evaluator, text, context=None):
    return evaluator.evaluate(parse_filter_text(text), context or ctx())


class TestPrimaries:
    def test_any_always_true(self, evaluator):
        assert evaluate(evaluator, "ANY").value is Val.TRUE

    def test_asn_exact(self, evaluator):
        assert evaluate(evaluator, "AS1").value is Val.TRUE
        result = evaluate(evaluator, "AS2")
        assert result.value is Val.FALSE
        assert result.items[0].kind is ItemKind.MATCH_FILTER_AS_NUM

    def test_asn_with_op(self, evaluator):
        more_specific = ctx(prefix="10.1.5.0/24")
        assert evaluate(evaluator, "AS1^+", more_specific).value is Val.TRUE
        assert evaluate(evaluator, "AS1", more_specific).value is Val.FALSE

    def test_zero_route_asn_unrecorded(self, evaluator):
        result = evaluate(evaluator, "AS99")
        assert result.value is Val.UNREC
        assert result.items[0].kind is ItemKind.UNRECORDED_AS_ROUTES

    def test_peeras_resolves_peer(self, evaluator):
        assert evaluate(evaluator, "PeerAS", ctx(peer=1)).value is Val.TRUE
        assert evaluate(evaluator, "PeerAS", ctx(peer=2)).value is Val.FALSE

    def test_as_set(self, evaluator):
        assert evaluate(evaluator, "AS-BOTH").value is Val.TRUE
        assert evaluate(evaluator, "AS-BOTH", ctx(prefix="10.9.0.0/16")).value is Val.FALSE

    def test_as_any_always_true(self, evaluator):
        assert evaluate(evaluator, "AS-ANY").value is Val.TRUE

    def test_unrecorded_as_set(self, evaluator):
        result = evaluate(evaluator, "AS-MISSING")
        assert result.value is Val.UNREC
        assert result.items[0].kind is ItemKind.UNRECORDED_AS_SET

    def test_partially_unrecorded_as_set(self, evaluator):
        # Matches via AS1 → TRUE despite the missing nested set.
        assert evaluate(evaluator, "AS-HOLEY").value is Val.TRUE
        # No match + missing nested set → UNREC.
        result = evaluate(evaluator, "AS-HOLEY", ctx(prefix="10.9.0.0/16"))
        assert result.value is Val.UNREC

    def test_route_set(self, evaluator):
        assert evaluate(evaluator, "RS-TEN").value is Val.TRUE
        assert evaluate(evaluator, "RS-TEN", ctx(prefix="10.0.0.0/8")).value is Val.FALSE

    def test_route_set_nonstandard_op(self, evaluator):
        assert evaluate(evaluator, "RS-TEN^16", ctx(prefix="10.5.0.0/16")).value is Val.TRUE
        assert evaluate(evaluator, "RS-TEN^8", ctx(prefix="10.5.0.0/16")).value is Val.FALSE

    def test_unrecorded_route_set(self, evaluator):
        assert evaluate(evaluator, "RS-MISSING").value is Val.UNREC

    def test_prefix_set(self, evaluator):
        assert evaluate(evaluator, "{10.1.0.0/16}").value is Val.TRUE
        assert evaluate(evaluator, "{10.0.0.0/8^+}").value is Val.TRUE
        assert evaluate(evaluator, "{192.0.2.0/24}").value is Val.FALSE

    def test_empty_prefix_set_false(self, evaluator):
        assert evaluate(evaluator, "{}").value is Val.FALSE

    def test_filter_set_ref(self, evaluator):
        assert evaluate(evaluator, "FLTR-ONE").value is Val.TRUE

    def test_builtin_martian(self, evaluator):
        public = ctx(prefix="8.8.8.0/24")
        assert evaluate(evaluator, "NOT fltr-martian", public).value is Val.TRUE
        for bogon in ("192.168.1.0/24", "10.1.0.0/16", "224.0.0.0/8"):
            assert evaluate(evaluator, "NOT fltr-martian", ctx(prefix=bogon)).value is Val.FALSE

    def test_unrecorded_filter_set(self, evaluator):
        assert evaluate(evaluator, "FLTR-MISSING").value is Val.UNREC

    def test_community_skips(self, evaluator):
        result = evaluate(evaluator, "community(65535:666)")
        assert result.value is Val.SKIP
        assert result.items[0].kind is ItemKind.SKIPPED_COMMUNITY


class TestRegexFilters:
    def test_matching_regex(self, evaluator):
        context = ctx(path=(3, 2, 1))
        assert evaluate(evaluator, "<^AS3 .* AS1$>", context).value is Val.TRUE

    def test_non_matching_regex(self, evaluator):
        result = evaluate(evaluator, "<^AS9$>", ctx(path=(1,)))
        assert result.value is Val.FALSE
        assert result.items[0].kind is ItemKind.MATCH_FILTER_AS_PATH

    def test_asn_range_skips_by_default(self, evaluator):
        result = evaluate(evaluator, "<AS64512-AS65534>")
        assert result.value is Val.SKIP
        assert result.items[0].kind is ItemKind.SKIPPED_REGEX_RANGE

    def test_same_pattern_skips_by_default(self, evaluator):
        result = evaluate(evaluator, "<.~+>")
        assert result.value is Val.SKIP

    def test_extensions_can_be_enabled(self):
        ir, _ = parse_dump_text(DUMP, "TEST")
        extended = FilterEvaluator(
            QueryEngine(ir), handle_asn_ranges=True, handle_same_pattern=True
        )
        context = ctx(path=(64512, 64512))
        assert evaluate(extended, "<^AS64512-AS65534~+$>", context).value is Val.TRUE


class TestCombinators:
    def test_and(self, evaluator):
        assert evaluate(evaluator, "ANY AND AS1").value is Val.TRUE
        assert evaluate(evaluator, "ANY AND AS2").value is Val.FALSE

    def test_or(self, evaluator):
        assert evaluate(evaluator, "AS2 OR AS1").value is Val.TRUE
        assert evaluate(evaluator, "AS2 OR {192.0.2.0/24}").value is Val.FALSE

    def test_not(self, evaluator):
        assert evaluate(evaluator, "NOT AS2").value is Val.TRUE
        assert evaluate(evaluator, "NOT AS1").value is Val.FALSE

    def test_false_beats_skip_in_and(self, evaluator):
        result = evaluate(evaluator, "AS2 AND community(1:1)")
        assert result.value is Val.FALSE

    def test_true_beats_skip_in_or(self, evaluator):
        assert evaluate(evaluator, "AS1 OR community(1:1)").value is Val.TRUE

    def test_skip_propagates_in_and(self, evaluator):
        assert evaluate(evaluator, "ANY AND community(1:1)").value is Val.SKIP

    def test_unrec_propagates(self, evaluator):
        assert evaluate(evaluator, "ANY AND AS-MISSING").value is Val.UNREC
        assert evaluate(evaluator, "AS2 OR AS-MISSING").value is Val.UNREC

    def test_skip_beats_unrec(self, evaluator):
        result = evaluate(evaluator, "AS-MISSING AND community(1:1)")
        assert result.value is Val.SKIP

    def test_not_preserves_skip_and_unrec(self, evaluator):
        assert evaluate(evaluator, "NOT community(1:1)").value is Val.SKIP
        assert evaluate(evaluator, "NOT AS-MISSING").value is Val.UNREC

    def test_paper_default_route_exclusion(self, evaluator):
        text = "ANY AND NOT {0.0.0.0/0, ::/0}"
        assert evaluate(evaluator, text).value is Val.TRUE
        default = ctx(prefix="0.0.0.0/0")
        assert evaluate(evaluator, text, default).value is Val.FALSE

    def test_true_result_has_no_items(self, evaluator):
        assert evaluate(evaluator, "AS1").items == ()


class TestEvalAlgebra:
    def test_or_identity(self):
        false = Eval(Val.FALSE)
        true = Eval(Val.TRUE)
        assert false.or_(true).value is Val.TRUE
        assert true.and_(true).value is Val.TRUE

    def test_not_involution_on_decided(self):
        for value in (Val.TRUE, Val.FALSE):
            assert Eval(value).not_().not_().value is value
