"""Tests for the dump lexer: paragraphs, continuations, comments."""

import io

from repro.rpsl.lexer import lex_paragraph, split_dump, strip_comment


def lex(text: str):
    return list(split_dump(io.StringIO(text)))


class TestParagraphSplitting:
    def test_two_objects(self):
        paragraphs = lex("aut-num: AS1\nas-name: ONE\n\nroute: 10.0.0.0/8\norigin: AS1\n")
        assert len(paragraphs) == 2
        assert paragraphs[0].object_class == "aut-num"
        assert paragraphs[1].object_class == "route"

    def test_blank_lines_collapsed(self):
        paragraphs = lex("aut-num: AS1\n\n\n\nroute: 10.0.0.0/8\norigin: AS1\n")
        assert len(paragraphs) == 2

    def test_server_remarks_ignored(self):
        paragraphs = lex("% RIPE header\n% more\n\naut-num: AS1\n")
        assert len(paragraphs) == 1
        assert paragraphs[0].object_name == "AS1"

    def test_empty_input(self):
        assert lex("") == []
        assert lex("\n\n\n") == []


class TestAttributeLexing:
    def test_value_whitespace_normalized(self):
        paragraph = lex("aut-num:     AS1   \n")[0]
        assert paragraph.object_name == "AS1"

    def test_continuation_with_space(self):
        paragraph = lex("import: from AS1\n  accept ANY\n")[0]
        assert paragraph.attributes[0].value == "from AS1 accept ANY"

    def test_continuation_with_plus(self):
        paragraph = lex("import: from AS1\n+accept ANY\n")[0]
        assert paragraph.attributes[0].value == "from AS1 accept ANY"

    def test_continuation_with_tab(self):
        paragraph = lex("import: from AS1\n\taccept ANY\n")[0]
        assert paragraph.attributes[0].value == "from AS1 accept ANY"

    def test_comment_stripped(self):
        paragraph = lex("import: from AS1 accept ANY # trust them\n")[0]
        assert paragraph.attributes[0].value == "from AS1 accept ANY"

    def test_comment_in_continuation(self):
        paragraph = lex("import: from AS1 # peer\n  accept ANY # all\n")[0]
        assert paragraph.attributes[0].value == "from AS1 accept ANY"

    def test_stray_line_recorded(self):
        paragraph = lex("aut-num: AS1\n!!! broken\nas-name: X\n")[0]
        assert paragraph.stray_lines == ["!!! broken"]
        assert paragraph.get("as-name") == "X"

    def test_get_case_insensitive(self):
        paragraph = lex("aut-num: AS1\nAS-NAME: X\n")[0]
        assert paragraph.get("as-name") == "X"
        assert paragraph.get("missing") is None

    def test_get_all_ordered(self):
        paragraph = lex("aut-num: AS1\nimport: a\nmp-import: b\nimport: c\n")[0]
        values = [a.value for a in paragraph.get_all("import", "mp-import")]
        assert values == ["a", "b", "c"]

    def test_first_line_number(self):
        paragraphs = lex("\naut-num: AS1\n\nroute: 10.0.0.0/8\norigin: AS1\n")
        assert paragraphs[0].first_line == 2
        assert paragraphs[1].first_line == 4

    def test_strip_comment(self):
        assert strip_comment("value # comment") == "value "
        assert strip_comment("no comment") == "no comment"

    def test_lex_paragraph_direct(self):
        paragraph = lex_paragraph(1, ["as-set: AS-X", "members: AS1,", " AS2"])
        assert paragraph.get("members") == "AS1, AS2"
