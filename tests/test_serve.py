"""Tests for the resident verification service (``rpslyzer serve``).

Covers both front-ends against an in-thread daemon, the service's
admission semantics (deadlines, backpressure, coalescing), bit-identity
with the batch pipeline, metrics-backed warm-latency evidence, and —
via subprocesses — the SIGTERM drain and a SIGKILL chaos check.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro import api
from repro.irr.whois import whois_query
from repro.obs import MetricsRegistry, parse_prometheus
from repro.serve import Query, ServeConfig, ServeDaemon, report_as_dict


def _http(port: int, method: str, path: str, payload: dict | None = None):
    """One HTTP request; returns (status, parsed-JSON-body)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        data = response.read()
        return response.status, json.loads(data) if data else None
    finally:
        connection.close()


def _http_full(
    port: int,
    method: str,
    path: str,
    payload: dict | None = None,
    headers: dict | None = None,
):
    """Like :func:`_http` but also returns the response headers (lowered)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        sent = {"Content-Type": "application/json"} if body else {}
        sent.update(headers or {})
        connection.request(method, path, body=body, headers=sent)
        response = connection.getresponse()
        data = response.read()
        received = {name.lower(): value for name, value in response.getheaders()}
        if not data:
            return response.status, received, None
        try:
            parsed = json.loads(data)
        except json.JSONDecodeError:  # /metrics is Prometheus text
            parsed = data.decode("utf-8", errors="replace")
        return response.status, received, parsed
    finally:
        connection.close()


def _verify_payload(entry, **extra) -> dict:
    payload = {"prefix": str(entry.prefix), "as_path": list(entry.as_path)}
    payload.update(extra)
    return payload


def _strip_id(response: str) -> str:
    """Peel the ``%% id <rid>`` comment every ``!v`` response leads with."""
    assert re.match(r"%% id [-A-Za-z0-9_.:/+=]{1,128}\n", response), response[:80]
    return response.split("\n", 1)[1]


@pytest.fixture(scope="module")
def serve_session(tiny_world, tmp_path_factory):
    cache = tmp_path_factory.mktemp("serve-cache")
    with api.open_session(
        tiny_world, registry=MetricsRegistry(), cache_dir=cache
    ) as session:
        yield session


@pytest.fixture(scope="module")
def handle(serve_session):
    daemon = ServeDaemon(
        serve_session, ServeConfig(http_port=0, whois_port=0)
    )
    with daemon.start_in_thread() as running:
        yield running


class TestHttpFrontend:
    def test_healthz(self, handle, serve_session):
        status, body = _http(handle.http_port, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["index_digest"] == serve_session.digest
        assert body["queue_size"] == 256

    def test_verify_round_trip(self, handle, tiny_routes):
        entry = tiny_routes[0]
        status, body = _http(
            handle.http_port, "POST", "/verify", _verify_payload(entry)
        )
        assert status == 200
        assert body["prefix"] == str(entry.prefix)
        assert body["as_path"] == list(entry.as_path)
        assert body["text"]
        assert all({"direction", "status", "items"} <= set(h) for h in body["hops"])

    def test_explain_round_trip(self, handle, tiny_routes):
        entry = tiny_routes[0]
        status, body = _http(
            handle.http_port, "POST", "/explain", _verify_payload(entry)
        )
        assert status == 200
        assert any(event.get("event") == "route" for event in body["events"])

    def test_bad_request(self, handle):
        status, body = _http(
            handle.http_port, "POST", "/verify", {"prefix": "not-a-prefix"}
        )
        assert status == 400
        assert body["error"] == "bad-request"

    def test_unknown_path_and_method(self, handle):
        status, body = _http(handle.http_port, "GET", "/nope")
        assert status == 404
        status, body = _http(handle.http_port, "GET", "/verify")
        assert status == 405

    def test_bit_identity_with_batch_verifier(
        self, handle, tiny_ir, tiny_world, tiny_routes
    ):
        """The serve verdicts must render character-identical to the batch
        pipeline's Appendix-C output for the same routes."""
        verifier = api.make_verifier(tiny_ir, tiny_world.topology)
        for entry in tiny_routes[:40]:
            expected = str(
                verifier.verify_route(
                    str(entry.prefix), entry.as_path, collector="serve"
                )
            )
            status, body = _http(
                handle.http_port, "POST", "/verify", _verify_payload(entry)
            )
            assert status == 200
            assert body["text"] == expected


class TestWhoisFrontend:
    def test_plain_lookup(self, handle, tiny_ir):
        asn = next(iter(tiny_ir.aut_nums))
        text = whois_query("127.0.0.1", handle.whois_port, f"AS{asn}")
        assert text.startswith("aut-num:")

    def test_bang_verify_matches_batch(
        self, handle, tiny_ir, tiny_world, tiny_routes
    ):
        entry = tiny_routes[0]
        verifier = api.make_verifier(tiny_ir, tiny_world.topology)
        expected = str(
            verifier.verify_route(str(entry.prefix), entry.as_path, collector="serve")
        )
        path = " ".join(str(asn) for asn in entry.as_path)
        framed = _strip_id(
            whois_query("127.0.0.1", handle.whois_port, f"!v {entry.prefix} {path}")
        )
        assert framed.startswith("A")
        payload = framed[framed.index("\n") + 1 :]
        assert payload.endswith("C")
        assert payload[: -len("\nC") or None].rstrip("\nC") == expected.rstrip()

    def test_bang_verify_bad_input(self, handle):
        response = _strip_id(
            whois_query("127.0.0.1", handle.whois_port, "!v nonsense")
        )
        assert response.startswith("F ")


class TestDeadlines:
    def test_deadline_expiry_is_structured(self, handle, tiny_routes):
        service = handle.daemon.service
        service.fault_hook = lambda queries: time.sleep(0.4)
        try:
            started = time.monotonic()
            status, body = _http(
                handle.http_port,
                "POST",
                "/verify",
                _verify_payload(tiny_routes[0], deadline_s=0.05),
            )
            elapsed = time.monotonic() - started
        finally:
            service.fault_hook = None
        assert status == 504
        assert body["error"] == "deadline"
        assert elapsed < 2  # answered at the deadline, not after the stall
        # The miss is counted on the session's registry.
        snapshot = handle.daemon.session.metrics_snapshot()
        misses = [
            counter
            for counter in snapshot["counters"]
            if counter["name"] == "serve_deadline_miss_total"
        ]
        assert misses and misses[0]["value"] >= 1


class TestDeadlineValidation:
    def test_http_zero_deadline_is_bad_request(self, handle, tiny_routes):
        """Regression: deadline_s=0 used to be clamped by min() into an
        instant 504; it is a malformed request and must answer 400."""
        status, body = _http(
            handle.http_port,
            "POST",
            "/verify",
            _verify_payload(tiny_routes[0], deadline_s=0),
        )
        assert status == 400
        assert body["error"] == "bad-request"

    def test_submit_rejects_nonpositive_deadline_directly(
        self, serve_session, tiny_routes
    ):
        """A Query built in code (bypassing from_payload) must be refused
        by submit itself, not turned into an instant deadline miss."""
        from repro.serve import BadRequestError
        from repro.serve.core import VerifyService

        entry = tiny_routes[0]

        async def scenario():
            service = VerifyService(serve_session, ServeConfig())
            await service.start()
            try:
                query = Query(
                    kind="verify",
                    prefix=str(entry.prefix),
                    as_path=tuple(entry.as_path),
                    deadline_s=-1.0,
                )
                with pytest.raises(BadRequestError):
                    await service.submit(query)
            finally:
                await service.stop()

        asyncio.run(scenario())


class TestDrainPaths:
    def test_drain_timeout_returns_false_and_waiters_get_busy(
        self, serve_session, tiny_routes
    ):
        """An expiring drain must report False, and the still-queued
        waiters must fail with BusyError at stop — never hang."""
        from repro.serve import BusyError
        from repro.serve.core import VerifyService

        query = Query.from_payload(_verify_payload(tiny_routes[0]), "verify")

        async def scenario():
            service = VerifyService(
                serve_session,
                ServeConfig(queue_size=64, batch_max=1, default_deadline=30.0),
            )
            await service.start()
            service.fault_hook = lambda queries: time.sleep(0.2)
            tasks = [
                asyncio.create_task(service.submit(query)) for _ in range(6)
            ]
            await asyncio.sleep(0.05)  # let them enqueue
            drained = await service.drain(timeout=0.05)
            assert drained is False  # queued work remained
            with pytest.raises(BusyError):
                await service.submit(query)  # draining refuses admission
            await service.stop()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            assert all(
                isinstance(result, (dict, BusyError)) for result in results
            )
            assert any(isinstance(result, BusyError) for result in results)

        asyncio.run(scenario())

    def test_post_drain_submit_refused_on_both_frontends(
        self, tiny_world, tiny_routes
    ):
        with api.open_session(
            tiny_world, registry=MetricsRegistry(), use_cache=False
        ) as session:
            daemon = ServeDaemon(
                session, ServeConfig(http_port=0, whois_port=0)
            )
            with daemon.start_in_thread() as running:
                daemon.service.begin_drain()
                entry = tiny_routes[0]
                status, body = _http(
                    running.http_port, "POST", "/verify", _verify_payload(entry)
                )
                assert status == 429
                assert body["error"] == "busy"
                path = " ".join(str(asn) for asn in entry.as_path)
                response = whois_query(
                    "127.0.0.1",
                    running.whois_port,
                    f"!v {entry.prefix} {path}",
                )
                assert _strip_id(response).startswith("%% BUSY")


class TestConcurrency:
    def test_sustains_100_concurrent_requests(self, handle, tiny_routes):
        """≥100 in-flight requests, default queue: every one is answered."""
        entries = [tiny_routes[i % len(tiny_routes)] for i in range(150)]
        with ThreadPoolExecutor(max_workers=150) as pool:
            results = list(
                pool.map(
                    lambda entry: _http(
                        handle.http_port, "POST", "/verify", _verify_payload(entry)
                    ),
                    entries,
                )
            )
        statuses = [status for status, _ in results]
        assert statuses.count(200) == 150
        health = handle.daemon.service.health()
        # Micro-batching actually coalesced concurrent arrivals: strictly
        # fewer executor batches than executed queries.
        assert health["batches"] < health["queries"]

    def test_flood_backpressure_bounded_queue(self, tiny_world, tmp_path):
        """A tiny queue under a slow executor refuses with 429, never
        buffers unboundedly, and still answers admitted requests."""
        with api.open_session(
            tiny_world, registry=MetricsRegistry(), use_cache=False
        ) as session:
            daemon = ServeDaemon(
                session,
                ServeConfig(
                    http_port=0, queue_size=4, batch_max=2, default_deadline=30.0
                ),
            )
            with daemon.start_in_thread() as running:
                daemon.service.fault_hook = lambda queries: time.sleep(0.05)
                route = {
                    "prefix": "0.0.0.0/0",
                    "as_path": [64500],
                }
                with ThreadPoolExecutor(max_workers=32) as pool:
                    results = list(
                        pool.map(
                            lambda _: _http(
                                running.http_port, "POST", "/verify", route
                            ),
                            range(32),
                        )
                    )
                statuses = [status for status, _ in results]
                assert set(statuses) <= {200, 429}
                assert statuses.count(429) >= 1
                assert statuses.count(200) >= 1
                busy_bodies = [
                    body for status, body in results if status == 429
                ]
                assert all(body["error"] == "busy" for body in busy_bodies)


class TestWarmLatencyMetrics:
    def test_no_reload_or_recompile_per_request(self, handle, tiny_routes):
        """The acceptance check for warm serving: after many queries the
        index was adopted exactly once (one cache event at startup), while
        the request counters kept growing — every request was answered
        from the resident index, never a reload/recompile."""
        for entry in tiny_routes[:10]:
            status, _ = _http(
                handle.http_port, "POST", "/verify", _verify_payload(entry)
            )
            assert status == 200
        connection = http.client.HTTPConnection(
            "127.0.0.1", handle.http_port, timeout=10
        )
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            assert response.status == 200
            text = response.read().decode()
        finally:
            connection.close()
        parsed = parse_prometheus(text)
        cache_total = sum(
            counter["value"]
            for counter in parsed["counters"]
            if counter["name"] == "index_cache_total"
        )
        assert cache_total == 1
        served = sum(
            counter["value"]
            for counter in parsed["counters"]
            if counter["name"] == "serve_requests_total"
            and counter["labels"].get("outcome") == "ok"
        )
        assert served >= 10
        assert any(
            histogram["name"] == "serve_request_seconds"
            for histogram in parsed["histograms"]
        )


class TestRequestIds:
    def test_client_id_is_echoed_everywhere(self, handle, tiny_routes):
        """One correlation id greps the whole story: response header,
        flight-recorder request event, and the access-log record."""
        rid = "test-correlation-0001"
        status, headers, body = _http_full(
            handle.http_port,
            "POST",
            "/verify",
            _verify_payload(tiny_routes[0]),
            headers={"X-Request-Id": rid},
        )
        assert status == 200
        assert headers["x-request-id"] == rid
        events = handle.daemon.service.flight.events(request_id=rid)
        assert any(event["type"] == "request" for event in events)
        request_event = next(e for e in events if e["type"] == "request")
        assert request_event["outcome"] == "ok"
        assert request_event["frontend"] == "http"
        assert request_event["endpoint"] == "verify"

    def test_missing_id_gets_generated(self, handle):
        status, headers, _ = _http_full(handle.http_port, "GET", "/healthz")
        assert status == 200
        assert re.fullmatch(r"[0-9a-f]{32}", headers["x-request-id"])

    def test_dirty_id_is_replaced_not_propagated(self, handle):
        status, headers, _ = _http_full(
            handle.http_port,
            "GET",
            "/healthz",
            headers={"X-Request-Id": "has spaces and\ttabs"},
        )
        assert status == 200
        assert re.fullmatch(r"[0-9a-f]{32}", headers["x-request-id"])

    def test_error_responses_carry_the_id(self, handle):
        rid = "bad-req-42"
        status, headers, body = _http_full(
            handle.http_port,
            "POST",
            "/verify",
            {"prefix": "not-a-prefix"},
            headers={"X-Request-Id": rid},
        )
        assert status == 400
        assert headers["x-request-id"] == rid
        assert body["error"] == "bad-request"

    def test_whois_id_lands_in_the_flight_ring(self, handle, tiny_routes):
        entry = tiny_routes[0]
        path = " ".join(str(asn) for asn in entry.as_path)
        response = whois_query(
            "127.0.0.1", handle.whois_port, f"!v {entry.prefix} {path}"
        )
        rid = response.split("\n", 1)[0].split()[-1]
        events = handle.daemon.service.flight.events(request_id=rid)
        request_event = next(e for e in events if e["type"] == "request")
        assert request_event["frontend"] == "whois"
        assert request_event["outcome"] == "ok"


class TestServeTelemetry:
    def test_metrics_content_type_is_prometheus(self, handle):
        from repro.obs import PROMETHEUS_CONTENT_TYPE

        status, headers, _ = _http_full(handle.http_port, "GET", "/metrics")
        assert status == 200
        assert headers["content-type"] == PROMETHEUS_CONTENT_TYPE

    def test_json_endpoints_send_application_json(self, handle, tiny_routes):
        for status_expected, method, path, payload in (
            (200, "GET", "/healthz", None),
            (200, "POST", "/verify", _verify_payload(tiny_routes[0])),
            (404, "GET", "/nope", None),
        ):
            status, headers, _ = _http_full(
                handle.http_port, method, path, payload
            )
            assert status == status_expected
            assert headers["content-type"].startswith("application/json")

    def test_debug_flight_endpoint(self, handle, tiny_routes):
        rid = "debug-flight-probe"
        _http_full(
            handle.http_port,
            "POST",
            "/verify",
            _verify_payload(tiny_routes[0]),
            headers={"X-Request-Id": rid},
        )
        status, headers, body = _http_full(
            handle.http_port, "GET", f"/debug/flight?id={rid}"
        )
        assert status == 200
        assert body["enabled"] is True
        assert body["stats"]["capacity"] > 0
        assert all(event["id"] == rid for event in body["events"])
        assert any(event["type"] == "request" for event in body["events"])
        # type + limit filters
        status, _, body = _http_full(
            handle.http_port, "GET", "/debug/flight?type=request&limit=3"
        )
        assert status == 200
        assert len(body["events"]) <= 3
        assert all(event["type"] == "request" for event in body["events"])
        # malformed numbers are a client error, not a 500
        status, _, body = _http_full(
            handle.http_port, "GET", "/debug/flight?limit=banana"
        )
        assert status == 400

    def test_stage_and_queue_wait_histograms(self, handle, tiny_routes):
        for entry in tiny_routes[:5]:
            _http(handle.http_port, "POST", "/verify", _verify_payload(entry))
        status, _, _ = _http_full(handle.http_port, "GET", "/healthz")
        assert status == 200
        connection = http.client.HTTPConnection(
            "127.0.0.1", handle.http_port, timeout=10
        )
        try:
            connection.request("GET", "/metrics")
            text = connection.getresponse().read().decode()
        finally:
            connection.close()
        parsed = parse_prometheus(text)
        stages_seen = {
            histogram["labels"].get("stage")
            for histogram in parsed["histograms"]
            if histogram["name"] == "serve_stage_seconds"
        }
        assert {"accept", "queue", "coalesce", "execute", "respond"} <= stages_seen
        wait_outcomes = {
            histogram["labels"].get("outcome")
            for histogram in parsed["histograms"]
            if histogram["name"] == "serve_queue_wait_seconds"
        }
        assert "executed" in wait_outcomes

    def test_access_log_schema_and_slow_promotion(
        self, tiny_world, tiny_routes, tmp_path
    ):
        """Every request writes one JSONL access-log record matching the
        documented schema; with a tiny --slow-ms everything is also
        promoted to the slow log."""
        access = tmp_path / "access.jsonl"
        with api.open_session(
            tiny_world, registry=MetricsRegistry(), use_cache=False
        ) as session:
            daemon = ServeDaemon(
                session,
                ServeConfig(
                    http_port=0,
                    access_log=str(access),
                    slow_ms=0.0001,
                    incident_dir=str(tmp_path),
                ),
            )
            with daemon.start_in_thread() as running:
                rid = "access-log-probe"
                status, headers, _ = _http_full(
                    running.http_port,
                    "POST",
                    "/verify",
                    _verify_payload(tiny_routes[0]),
                    headers={"X-Request-Id": rid},
                )
                assert status == 200
        records = [
            json.loads(line) for line in access.read_text().splitlines() if line
        ]
        assert records, "access log is empty"
        record = next(r for r in records if r["id"] == rid)
        assert {
            "ts", "id", "frontend", "endpoint", "outcome", "verdicts",
            "total_ms", "stages_ms",
        } <= set(record)
        assert record["frontend"] == "http"
        assert record["endpoint"] == "verify"
        assert record["outcome"] == "ok"
        assert record["verdicts"] >= 1
        assert set(record["stages_ms"]) == {
            "accept", "queue", "coalesce", "dispatch", "execute", "respond",
        }
        assert record["total_ms"] > 0
        slow = access.with_name(access.name + ".slow")
        slow_records = [
            json.loads(line) for line in slow.read_text().splitlines() if line
        ]
        assert any(r["id"] == rid for r in slow_records)

    def test_worker_pool_stamps_request_id_in_worker_process(
        self, tiny_world, tiny_routes, tmp_path
    ):
        """The acceptance criterion: the correlation id must reach events
        recorded *inside* the worker process and ride back to the
        parent's flight ring."""
        with api.open_session(
            tiny_world, registry=MetricsRegistry(), use_cache=False
        ) as session:
            daemon = ServeDaemon(
                session,
                ServeConfig(
                    http_port=0, workers=1, incident_dir=str(tmp_path)
                ),
            )
            with daemon.start_in_thread() as running:
                rid = "worker-side-probe"
                status, headers, _ = _http_full(
                    running.http_port,
                    "POST",
                    "/verify",
                    _verify_payload(tiny_routes[0]),
                    headers={"X-Request-Id": rid},
                )
                assert status == 200
                assert headers["x-request-id"] == rid
                events = daemon.service.flight.events(request_id=rid)
                executes = [
                    e for e in events if e["type"] == "worker-execute"
                ]
                assert executes, f"no worker-execute event for {rid}: {events}"
                assert all(e["pid"] != os.getpid() for e in executes)
                assert executes[0]["outcome"] == "ok"

    def test_telemetry_off_serves_without_ids(self, tiny_world, tiny_routes):
        with api.open_session(
            tiny_world, registry=MetricsRegistry(), use_cache=False
        ) as session:
            daemon = ServeDaemon(
                session,
                ServeConfig(http_port=0, whois_port=0, telemetry=False,
                            flight_events=0),
            )
            with daemon.start_in_thread() as running:
                status, headers, body = _http_full(
                    running.http_port,
                    "POST",
                    "/verify",
                    _verify_payload(tiny_routes[0]),
                )
                assert status == 200
                assert "x-request-id" not in headers
                entry = tiny_routes[0]
                path = " ".join(str(asn) for asn in entry.as_path)
                framed = whois_query(
                    "127.0.0.1",
                    running.whois_port,
                    f"!v {entry.prefix} {path}",
                )
                assert framed.startswith("A")  # no %% id comment
                assert not daemon.service.flight.enabled


class TestQueryValidation:
    def test_payload_round_trip(self):
        query = Query.from_payload(
            {"prefix": "10.0.0.0/24", "as_path": [1, 2, 3], "deadline_s": 2},
            "verify",
        )
        assert query.as_path == (1, 2, 3)
        assert query.deadline_s == 2.0

    @pytest.mark.parametrize(
        "payload",
        [
            {"as_path": [1]},
            {"prefix": "10.0.0.0/24"},
            {"prefix": "10.0.0.0/24", "as_path": []},
            {"prefix": "10.0.0.0/24", "as_path": ["x"]},
            {"prefix": "10.0.0.0/24", "as_path": [1], "deadline_s": -1},
            {"prefix": "banana", "as_path": [1]},
            {"prefix": "10.0.0.0/24", "as_path": [2**40]},
        ],
    )
    def test_rejects_malformed(self, payload):
        from repro.serve import BadRequestError

        with pytest.raises(BadRequestError):
            Query.from_payload(payload, "verify")

    def test_report_as_dict_text_matches_str(self, tiny_verifier, tiny_routes):
        report = tiny_verifier.verify_entry(tiny_routes[0])
        assert report_as_dict(report)["text"] == str(report)


def _spawn_serve(tiny_world_dir: Path, extra: list[str] | None = None):
    """Launch ``rpslyzer serve`` as a subprocess; returns (proc, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--ir",
            str(tiny_world_dir),
            "--as-rel",
            str(tiny_world_dir / "as-rel.txt"),
            "--http-port",
            "0",
            "--no-index-cache",
            *(extra or []),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    port = None
    deadline = time.monotonic() + 60
    banner = []
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if not line:
            break
        banner.append(line)
        matched = re.search(r"http on 127\.0\.0\.1:(\d+)", line)
        if matched:
            port = int(matched.group(1))
            break
    if port is None:
        process.kill()
        raise AssertionError(f"no http banner from serve: {''.join(banner)!r}")
    return process, port


class TestReload:
    """POST /reload and the hot-swap path (incremental ingestion)."""

    @pytest.fixture()
    def reload_handle(self, tiny_world):
        """A private daemon per test: reloads mutate the session."""
        from repro.irr.history import ChurnConfig, evolve_with_journal

        session = api.open_session(
            tiny_world,
            as_rel=tiny_world.topology,
            registry=MetricsRegistry(),
            use_cache=False,
        )
        daemon = ServeDaemon(session, ServeConfig(http_port=0, workers=2))
        try:
            with daemon.start_in_thread() as running:
                yield running, session, ChurnConfig, evolve_with_journal
        finally:
            session.close()

    def test_reload_advances_generation(self, reload_handle):
        handle, session, ChurnConfig, evolve_with_journal = reload_handle
        _, journal = evolve_with_journal(session.ir, ChurnConfig(seed=11))
        status, body = _http(handle.http_port, "GET", "/healthz")
        assert body["index_generation"] == 0 and body["journal_serials"] == {}
        status, summary = _http(
            handle.http_port, "POST", "/reload", {"journal": journal.to_jsonable()}
        )
        assert status == 200
        assert summary["applied"] == len(journal)
        assert summary["generation"] == 1
        assert not summary["degraded"]
        assert summary["pool"]["reloaded"] == 2
        assert summary["pool"]["retired"] == 0
        status, body = _http(handle.http_port, "GET", "/healthz")
        assert body["index_generation"] == 1
        assert body["journal_serials"] == journal.serials()
        assert body["last_delta_apply_s"] > 0

    def test_reload_is_idempotent(self, reload_handle):
        handle, session, ChurnConfig, evolve_with_journal = reload_handle
        _, journal = evolve_with_journal(session.ir, ChurnConfig(seed=11))
        payload = {"journal": journal.to_jsonable()}
        _http(handle.http_port, "POST", "/reload", payload)
        status, summary = _http(handle.http_port, "POST", "/reload", payload)
        assert status == 200
        assert summary["applied"] == 0
        assert summary["generation"] == 1  # no spurious recompile

    def test_reload_rejects_garbage(self, reload_handle):
        handle, *_ = reload_handle
        status, body = _http(handle.http_port, "POST", "/reload", {"nope": 1})
        assert status == 400
        status, body = _http(
            handle.http_port, "POST", "/reload", {"journal": {"format": "x"}}
        )
        assert status == 400
        status, body = _http(
            handle.http_port,
            "POST",
            "/reload",
            {"journal_path": "/does/not/exist.jsonl"},
        )
        assert status == 400
        status, _ = _http(handle.http_port, "GET", "/reload")
        assert status == 405

    def test_hot_swap_under_flood_drops_nothing(self, reload_handle, tiny_routes):
        """Chaos: flood /verify while /reload swaps the pool.  Every
        in-flight request must get a verdict — zero drops, zero errors."""
        handle, session, ChurnConfig, evolve_with_journal = reload_handle
        _, journal = evolve_with_journal(session.ir, ChurnConfig(seed=13))
        entry = tiny_routes[0]
        payload = _verify_payload(entry, deadline_s=25)
        outcomes: list = []
        lock = threading.Lock()
        stop = threading.Event()

        def _client() -> None:
            while not stop.is_set():
                try:
                    status, _body = _http(
                        handle.http_port, "POST", "/verify", payload
                    )
                except (OSError, http.client.HTTPException) as exc:
                    status = type(exc).__name__
                with lock:
                    outcomes.append(status)

        threads = [threading.Thread(target=_client) for _ in range(6)]
        for thread in threads:
            thread.start()
        try:
            time.sleep(0.2)  # flood established before the swap
            status, summary = _http(
                handle.http_port,
                "POST",
                "/reload",
                {"journal": journal.to_jsonable()},
            )
            assert status == 200
            assert summary["generation"] == 1
            time.sleep(0.2)  # flood continues over the swapped pool
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        assert len(outcomes) > 20
        assert set(outcomes) == {200}, f"non-200 under swap: {set(outcomes)}"
        # Nothing was retired: the swap leased workers between batches.
        status, body = _http(handle.http_port, "GET", "/healthz")
        assert body["supervisor"]["live"] == 2
        assert body["index_generation"] == 1

    def test_journal_follower_applies_from_disk(self, tiny_world, tmp_path):
        from repro.irr.history import ChurnConfig, evolve_with_journal
        from repro.irr.journal import save_journal

        path = tmp_path / "feed.jsonl"
        session = api.open_session(
            tiny_world,
            as_rel=tiny_world.topology,
            registry=MetricsRegistry(),
            use_cache=False,
        )
        daemon = ServeDaemon(
            session,
            ServeConfig(
                http_port=0,
                journal_path=str(path),
                journal_poll=0.1,
            ),
        )
        try:
            with daemon.start_in_thread() as handle:
                _, journal = evolve_with_journal(session.ir, ChurnConfig(seed=19))
                save_journal(journal, path)
                deadline = time.monotonic() + 30
                generation = 0
                while time.monotonic() < deadline:
                    _, body = _http(handle.http_port, "GET", "/healthz")
                    generation = body["index_generation"]
                    if generation:
                        break
                    time.sleep(0.1)
                assert generation == 1
                assert body["journal_serials"] == journal.serials()
        finally:
            session.close()

    def test_journal_follower_retries_failed_reload(self, tiny_world, tmp_path):
        """Regression: a transient reload failure must be retried on the
        next poll even though the journal file itself never changes —
        the follower may only remember a signature it fully absorbed."""
        from types import SimpleNamespace

        from repro.irr.history import ChurnConfig, evolve_with_journal
        from repro.irr.journal import save_journal

        path = tmp_path / "feed.jsonl"
        _, journal = evolve_with_journal(tiny_world.merged_ir(), ChurnConfig(seed=19))
        save_journal(journal, path)
        calls: list[int] = []

        async def main() -> None:
            applied = asyncio.Event()

            async def reload(journal) -> dict:
                calls.append(len(calls))
                if len(calls) == 1:
                    raise RuntimeError("transient backend failure")
                applied.set()
                return {"applied": len(journal), "generation": 1, "degraded": False}

            stub = SimpleNamespace(
                config=SimpleNamespace(journal_path=str(path), journal_poll=0.01),
                service=SimpleNamespace(reload=reload),
            )
            follower = asyncio.create_task(ServeDaemon._follow_journal(stub))
            try:
                await asyncio.wait_for(applied.wait(), timeout=30)
            finally:
                follower.cancel()
                try:
                    await follower
                except asyncio.CancelledError:
                    pass

        asyncio.run(main())
        assert len(calls) >= 2


@pytest.mark.slow
class TestDaemonLifecycle:
    def test_sigterm_drains_and_exits_clean(self, tiny_world_dir, tiny_routes):
        process, port = _spawn_serve(tiny_world_dir)
        try:
            entry = tiny_routes[0]
            status, body = _http(port, "POST", "/verify", _verify_payload(entry))
            assert status == 200
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
            assert process.returncode == 0
            # The port is released: connecting now must fail.
            with pytest.raises(OSError):
                _http(port, "GET", "/healthz")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

    def test_sigkill_mid_flood_fails_clients_cleanly(
        self, tiny_world_dir, tiny_routes
    ):
        """Chaos: SIGKILL the daemon while clients are in flight.  Every
        client must fail fast with a clean connection error — no hangs,
        no garbage responses."""
        process, port = _spawn_serve(tiny_world_dir)
        entry = tiny_routes[0]
        outcomes: list[object] = []
        lock = threading.Lock()

        def _client() -> None:
            try:
                status, _ = _http(port, "POST", "/verify", _verify_payload(entry))
                result: object = status
            except (OSError, http.client.HTTPException) as exc:
                result = type(exc).__name__
            with lock:
                outcomes.append(result)

        try:
            threads = [threading.Thread(target=_client) for _ in range(12)]
            for thread in threads:
                thread.start()
            process.kill()  # SIGKILL: no drain, no goodbye
            process.wait(timeout=10)
            for thread in threads:
                thread.join(timeout=15)
            assert not any(thread.is_alive() for thread in threads)
            # Each client either got a verdict before the kill or a clean
            # connection-level failure; nothing hung or mis-parsed.
            assert len(outcomes) == 12
            assert all(
                outcome == 200 or isinstance(outcome, str) for outcome in outcomes
            )
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
