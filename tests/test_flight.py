"""The flight recorder: ring semantics, incident dumps, correlation ids.

Covers :mod:`repro.obs.flight` in isolation — the serve-side wiring
(worker events riding result frames, breaker-open dumps) is exercised in
``tests/test_serve.py`` and ``tests/test_supervisor.py``.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    FLIGHT_FORMAT,
    NULL_FLIGHT,
    FlightRecorder,
    NullFlightRecorder,
    clean_request_id,
    get_flight_recorder,
    new_request_id,
    read_flight_events,
    use_flight_recorder,
)


class TestRequestIds:
    def test_new_ids_are_unique_tokens(self):
        first, second = new_request_id(), new_request_id()
        assert first != second
        assert clean_request_id(first) == first  # our own ids round-trip

    def test_clean_accepts_header_safe_tokens(self):
        assert clean_request_id("abc-DEF_123.x:y/z+w=") == "abc-DEF_123.x:y/z+w="
        assert clean_request_id("  padded  ") == "padded"

    @pytest.mark.parametrize(
        "raw",
        [None, "", "   ", "has space", "new\nline", 'quo"te', "x" * 129, "é"],
    )
    def test_clean_rejects_unsafe_ids(self, raw):
        assert clean_request_id(raw) is None

    def test_clean_accepts_maximum_length(self):
        assert clean_request_id("x" * 128) == "x" * 128


class TestRecording:
    def test_events_carry_seq_ts_type_and_fields(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record("worker-spawn", worker=0, pid=1234)
        recorder.record("request-shed", request_id="abc", wait_ms=12.5)
        events = recorder.events()
        assert [event["type"] for event in events] == [
            "worker-spawn", "request-shed",
        ]
        assert events[0]["seq"] == 1 and events[1]["seq"] == 2
        assert events[0]["worker"] == 0 and events[0]["pid"] == 1234
        assert events[1]["id"] == "abc"
        assert all(isinstance(event["ts"], float) for event in events)

    def test_ring_is_bounded_and_keeps_newest(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            recorder.record("tick", n=index)
        events = recorder.events()
        assert len(events) == 4
        assert [event["n"] for event in events] == [6, 7, 8, 9]
        stats = recorder.stats()
        assert stats["events"] == 4 and stats["recorded"] == 10

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_absorb_splices_worker_lines_and_filters_junk(self):
        worker = FlightRecorder(capacity=8)
        worker.record("worker-execute", request_id="r1", ms=3.2)
        shipped = worker.drain_lines()
        assert worker.events() == []  # drained rings start empty

        parent = FlightRecorder(capacity=8)
        parent.record("batch-dispatch")
        parent.absorb(shipped + ["not json", 42, ""])
        events = parent.events()
        assert [event["type"] for event in events] == [
            "batch-dispatch", "worker-execute",
        ]
        assert parent.stats()["absorbed"] == 1

    def test_filters_by_id_type_window_and_limit(self):
        recorder = FlightRecorder(capacity=32)
        recorder.record("request", request_id="aa", n=0)
        recorder.record("request", request_id="bb", n=1)
        recorder.record("worker-spawn", n=2)
        assert [e["n"] for e in recorder.events(request_id="aa")] == [0]
        assert [e["n"] for e in recorder.events(types=("worker-spawn",))] == [2]
        boundary = recorder.events(types=("request",))[1]["ts"]
        assert all(e["ts"] >= boundary for e in recorder.events(since=boundary))
        assert all(e["ts"] <= boundary for e in recorder.events(until=boundary))
        # limit keeps the newest N — the interesting end of an incident
        assert [e["n"] for e in recorder.events(limit=2)] == [1, 2]

    def test_recording_is_thread_safe(self):
        recorder = FlightRecorder(capacity=4096)
        threads = [
            threading.Thread(
                target=lambda t=t: [
                    recorder.record("tick", thread=t) for _ in range(200)
                ]
            )
            for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        events = recorder.events()
        assert len(events) == 800
        assert len({event["seq"] for event in events}) == 800


class TestIncidentDumps:
    def test_dump_round_trips_through_reader(self, tmp_path):
        recorder = FlightRecorder(capacity=16, incident_dir=tmp_path)
        recorder.record("worker-spawn", worker=0)
        recorder.record("breaker-transition", old="closed", new="open")
        path = recorder.dump_incident(
            "breaker-open", trigger={"type": "breaker-transition", "old": "closed"}
        )
        assert path is not None and path.parent == tmp_path
        header, events = read_flight_events(path)
        assert header["format"] == FLIGHT_FORMAT
        assert header["reason"] == "breaker-open"
        assert header["trigger"]["old"] == "closed"
        types = [event["type"] for event in events]
        assert types == ["worker-spawn", "breaker-transition", "incident-dump"]
        assert recorder.stats()["incidents"] == 1

    def test_dumps_are_rate_limited_per_reason(self, tmp_path):
        recorder = FlightRecorder(
            capacity=8, incident_dir=tmp_path, incident_interval=3600.0
        )
        assert recorder.dump_incident("breaker-open") is not None
        assert recorder.dump_incident("breaker-open") is None  # same reason
        assert recorder.dump_incident("sigquit") is not None  # distinct reason
        assert recorder.stats()["incidents"] == 2

    def test_reader_tolerates_truncated_tail(self, tmp_path):
        recorder = FlightRecorder(capacity=8, incident_dir=tmp_path)
        recorder.record("worker-spawn")
        path = recorder.dump_incident("sigquit")
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"seq":99,"ts":1.0,"ty')  # process died mid-write
        header, events = read_flight_events(path)
        assert header["reason"] == "sigquit"
        assert [event["type"] for event in events] == [
            "worker-spawn", "incident-dump",
        ]

    def test_reader_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps({"format": "rpslyzer-trace/1"}) + "\n")
        with pytest.raises(ValueError):
            read_flight_events(path)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            read_flight_events(empty)

    def test_unwritable_incident_dir_is_best_effort(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the directory should go")
        recorder = FlightRecorder(capacity=8, incident_dir=blocker)
        assert recorder.dump_incident("sigquit") is None


class TestNullRecorder:
    def test_null_recorder_is_inert(self, tmp_path):
        null = NullFlightRecorder()
        assert null.enabled is False and NULL_FLIGHT.enabled is False
        null.record("worker-spawn")
        null.absorb(['{"type":"x"}'])
        assert null.events() == []
        assert null.dump_incident("sigquit") is None

    def test_use_flight_recorder_restores_previous(self):
        before = get_flight_recorder()
        with use_flight_recorder() as recorder:
            assert get_flight_recorder() is recorder
            assert recorder.enabled
        assert get_flight_recorder() is before
