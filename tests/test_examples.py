"""Every example script must run cleanly — they are living documentation."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    names = {path.name for path in EXAMPLES}
    assert {
        "quickstart.py",
        "characterize_registry.py",
        "verify_bgp_routes.py",
        "generate_filters.py",
        "route_leak_detection.py",
        "irr_tooling.py",
        "update_stream_monitoring.py",
    } <= names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_runs(script):
    if script.name in ("characterize_registry.py", "verify_bgp_routes.py"):
        pytest.skip("default-scale worlds; exercised by the benchmarks")
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print something"
