"""End-to-end tests of the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def world_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("world")
    assert main(["synth", str(directory), "--preset", "tiny", "--routes"]) == 0
    return directory


class TestSynthCommand:
    def test_outputs_exist(self, world_dir):
        assert (world_dir / "ripe.db").exists()
        assert (world_dir / "radb.db").exists()
        assert (world_dir / "as-rel.txt").exists()
        assert (world_dir / "table.txt").exists()


class TestParseCommand:
    def test_parse_to_json(self, world_dir, tmp_path):
        output = tmp_path / "ir.json"
        assert main(["parse", str(world_dir), "-o", str(output)]) == 0
        data = json.loads(output.read_text())
        assert data["format"] == "rpslyzer-ir"


class TestVerifyCommand:
    def test_verify_summary(self, world_dir, tmp_path, capsys):
        ir_path = tmp_path / "ir.json"
        main(["parse", str(world_dir), "-o", str(ir_path)])
        code = main(
            [
                "verify",
                "--ir", str(ir_path),
                "--as-rel", str(world_dir / "as-rel.txt"),
                "--table", str(world_dir / "table.txt"),
            ]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["routes"] > 0
        assert summary["hops"] > 0
        assert 0.99 < sum(summary["hop_fractions"].values()) < 1.01

    def test_verify_parallel_and_figures(self, world_dir, tmp_path, capsys):
        ir_path = tmp_path / "ir.json"
        main(["parse", str(world_dir), "-o", str(ir_path)])
        figures = tmp_path / "figs"
        code = main(
            [
                "verify",
                "--ir", str(ir_path),
                "--as-rel", str(world_dir / "as-rel.txt"),
                "--table", str(world_dir / "table.txt"),
                "--processes", "2",
                "--figures-dir", str(figures),
            ]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["routes"] > 0
        for name in ("fig2_per_as", "fig3_per_pair", "fig4_per_route",
                     "fig5_unrecorded", "fig6_special"):
            assert (figures / f"{name}.csv").exists()

    def test_verify_ablation_flags(self, world_dir, tmp_path, capsys):
        ir_path = tmp_path / "ir.json"
        main(["parse", str(world_dir), "-o", str(ir_path)])
        main(
            [
                "verify",
                "--ir", str(ir_path),
                "--as-rel", str(world_dir / "as-rel.txt"),
                "--table", str(world_dir / "table.txt"),
                "--no-relaxations",
                "--no-safelists",
            ]
        )
        summary = json.loads(capsys.readouterr().out)
        assert summary["hop_fractions"]["relaxed"] == 0
        assert summary["hop_fractions"]["safelisted"] == 0


class TestVerifyReportMode:
    def test_report_prints_hop_lines(self, world_dir, tmp_path, capsys):
        ir_path = tmp_path / "ir.json"
        main(["parse", str(world_dir), "-o", str(ir_path)])
        capsys.readouterr()
        # Shrink the table so --report output stays manageable.
        table = tmp_path / "small.txt"
        lines = (world_dir / "table.txt").read_text().splitlines()[:50]
        table.write_text("\n".join(lines) + "\n")
        code = main(
            [
                "verify",
                "--ir", str(ir_path),
                "--as-rel", str(world_dir / "as-rel.txt"),
                "--table", str(table),
                "--report",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "{ from:" in out
        assert '"routes": 50' in out


class TestStatsCommand:
    def test_stats_output(self, world_dir, tmp_path, capsys):
        ir_path = tmp_path / "ir.json"
        main(["parse", str(world_dir), "-o", str(ir_path)])
        capsys.readouterr()
        assert main(["stats", "--ir", str(ir_path)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["counts"]["aut-num"] > 0
        assert "as_sets" in stats


class TestParserErrors:
    def test_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
