"""End-to-end integration: synth world → parse → verify → paper shapes.

These tests assert the *shape* relationships the paper reports, on the
tiny synthetic world: unrecorded dominates, special cases explain most
mismatches, single-status pairs dominate, and so on.
"""

import pytest

from repro.core.status import SpecialCase, VerifyStatus
from repro.stats.verification import VerificationStats


@pytest.fixture(scope="module")
def stats(tiny_verifier, tiny_routes):
    aggregate = VerificationStats()
    for entry in tiny_routes:
        aggregate.add_report(tiny_verifier.verify_entry(entry))
    return aggregate


class TestEndToEndShapes:
    def test_routes_processed(self, stats):
        assert stats.routes_verified() > 100

    def test_all_statuses_observed(self, stats):
        for status in (
            VerifyStatus.VERIFIED,
            VerifyStatus.UNRECORDED,
            VerifyStatus.UNVERIFIED,
        ):
            assert stats.hop_totals[status] > 0, status

    def test_skip_rare(self, stats):
        total = sum(stats.hop_totals.values())
        assert stats.hop_totals[VerifyStatus.SKIP] / total < 0.15

    def test_unrecorded_largest_bucket(self, stats):
        # ~half the ASes don't use the RPSL: unrecorded dominates.
        unrecorded = stats.hop_totals[VerifyStatus.UNRECORDED]
        assert unrecorded == max(stats.hop_totals.values())

    def test_verified_substantial(self, stats):
        total = sum(stats.hop_totals.values())
        assert stats.hop_totals[VerifyStatus.VERIFIED] / total > 0.10

    def test_most_pairs_single_status(self, stats):
        single, total = stats.pairs_with_single_status("import")
        assert single / total > 0.6

    def test_few_routes_single_status(self, stats):
        # Figure 4: only a small minority of routes are uniform.
        assert stats.summary()["routes_single_status_fraction"] < 0.5

    def test_most_unverified_is_undeclared_peering(self, stats):
        # Paper: 98.98% of unverified hops are peering mismatches.
        assert stats.unverified_hops > 0
        assert stats.unverified_peering_only / stats.unverified_hops > 0.5

    def test_uphill_dominates_special_cases(self, stats):
        breakdown = stats.special_breakdown()
        assert breakdown, "no special cases observed"
        uphill = breakdown.get(SpecialCase.UPHILL, 0)
        assert uphill == max(breakdown.values())

    def test_unrecorded_breakdown_nonempty(self, stats):
        assert sum(stats.unrecorded_breakdown().values()) > 0

    def test_determinism(self, tiny_verifier, tiny_routes):
        sample = tiny_routes[:50]
        first = [str(tiny_verifier.verify_entry(e)) for e in sample]
        second = [str(tiny_verifier.verify_entry(e)) for e in sample]
        assert first == second


class TestReportRendering:
    def test_appendix_c_style(self, tiny_verifier, tiny_routes):
        for entry in tiny_routes:
            report = tiny_verifier.verify_entry(entry)
            if report.ignored is None and len(report.hops) >= 4:
                text = str(report)
                assert "{ from:" in text
                assert any(
                    text.lstrip("#").lstrip().startswith(str(entry.prefix))
                    for _ in (0,)
                )
                break
        else:
            pytest.fail("no multi-hop route found")

    def test_every_status_renders(self, tiny_verifier, tiny_routes):
        words = set()
        for entry in tiny_routes[:2000]:
            report = tiny_verifier.verify_entry(entry)
            for hop in report.hops:
                words.add(str(hop).split(" ")[0])
        assert {"OkExport", "OkImport"} <= words
