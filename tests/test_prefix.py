"""Unit and property tests for prefixes and range operators."""

import ipaddress

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.prefix import (
    Prefix,
    PrefixError,
    RangeOp,
    RangeOpKind,
    parse_prefix_with_op,
)


class TestPrefixParse:
    def test_parse_v4(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert (prefix.version, prefix.length) == (4, 24)
        assert str(prefix) == "192.0.2.0/24"

    def test_parse_v6(self):
        prefix = Prefix.parse("2001:db8::/32")
        assert (prefix.version, prefix.length) == (6, 32)
        assert str(prefix) == "2001:db8::/32"

    def test_parse_default_route(self):
        assert str(Prefix.parse("0.0.0.0/0")) == "0.0.0.0/0"
        assert str(Prefix.parse("::0/0")) == "::/0"

    def test_host_bits_masked(self):
        assert str(Prefix.parse("192.0.2.1/24")) == "192.0.2.0/24"

    @pytest.mark.parametrize("bad", ["", "10.0.0.0/33", "nonsense", "10.0.0.0/-1", "1.2.3/8x"])
    def test_invalid_raises(self, bad):
        with pytest.raises(PrefixError):
            Prefix.parse(bad)

    def test_constructor_validates_version(self):
        with pytest.raises(PrefixError):
            Prefix(5, 0, 0)

    def test_constructor_validates_length(self):
        with pytest.raises(PrefixError):
            Prefix(4, 0, 33)


class TestContainment:
    def test_contains_more_specific(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.1.0.0/16")
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_contains_self(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.contains(prefix)

    def test_no_cross_version_containment(self):
        assert not Prefix.parse("0.0.0.0/0").contains(Prefix.parse("::/0"))

    def test_disjoint(self):
        assert not Prefix.parse("10.0.0.0/8").contains(Prefix.parse("11.0.0.0/8"))

    def test_overlaps_symmetric(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.255.0.0/16")
        assert outer.overlaps(inner) and inner.overlaps(outer)

    def test_supernet(self):
        prefix = Prefix.parse("10.1.2.0/24")
        assert str(prefix.supernet(8)) == "10.0.0.0/8"
        with pytest.raises(PrefixError):
            prefix.supernet(25)


class TestRangeOp:
    def test_parse_all_forms(self):
        assert RangeOp.parse("^-").kind is RangeOpKind.MINUS
        assert RangeOp.parse("^+").kind is RangeOpKind.PLUS
        exact = RangeOp.parse("^24")
        assert (exact.kind, exact.low, exact.high) == (RangeOpKind.EXACT, 24, 24)
        ranged = RangeOp.parse("^19-24")
        assert (ranged.kind, ranged.low, ranged.high) == (RangeOpKind.RANGE, 19, 24)

    @pytest.mark.parametrize("bad", ["^", "^x", "^24-19", "24", "^-+"])
    def test_invalid(self, bad):
        with pytest.raises(PrefixError):
            RangeOp.parse(bad)

    def test_allows_none(self):
        op = RangeOp()
        assert op.allows(24, 24)
        assert not op.allows(24, 25)

    def test_allows_minus_excludes_exact(self):
        op = RangeOp.parse("^-")
        assert not op.allows(16, 16)
        assert op.allows(16, 17)

    def test_allows_plus_includes_exact(self):
        op = RangeOp.parse("^+")
        assert op.allows(16, 16)
        assert op.allows(16, 32)

    def test_allows_range(self):
        op = RangeOp.parse("^19-24")
        assert not op.allows(16, 18)
        assert op.allows(16, 19)
        assert op.allows(16, 24)
        assert not op.allows(16, 25)

    def test_compose_outer_wins(self):
        inner = RangeOp.parse("^+")
        outer = RangeOp.parse("^27")
        assert inner.compose(outer) == outer
        assert inner.compose(RangeOp()) == inner

    def test_str_roundtrip(self):
        for text in ("^-", "^+", "^24", "^19-24"):
            assert str(RangeOp.parse(text)) == text
        assert str(RangeOp()) == ""


class TestParseWithOp:
    def test_plain(self):
        prefix, op = parse_prefix_with_op("10.0.0.0/8")
        assert op.kind is RangeOpKind.NONE
        assert str(prefix) == "10.0.0.0/8"

    def test_with_op(self):
        prefix, op = parse_prefix_with_op("10.0.0.0/8^16-24")
        assert op == RangeOp(RangeOpKind.RANGE, 16, 24)

    def test_matches_with_op(self):
        declared, op = parse_prefix_with_op("10.0.0.0/8^16-24")
        assert declared.matches_with_op(Prefix.parse("10.5.0.0/16"), op)
        assert not declared.matches_with_op(Prefix.parse("10.0.0.0/8"), op)
        assert not declared.matches_with_op(Prefix.parse("11.0.0.0/16"), op)


# -- property-based tests ----------------------------------------------------

v4_prefixes = st.builds(
    lambda addr, length: Prefix(4, (addr >> (32 - length)) << (32 - length) if length else 0, length),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=32),
)

v6_prefixes = st.builds(
    lambda addr, length: Prefix(6, (addr >> (128 - length)) << (128 - length) if length else 0, length),
    st.integers(min_value=0, max_value=2**128 - 1),
    st.integers(min_value=0, max_value=128),
)

any_prefix = st.one_of(v4_prefixes, v6_prefixes)


@given(any_prefix)
def test_str_parse_roundtrip(prefix):
    assert Prefix.parse(str(prefix)) == prefix


@given(v4_prefixes, v4_prefixes)
def test_containment_matches_ipaddress(left, right):
    reference = ipaddress.ip_network(str(right)).subnet_of(ipaddress.ip_network(str(left)))
    assert left.contains(right) == reference


@given(any_prefix)
def test_supernet_contains(prefix):
    for length in range(0, prefix.length + 1, max(1, prefix.length // 4 or 1)):
        assert prefix.supernet(length).contains(prefix)


@given(
    st.integers(min_value=0, max_value=32),
    st.integers(min_value=0, max_value=32),
)
def test_plus_equals_minus_or_exact(declared, announced):
    plus = RangeOp.parse("^+").allows(declared, announced)
    minus = RangeOp.parse("^-").allows(declared, announced)
    none = RangeOp().allows(declared, announced)
    assert plus == (minus or none)
