"""Tests for import/export rule parsing, including Structured Policies."""

import pytest

from repro.net.afi import Afi, AfiFamily, AfiSafi
from repro.rpsl.errors import RpslSyntaxError
from repro.rpsl.filter import FilterAny, FilterAsn, FilterAsSet, FilterPeerAs
from repro.rpsl.peering import PeerAsn
from repro.rpsl.policy import PolicyExcept, PolicyRefine, PolicyTerm, parse_policy


class TestSimpleRules:
    def test_basic_import(self):
        rule = parse_policy("import", "from AS1 accept ANY")
        assert isinstance(rule.expr, PolicyTerm)
        factor = rule.expr.factors[0]
        assert factor.peerings[0].peering.as_expr == PeerAsn(1)
        assert factor.filter == FilterAny()

    def test_basic_export(self):
        rule = parse_policy("export", "to AS4713 announce AS-HANABI")
        factor = rule.expr.factors[0]
        assert factor.filter == FilterAsSet("AS-HANABI")

    def test_action(self):
        rule = parse_policy("import", "from AS1 action pref=50; accept ANY")
        factor = rule.expr.factors[0]
        assert factor.peerings[0].actions[0].attribute == "pref"

    def test_multiple_peerings_share_filter(self):
        rule = parse_policy(
            "import",
            "from AS8267:AS-K1 action pref=50; from AS8267:AS-K2 action pref=50; accept PeerAS",
        )
        factor = rule.expr.factors[0]
        assert len(factor.peerings) == 2
        assert factor.filter == FilterPeerAs()

    def test_default_afi_ipv4_unicast(self):
        rule = parse_policy("import", "from AS1 accept ANY")
        assert rule.effective_afis() == (Afi.IPV4_UNICAST,)

    def test_mp_default_afi_any(self):
        rule = parse_policy("import", "from AS1 accept ANY", multiprotocol=True)
        assert rule.effective_afis() == (Afi(),)

    def test_explicit_afi(self):
        rule = parse_policy(
            "import", "afi ipv6.unicast from AS1 accept ANY", multiprotocol=True
        )
        assert rule.afis == (Afi(AfiFamily.IPV6, AfiSafi.UNICAST),)

    def test_afi_list(self):
        rule = parse_policy(
            "import", "afi ipv4.unicast, ipv6.unicast from AS1 accept ANY",
            multiprotocol=True,
        )
        assert len(rule.afis) == 2

    def test_protocol_clause(self):
        rule = parse_policy("import", "protocol BGP4 into OSPF from AS1 accept ANY")
        assert rule.protocol == "BGP4"
        assert rule.into_protocol == "OSPF"

    def test_trailing_semicolon_ok(self):
        rule = parse_policy("import", "from AS1 accept ANY;")
        assert isinstance(rule.expr, PolicyTerm)


class TestErrors:
    def test_wrong_direction_keyword(self):
        with pytest.raises(RpslSyntaxError):
            parse_policy("import", "to AS1 accept ANY")
        with pytest.raises(RpslSyntaxError):
            parse_policy("export", "from AS1 announce ANY")

    def test_wrong_verb(self):
        with pytest.raises(RpslSyntaxError):
            parse_policy("import", "from AS1 announce ANY")

    def test_missing_filter(self):
        with pytest.raises(RpslSyntaxError):
            parse_policy("import", "from AS1 accept")

    def test_missing_peering(self):
        with pytest.raises(RpslSyntaxError):
            parse_policy("import", "from accept ANY")

    def test_trailing_garbage(self):
        with pytest.raises(RpslSyntaxError):
            parse_policy("import", "from AS1 accept ANY garbage-at-end AND")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            parse_policy("default", "from AS1 accept ANY")

    def test_empty_braces(self):
        with pytest.raises(RpslSyntaxError):
            parse_policy("import", "{ }")


class TestStructuredPolicies:
    def test_refine(self):
        rule = parse_policy(
            "import",
            "from AS1 accept ANY REFINE from AS1 accept AS2",
        )
        assert isinstance(rule.expr, PolicyRefine)
        assert isinstance(rule.expr.rest, PolicyTerm)

    def test_refine_with_afi(self):
        rule = parse_policy(
            "import",
            "afi any.unicast from AS13911 accept ANY REFINE afi ipv4.unicast "
            "from AS13911 action pref=200; accept <^AS13911 AS6327+$>",
            multiprotocol=True,
        )
        assert isinstance(rule.expr, PolicyRefine)
        assert rule.expr.afis[0].family is AfiFamily.IPV4

    def test_except(self):
        rule = parse_policy(
            "export",
            "to AS-ANY announce ANY EXCEPT to AS1 announce AS2",
        )
        assert isinstance(rule.expr, PolicyExcept)

    def test_braced_terms(self):
        rule = parse_policy(
            "import",
            "{ from AS1 accept AS1; from AS2 accept AS2; }",
        )
        assert isinstance(rule.expr, PolicyTerm)
        assert rule.expr.braced
        assert len(rule.expr.factors) == 2

    def test_chained_refines(self):
        rule = parse_policy(
            "import",
            "afi any { from AS-ANY accept ANY; } REFINE afi any "
            "{ from AS-ANY accept NOT AS199284^+; } REFINE afi ipv4 "
            "{ from AS-ANY accept NOT fltr-martian; }",
            multiprotocol=True,
        )
        assert isinstance(rule.expr, PolicyRefine)
        assert isinstance(rule.expr.rest, PolicyRefine)

    def test_peering_except_inside_factor(self):
        # EXCEPT inside the peering expression, not a structured policy.
        rule = parse_policy(
            "import", "from AS-ANY EXCEPT (AS40027 OR AS63293) accept ANY"
        )
        assert isinstance(rule.expr, PolicyTerm)

    def test_paper_as199284_style(self):
        rule = parse_policy(
            "import",
            """afi any {
                from AS-ANY action community.delete(64628:10); accept ANY;
            } REFINE afi any {
                from AS-ANY action pref = 65535; accept community(65535:0);
                from AS-ANY action pref = 65435; accept ANY;
            } REFINE afi ipv4 {
                from AS-ANY accept { 0.0.0.0/0^24 } AND NOT community(65535:666);
            } REFINE afi any {
                from AS-ANY EXCEPT (AS40027 OR AS63293 OR AS65535) accept ANY;
            }""",
            multiprotocol=True,
        )
        assert isinstance(rule.expr, PolicyRefine)

    def test_attribute_name(self):
        assert parse_policy("import", "from AS1 accept ANY").attribute_name == "import"
        assert (
            parse_policy("export", "to AS1 announce ANY", multiprotocol=True).attribute_name
            == "mp-export"
        )


class TestRoundTrip:
    CASES = [
        ("import", "from AS1 accept ANY"),
        ("export", "to AS4713 announce AS-HANABI"),
        ("import", "from AS1 action pref = 50; accept PeerAS"),
        ("import", "{ from AS1 accept AS1; from AS2 accept AS2; }"),
        ("import", "from AS1 accept ANY REFINE from AS1 accept AS2"),
        ("export", "to AS-ANY announce ANY EXCEPT to AS1 announce AS2"),
    ]

    @pytest.mark.parametrize("kind,text", CASES)
    def test_stable(self, kind, text):
        once = parse_policy(kind, text, multiprotocol=True).to_rpsl()
        again = parse_policy(kind, once, multiprotocol=True).to_rpsl()
        assert once == again
