"""Tests for the repro.api facade — the single supported entry point."""

import inspect
import re

import pytest

import repro
from repro import api
from repro.bgp.routegen import collector_routes
from repro.stats.verification import VerificationStats


class TestFacadeExports:
    def test_top_level_reexports(self):
        for name in (
            "synthesize",
            "parse_dumps",
            "verify_table",
            "characterize",
            "VerifyOptions",
            "VerificationStats",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_facade_matches_api_module(self):
        assert repro.verify_table is api.verify_table
        assert repro.parse_dumps is api.parse_dumps


class TestCliImportHygiene:
    def test_cli_imports_no_pipeline_internals(self):
        """The CLI must go through the facade, never repro.core/repro.irr."""
        from repro import cli

        source = inspect.getsource(cli)
        offenders = re.findall(
            r"^\s*(?:from|import)\s+repro\.(?:core|irr)\b", source, re.MULTILINE
        )
        assert offenders == []


class TestSynthesize:
    def test_presets(self):
        world = api.synthesize("tiny", seed=7)
        assert world.config.seed == 7
        assert world.irr_dumps

    def test_config_object_passthrough(self, tiny_world):
        from repro.irr.synth import tiny_config

        world = api.synthesize(tiny_config(seed=42))
        assert world.config == tiny_world.config

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            api.synthesize("gigantic")


class TestParseDumps:
    def test_round_trip_through_directory(self, tmp_path, tiny_world, tiny_ir):
        tiny_world.write_to_dir(tmp_path)
        ir, errors = api.parse_dumps(tmp_path)  # tuple-unpack compat
        assert ir.counts() == tiny_ir.counts()
        assert len(errors) >= 0

    def test_load_result_fields(self, tiny_world_dir, tiny_ir):
        load = api.parse_dumps(tiny_world_dir)
        assert isinstance(load, api.LoadResult)
        assert load.ir.counts() == tiny_ir.counts()
        assert load.degradation is not None
        assert str(load.source) == str(tiny_world_dir)

    def test_parse_registry_exposes_per_irr_views(self, tmp_path, tiny_world):
        tiny_world.write_to_dir(tmp_path)
        registry = api.parse_registry(tmp_path)
        assert "RIPE" in registry.sources
        assert registry.table1()


class TestVerifyTable:
    def test_serial_and_parallel_agree(self, tiny_ir, tiny_world, tiny_routes):
        with api.Session(tiny_ir, tiny_world.topology) as session:
            serial = session.verify_table(tiny_routes, processes=1)
            parallel = session.verify_table(
                iter(tiny_routes), processes=4, chunk_size=400
            )
        assert isinstance(serial, VerificationStats)
        assert parallel.hop_totals == serial.hop_totals
        assert parallel.routes_total == serial.routes_total
        assert parallel.summary() == serial.summary()

    def test_accepts_generator_input(self, tiny_ir, tiny_world, tiny_world_dir):
        from repro.bgp.table import parse_table_file

        with api.Session(tiny_ir, tiny_world.topology) as session:
            stats = session.verify_table(
                parse_table_file(tiny_world_dir / "table.txt")
            )
        assert stats.routes_total > 0

    def test_options_and_reports(self, tiny_ir, tiny_world, tiny_routes):
        reports = []
        with api.Session(tiny_ir, tiny_world.topology) as session:
            stats = session.verify_table(
                tiny_routes[:20],
                options=repro.VerifyOptions(relaxations=False, safelists=False),
                on_report=reports.append,
            )
        assert len(reports) == 20
        assert stats.routes_total == 20

    def test_make_verifier_single_route(self, tiny_ir, tiny_world, tiny_routes):
        verifier = api.make_verifier(tiny_ir, tiny_world.topology)
        entry = tiny_routes[0]
        report = verifier.verify_entry(entry)
        assert report.entry is entry


class TestDeprecatedShims:
    def test_verify_table_warns_and_matches_session(
        self, tiny_ir, tiny_world, tiny_routes
    ):
        with pytest.deprecated_call():
            stats = api.verify_table(
                tiny_ir, tiny_world.topology, tiny_routes[:30], processes=1
            )
        with api.Session(tiny_ir, tiny_world.topology) as session:
            expected = session.verify_table(tiny_routes[:30], processes=1)
        assert stats.summary() == expected.summary()

    def test_explain_route_warns_and_matches_session(
        self, tiny_ir, tiny_world, tiny_routes
    ):
        entry = tiny_routes[0]
        with pytest.deprecated_call():
            report, events = api.explain_route(
                tiny_ir, tiny_world.topology, str(entry.prefix), entry.as_path
            )
        with api.Session(tiny_ir, tiny_world.topology) as session:
            expected, _ = session.explain(str(entry.prefix), entry.as_path)
        assert str(report) == str(expected)
        assert events

    def test_serve_whois_warns(self, tiny_ir):
        with pytest.deprecated_call():
            server = api.serve_whois(tiny_ir)
        server.stop()  # never started; must still release the socket


class TestCharacterize:
    def test_section4_keys(self, tiny_ir):
        result = api.characterize(tiny_ir)
        assert set(result) == {
            "counts",
            "rules_ccdf_head",
            "peering_simplicity",
            "filter_kinds",
            "route_objects",
            "as_sets",
        }
        assert result["counts"]["aut-num"] > 0


class TestRecommendMigrations:
    def test_limit_respected(self, tiny_ir, tiny_world):
        unbounded = list(api.recommend_migrations(tiny_ir, None, tiny_world.topology))
        if not unbounded:
            pytest.skip("tiny world produced no migration candidates")
        limited = list(
            api.recommend_migrations(tiny_ir, None, tiny_world.topology, limit=1)
        )
        assert len(limited) == 1
