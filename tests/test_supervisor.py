"""Tests for the serve worker pool (``repro.serve.supervisor``).

Unit-tests the circuit breaker and the latency shedder against a fake
clock, then exercises the supervised pool end to end: differential
bit-identity with the in-process path, crash isolation under SIGKILL,
heartbeat replacement of a SIGSTOPped worker, and graceful degradation
to serial execution once the restart budget is exhausted.
"""

from __future__ import annotations

import http.client
import json
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import api
from repro.chaos import HungWorker, KillServeWorker
from repro.obs import MetricsRegistry
from repro.serve import (
    CircuitBreaker,
    LatencyShedder,
    ServeConfig,
    ServeDaemon,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failures=3, cooldown=1.0, clock=clock)
        assert breaker.state == CircuitBreaker.CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failures=3, cooldown=1.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_allows_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failures=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # second caller waits for the verdict

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failures=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_rearms_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failures=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()  # a fresh probe after the new cooldown


class TestLatencyShedder:
    def test_sheds_after_sustained_overload(self):
        clock = FakeClock()
        shedder = LatencyShedder(target=0.1, interval=1.0, clock=clock)
        shedder.observe(0.5)
        assert not shedder.should_shed()  # one bad sample is not overload
        clock.advance(1.0)
        shedder.observe(0.5)
        assert shedder.should_shed()

    def test_below_target_observation_clears(self):
        clock = FakeClock()
        shedder = LatencyShedder(target=0.1, interval=1.0, clock=clock)
        shedder.observe(0.5)
        clock.advance(1.0)
        shedder.observe(0.5)
        assert shedder.should_shed()
        shedder.observe(0.01)
        assert not shedder.should_shed()

    def test_shedding_expires_without_observations(self):
        """A shed queue goes quiet; without expiry nothing would ever be
        admitted to produce the below-target sample that clears it."""
        clock = FakeClock()
        shedder = LatencyShedder(target=0.1, interval=1.0, clock=clock)
        shedder.observe(0.5)
        clock.advance(1.0)
        shedder.observe(0.5)
        assert shedder.should_shed()
        clock.advance(1.5)  # no observations for > interval
        assert not shedder.should_shed()


def _http(port: int, method: str, path: str, payload: dict | None = None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        data = response.read()
        return response.status, json.loads(data) if data else None
    finally:
        connection.close()


def _payload(entry) -> dict:
    return {"prefix": str(entry.prefix), "as_path": list(entry.as_path)}


@pytest.fixture(scope="module")
def pool_session(tiny_world):
    with api.open_session(
        tiny_world, registry=MetricsRegistry(), use_cache=False
    ) as session:
        yield session


@pytest.fixture(scope="module")
def pool_handle(pool_session):
    daemon = ServeDaemon(
        pool_session,
        ServeConfig(
            http_port=0,
            workers=2,
            heartbeat_interval=0.1,
            heartbeat_timeout=0.5,
            hang_timeout=5.0,
            shed_target=0.0,
        ),
    )
    with daemon.start_in_thread() as running:
        yield running


@pytest.mark.slow
class TestSupervisedPool:
    def test_healthz_supervisor_block(self, pool_handle):
        status, body = _http(pool_handle.http_port, "GET", "/healthz")
        assert status == 200
        block = body["supervisor"]
        assert block["workers"] == 2
        assert block["live"] == 2
        assert block["breaker"] == "closed"
        assert block["degraded"] is False
        assert block["restart_budget_remaining"] > 0

    def test_pool_verdicts_bit_identical_to_serial(
        self, pool_handle, pool_session, tiny_routes
    ):
        """The differential check: every pooled verdict renders
        character-identical to the in-process path for the same route."""
        for entry in tiny_routes[:25]:
            expected = str(
                pool_session.verify_route(
                    str(entry.prefix), entry.as_path, collector="serve"
                )
            )
            status, body = _http(
                pool_handle.http_port, "POST", "/verify", _payload(entry)
            )
            assert status == 200
            assert body["text"] == expected

    def test_sigkill_mid_flood_loses_no_request(self, pool_handle, tiny_routes):
        """Crash isolation: SIGKILL one worker while a flood is in flight.
        Only its batch is retried; every client still gets a verdict."""
        service = pool_handle.daemon.service
        supervisor = service.supervisor
        restarts_before = supervisor.state()["restarts_total"]
        victim = supervisor.worker_pids()[0]
        entries = [tiny_routes[i % len(tiny_routes)] for i in range(40)]
        service.fault_hook = lambda queries: time.sleep(0.02)
        try:
            with ThreadPoolExecutor(max_workers=16) as executor:
                futures = [
                    executor.submit(
                        _http,
                        pool_handle.http_port,
                        "POST",
                        "/verify",
                        _payload(entry),
                    )
                    for entry in entries
                ]
                time.sleep(0.1)
                KillServeWorker()(victim)
                results = [future.result() for future in futures]
        finally:
            service.fault_hook = None
        assert [status for status, _ in results].count(200) == len(entries)
        # restarts_total bumps when the budget is drawn, *before* the
        # replacement finishes forking; wait for the post-spawn
        # worker-restarted event so both asserts see a settled state.
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline and (
            supervisor.state()["restarts_total"] <= restarts_before
            or not service.degradation.by_kind().get("serve/worker-restarted")
        ):
            time.sleep(0.05)
        assert supervisor.state()["restarts_total"] > restarts_before
        kinds = service.degradation.by_kind()
        assert kinds.get("serve/worker-crashed", 0) >= 1
        assert kinds.get("serve/worker-restarted", 0) >= 1

    def test_hung_worker_replaced_by_heartbeat(self, pool_handle):
        supervisor = pool_handle.daemon.service.supervisor
        # Wait for the pool to be back at full strength first (earlier
        # tests may have killed a worker).
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline and len(supervisor.worker_pids()) < 2:
            time.sleep(0.05)
        victim = supervisor.worker_pids()[0]
        HungWorker()(victim)
        deadline = time.monotonic() + 15
        replaced = False
        while time.monotonic() < deadline:
            pids = supervisor.worker_pids()
            if victim not in pids and len(pids) == 2:
                replaced = True
                break
            time.sleep(0.05)
        assert replaced
        kinds = pool_handle.daemon.service.degradation.by_kind()
        assert kinds.get("serve/worker-hung", 0) >= 1


@pytest.mark.slow
class TestGracefulDegradation:
    def test_budget_exhaustion_degrades_to_serial(self, pool_session, tiny_routes):
        """Kill workers past the restart budget: the pool degrades, the
        daemon keeps answering serially, and /healthz reports 503."""
        daemon = ServeDaemon(
            pool_session,
            ServeConfig(
                http_port=0,
                workers=1,
                restart_budget=0,
                heartbeat_interval=0.05,
                heartbeat_timeout=0.5,
                shed_target=0.0,
            ),
        )
        with daemon.start_in_thread() as running:
            supervisor = daemon.service.supervisor
            KillServeWorker()(supervisor.worker_pids()[0])
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline and not supervisor.degraded:
                time.sleep(0.05)
            assert supervisor.degraded
            # Still answering — serially, through the same session.
            entry = tiny_routes[0]
            expected = str(
                pool_session.verify_route(
                    str(entry.prefix), entry.as_path, collector="serve"
                )
            )
            status, body = _http(
                running.http_port, "POST", "/verify", _payload(entry)
            )
            assert status == 200
            assert body["text"] == expected
            status, health = _http(running.http_port, "GET", "/healthz")
            assert status == 503
            assert health["status"] == "degraded"
            assert health["supervisor"]["degraded"] is True
            assert health["supervisor"]["restart_budget_remaining"] == 0
            kinds = daemon.service.degradation.by_kind()
            assert kinds.get("serve/pool-degraded", 0) == 1
            assert kinds.get("serve/degraded-to-serial", 0) >= 1


class TestAdaptiveShedding:
    def test_sustained_overload_sheds_with_busy(self, pool_session, tiny_routes):
        """With a microscopic wait target and a slow executor, a flood
        must trip the shedder: some requests answer 429 before the queue
        fills, and the shed is counted in health()."""
        daemon = ServeDaemon(
            pool_session,
            ServeConfig(
                http_port=0,
                workers=0,
                queue_size=512,
                batch_max=2,
                default_deadline=30.0,
                shed_target=1e-6,
                shed_interval=0.02,
            ),
        )
        with daemon.start_in_thread() as running:
            daemon.service.fault_hook = lambda queries: time.sleep(0.03)
            try:
                entry = tiny_routes[0]
                with ThreadPoolExecutor(max_workers=24) as executor:
                    results = list(
                        executor.map(
                            lambda _: _http(
                                running.http_port,
                                "POST",
                                "/verify",
                                _payload(entry),
                            ),
                            range(60),
                        )
                    )
            finally:
                daemon.service.fault_hook = None
            statuses = [status for status, _ in results]
            assert set(statuses) <= {200, 429}
            assert statuses.count(200) >= 1
            assert statuses.count(429) >= 1
            health = daemon.service.health()
            assert health["shed_total"] >= 1


@pytest.fixture
def fresh_session(tiny_world):
    """A function-scoped session: the service attaches its flight
    recorder to the session, so a shared one would leak ring contents
    and incident rate-limits between daemons."""
    with api.open_session(
        tiny_world, registry=MetricsRegistry(), use_cache=False
    ) as session:
        yield session


@pytest.mark.slow
class TestFlightUnderChaos:
    """The flight ring must reconstruct worker churn coherently — the
    event *sequence* after a chaos action is the diagnosis."""

    def _wait_for(self, predicate, timeout=15.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.05)
        return predicate()

    def test_sigkill_mid_flood_ring_sequence(self, fresh_session, tiny_routes):
        """SIGKILL a worker mid-flood: the ring must show its spawn, a
        retirement (crashed), and the replacement's respawn — in order."""
        daemon = ServeDaemon(
            fresh_session,
            ServeConfig(
                http_port=0,
                workers=2,
                heartbeat_interval=0.1,
                heartbeat_timeout=0.5,
                shed_target=0.0,
            ),
        )
        with daemon.start_in_thread() as running:
            service = daemon.service
            supervisor = service.supervisor
            victim = supervisor.worker_pids()[0]
            service.fault_hook = lambda queries: time.sleep(0.02)
            try:
                entries = [tiny_routes[i % len(tiny_routes)] for i in range(30)]
                with ThreadPoolExecutor(max_workers=12) as executor:
                    futures = [
                        executor.submit(
                            _http, running.http_port, "POST", "/verify",
                            _payload(entry),
                        )
                        for entry in entries
                    ]
                    time.sleep(0.1)
                    KillServeWorker()(victim)
                    results = [future.result() for future in futures]
            finally:
                service.fault_hook = None
            assert [status for status, _ in results].count(200) == len(entries)
            assert self._wait_for(
                lambda: service.flight.events(types=("worker-respawn",))
            )
            events = service.flight.events()
            order = [
                (event["type"], event.get("pid"))
                for event in events
                if event["type"] in
                ("worker-spawn", "worker-retired", "worker-respawn")
            ]
            spawn_at = order.index(("worker-spawn", victim))
            retired = next(
                event for event in events
                if event["type"] == "worker-retired" and event["pid"] == victim
            )
            assert retired["why"] == "crashed"
            retired_at = order.index(("worker-retired", victim))
            respawn_at = max(
                i for i, (kind, _) in enumerate(order) if kind == "worker-respawn"
            )
            assert spawn_at < retired_at < respawn_at
            # the respawned replacement is itself admitted to the ring
            spawned_pids = [pid for kind, pid in order if kind == "worker-spawn"]
            assert len(spawned_pids) >= 3  # 2 initial + >= 1 replacement

    def test_sigstop_heartbeat_replacement_ring_sequence(self, fresh_session):
        """A SIGSTOPped worker misses heartbeats: the ring must show
        retirement with why=hung followed by the replacement spawn."""
        daemon = ServeDaemon(
            fresh_session,
            ServeConfig(
                http_port=0,
                workers=1,
                heartbeat_interval=0.1,
                heartbeat_timeout=0.5,
                shed_target=0.0,
            ),
        )
        with daemon.start_in_thread():
            service = daemon.service
            supervisor = service.supervisor
            victim = supervisor.worker_pids()[0]
            HungWorker()(victim)
            assert self._wait_for(
                lambda: (pids := supervisor.worker_pids())
                and victim not in pids
            )
            assert self._wait_for(
                lambda: service.flight.events(types=("worker-respawn",))
            )
            events = service.flight.events(
                types=("worker-spawn", "worker-retired", "worker-respawn")
            )
            retired = next(
                event for event in events
                if event["type"] == "worker-retired" and event["pid"] == victim
            )
            assert retired["why"] == "hung"
            retired_at = events.index(retired)
            kinds_after = [event["type"] for event in events[retired_at + 1 :]]
            assert "worker-respawn" in kinds_after
            assert "worker-spawn" in kinds_after  # the replacement admitted

    def test_incident_dump_mid_flood_parses_with_trigger(
        self, fresh_session, tiny_routes, tmp_path
    ):
        """Exhausting the restart budget mid-flood dumps the ring; the
        dump must parse and carry the triggering event."""
        from repro.obs import read_flight_events

        daemon = ServeDaemon(
            fresh_session,
            ServeConfig(
                http_port=0,
                workers=1,
                restart_budget=0,
                heartbeat_interval=0.05,
                heartbeat_timeout=0.5,
                shed_target=0.0,
                incident_dir=str(tmp_path),
            ),
        )
        with daemon.start_in_thread() as running:
            service = daemon.service
            supervisor = service.supervisor
            victim = supervisor.worker_pids()[0]
            service.fault_hook = lambda queries: time.sleep(0.02)
            try:
                entries = [tiny_routes[i % len(tiny_routes)] for i in range(20)]
                with ThreadPoolExecutor(max_workers=8) as executor:
                    futures = [
                        executor.submit(
                            _http, running.http_port, "POST", "/verify",
                            _payload(entry),
                        )
                        for entry in entries
                    ]
                    time.sleep(0.05)
                    KillServeWorker()(victim)
                    results = [future.result() for future in futures]
            finally:
                service.fault_hook = None
            # With a zero budget the pool cannot heal: requests caught
            # behind the dead worker's lease window may miss their
            # deadline.  The contract here is the incident dump, not
            # zero loss — every answer must still be structured.
            statuses = [status for status, _ in results]
            assert set(statuses) <= {200, 429, 504}
            assert statuses.count(200) >= 1
            assert self._wait_for(lambda: supervisor.degraded)
            assert self._wait_for(
                lambda: list(tmp_path.glob("flight-*-pool-degraded-*.jsonl"))
            )
        dump = next(tmp_path.glob("flight-*-pool-degraded-*.jsonl"))
        header, events = read_flight_events(dump)
        assert header["reason"] == "pool-degraded"
        assert header["trigger"]["type"] == "pool-degraded"
        kinds = [event["type"] for event in events]
        assert "worker-retired" in kinds
        assert "pool-degraded" in kinds
        # the ring reconstructs the kill -> degrade chain in order
        assert kinds.index("worker-retired") < kinds.index("pool-degraded")
