"""Tests for origin validation and community-aware verification."""

import pytest

from repro.baseline.origin_validation import OriginStatus, OriginValidator
from repro.bgp.table import RouteEntry, parse_table_text
from repro.bgp.topology import AsRelationships
from repro.core.status import VerifyStatus
from repro.core.verify import Verifier, VerifyOptions
from repro.irr.dump import parse_dump_text
from repro.net.prefix import Prefix

DUMP = """
route:   10.1.0.0/16
origin:  AS10

route:   10.0.0.0/8
origin:  AS10

route:   10.2.0.0/16
origin:  AS20
"""


@pytest.fixture(scope="module")
def validator():
    ir, _ = parse_dump_text(DUMP, "T")
    return OriginValidator(ir)


class TestOriginValidation:
    def test_valid_exact(self, validator):
        assert validator.validate(Prefix.parse("10.1.0.0/16"), 10) is OriginStatus.VALID

    def test_valid_covering(self, validator):
        # 10.5.0.0/16 is covered by 10.0.0.0/8 (AS10).
        assert (
            validator.validate(Prefix.parse("10.5.0.0/16"), 10)
            is OriginStatus.VALID_COVERING
        )

    def test_invalid_origin_exact(self, validator):
        assert (
            validator.validate(Prefix.parse("10.2.0.0/16"), 99)
            is OriginStatus.INVALID_ORIGIN
        )

    def test_invalid_origin_covering_only(self, validator):
        # 10.2.5.0/24 covered by both AS20's /16 and AS10's /8 — neither is AS99.
        assert (
            validator.validate(Prefix.parse("10.2.5.0/24"), 99)
            is OriginStatus.INVALID_ORIGIN
        )

    def test_unknown(self, validator):
        assert (
            validator.validate(Prefix.parse("192.0.2.0/24"), 10)
            is OriginStatus.UNKNOWN
        )

    def test_census(self, validator):
        entries = [
            RouteEntry("c", 1, Prefix.parse("10.1.0.0/16"), (1, 10)),
            RouteEntry("c", 1, Prefix.parse("192.0.2.0/24"), (1, 10)),
        ]
        census = validator.census(entries)
        assert census[OriginStatus.VALID] == 1
        assert census[OriginStatus.UNKNOWN] == 1

    def test_blind_to_leaks(self, validator):
        # A leaked path with a legitimate origin still validates — the
        # limitation the paper's path verification overcomes.
        leaked = RouteEntry("c", 1, Prefix.parse("10.1.0.0/16"), (1, 99, 10))
        assert validator.validate_entry(leaked) is OriginStatus.VALID


COMMUNITY_DUMP = """
aut-num: AS10
import:  from AS20 accept community(65535:666)

route:   10.2.0.0/16
origin:  AS20
"""


class TestCommunityMatching:
    def make_verifier(self, community_matches: bool) -> Verifier:
        ir, _ = parse_dump_text(COMMUNITY_DUMP, "T")
        relationships = AsRelationships.from_as_rel_text("10|20|-1\n")
        return Verifier(
            ir, relationships, VerifyOptions(community_matches=community_matches)
        )

    def entry(self, tags) -> RouteEntry:
        return RouteEntry(
            "c", 10, Prefix.parse("10.2.0.0/16"), (10, 20), communities=frozenset(tags)
        )

    def import_hop(self, verifier, entry):
        report = verifier.verify_entry(entry)
        return next(h for h in report.hops if h.direction == "import")

    def test_default_skips(self):
        verifier = self.make_verifier(False)
        hop = self.import_hop(verifier, self.entry({(65535, 666)}))
        assert hop.status is VerifyStatus.SKIP

    def test_enabled_matches_tagged_route(self):
        verifier = self.make_verifier(True)
        hop = self.import_hop(verifier, self.entry({(65535, 666)}))
        assert hop.status is VerifyStatus.VERIFIED

    def test_enabled_rejects_untagged_route(self):
        verifier = self.make_verifier(True)
        hop = self.import_hop(verifier, self.entry(set()))
        assert hop.status is not VerifyStatus.VERIFIED
        assert hop.status is not VerifyStatus.SKIP

    def test_cache_distinguishes_communities(self):
        verifier = self.make_verifier(True)
        verified = self.import_hop(verifier, self.entry({(65535, 666)}))
        rejected = self.import_hop(verifier, self.entry(set()))
        assert verified.status is VerifyStatus.VERIFIED
        assert rejected.status is not VerifyStatus.VERIFIED


class TestCommunitySerialization:
    def test_line_roundtrip_with_communities(self):
        entry = RouteEntry(
            "c", 1, Prefix.parse("10.0.0.0/8"), (1, 2),
            communities=frozenset({(65535, 666), (65000, 30)}),
        )
        line = entry.to_line()
        assert "65000:30 65535:666" in line
        (parsed,) = list(parse_table_text(line))
        assert parsed == entry

    def test_plain_line_has_no_extra_field(self):
        entry = RouteEntry("c", 1, Prefix.parse("10.0.0.0/8"), (1, 2))
        assert entry.to_line().count("|") == 7
