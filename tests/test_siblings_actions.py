"""Tests for sibling-AS inference and the action census."""

from repro.irr.dump import parse_dump_text
from repro.stats.usage import action_census
from repro.tools.siblings import sibling_groups, siblings_of

SIBLING_DUMP = """
aut-num: AS10
mnt-by:  MNT-ACME

aut-num: AS11
mnt-by:  MNT-ACME

aut-num: AS12
mnt-by:  MNT-ACME, MNT-OTHER

aut-num: AS20
mnt-by:  MNT-SOLO

aut-num: AS30
mnt-by:  MNT-OTHER
"""


class TestSiblingGroups:
    def test_shared_maintainer_clusters(self):
        ir, _ = parse_dump_text(SIBLING_DUMP, "T")
        groups = sibling_groups(ir)
        assert len(groups) == 1
        group = groups[0]
        # MNT-OTHER bridges AS12 and AS30 into the ACME component.
        assert group.asns == (10, 11, 12, 30)
        assert "MNT-ACME" in group.maintainers

    def test_solo_as_not_grouped(self):
        ir, _ = parse_dump_text(SIBLING_DUMP, "T")
        assert siblings_of(ir, 20) == ()

    def test_siblings_of(self):
        ir, _ = parse_dump_text(SIBLING_DUMP, "T")
        assert siblings_of(ir, 10) == (11, 12, 30)

    def test_spread_cutoff_drops_registry_maintainers(self):
        dump = "\n\n".join(
            f"aut-num: AS{n}\nmnt-by:  MNT-REGISTRY" for n in range(1, 10)
        )
        ir, _ = parse_dump_text(dump, "T")
        assert sibling_groups(ir, max_maintainer_spread=5) == []
        assert len(sibling_groups(ir, max_maintainer_spread=20)) == 1

    def test_groups_sorted_largest_first(self):
        dump = SIBLING_DUMP + "\naut-num: AS40\nmnt-by: MNT-PAIR\n\naut-num: AS41\nmnt-by: MNT-PAIR\n"
        ir, _ = parse_dump_text(dump, "T")
        groups = sibling_groups(ir)
        assert [len(g) for g in groups] == sorted([len(g) for g in groups], reverse=True)

    def test_synth_ground_truth_recovered(self, tiny_world, tiny_ir):
        if not tiny_world.sibling_orgs:
            return
        groups = sibling_groups(tiny_ir)
        clustered = {asn for group in groups for asn in group.asns}
        recovered = 0
        for sibling, owner in tiny_world.sibling_orgs.items():
            if sibling in tiny_ir.aut_nums and owner in tiny_ir.aut_nums:
                together = any(
                    sibling in group.asns and owner in group.asns for group in groups
                )
                recovered += together
        # Every co-present sibling pair shares a maintainer, so it clusters.
        pairs = sum(
            1
            for sibling, owner in tiny_world.sibling_orgs.items()
            if sibling in tiny_ir.aut_nums and owner in tiny_ir.aut_nums
        )
        assert recovered == pairs
        assert clustered  # some structure was found at all


class TestActionCensus:
    DUMP = """
aut-num: AS1
import:  from AS2 action pref = 10; med = 0; accept ANY
import:  from AS3 action community.append(65000:1); accept ANY
export:  to AS2 action aspath.prepend(AS1, AS1); announce AS1
export:  to AS3 announce AS1
"""

    def test_counts(self):
        ir, _ = parse_dump_text(self.DUMP, "T")
        census = action_census(ir)
        assert census["pref="] == 1
        assert census["med="] == 1
        assert census["community.append()"] == 1
        assert census["aspath.prepend()"] == 1
        assert census["rules-with-actions"] == 3

    def test_empty_ir(self):
        ir, _ = parse_dump_text("", "T")
        assert action_census(ir) == {}

    def test_tiny_world_uses_pref(self, tiny_ir):
        census = action_census(tiny_ir)
        assert census.get("pref=", 0) > 0
