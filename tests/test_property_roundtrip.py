"""Property-based tests: generated ASTs round-trip through the parser,
and index structures agree with brute-force oracles."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import PrefixOpIndex
from repro.net.prefix import Prefix, RangeOp, RangeOpKind
from repro.rpsl.filter import (
    FilterAnd,
    FilterAny,
    FilterAsn,
    FilterAsSet,
    FilterNot,
    FilterOr,
    FilterPeerAs,
    FilterPrefixSet,
    FilterRouteSet,
    parse_filter_text,
)
from repro.rpsl.peering import (
    PeerAnd,
    PeerAny,
    PeerAsn,
    PeerAsSet,
    PeerExcept,
    PeerOr,
    Peering,
    parse_peering_text,
)
from repro.rpsl.policy import PeeringAction, PolicyFactor, PolicyTerm, parse_policy

# -- strategies --------------------------------------------------------------

range_ops = st.one_of(
    st.just(RangeOp()),
    st.just(RangeOp(RangeOpKind.MINUS)),
    st.just(RangeOp(RangeOpKind.PLUS)),
    st.integers(0, 32).map(lambda n: RangeOp(RangeOpKind.EXACT, n, n)),
    st.tuples(st.integers(0, 30), st.integers(0, 4)).map(
        lambda lohi: RangeOp(RangeOpKind.RANGE, lohi[0], lohi[0] + lohi[1] + 1)
    ),
)

v4_prefixes = st.tuples(
    st.integers(0, 2**32 - 1), st.integers(0, 32)
).map(lambda t: Prefix(4, (t[0] >> (32 - t[1])) << (32 - t[1]) if t[1] else 0, t[1]))

set_names = st.integers(0, 50).map(lambda n: f"AS-SET{n}")

filter_atoms = st.one_of(
    st.just(FilterAny()),
    st.just(FilterPeerAs()),
    st.builds(FilterAsn, st.integers(1, 2**32 - 1), range_ops),
    st.builds(FilterAsSet, set_names, range_ops),
    st.builds(FilterRouteSet, st.integers(0, 50).map(lambda n: f"RS-SET{n}"), range_ops),
    st.builds(
        lambda members, op: FilterPrefixSet(tuple(members), op),
        st.lists(st.tuples(v4_prefixes, range_ops), min_size=0, max_size=3),
        range_ops,
    ),
)

filters = st.recursive(
    filter_atoms,
    lambda children: st.one_of(
        st.builds(FilterAnd, children, children),
        st.builds(FilterOr, children, children),
        st.builds(FilterNot, children),
    ),
    max_leaves=6,
)

as_exprs = st.recursive(
    st.one_of(
        st.just(PeerAny()),
        st.builds(PeerAsn, st.integers(1, 2**32 - 1)),
        st.builds(PeerAsSet, set_names),
    ),
    lambda children: st.one_of(
        st.builds(PeerAnd, children, children),
        st.builds(PeerOr, children, children),
        st.builds(PeerExcept, children, children),
    ),
    max_leaves=5,
)

peerings = st.builds(Peering, as_exprs)


# -- round-trip properties ---------------------------------------------------


@given(filters)
@settings(max_examples=200)
def test_filter_roundtrip(node):
    text = node.to_rpsl()
    assert parse_filter_text(text).to_rpsl() == text


@given(peerings)
@settings(max_examples=200)
def test_peering_roundtrip(peering):
    text = peering.to_rpsl()
    assert parse_peering_text(text).to_rpsl() == text


@given(
    st.lists(st.tuples(peerings, filters), min_size=1, max_size=3),
    st.sampled_from(["import", "export"]),
)
@settings(max_examples=100)
def test_policy_roundtrip(pairs, kind):
    factors = tuple(
        PolicyFactor((PeeringAction(peering),), filter_node)
        for peering, filter_node in pairs
    )
    term = PolicyTerm(factors, braced=len(factors) > 1)
    text = term.to_rpsl(kind)
    parsed = parse_policy(kind, text)
    assert parsed.expr.to_rpsl(kind) == text


# -- index oracle ---------------------------------------------------------


@given(
    st.lists(st.tuples(v4_prefixes, range_ops), min_size=0, max_size=12),
    v4_prefixes,
)
@settings(max_examples=300)
def test_prefix_op_index_matches_bruteforce(entries, probe):
    index = PrefixOpIndex()
    for declared, op in entries:
        index.add(declared, op)
    expected = any(declared.matches_with_op(probe, op) for declared, op in entries)
    assert index.matches(probe) == expected


@given(
    st.lists(st.tuples(v4_prefixes, range_ops), min_size=1, max_size=8),
    v4_prefixes,
    range_ops,
)
@settings(max_examples=200)
def test_prefix_op_index_override_oracle(entries, probe, override):
    index = PrefixOpIndex()
    for declared, op in entries:
        index.add(declared, op)
    if override.kind is RangeOpKind.NONE:
        expected = any(d.matches_with_op(probe, op) for d, op in entries)
    else:
        expected = any(d.matches_with_op(probe, override) for d, _ in entries)
    assert index.matches(probe, override) == expected


# -- filter-evaluation consistency ------------------------------------------


@given(filters)
@settings(max_examples=100)
def test_filter_evaluation_total(node):
    """Every generated filter evaluates without raising, to a defined Val."""
    from repro.core.filter_match import FilterEvaluator, MatchContext, Val
    from repro.core.query import QueryEngine
    from repro.ir.model import Ir

    evaluator = FilterEvaluator(QueryEngine(Ir()))
    ctx = MatchContext(Prefix.parse("203.0.113.0/24"), (65001, 65000), 65001, 65010)
    outcome = evaluator.evaluate(node, ctx)
    assert outcome.value in tuple(Val)


@given(filters)
@settings(max_examples=100)
def test_double_negation_preserves_decided_value(node):
    from repro.core.filter_match import FilterEvaluator, MatchContext, Val
    from repro.core.query import QueryEngine
    from repro.ir.model import Ir

    evaluator = FilterEvaluator(QueryEngine(Ir()))
    ctx = MatchContext(Prefix.parse("203.0.113.0/24"), (65001, 65000), 65001, 65010)
    plain = evaluator.evaluate(node, ctx)
    doubled = evaluator.evaluate(FilterNot(FilterNot(node)), ctx)
    assert plain.value == doubled.value
