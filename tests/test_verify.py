"""Tests for per-hop verification: the status lattice and special cases.

The scenario mirrors the paper's running examples: a small hierarchy with
each of the six special cases reproducible on demand.

Topology (providers above customers; = is peering):

    T1a(1001) = T1b(1002)          Tier-1 clique
       |           |
    MID(2001)   MID2(2002)         transit
       |      /    |
    EDGE(3001)  ONLYP(3002)        edge ASes
"""

import pytest

from repro.bgp.topology import AsRelationships
from repro.core.status import SpecialCase, VerifyStatus
from repro.core.verify import Verifier, VerifyOptions, rule_skip_census
from repro.core.report import ItemKind
from repro.irr.dump import parse_dump_text

DUMP = """
aut-num:    AS1001
import:     from AS-ANY accept ANY
export:     to AS-ANY announce ANY

aut-num:    AS2001
import:     from AS3001 accept AS3001
export:     to AS1001 announce AS2001
import:     from AS1001 accept ANY
export:     to AS3001 announce ANY

aut-num:    AS3001
import:     from AS2001 accept ANY
export:     to AS2001 announce AS3001

aut-num:    AS3002
import:     from AS2002 accept ANY
export:     to AS2002 announce AS3002

aut-num:    AS4001
import:     from AS9999 accept community(65000:1)
export:     to AS9999 announce ANY

route:      10.31.0.0/16
origin:     AS3001

route:      10.20.0.0/16
origin:     AS2001
"""
# Note: AS3002 has NO route objects (missing-routes case); AS2002 has no
# aut-num at all (unrecorded); AS1002 is a rule-less Tier-1.

TOPOLOGY = """
1001|1002|0
1001|2001|-1
1002|2002|-1
2001|3001|-1
2002|3001|-1
2002|3002|-1
"""


@pytest.fixture(scope="module")
def world():
    extra = (
        "\naut-num: AS1002\n"
        "import: from AS7777 accept ANY\nexport: to AS7777 announce ANY\n"
        "\naut-num: AS1003\n"
    )
    ir, _ = parse_dump_text(DUMP + extra, "TEST")
    relationships = AsRelationships.from_as_rel_text(TOPOLOGY)
    relationships.tier1 = {1001, 1002}
    return ir, relationships


@pytest.fixture(scope="module")
def verifier(world):
    ir, relationships = world
    return Verifier(ir, relationships)


def hop(verifier, direction, from_asn, to_asn, prefix, path):
    report = verifier.verify_route(prefix, tuple(path))
    for entry in report.hops:
        if (entry.direction, entry.from_asn, entry.to_asn) == (direction, from_asn, to_asn):
            return entry
    raise AssertionError(f"hop not found in {report}")


class TestStatuses:
    def test_verified_export_and_import(self, verifier):
        export = hop(verifier, "export", 3001, 2001, "10.31.0.0/16", (2001, 3001))
        assert export.status is VerifyStatus.VERIFIED
        imported = hop(verifier, "import", 3001, 2001, "10.31.0.0/16", (2001, 3001))
        assert imported.status is VerifyStatus.VERIFIED

    def test_unrecorded_no_aut_num(self, verifier):
        imported = hop(verifier, "import", 3001, 2002, "10.31.0.0/16", (2002, 3001))
        assert imported.status is VerifyStatus.UNRECORDED
        assert imported.items[0].kind is ItemKind.UNRECORDED_AUT_NUM

    def test_unrecorded_no_rules(self, verifier):
        imported = hop(verifier, "import", 2001, 1003, "10.31.0.0/16",
                       (1003, 2001, 3001))
        # AS1003 exists but has no rules at all.
        assert imported.status is VerifyStatus.UNRECORDED
        assert imported.unrecorded_reason is not None

    def test_ignored_single_as(self, verifier):
        report = verifier.verify_route("10.31.0.0/16", (3001,))
        assert report.ignored == "single-as"
        assert not report.hops

    def test_ignored_as_set_path(self, verifier):
        from repro.bgp.table import RouteEntry
        from repro.net.prefix import Prefix

        entry = RouteEntry(
            "c", 2001, Prefix.parse("10.31.0.0/16"), (2001, 3001), frozenset({7})
        )
        assert verifier.verify_entry(entry).ignored == "as-set-path"

    def test_prepending_removed(self, verifier):
        export = hop(
            verifier, "export", 3001, 2001, "10.31.0.0/16", (2001, 2001, 2001, 3001, 3001)
        )
        assert export.status is VerifyStatus.VERIFIED

    def test_skip_community_rule(self, verifier):
        imported = hop(verifier, "import", 9999, 4001, "10.31.0.0/16", (4001, 9999))
        assert imported.status is VerifyStatus.SKIP

    def test_hops_ordered_origin_first(self, verifier):
        report = verifier.verify_route("10.31.0.0/16", (1001, 2001, 3001))
        assert report.hops[0].from_asn == 3001
        assert report.hops[0].direction == "export"
        assert report.hops[1].direction == "import"
        assert report.hops[-1].to_asn == 1001


class TestRelaxations:
    def test_export_self(self, verifier):
        # AS2001 announces only AS2001 to its provider, but the route came
        # from its customer AS3001 → Export Self.
        export = hop(verifier, "export", 2001, 1001, "10.31.0.0/16",
                     (1001, 2001, 3001))
        assert export.status is VerifyStatus.RELAXED
        assert export.special_case is SpecialCase.EXPORT_SELF

    def test_export_self_strict_for_own_route(self, verifier):
        # The same rule strictly matches AS2001's own prefix.
        export = hop(verifier, "export", 2001, 1001, "10.20.0.0/16", (1001, 2001))
        assert export.status is VerifyStatus.VERIFIED

    def test_import_customer(self, verifier):
        # AS2001 imports "from AS3001 accept AS3001" but the route was
        # originated by AS3001's customer... here by AS3001 itself with a
        # prefix lacking a route object? Use a prefix not registered:
        imported = hop(verifier, "import", 3001, 2001, "10.99.0.0/16", (2001, 3001))
        # filter AS3001 fails (no route object for 10.99/16) but the peer
        # is the customer itself → Import Customer (checked before
        # missing-routes in 5.1.1 order).
        assert imported.status is VerifyStatus.RELAXED
        assert imported.special_case is SpecialCase.IMPORT_CUSTOMER

    def test_missing_routes(self, verifier):
        # AS3002 exports "announce AS3002" but has no route objects at all;
        # origin == the filter's AS → missing routes... except zero routes
        # is UNRECORDED by the paper's order. Use import side at provider?
        export = hop(verifier, "export", 3002, 2002, "10.42.0.0/16", (2002, 3002))
        assert export.status is VerifyStatus.UNRECORDED
        assert export.items[0].kind is ItemKind.UNRECORDED_AS_ROUTES

    def test_missing_routes_relaxation_with_some_routes(self):
        # An AS with SOME route objects but not this one → RELAXED.
        dump = """
aut-num: AS10
export:  to AS20 announce AS10

aut-num: AS20
import:  from AS10 accept AS10

route:   10.1.0.0/16
origin:  AS10
"""
        relationships = AsRelationships.from_as_rel_text("20|10|-1\n")
        ir, _ = parse_dump_text(dump, "T")
        verifier = Verifier(ir, relationships)
        export = hop(verifier, "export", 10, 20, "10.2.0.0/16", (20, 10))
        assert export.status is VerifyStatus.RELAXED
        assert export.special_case is SpecialCase.MISSING_ROUTES
        # import side: peering AS10 matched, filter AS10 misses, AS10 is a
        # customer → import-customer fires first (5.1.1 order).
        imported = hop(verifier, "import", 10, 20, "10.2.0.0/16", (20, 10))
        assert imported.status is VerifyStatus.RELAXED


class TestSafelists:
    def test_tier1_pair(self, verifier):
        imported = hop(verifier, "import", 1001, 1002, "10.31.0.0/16",
                       (1002, 1001, 2001, 3001))
        assert imported.status is VerifyStatus.SAFELISTED
        assert imported.special_case is SpecialCase.TIER1_PAIR

    def test_uphill_export_for_transited_route(self, verifier):
        # AS2001 → AS1001 is customer→provider; a route AS2001 transits
        # (origin AS9999, unrelated) is uphill-safelisted on export — but
        # only because AS2001 is not the origin.
        export = hop(verifier, "export", 2001, 1001, "10.99.0.0/16",
                     (1001, 2001, 9999))
        assert export.status is VerifyStatus.SAFELISTED
        assert export.special_case is SpecialCase.UPHILL

    def test_uphill_never_excuses_origins_own_export(self, verifier):
        # Appendix C: the origin's own uphill export is NOT safelisted
        # (BadExport for AS141893→AS56239) — first-hop filtering is where
        # the RPSL prevents hijacks.
        export = hop(verifier, "export", 3001, 2002, "10.99.0.0/16", (2002, 3001))
        assert export.status is VerifyStatus.UNVERIFIED
        # The import side of the same hop is still rescued.
        imported = hop(verifier, "import", 3001, 2002, "10.99.0.0/16", (2002, 3001))
        assert imported.status is not VerifyStatus.UNVERIFIED

    def test_only_provider_policies(self):
        dump = """
aut-num: AS10
import:  from AS99 accept ANY
export:  to AS99 announce AS10

aut-num: AS30
export:  to AS10 announce AS30

route:   10.30.0.0/16
origin:  AS30
"""
        # AS10's rules reference only AS99 (its provider); AS30 is a peer.
        relationships = AsRelationships.from_as_rel_text("99|10|-1\n10|30|0\n")
        ir, _ = parse_dump_text(dump, "T")
        verifier = Verifier(ir, relationships)
        imported = hop(verifier, "import", 30, 10, "10.30.0.0/16", (10, 30))
        assert imported.status is VerifyStatus.SAFELISTED
        assert imported.special_case is SpecialCase.ONLY_PROVIDER_POLICIES
        assert imported.items[-1].kind is ItemKind.SPEC_OTHER_ONLY_PROVIDER_POLICIES

    def test_unverified_when_nothing_applies(self, verifier):
        # Peer-to-peer hop T1a→MID2's customer? Use AS2001 importing from a
        # stranger AS the rules don't cover and no relationship explains.
        imported = hop(verifier, "import", 9999, 2001, "10.99.0.0/16", (2001, 9999))
        assert imported.status is VerifyStatus.UNVERIFIED
        assert all(item.kind is ItemKind.MATCH_REMOTE_AS_NUM for item in imported.items)


class TestOptions:
    def test_relaxations_disabled(self, world):
        ir, relationships = world
        strict = Verifier(ir, relationships, VerifyOptions(relaxations=False))
        export = hop(strict, "export", 2001, 1001, "10.31.0.0/16", (1001, 2001, 3001))
        assert export.status is not VerifyStatus.RELAXED

    def test_safelists_disabled(self, world):
        ir, relationships = world
        strict = Verifier(
            ir, relationships, VerifyOptions(relaxations=False, safelists=False)
        )
        imported = hop(strict, "import", 1001, 1002, "10.31.0.0/16",
                       (1002, 1001, 2001, 3001))
        assert imported.status is VerifyStatus.UNVERIFIED  # no safelist rescue

    def test_afi_gating(self):
        dump = """
aut-num: AS10
mp-import: afi ipv6.unicast from AS20 accept ANY
import:    from AS20 accept {10.0.0.0/8^+}
"""
        ir, _ = parse_dump_text(dump, "T")
        relationships = AsRelationships.from_as_rel_text("20|10|-1\n")
        verifier = Verifier(ir, relationships)
        v6 = hop(verifier, "import", 20, 10, "2001:db8::/32", (10, 20))
        assert v6.status is VerifyStatus.VERIFIED  # via the mp-import rule
        v4 = hop(verifier, "import", 20, 10, "10.1.0.0/16", (10, 20))
        assert v4.status is VerifyStatus.VERIFIED  # via the v4 rule


class TestSkipCensus:
    def test_census_counts(self, world):
        ir, _ = world
        census = rule_skip_census(ir)
        assert census["total"] >= 10
        assert census["community-filter"] == 1
        assert census["skipped"] >= 1

    def test_census_counts_unparsed(self):
        ir, _ = parse_dump_text(
            "aut-num: AS1\nimport: from AS2 accept GARBAGE IN\n", "T"
        )
        census = rule_skip_census(ir)
        assert census["unparsed"] == 1
        assert census["skipped"] == 1
