"""Tests for the filter expression parser."""

import pytest

from repro.net.prefix import Prefix, RangeOp, RangeOpKind
from repro.rpsl.errors import RpslSyntaxError
from repro.rpsl.filter import (
    FilterAnd,
    FilterAny,
    FilterAsn,
    FilterAsPathRegex,
    FilterAsSet,
    FilterCommunity,
    FilterFltrSetRef,
    FilterNot,
    FilterOr,
    FilterPeerAs,
    FilterPrefixSet,
    FilterRouteSet,
    parse_filter_text,
)


class TestPrimaries:
    def test_any(self):
        assert parse_filter_text("ANY") == FilterAny()
        assert parse_filter_text("any") == FilterAny()

    def test_peeras(self):
        assert parse_filter_text("PeerAS") == FilterPeerAs()

    def test_asn(self):
        assert parse_filter_text("AS174") == FilterAsn(174)

    def test_asn_with_op(self):
        assert parse_filter_text("AS174^+") == FilterAsn(174, RangeOp.parse("^+"))

    def test_as_set_uppercased(self):
        assert parse_filter_text("as-foo") == FilterAsSet("AS-FOO")

    def test_as_set_hierarchical_with_op(self):
        node = parse_filter_text("AS1:AS-CUST^16-24")
        assert node == FilterAsSet("AS1:AS-CUST", RangeOp.parse("^16-24"))

    def test_as_any_keyword(self):
        node = parse_filter_text("AS-ANY")
        assert isinstance(node, FilterAsSet) and node.any_member

    def test_route_set(self):
        assert parse_filter_text("RS-ROUTES") == FilterRouteSet("RS-ROUTES")

    def test_route_set_with_op_nonstandard(self):
        node = parse_filter_text("RS-ROUTES^24-28")
        assert node == FilterRouteSet("RS-ROUTES", RangeOp.parse("^24-28"))

    def test_rs_any(self):
        node = parse_filter_text("RS-ANY")
        assert isinstance(node, FilterRouteSet) and node.any_member

    def test_filter_set(self):
        assert parse_filter_text("fltr-martian") == FilterFltrSetRef("FLTR-MARTIAN")

    def test_filter_set_with_op_rejected(self):
        with pytest.raises(RpslSyntaxError):
            parse_filter_text("FLTR-MARTIAN^+")

    def test_prefix_set(self):
        node = parse_filter_text("{10.0.0.0/8^16-24, 192.0.2.0/24}")
        assert isinstance(node, FilterPrefixSet)
        assert node.members[0] == (Prefix.parse("10.0.0.0/8"), RangeOp.parse("^16-24"))
        assert node.members[1][1].kind is RangeOpKind.NONE

    def test_empty_prefix_set(self):
        node = parse_filter_text("{}")
        assert node == FilterPrefixSet(())

    def test_prefix_set_outer_op(self):
        node = parse_filter_text("{0.0.0.0/0} ^24-32")
        assert node.op == RangeOp.parse("^24-32")

    def test_prefix_set_attached_outer_op(self):
        node = parse_filter_text("{0.0.0.0/0}^24")
        assert node.op == RangeOp.parse("^24")

    def test_bare_prefix_tolerated(self):
        node = parse_filter_text("192.0.2.0/24^+")
        assert isinstance(node, FilterPrefixSet)
        assert node.members[0][1].kind is RangeOpKind.PLUS

    def test_regex(self):
        node = parse_filter_text("<^AS1 .* $>")
        assert isinstance(node, FilterAsPathRegex)

    def test_community_call(self):
        node = parse_filter_text("community(65535:666)")
        assert node == FilterCommunity("", ("65535:666",))

    def test_community_method(self):
        node = parse_filter_text("community.contains(65000:1, 65000:2)")
        assert node == FilterCommunity("contains", ("65000:1", "65000:2"))

    def test_unknown_word_raises(self):
        with pytest.raises(RpslSyntaxError):
            parse_filter_text("NONSENSE")


class TestOperators:
    def test_and(self):
        node = parse_filter_text("AS1 AND AS2")
        assert node == FilterAnd(FilterAsn(1), FilterAsn(2))

    def test_or(self):
        node = parse_filter_text("AS1 OR AS2")
        assert node == FilterOr(FilterAsn(1), FilterAsn(2))

    def test_not(self):
        node = parse_filter_text("NOT AS1")
        assert node == FilterNot(FilterAsn(1))

    def test_double_not(self):
        assert parse_filter_text("NOT NOT AS1") == FilterNot(FilterNot(FilterAsn(1)))

    def test_precedence_not_over_and_over_or(self):
        node = parse_filter_text("AS1 OR NOT AS2 AND AS3")
        assert node == FilterOr(FilterAsn(1), FilterAnd(FilterNot(FilterAsn(2)), FilterAsn(3)))

    def test_parens_override(self):
        node = parse_filter_text("(AS1 OR AS2) AND AS3")
        assert node == FilterAnd(FilterOr(FilterAsn(1), FilterAsn(2)), FilterAsn(3))

    def test_juxtaposition_is_or(self):
        node = parse_filter_text("AS1 AS2 AS3")
        assert node == FilterOr(FilterOr(FilterAsn(1), FilterAsn(2)), FilterAsn(3))

    def test_paper_example(self):
        node = parse_filter_text("ANY AND NOT {0.0.0.0/0, ::0/0}")
        assert isinstance(node, FilterAnd)
        assert isinstance(node.right, FilterNot)

    def test_paren_with_trailing_op(self):
        node = parse_filter_text("(AS1 OR AS2)^+")
        assert node == FilterOr(
            FilterAsn(1, RangeOp.parse("^+")), FilterAsn(2, RangeOp.parse("^+"))
        )

    def test_trailing_tokens_raise(self):
        with pytest.raises(RpslSyntaxError):
            parse_filter_text("AS1 AND")


class TestRoundTrip:
    CASES = [
        "ANY",
        "PeerAS",
        "AS174",
        "AS174^-",
        "AS-FOO^+",
        "RS-BAR^24-28",
        "FLTR-MARTIAN",
        "{10.0.0.0/8^16-24, 192.0.2.0/24}",
        "<^AS1 AS2+ $>",
        "community(65535:666)",
        "AS1 AND (NOT (AS2 OR AS-X))",
        "ANY AND (NOT {0.0.0.0/0, ::/0})",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_stable(self, text):
        once = parse_filter_text(text).to_rpsl()
        assert parse_filter_text(once).to_rpsl() == once
