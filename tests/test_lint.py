"""Tests for the RPSL linter."""

import pytest

from repro.bgp.topology import AsRelationships
from repro.irr.dump import parse_dump_text
from repro.tools.lint import Severity, lint_ir

DUMP = """
aut-num:    AS10
import:     from AS20 action pref = 300; accept AS20:AS-CONE
import:     from AS99 action pref = 50; accept ANY
import:     from AS30 accept AS30
export:     to AS99 announce AS10
export:     to AS20 announce ANY
export:     to AS777 announce AS-GONE

aut-num:    AS20
export:     to AS10 announce AS20:AS-CONE

as-set:     AS20:AS-CONE
members:    AS20

as-set:     AS-EMPTY

as-set:     AS-LOOPX
members:    AS-LOOPY

as-set:     AS-LOOPY
members:    AS-LOOPX

as-set:     AS-D1
members:    AS-D2

as-set:     AS-D2
members:    AS-D3

as-set:     AS-D3
members:    AS1

route-set:  RS-ORPHAN
members:    192.0.2.0/24

route:      10.10.0.0/16
origin:     AS10

route:      10.20.0.0/16
origin:     AS20

route:      10.20.0.0/16
origin:     AS99
"""

AS_REL = """
99|10|-1
10|20|-1
10|30|-1
"""


@pytest.fixture(scope="module")
def report():
    ir, errors = parse_dump_text(DUMP, "TEST")
    relationships = AsRelationships.from_as_rel_text(AS_REL)
    return lint_ir(ir, errors, relationships, deep_threshold=3)


class TestStructuralChecks:
    def test_empty_as_set(self, report):
        assert any(f.object_name == "AS-EMPTY" for f in report.by_code("RPS010"))

    def test_singleton_as_set(self, report):
        names = {f.object_name for f in report.by_code("RPS011")}
        assert "AS20:AS-CONE" in names

    def test_loop_detected(self, report):
        names = {f.object_name for f in report.by_code("RPS012")}
        assert {"AS-LOOPX", "AS-LOOPY"} <= names

    def test_depth(self, report):
        assert any(f.object_name == "AS-D1" for f in report.by_code("RPS013"))

    def test_undefined_reference(self, report):
        assert any(f.object_name == "AS-GONE" for f in report.by_code("RPS020"))

    def test_zero_route_reference(self, report):
        # AS777 is referenced, has no aut-num and no routes.
        assert any(f.object_name == "AS777" for f in report.by_code("RPS021"))

    def test_unused_route_set(self, report):
        assert any(f.object_name == "RS-ORPHAN" for f in report.by_code("RPS041"))

    def test_multi_origin_prefix(self, report):
        findings = report.by_code("RPS051")
        assert any("10.20.0.0/16" in f.object_name for f in findings)
        assert any("AS20" in f.message and "AS99" in f.message for f in findings)


class TestPolicyChecks:
    def test_export_self(self, report):
        # AS10 is transit (customers 20, 30) and announces only AS10 to
        # its provider AS99.
        findings = report.by_code("RPS030")
        assert any(f.object_name == "AS10" for f in findings)

    def test_import_customer(self, report):
        findings = report.by_code("RPS031")
        assert any("AS30" in f.message for f in findings)

    def test_indirection_advice(self, report):
        assert report.by_code("RPS040")

    def test_pref_inversion(self, report):
        # AS10: customer AS20 import pref 300 > provider AS99 pref 50 —
        # lower-is-preferred means providers would win: suspicious.
        findings = report.by_code("RPS050")
        assert any(f.object_name == "AS10" for f in findings)
        assert findings[0].severity is Severity.WARNING

    def test_no_pref_inversion_when_correct(self):
        dump = """
aut-num: AS10
import:  from AS20 action pref = 50; accept AS20
import:  from AS99 action pref = 300; accept ANY
"""
        ir, _ = parse_dump_text(dump, "T")
        relationships = AsRelationships.from_as_rel_text("99|10|-1\n10|20|-1\n")
        assert not lint_ir(ir, None, relationships).by_code("RPS050")

    def test_only_provider_info(self):
        dump = """
aut-num: AS10
import:  from AS99 accept ANY
export:  to AS99 announce AS10

route:   10.0.0.0/16
origin:  AS10
"""
        ir, _ = parse_dump_text(dump, "T")
        relationships = AsRelationships.from_as_rel_text("99|10|-1\n10|20|-1\n")
        report = lint_ir(ir, None, relationships)
        assert report.by_code("RPS032")


class TestSyntaxFindings:
    def test_parse_errors_become_findings(self):
        ir, errors = parse_dump_text(
            "aut-num: AS1\nimport: from AS2 accept JUNK AND\n\nas-set: BADNAME\n", "T"
        )
        report = lint_ir(ir, errors)
        assert report.by_code("RPS001")
        assert report.by_code("RPS002")

    def test_reserved_name_finding(self):
        ir, errors = parse_dump_text("as-set: AS-X\nmembers: ANY\n", "T")
        assert lint_ir(ir, errors).by_code("RPS003")


class TestReportApi:
    def test_counts_and_len(self, report):
        counts = report.counts()
        assert sum(counts.values()) == len(report)
        assert counts["RPS012"] == 2

    def test_render_orders_by_severity(self, report):
        lines = report.render().splitlines()
        severities = []
        for line in lines:
            severities.append(line.split("[")[1].split("]")[0])
        order = {"error": 0, "warning": 1, "info": 2}
        assert [order[s] for s in severities] == sorted(order[s] for s in severities)

    def test_relationship_checks_skipped_without_topology(self):
        ir, errors = parse_dump_text(DUMP, "TEST")
        report = lint_ir(ir, errors)
        assert not report.by_code("RPS030")
        assert not report.by_code("RPS050")

    def test_lint_tiny_world(self, tiny_ir, tiny_world, tiny_registry):
        report = lint_ir(tiny_ir, tiny_registry.all_errors(), tiny_world.topology)
        assert len(report) > 10
        assert report.by_code("RPS030")  # export-self misuse injected
