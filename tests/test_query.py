"""Tests for the query engine: indexes, flattening, resolution."""

from repro.core.query import BUILTIN_FILTER_SETS, PrefixOpIndex, QueryEngine
from repro.irr.dump import parse_dump_text
from repro.net.prefix import Prefix, RangeOp


def engine_of(text: str) -> QueryEngine:
    ir, _ = parse_dump_text(text, "TEST")
    return QueryEngine(ir)


class TestPrefixOpIndex:
    def test_exact_match(self):
        index = PrefixOpIndex()
        index.add(Prefix.parse("10.0.0.0/8"), RangeOp())
        assert index.matches(Prefix.parse("10.0.0.0/8"))
        assert not index.matches(Prefix.parse("10.1.0.0/16"))

    def test_plus_matches_more_specific(self):
        index = PrefixOpIndex()
        index.add(Prefix.parse("10.0.0.0/8"), RangeOp.parse("^+"))
        assert index.matches(Prefix.parse("10.0.0.0/8"))
        assert index.matches(Prefix.parse("10.1.2.0/24"))
        assert not index.matches(Prefix.parse("11.0.0.0/8"))

    def test_override_op(self):
        index = PrefixOpIndex()
        index.add(Prefix.parse("10.0.0.0/8"), RangeOp())
        assert index.matches(Prefix.parse("10.1.0.0/16"), RangeOp.parse("^16"))
        assert not index.matches(Prefix.parse("10.1.0.0/17"), RangeOp.parse("^16"))

    def test_len(self):
        index = PrefixOpIndex()
        assert len(index) == 0
        index.add(Prefix.parse("10.0.0.0/8"), RangeOp())
        index.add(Prefix.parse("10.0.0.0/8"), RangeOp.parse("^+"))
        assert len(index) == 2


class TestRouteLookups:
    DUMP = """
route:  10.0.0.0/8
origin: AS1

route:  10.1.0.0/16
origin: AS2

route6: 2001:db8::/32
origin: AS1
"""

    def test_has_any_routes(self):
        engine = engine_of(self.DUMP)
        assert engine.has_any_routes(1)
        assert not engine.has_any_routes(99)

    def test_asn_route_match_exact(self):
        engine = engine_of(self.DUMP)
        assert engine.asn_route_match(1, Prefix.parse("10.0.0.0/8"), RangeOp())
        assert not engine.asn_route_match(1, Prefix.parse("10.1.0.0/16"), RangeOp())

    def test_asn_route_match_with_op(self):
        engine = engine_of(self.DUMP)
        assert engine.asn_route_match(1, Prefix.parse("10.9.0.0/16"), RangeOp.parse("^+"))
        assert not engine.asn_route_match(2, Prefix.parse("10.9.0.0/16"), RangeOp.parse("^+"))

    def test_asn_route_match_v6(self):
        engine = engine_of(self.DUMP)
        assert engine.asn_route_match(1, Prefix.parse("2001:db8::/32"), RangeOp())

    def test_origins_of(self):
        engine = engine_of(self.DUMP + "\nroute: 10.0.0.0/8\norigin: AS3\n")
        assert engine.origins_of(Prefix.parse("10.0.0.0/8")) == frozenset({1, 3})


class TestAsSetFlattening:
    def test_direct_members(self):
        engine = engine_of("as-set: AS-X\nmembers: AS1, AS2\n")
        resolution = engine.flatten_as_set("AS-X")
        assert resolution.members == frozenset({1, 2})
        assert resolution.recorded and not resolution.has_loop

    def test_nested(self):
        engine = engine_of(
            "as-set: AS-X\nmembers: AS1, AS-Y\n\nas-set: AS-Y\nmembers: AS2\n"
        )
        assert engine.flatten_as_set("AS-X").members == frozenset({1, 2})
        assert engine.flatten_as_set("AS-X").depth == 2

    def test_unrecorded_set(self):
        engine = engine_of("as-set: AS-X\nmembers: AS-MISSING\n")
        resolution = engine.flatten_as_set("AS-X")
        assert "AS-MISSING" in resolution.unrecorded

    def test_unknown_top_level(self):
        engine = engine_of("aut-num: AS1\n")
        resolution = engine.flatten_as_set("AS-NOPE")
        assert not resolution.recorded
        assert resolution.members == frozenset()

    def test_loop_detected_and_terminates(self):
        engine = engine_of(
            "as-set: AS-A\nmembers: AS1, AS-B\n\nas-set: AS-B\nmembers: AS2, AS-A\n"
        )
        resolution = engine.flatten_as_set("AS-A")
        assert resolution.has_loop
        assert resolution.members == frozenset({1, 2})

    def test_self_loop(self):
        engine = engine_of("as-set: AS-A\nmembers: AS-A, AS1\n")
        resolution = engine.flatten_as_set("AS-A")
        assert resolution.has_loop and resolution.members == frozenset({1})

    def test_depth_of_chain(self):
        engine = engine_of(
            "as-set: AS-A\nmembers: AS-B\n\nas-set: AS-B\nmembers: AS-C\n\n"
            "as-set: AS-C\nmembers: AS1\n"
        )
        assert engine.flatten_as_set("AS-A").depth == 3

    def test_contains_any(self):
        engine = engine_of("as-set: AS-X\nmembers: ANY\n")
        assert engine.flatten_as_set("AS-X").contains_any

    def test_memoized(self):
        engine = engine_of("as-set: AS-X\nmembers: AS1\n")
        assert engine.flatten_as_set("AS-X") is engine.flatten_as_set("AS-X")

    def test_members_by_reference(self):
        engine = engine_of(
            "as-set: AS-X\nmembers: AS1\nmbrs-by-ref: MNT-A\n\n"
            "aut-num: AS5\nmember-of: AS-X\nmnt-by: MNT-A\n\n"
            "aut-num: AS6\nmember-of: AS-X\nmnt-by: MNT-OTHER\n"
        )
        members = engine.flatten_as_set("AS-X").members
        assert 5 in members and 6 not in members

    def test_members_by_reference_any(self):
        engine = engine_of(
            "as-set: AS-X\nmbrs-by-ref: ANY\n\n"
            "aut-num: AS5\nmember-of: AS-X\nmnt-by: WHOEVER\n"
        )
        assert 5 in engine.flatten_as_set("AS-X").members

    def test_no_byref_without_declaration(self):
        engine = engine_of(
            "as-set: AS-X\nmembers: AS1\n\n"
            "aut-num: AS5\nmember-of: AS-X\nmnt-by: MNT-A\n"
        )
        assert 5 not in engine.flatten_as_set("AS-X").members

    def test_as_set_route_match(self):
        engine = engine_of(
            "as-set: AS-X\nmembers: AS1\n\nroute: 10.0.0.0/8\norigin: AS1\n"
        )
        assert engine.as_set_route_match("AS-X", Prefix.parse("10.0.0.0/8"), RangeOp())
        assert engine.as_set_route_match(
            "AS-X", Prefix.parse("10.1.0.0/16"), RangeOp.parse("^+")
        )
        assert not engine.as_set_route_match("AS-X", Prefix.parse("11.0.0.0/8"), RangeOp())


class TestRouteSetResolution:
    DUMP = """
route-set: RS-X
members:   10.0.0.0/8^16-16, RS-Y, AS7

route-set: RS-Y
members:   192.0.2.0/24

route:     172.16.0.0/12
origin:    AS7
"""

    def test_prefix_member_with_op(self):
        engine = engine_of(self.DUMP)
        assert engine.route_set_match("RS-X", Prefix.parse("10.5.0.0/16"), RangeOp())
        assert not engine.route_set_match("RS-X", Prefix.parse("10.0.0.0/8"), RangeOp())

    def test_nested_route_set(self):
        engine = engine_of(self.DUMP)
        assert engine.route_set_match("RS-X", Prefix.parse("192.0.2.0/24"), RangeOp())

    def test_asn_member_uses_route_objects(self):
        engine = engine_of(self.DUMP)
        assert engine.route_set_match("RS-X", Prefix.parse("172.16.0.0/12"), RangeOp())

    def test_outer_op_overrides(self):
        engine = engine_of(self.DUMP)
        # ^24 applied to the whole set: only /24 more-specifics qualify.
        assert engine.route_set_match(
            "RS-X", Prefix.parse("192.0.2.0/24"), RangeOp.parse("^24")
        )
        assert not engine.route_set_match(
            "RS-X", Prefix.parse("192.0.2.0/25"), RangeOp.parse("^24")
        )

    def test_unrecorded_nested(self):
        engine = engine_of("route-set: RS-X\nmembers: RS-MISSING\n")
        assert "RS-MISSING" in engine.resolve_route_set("RS-X").unrecorded

    def test_rs_any_member(self):
        engine = engine_of("route-set: RS-X\nmembers: RS-ANY\n")
        assert engine.resolve_route_set("RS-X").contains_any
        assert engine.route_set_match("RS-X", Prefix.parse("8.8.8.0/24"), RangeOp())

    def test_route_set_loop_terminates(self):
        engine = engine_of(
            "route-set: RS-A\nmembers: RS-B, 10.0.0.0/8\n\nroute-set: RS-B\nmembers: RS-A\n"
        )
        assert engine.route_set_match("RS-A", Prefix.parse("10.0.0.0/8"), RangeOp())

    def test_members_by_reference_route(self):
        engine = engine_of(
            "route-set: RS-X\nmbrs-by-ref: MNT-A\n\n"
            "route: 10.0.0.0/8\norigin: AS1\nmember-of: RS-X\nmnt-by: MNT-A\n"
        )
        assert engine.route_set_match("RS-X", Prefix.parse("10.0.0.0/8"), RangeOp())


class TestOtherSets:
    def test_peering_set_resolution(self):
        engine = engine_of("peering-set: PRNG-X\npeering: AS1\n")
        assert len(engine.resolve_peering_set("PRNG-X")) == 1
        assert engine.resolve_peering_set("PRNG-MISSING") is None

    def test_filter_set_resolution(self):
        engine = engine_of("filter-set: FLTR-X\nfilter: ANY\n")
        assert engine.resolve_filter_set("FLTR-X") is not None

    def test_builtin_martians(self):
        engine = engine_of("aut-num: AS1\n")
        assert engine.resolve_filter_set("FLTR-MARTIAN") is BUILTIN_FILTER_SETS["FLTR-MARTIAN"]
        assert engine.resolve_filter_set("FLTR-UNKNOWN") is None

    def test_defined_filter_set_overrides_builtin(self):
        engine = engine_of("filter-set: FLTR-MARTIAN\nfilter: AS1\n")
        assert engine.resolve_filter_set("FLTR-MARTIAN") is not BUILTIN_FILTER_SETS["FLTR-MARTIAN"]
