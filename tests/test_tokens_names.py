"""Tests for the expression tokenizer and name classification."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rpsl.errors import RpslSyntaxError
from repro.rpsl.names import NameKind, classify_name, is_valid_set_name, normalize_name
from repro.rpsl.tokens import TokenKind, TokenStream, tokenize


class TestTokenize:
    def test_words_and_punct(self):
        tokens = tokenize("from AS1 accept {1.2.3.0/24, 2.0.0.0/8};")
        kinds = [token.kind for token in tokens]
        assert kinds == [
            TokenKind.WORD, TokenKind.WORD, TokenKind.WORD,
            TokenKind.LBRACE, TokenKind.WORD, TokenKind.COMMA,
            TokenKind.WORD, TokenKind.RBRACE, TokenKind.SEMI,
        ]

    def test_regex_single_token(self):
        tokens = tokenize("accept <^AS1 AS2+$> AND ANY")
        assert tokens[1].kind is TokenKind.REGEX
        assert tokens[1].text == "<^AS1 AS2+$>"

    def test_unterminated_regex(self):
        with pytest.raises(RpslSyntaxError):
            tokenize("accept <^AS1")

    def test_attached_operators_stay_in_word(self):
        tokens = tokenize("AS-FOO^+ pref=100")
        assert tokens[0].text == "AS-FOO^+"
        assert tokens[1].text == "pref=100"

    def test_positions(self):
        tokens = tokenize("a  b")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_empty(self):
        assert tokenize("   ") == []

    @given(st.text(alphabet="ABCas- 0123:^+", max_size=40))
    def test_tokenize_never_crashes_on_word_text(self, text):
        tokens = tokenize(text)
        # Re-joining tokens loses only whitespace.
        assert "".join(t.text for t in tokens) == "".join(text.split())


class TestTokenStream:
    def test_peek_next_expect(self):
        stream = TokenStream.of("from AS1")
        assert stream.peek().text == "from"
        assert stream.next().text == "from"
        assert stream.expect(TokenKind.WORD).text == "AS1"
        assert stream.exhausted()

    def test_next_past_end_raises(self):
        stream = TokenStream.of("")
        with pytest.raises(RpslSyntaxError):
            stream.next()

    def test_expect_wrong_kind_raises(self):
        stream = TokenStream.of("word")
        with pytest.raises(RpslSyntaxError):
            stream.expect(TokenKind.LBRACE)

    def test_keywords_case_insensitive(self):
        stream = TokenStream.of("FROM AS1")
        assert stream.at_keyword("from")
        assert stream.take_keyword("from")
        assert not stream.take_keyword("from")

    def test_rest_text(self):
        stream = TokenStream.of("a b c")
        stream.next()
        assert stream.rest_text() == "b c"


class TestNameClassification:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("AS174", NameKind.ASN),
            ("as174", NameKind.ASN),
            ("AS-FOO", NameKind.AS_SET),
            ("AS1:AS-CUST", NameKind.AS_SET),
            ("AS1:AS-CUST:AS2", NameKind.AS_SET),
            ("RS-ROUTES", NameKind.ROUTE_SET),
            ("AS1:RS-X", NameKind.ROUTE_SET),
            ("FLTR-MARTIAN", NameKind.FILTER_SET),
            ("PRNG-PEERS", NameKind.PEERING_SET),
            ("RTRS-SET", NameKind.RTR_SET),
            ("ANY", NameKind.ANY),
            ("AS-ANY", NameKind.AS_ANY),
            ("RS-ANY", NameKind.RS_ANY),
            ("PeerAS", NameKind.PEER_AS),
            ("garbage", NameKind.UNKNOWN),
            ("AS1x", NameKind.UNKNOWN),
        ],
    )
    def test_classify(self, word, expected):
        assert classify_name(word) is expected

    def test_normalize(self):
        assert normalize_name(" as-foo ") == "AS-FOO"


class TestSetNameValidity:
    def test_valid_flat(self):
        assert is_valid_set_name("AS-FOO", "as-set")
        assert is_valid_set_name("RS-BAR", "route-set")

    def test_valid_hierarchical(self):
        assert is_valid_set_name("AS8267:AS-KRAKOW", "as-set")
        assert is_valid_set_name("AS1:RS-X:AS2", "route-set")

    def test_wrong_prefix(self):
        assert not is_valid_set_name("RS-BAR", "as-set")
        assert not is_valid_set_name("AS-FOO", "route-set")

    def test_asn_only_invalid(self):
        assert not is_valid_set_name("AS1:AS2", "as-set")

    def test_reserved_names_invalid(self):
        assert not is_valid_set_name("AS-ANY", "as-set")
        assert not is_valid_set_name("RS-ANY", "route-set")

    def test_empty_component_invalid(self):
        assert not is_valid_set_name("AS1::AS-X", "as-set")
        assert not is_valid_set_name("", "as-set")

    def test_bare_prefix_invalid(self):
        assert not is_valid_set_name("AS-", "as-set")
