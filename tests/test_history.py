"""Tests for historical snapshots: churn and diffing."""

import pytest

from repro.irr.dump import parse_dump_text
from repro.irr.history import (
    ChurnConfig,
    diff_irs,
    evolution_stats,
    evolve_ir,
    snapshot_series,
)

DUMP = """
aut-num: AS1
import:  from AS2 accept ANY
export:  to AS2 announce AS1

aut-num: AS2
import:  from AS1 accept AS1

as-set:  AS-ONE
members: AS1

route:   10.1.0.0/16
origin:  AS1

route:   10.2.0.0/16
origin:  AS2
"""


@pytest.fixture()
def ir():
    parsed, _ = parse_dump_text(DUMP, "TEST")
    return parsed


class TestDiff:
    def test_identical_irs_no_diff(self, ir):
        diff = diff_irs(ir, ir)
        assert diff.summary() == {"added": 0, "removed": 0, "modified": 0}

    def test_added_and_removed_routes(self, ir):
        other, _ = parse_dump_text(
            DUMP.replace("route:   10.2.0.0/16\norigin:  AS2", "route:   10.3.0.0/16\norigin:  AS3"),
            "TEST",
        )
        diff = diff_irs(ir, other)
        assert ("10.3.0.0/16", 3, "TEST") in diff.added["route"]
        assert ("10.2.0.0/16", 2, "TEST") in diff.removed["route"]

    def test_modified_aut_num(self, ir):
        other, _ = parse_dump_text(
            DUMP.replace("accept AS1", "accept ANY"), "TEST"
        )
        diff = diff_irs(ir, other)
        assert 2 in diff.modified["aut-num"]
        assert 1 not in diff.modified["aut-num"]

    def test_added_set(self, ir):
        other, _ = parse_dump_text(DUMP + "\nas-set: AS-TWO\nmembers: AS2\n", "TEST")
        diff = diff_irs(ir, other)
        assert "AS-TWO" in diff.added["as-set"]


class TestEvolve:
    def test_deterministic(self, ir):
        left = evolve_ir(ir, ChurnConfig(seed=5), epoch=1)
        right = evolve_ir(ir, ChurnConfig(seed=5), epoch=1)
        assert diff_irs(left, right).summary()["modified"] == 0
        assert left.counts() == right.counts()

    def test_original_untouched(self, ir):
        before = ir.counts()
        evolve_ir(ir, ChurnConfig(route_addition=1.0))
        assert ir.counts() == before

    def test_registry_growth(self, ir):
        config = ChurnConfig(route_removal=0.0, route_addition=1.0)
        evolved = evolve_ir(ir, config)
        assert evolved.counts()["route"] > ir.counts()["route"]

    def test_route_removal(self, ir):
        config = ChurnConfig(route_removal=1.0, route_addition=0.0)
        evolved = evolve_ir(ir, config)
        assert evolved.counts()["route"] == 0

    def test_rule_addition(self, ir):
        config = ChurnConfig(rule_addition=1.0, rule_removal=0.0)
        evolved = evolve_ir(ir, config)
        assert evolved.counts()["import"] > ir.counts()["import"]


class TestSeries:
    def test_series_length_and_head(self, ir):
        series = snapshot_series(ir, epochs=3)
        assert len(series) == 4
        assert series[0] is ir

    def test_evolution_stats_rows(self, ir):
        series = snapshot_series(ir, epochs=2, config=ChurnConfig(route_addition=0.5))
        rows = evolution_stats(series)
        assert [row["epoch"] for row in rows] == [0, 1, 2]
        assert "added" not in rows[0]
        assert "added" in rows[1]

    def test_snapshots_parse_back(self, ir):
        from repro.ir.render import render_ir

        series = snapshot_series(ir, epochs=2)
        for snapshot in series[1:]:
            reparsed, errors = parse_dump_text(render_ir(snapshot), "TEST")
            assert not errors.issues
            assert reparsed.counts() == snapshot.counts()
