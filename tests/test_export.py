"""Tests for figure-data CSV export."""

import csv
import io

import pytest

from repro.core.parallel import verify_table
from repro.stats.export import (
    fig1_rows,
    fig2_rows,
    fig3_rows,
    fig4_rows,
    fig5_rows,
    fig6_rows,
    write_csv,
)


@pytest.fixture(scope="module")
def stats(tiny_ir, tiny_world, tiny_routes):
    return verify_table(tiny_ir, tiny_world.topology, tiny_routes[:4000])


class TestFigureRows:
    def test_fig1_monotone_ccdf(self, tiny_ir):
        rows = fig1_rows(tiny_ir)
        assert rows[0]["rules"] == 0 and rows[0]["ccdf_all"] == 1.0
        values = [row["ccdf_all"] for row in rows]
        assert values == sorted(values, reverse=True)
        for row in rows:
            assert row["ccdf_bgpq4"] <= row["ccdf_all"] + 1e-9

    def test_fig2_one_row_per_as(self, stats):
        rows = fig2_rows(stats)
        assert len(rows) == len(stats.per_as)
        for row in rows:
            total = sum(
                row[label]
                for label in ("verified", "skip", "unrecorded", "relaxed", "safelisted", "unverified")
            )
            assert total == pytest.approx(1.0, abs=1e-3)
        assert [row["x"] for row in rows] == list(range(len(rows)))
        # correctness-ordered: verified fraction non-increasing
        verified = [row["verified"] for row in rows]
        assert verified == sorted(verified, reverse=True)

    def test_fig3_directions(self, stats):
        rows = fig3_rows(stats)
        assert {row["direction"] for row in rows} == {"import", "export"}
        assert len(rows) == len(stats.per_pair)

    def test_fig4_series(self, stats):
        rows = fig4_rows(stats)
        series = {row["series"] for row in rows}
        assert series == {"hop_fraction", "statuses_per_route", "single_status_route"}
        hop_fractions = [r["value"] for r in rows if r["series"] == "hop_fraction"]
        assert sum(hop_fractions) == pytest.approx(1.0, abs=1e-6)

    def test_fig5_fig6_complete(self, stats):
        assert len(fig5_rows(stats)) == 4
        assert len(fig6_rows(stats)) == 6


class TestCsvWriter:
    def test_roundtrip(self, stats):
        buffer = io.StringIO()
        write_csv(fig5_rows(stats), buffer)
        buffer.seek(0)
        rows = list(csv.DictReader(buffer))
        assert len(rows) == 4
        assert set(rows[0]) == {"reason", "ases"}

    def test_to_file(self, stats, tmp_path):
        path = tmp_path / "fig6.csv"
        write_csv(fig6_rows(stats), path)
        assert path.read_text().startswith("case,ases")

    def test_union_of_keys(self):
        buffer = io.StringIO()
        write_csv([{"a": 1}, {"a": 2, "b": 3}], buffer)
        buffer.seek(0)
        rows = list(csv.DictReader(buffer))
        assert rows[0]["b"] == "" and rows[1]["b"] == "3"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            write_csv([], io.StringIO())
