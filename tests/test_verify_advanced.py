"""Advanced verifier scenarios: structured policies, sets in rules,
IPv6 end-to-end, cyclic definitions, and report details."""

import pytest

from repro.bgp.topology import AsRelationships
from repro.core.filter_match import FilterEvaluator, MatchContext, Val
from repro.core.query import QueryEngine
from repro.core.status import VerifyStatus
from repro.core.verify import Verifier, VerifyOptions
from repro.irr.dump import parse_dump_text
from repro.net.prefix import Prefix
from repro.rpsl.filter import parse_filter_text


def make_verifier(dump: str, rel_text: str, **options) -> Verifier:
    ir, _ = parse_dump_text(dump, "T")
    relationships = AsRelationships.from_as_rel_text(rel_text)
    return Verifier(ir, relationships, VerifyOptions(**options) if options else None)


def hop(verifier, direction, from_asn, to_asn, prefix, path):
    report = verifier.verify_route(prefix, tuple(path))
    for entry in report.hops:
        if (entry.direction, entry.from_asn, entry.to_asn) == (direction, from_asn, to_asn):
            return entry
    raise AssertionError(f"hop not found in\n{report}")


class TestPeeringSetsInRules:
    DUMP = """
aut-num: AS10
import:  from PRNG-UP accept ANY

peering-set: PRNG-UP
peering: AS20
peering: AS30
"""

    def test_peering_set_match(self):
        verifier = make_verifier(self.DUMP, "20|10|-1\n30|10|-1\n")
        for provider in (20, 30):
            result = hop(verifier, "import", provider, 10, "10.0.0.0/16", (10, provider))
            assert result.status is VerifyStatus.VERIFIED

    def test_peering_set_mismatch(self):
        verifier = make_verifier(self.DUMP, "20|10|-1\n40|10|-1\n")
        result = hop(verifier, "import", 40, 10, "10.0.0.0/16", (10, 40))
        assert result.status is not VerifyStatus.VERIFIED

    def test_unrecorded_peering_set(self):
        dump = "aut-num: AS10\nimport: from PRNG-GONE accept ANY\n"
        verifier = make_verifier(dump, "20|10|-1\n")
        result = hop(verifier, "import", 20, 10, "10.0.0.0/16", (10, 20))
        assert result.status is VerifyStatus.UNRECORDED


class TestStructuredVerification:
    def test_except_accepts_both_branches(self):
        dump = """
aut-num: AS10
import:  from AS20 accept {10.1.0.0/16} EXCEPT from AS20 accept {10.2.0.0/16}
"""
        verifier = make_verifier(dump, "20|10|-1\n")
        for prefix in ("10.1.0.0/16", "10.2.0.0/16"):
            result = hop(verifier, "import", 20, 10, prefix, (10, 20))
            assert result.status is VerifyStatus.VERIFIED, prefix
        result = hop(verifier, "import", 20, 10, "10.3.0.0/16", (10, 20))
        assert result.status is not VerifyStatus.VERIFIED

    def test_refine_requires_both(self):
        dump = """
aut-num: AS10
import:  from AS20 accept {10.0.0.0/8^+} REFINE from AS20 accept {10.1.0.0/16^+}
"""
        verifier = make_verifier(dump, "20|10|-1\n")
        ok = hop(verifier, "import", 20, 10, "10.1.5.0/24", (10, 20))
        assert ok.status is VerifyStatus.VERIFIED
        rejected = hop(verifier, "import", 20, 10, "10.2.0.0/16", (10, 20))
        assert rejected.status is not VerifyStatus.VERIFIED

    def test_refine_afi_scoping(self):
        # v6 routes are constrained only by the first term.
        dump = """
aut-num:   AS10
mp-import: afi any.unicast from AS20 accept ANY REFINE afi ipv4.unicast from AS20 accept {10.0.0.0/8^+}
"""
        verifier = make_verifier(dump, "20|10|-1\n")
        v6 = hop(verifier, "import", 20, 10, "2001:db8::/32", (10, 20))
        assert v6.status is VerifyStatus.VERIFIED
        v4_in = hop(verifier, "import", 20, 10, "10.1.0.0/16", (10, 20))
        assert v4_in.status is VerifyStatus.VERIFIED
        v4_out = hop(verifier, "import", 20, 10, "192.0.2.0/24", (10, 20))
        assert v4_out.status is not VerifyStatus.VERIFIED

    def test_braced_multi_factor_term(self):
        dump = """
aut-num: AS10
import:  { from AS20 accept {10.1.0.0/16}; from AS30 accept {10.2.0.0/16}; }
"""
        verifier = make_verifier(dump, "20|10|-1\n30|10|-1\n")
        ok = hop(verifier, "import", 20, 10, "10.1.0.0/16", (10, 20))
        assert ok.status is VerifyStatus.VERIFIED
        # the factor for AS30 does not license AS20 announcements
        cross = hop(verifier, "import", 20, 10, "10.2.0.0/16", (10, 20))
        assert cross.status is not VerifyStatus.VERIFIED


class TestIpv6EndToEnd:
    DUMP = """
aut-num:   AS10
mp-import: afi ipv6.unicast from AS20 accept AS20

aut-num:   AS20
mp-export: afi ipv6.unicast to AS10 announce AS20

route6:    2001:db8::/32
origin:    AS20
"""

    def test_route6_verification(self):
        verifier = make_verifier(self.DUMP, "10|20|-1\n")
        report = verifier.verify_route("2001:db8::/32", (10, 20))
        assert [h.status for h in report.hops] == [
            VerifyStatus.VERIFIED, VerifyStatus.VERIFIED
        ]

    def test_v4_route_does_not_match_v6_rules(self):
        verifier = make_verifier(self.DUMP, "10|20|-1\n")
        report = verifier.verify_route("10.0.0.0/16", (10, 20))
        assert all(h.status is not VerifyStatus.VERIFIED for h in report.hops)


class TestCyclicDefinitions:
    def test_cyclic_filter_sets_terminate(self):
        dump = """
filter-set: FLTR-A
filter:     FLTR-B OR AS1

filter-set: FLTR-B
filter:     FLTR-A

route:      10.1.0.0/16
origin:     AS1
"""
        ir, _ = parse_dump_text(dump, "T")
        evaluator = FilterEvaluator(QueryEngine(ir))
        ctx = MatchContext(Prefix.parse("10.1.0.0/16"), (1,), 1, 9)
        outcome = evaluator.evaluate(parse_filter_text("FLTR-A"), ctx)
        assert outcome.value is Val.TRUE  # via the AS1 arm
        miss = MatchContext(Prefix.parse("10.9.0.0/16"), (1,), 1, 9)
        outcome = evaluator.evaluate(parse_filter_text("FLTR-A"), miss)
        assert outcome.value in (Val.FALSE, Val.UNREC)

    def test_self_referential_filter_set(self):
        dump = "filter-set: FLTR-A\nfilter: FLTR-A\n"
        ir, _ = parse_dump_text(dump, "T")
        evaluator = FilterEvaluator(QueryEngine(ir))
        ctx = MatchContext(Prefix.parse("10.1.0.0/16"), (1,), 1, 9)
        assert evaluator.evaluate(parse_filter_text("FLTR-A"), ctx).value is Val.UNREC


class TestReportDetails:
    def test_items_capped(self):
        rules = "".join(f"import: from AS{n} accept ANY\n" for n in range(100, 140))
        dump = f"aut-num: AS10\n{rules}"
        verifier = make_verifier(dump, "")
        result = hop(verifier, "import", 999, 10, "10.0.0.0/16", (10, 999))
        assert result.status is VerifyStatus.UNVERIFIED
        assert len(result.items) <= 12

    def test_peeras_filter_in_import(self):
        dump = """
aut-num: AS10
import:  from AS20 accept PeerAS

route:   10.2.0.0/16
origin:  AS20
"""
        verifier = make_verifier(dump, "")
        ok = hop(verifier, "import", 20, 10, "10.2.0.0/16", (10, 20))
        assert ok.status is VerifyStatus.VERIFIED
        # a route originated deeper does not match PeerAS
        deep = hop(verifier, "import", 20, 10, "10.9.0.0/16", (10, 20, 30))
        assert deep.status is not VerifyStatus.VERIFIED

    def test_multiple_matching_rules_best_wins(self):
        dump = """
aut-num: AS10
import:  from AS20 accept {192.0.2.0/24}
import:  from AS20 accept ANY
"""
        verifier = make_verifier(dump, "")
        result = hop(verifier, "import", 20, 10, "10.0.0.0/16", (10, 20))
        assert result.status is VerifyStatus.VERIFIED

    def test_hop_cache_consistency_across_directions(self):
        dump = """
aut-num: AS10
import:  from AS20 accept ANY
export:  to AS20 announce ANY
"""
        verifier = make_verifier(dump, "")
        first = verifier.verify_route("10.0.0.0/16", (20, 10))
        second = verifier.verify_route("10.0.0.0/16", (20, 10))
        assert [str(h) for h in first.hops] == [str(h) for h in second.hops]
        assert verifier.hop_cache_hits >= 2
