"""Tests for peering evaluation against remote ASNs."""

import pytest

from repro.core.filter_match import Val
from repro.core.peering_match import PeeringEvaluator
from repro.core.query import QueryEngine
from repro.core.report import ItemKind
from repro.irr.dump import parse_dump_text
from repro.rpsl.peering import parse_peering_text

DUMP = """
as-set:  AS-PEERS
members: AS10, AS11

peering-set: PRNG-GROUP
peering:     AS20
peering:     AS21 192.0.2.1

peering-set: PRNG-NESTED
peering:     PRNG-GROUP
peering:     AS22

peering-set: PRNG-SELF
peering:     PRNG-SELF
"""


@pytest.fixture(scope="module")
def evaluator():
    ir, _ = parse_dump_text(DUMP, "TEST")
    return PeeringEvaluator(QueryEngine(ir))


def evaluate(evaluator, text: str, remote: int):
    return evaluator.evaluate(parse_peering_text(text), remote)


class TestPeeringEvaluation:
    def test_single_asn(self, evaluator):
        assert evaluate(evaluator, "AS5", 5).value is Val.TRUE
        result = evaluate(evaluator, "AS5", 6)
        assert result.value is Val.FALSE
        assert result.items[0] .kind is ItemKind.MATCH_REMOTE_AS_NUM
        assert result.items[0].asn == 5

    def test_as_any(self, evaluator):
        assert evaluate(evaluator, "AS-ANY", 12345).value is Val.TRUE

    def test_as_set_membership(self, evaluator):
        assert evaluate(evaluator, "AS-PEERS", 10).value is Val.TRUE
        result = evaluate(evaluator, "AS-PEERS", 12)
        assert result.value is Val.FALSE
        assert result.items[0].kind is ItemKind.MATCH_REMOTE_AS_SET

    def test_unrecorded_as_set(self, evaluator):
        result = evaluate(evaluator, "AS-MISSING", 10)
        assert result.value is Val.UNREC
        assert result.items[0].kind is ItemKind.UNRECORDED_AS_SET

    def test_or(self, evaluator):
        assert evaluate(evaluator, "AS1 OR AS2", 2).value is Val.TRUE
        assert evaluate(evaluator, "AS1 OR AS2", 3).value is Val.FALSE

    def test_and(self, evaluator):
        assert evaluate(evaluator, "AS10 AND AS-PEERS", 10).value is Val.TRUE
        assert evaluate(evaluator, "AS10 AND AS-PEERS", 11).value is Val.FALSE

    def test_except(self, evaluator):
        text = "AS-ANY EXCEPT AS-PEERS"
        assert evaluate(evaluator, text, 12).value is Val.TRUE
        assert evaluate(evaluator, text, 10).value is Val.FALSE

    def test_peering_set_resolution(self, evaluator):
        assert evaluate(evaluator, "PRNG-GROUP", 20).value is Val.TRUE
        assert evaluate(evaluator, "PRNG-GROUP", 21).value is Val.TRUE
        assert evaluate(evaluator, "PRNG-GROUP", 23).value is Val.FALSE

    def test_nested_peering_set(self, evaluator):
        assert evaluate(evaluator, "PRNG-NESTED", 20).value is Val.TRUE
        assert evaluate(evaluator, "PRNG-NESTED", 22).value is Val.TRUE

    def test_unrecorded_peering_set(self, evaluator):
        result = evaluate(evaluator, "PRNG-MISSING", 20)
        assert result.value is Val.UNREC
        assert result.items[0].kind is ItemKind.UNRECORDED_PEERING_SET

    def test_self_referential_peering_set_terminates(self, evaluator):
        result = evaluate(evaluator, "PRNG-SELF", 20)
        assert result.value in (Val.FALSE, Val.UNREC)

    def test_router_expressions_ignored(self, evaluator):
        assert evaluate(evaluator, "AS5 192.0.2.1 at 192.0.2.2", 5).value is Val.TRUE
