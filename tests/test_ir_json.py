"""Tests for IR JSON export/import and the generic serializer."""

import dataclasses
import json

import pytest

from repro.ir import serialize
from repro.ir.json_io import dumps_ir, ir_from_jsonable, ir_to_jsonable, loads_ir
from repro.irr.dump import parse_dump_text

SAMPLE_DUMP = """
aut-num:    AS1
as-name:    ONE
import:     from AS2 action pref=10; accept AS-TWO^+ AND NOT {0.0.0.0/0}
export:     to AS2 announce AS1
mp-import:  afi ipv6.unicast from AS2 accept <^AS2+ AS3$>
import:     from AS4 accept broken syntax here AND

as-set:     AS-TWO
members:    AS2, AS3, AS-NESTED
mbrs-by-ref: ANY

route-set:  RS-X
members:    10.0.0.0/8^16-24, RS-Y^+, AS-TWO, AS5

route:      10.1.0.0/16
origin:     AS1
member-of:  RS-X
mnt-by:     MNT-ONE

route6:     2001:db8::/32
origin:     AS1

peering-set: PRNG-P
peering:    AS1 192.0.2.1 at 192.0.2.2

filter-set: FLTR-F
filter:     AS1 OR <^AS1 .* $> OR community(65535:666)
"""


@pytest.fixture(scope="module")
def sample_ir():
    ir, _ = parse_dump_text(SAMPLE_DUMP, "TEST")
    return ir


class TestJsonRoundTrip:
    def test_full_ir_roundtrip(self, sample_ir):
        text = dumps_ir(sample_ir)
        restored = loads_ir(text)
        assert restored.counts() == sample_ir.counts()
        # Deep equality of one aut-num including its parsed rule ASTs.
        original = sample_ir.aut_nums[1]
        loaded = restored.aut_nums[1]
        assert loaded.imports == original.imports
        assert loaded.exports == original.exports
        assert dataclasses.asdict(loaded.imports[0]) == dataclasses.asdict(
            original.imports[0]
        )

    def test_route_objects_roundtrip(self, sample_ir):
        restored = loads_ir(dumps_ir(sample_ir))
        assert [
            (str(route.prefix), route.origin, route.member_of)
            for route in restored.route_objects
        ] == [
            (str(route.prefix), route.origin, route.member_of)
            for route in sample_ir.route_objects
        ]

    def test_sets_roundtrip(self, sample_ir):
        restored = loads_ir(dumps_ir(sample_ir))
        assert restored.as_sets["AS-TWO"].members_asn == [2, 3]
        assert restored.route_sets["RS-X"].name_members == sample_ir.route_sets[
            "RS-X"
        ].name_members
        assert restored.peering_sets["PRNG-P"].peerings == sample_ir.peering_sets[
            "PRNG-P"
        ].peerings
        assert restored.filter_sets["FLTR-F"].filter == sample_ir.filter_sets[
            "FLTR-F"
        ].filter

    def test_bad_rules_preserved(self, sample_ir):
        restored = loads_ir(dumps_ir(sample_ir))
        assert len(restored.aut_nums[1].bad_rules) == 1

    def test_json_is_valid_json(self, sample_ir):
        json.loads(dumps_ir(sample_ir))

    def test_format_header_checked(self, sample_ir):
        data = ir_to_jsonable(sample_ir)
        data["format"] = "other"
        with pytest.raises(ValueError):
            ir_from_jsonable(data)

    def test_version_checked(self, sample_ir):
        data = ir_to_jsonable(sample_ir)
        data["version"] = 999
        with pytest.raises(ValueError):
            ir_from_jsonable(data)

    def test_stability(self, sample_ir):
        once = dumps_ir(sample_ir)
        assert dumps_ir(loads_ir(once)) == once


class TestGenericSerializer:
    def test_primitives_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert serialize.decode(serialize.encode(value)) == value

    def test_int_key_dict(self):
        data = {1: "a", 2: "b"}
        assert serialize.decode(serialize.encode(data)) == data

    def test_str_key_dict(self):
        data = {"x": [1, 2], "y": None}
        assert serialize.decode(serialize.encode(data)) == data

    def test_unregistered_dataclass_raises(self):
        @dataclasses.dataclass
        class Unregistered:
            x: int = 1

        with pytest.raises(TypeError):
            serialize.encode(Unregistered())

    def test_unknown_type_tag_raises(self):
        with pytest.raises(TypeError):
            serialize.decode({"__t": "NoSuchClass"})

    def test_tuple_fields_restored_as_tuples(self, sample_ir):
        restored = loads_ir(dumps_ir(sample_ir))
        rule = restored.aut_nums[1].imports[0]
        assert isinstance(rule.afis, tuple)
        factor = rule.expr.factors[0]
        assert isinstance(factor.peerings, tuple)
        assert hash(factor)  # frozen dataclasses stay hashable
