"""Differential tests for incremental index patching.

The contract under test: for any journal, ``patch_index`` must produce an
index that answers every query exactly like a from-scratch
``compile_index`` over the patched IR — structurally (byref tables, trie
contents) and behaviorally (verdict bit-identity under serial, parallel,
and fault-injected execution).  DEL-heavy journals drive the hash-plane
tombstone/rebuild machinery through the same oracle.
"""

from __future__ import annotations

import random

import pytest

from repro import api
from repro.bgp.routegen import collector_routes
from repro.chaos.faults import KillWorkerChunk
from repro.core.compiled import compile_index, ir_digest, patch_index
from repro.core.prefixtrie import RouteTrieBuilder
from repro.irr.history import ChurnConfig, evolve_with_journal
from repro.irr.journal import Journal, JournalEntry, apply_journal_to_ir
from repro.net.prefix import Prefix


@pytest.fixture(scope="module")
def seed_ir(tiny_world):
    return tiny_world.merged_ir()


def _exact_map(trie) -> dict:
    return {key: origins for key, origins in trie.iter_exact()}


def _assert_equivalent(patched, fresh) -> None:
    """Structural equivalence between a patched and a fresh index."""
    assert _exact_map(patched.route_trie) == _exact_map(fresh.route_trie)
    assert patched.as_set_byref == fresh.as_set_byref
    assert {k: tuple(v) for k, v in patched.route_set_byref.items()} == {
        k: tuple(v) for k, v in fresh.route_set_byref.items()
    }
    # Fresh caches are re-resolved from scratch; every entry must agree
    # with the patched index's cache (the patched cache may hold extra
    # stale-but-correct entries for names nothing references any more).
    for name, resolution in fresh.as_sets.items():
        assert patched.as_sets[name] == resolution, name
    assert set(fresh.peering_sets) <= set(patched.peering_sets)


class TestTriePointOps:
    def _pairs(self, count: int, rng: random.Random) -> list:
        pairs = set()
        while len(pairs) < count:
            network = rng.randrange(0, 1 << 20) << 12
            length = rng.randrange(12, 25)
            origin = rng.randrange(1, 500)
            pairs.add((Prefix(4, network, length), origin))
        return sorted(pairs, key=lambda p: (p[0].network, p[0].length, p[1]))

    def _oracle(self, live: set):
        builder = RouteTrieBuilder()
        for prefix, origin in live:
            builder.add(prefix, origin)
        return builder.build()

    def test_differential_against_rebuilt_oracle(self):
        """Random insert/remove churn must match a from-scratch build."""
        rng = random.Random(1234)
        pairs = self._pairs(300, rng)
        builder = RouteTrieBuilder()
        live = set(pairs[:150])
        for prefix, origin in live:
            builder.add(prefix, origin)
        trie = builder.build().thaw()
        for step in range(400):
            prefix, origin = rng.choice(pairs)
            if (prefix, origin) in live:
                assert trie.remove_route(prefix, origin)
                live.discard((prefix, origin))
            else:
                assert trie.insert_route(prefix, origin)
                live.add((prefix, origin))
            if step % 100 == 99:
                assert _exact_map(trie) == _exact_map(self._oracle(live))
        assert _exact_map(trie) == _exact_map(self._oracle(live))

    def test_delete_heavy_churn_triggers_rebuild(self):
        """Tombstone pile-up forces plane rebuilds; answers stay exact."""
        rng = random.Random(7)
        pairs = self._pairs(400, rng)
        builder = RouteTrieBuilder()
        for prefix, origin in pairs:
            builder.add(prefix, origin)
        trie = builder.build().thaw()
        survivors = set(pairs)
        for prefix, origin in pairs[:360]:  # delete 90%
            assert trie.remove_route(prefix, origin)
            survivors.discard((prefix, origin))
        assert _exact_map(trie) == _exact_map(self._oracle(survivors))
        # Matching still works after the rebuild, not just enumeration.
        prefix, origin = next(iter(survivors))
        from repro.net.prefix import RangeOp, RangeOpKind

        op = RangeOp(kind=RangeOpKind.NONE, low=0, high=0)
        assert trie.match_origin(origin, 4, prefix.network, prefix.length, op)

    def test_point_ops_are_idempotent(self):
        builder = RouteTrieBuilder()
        prefix = Prefix(4, 10 << 24, 16)
        builder.add(prefix, 64500)
        trie = builder.build().thaw()
        assert not trie.insert_route(prefix, 64500)  # already present
        assert trie.insert_route(prefix, 64501)
        assert trie.remove_route(prefix, 64501)
        assert not trie.remove_route(prefix, 64501)  # already gone
        assert not trie.remove_route(Prefix(4, 11 << 24, 16), 64500)

    def test_thaw_leaves_the_original_untouched(self):
        builder = RouteTrieBuilder()
        prefix = Prefix(4, 10 << 24, 16)
        builder.add(prefix, 64500)
        original = builder.build()
        before = _exact_map(original)
        thawed = original.thaw()
        thawed.insert_route(Prefix(4, 12 << 24, 20), 64999)
        assert _exact_map(original) == before
        assert len(_exact_map(thawed)) == len(before) + 1


class TestPatchIndex:
    def test_chained_epochs_match_fresh_compiles(self, seed_ir):
        ir = seed_ir
        index = compile_index(ir, digest=ir_digest(ir))
        serial = 1
        for epoch in range(3):
            evolved, journal = evolve_with_journal(
                ir, ChurnConfig(seed=31), epoch=epoch, start_serial=serial
            )
            new_ir, report = apply_journal_to_ir(ir, journal)
            assert not report
            patched = patch_index(index, ir, new_ir, journal)
            fresh = compile_index(new_ir, digest=ir_digest(new_ir))
            _assert_equivalent(patched, fresh)
            assert patched.generation == epoch + 1
            for source, last in journal.serials().items():
                assert patched.serials[source] == last
            ir, index = new_ir, patched
            serial = max(journal.serials().values(), default=serial) + 1

    def test_digest_chains_deterministically(self, seed_ir):
        index = compile_index(seed_ir, digest=ir_digest(seed_ir))
        _, journal = evolve_with_journal(seed_ir, ChurnConfig(seed=31))
        new_ir, _ = apply_journal_to_ir(seed_ir, journal)
        once = patch_index(index, seed_ir, new_ir, journal)
        twice = patch_index(index, seed_ir, new_ir, journal)
        assert once.digest == twice.digest
        assert once.digest != index.digest

    def test_non_canonical_key_spellings_patch_correctly(self, seed_ir):
        """Regression: journal keys with host bits set are valid
        (Prefix.parse masks them) and replay cleanly, so the fast path
        runs — the trie mutations must match them to the canonical
        route instead of silently deleting / failing to insert it."""
        import ipaddress

        from repro.ir.model import RouteObject

        def _host_bit_spelling(prefix: Prefix) -> str:
            return f"{ipaddress.ip_address(prefix.network + 1)}/{prefix.length}"

        route = next(
            r
            for r in seed_ir.route_objects
            if r.prefix.version == 4 and r.prefix.length < 31
        )
        added = RouteObject(
            prefix=Prefix.parse("198.51.100.0/24"),
            origin=route.origin,
            source=route.source,
        )
        assert not any(
            r.prefix == added.prefix and r.origin == added.origin
            for r in seed_ir.route_objects
        )
        source = route.source or ""
        journal = Journal(
            entries=[
                JournalEntry(
                    serial=1,
                    action="MOD",
                    cls="route",
                    key=(_host_bit_spelling(route.prefix), route.origin, route.source),
                    obj=route,
                    source=source,
                ),
                JournalEntry(
                    serial=2,
                    action="ADD",
                    cls="route",
                    key=(_host_bit_spelling(added.prefix), added.origin, added.source),
                    obj=added,
                    source=source,
                ),
            ]
        )
        new_ir, report = apply_journal_to_ir(seed_ir, journal)
        assert not report  # valid spellings replay cleanly: fast path runs
        index = compile_index(seed_ir, digest=ir_digest(seed_ir))
        patched = patch_index(index, seed_ir, new_ir, journal)
        fresh = compile_index(new_ir, digest=ir_digest(new_ir))
        _assert_equivalent(patched, fresh)

    def test_unpatchable_key_raises_loudly(self, seed_ir):
        """A key patch_index cannot parse must raise, never guess —
        callers reach this path only with a clean replay report."""
        index = compile_index(seed_ir, digest=ir_digest(seed_ir))
        bogus = Journal(
            entries=[
                JournalEntry(
                    serial=1,
                    action="DEL",
                    cls="route",
                    key=("not-a-prefix/xx", 64500, ""),
                    source="",
                )
            ]
        )
        with pytest.raises(ValueError):
            patch_index(index, seed_ir, seed_ir, bogus)

    def test_del_heavy_journal_matches_fresh_compile(self, seed_ir):
        """Deleting most of the table exercises plane rebuilds inside
        patch_index's trie path; equivalence must survive them."""
        rng = random.Random(99)
        doomed = rng.sample(
            seed_ir.route_objects, int(len(seed_ir.route_objects) * 0.8)
        )
        serials: dict[str, int] = {}
        entries = []
        seen = set()
        for route in doomed:
            key = (str(route.prefix), route.origin, route.source)
            if key in seen:
                continue
            seen.add(key)
            source = route.source or ""
            serials[source] = serials.get(source, 0) + 1
            entries.append(
                JournalEntry(
                    serial=serials[source],
                    action="DEL",
                    cls="route",
                    key=key,
                    source=source,
                )
            )
        journal = Journal(entries=entries)
        new_ir, report = apply_journal_to_ir(seed_ir, journal)
        assert not report
        index = compile_index(seed_ir, digest=ir_digest(seed_ir))
        patched = patch_index(index, seed_ir, new_ir, journal)
        fresh = compile_index(new_ir, digest=ir_digest(new_ir))
        _assert_equivalent(patched, fresh)


class TestVerdictIdentity:
    @pytest.fixture(scope="class")
    def evolved_state(self, tiny_world, seed_ir):
        """A patched session and a from-scratch session over the same IR."""
        session = api.open_session(
            seed_ir, as_rel=tiny_world.topology, use_cache=False
        )
        serial = 1
        for epoch in range(2):
            _, journal = evolve_with_journal(
                session.ir, ChurnConfig(seed=67), epoch=epoch, start_serial=serial
            )
            report = session.apply_deltas(journal)
            assert not report
            serial = max(journal.serials().values(), default=serial) + 1
        fresh = api.open_session(
            session.ir, as_rel=tiny_world.topology, use_cache=False
        )
        yield session, fresh
        fresh.close()
        session.close()

    @pytest.fixture(scope="class")
    def table(self, tiny_world):
        return list(
            collector_routes(
                tiny_world.topology, tiny_world.announced, tiny_world.collectors
            )
        )[:300]

    @staticmethod
    def _summary(stats):
        return (
            stats.routes_total,
            dict(stats.hop_totals),
            dict(stats.route_single_status),
            dict(stats.first_hop_statuses),
            stats.unverified_hops,
        )

    def test_serial_table_identity(self, evolved_state, table):
        patched, fresh = evolved_state
        assert self._summary(
            patched.verify_table(table, processes=1)
        ) == self._summary(fresh.verify_table(table, processes=1))

    def test_parallel_table_identity(self, evolved_state, table):
        patched, fresh = evolved_state
        assert self._summary(
            patched.verify_table(table, processes=2, chunk_size=50)
        ) == self._summary(fresh.verify_table(table, processes=1))

    def test_identity_under_worker_kill(self, evolved_state, table):
        """A killed worker chunk re-runs serially; verdicts stay identical."""
        patched, fresh = evolved_state
        stats = patched.verify_table(
            table,
            processes=2,
            chunk_size=50,
            fault_hook=KillWorkerChunk(chunk_index=1),
        )
        assert self._summary(stats) == self._summary(
            fresh.verify_table(table, processes=1)
        )

    def test_per_route_report_identity(self, evolved_state, table):
        patched, fresh = evolved_state
        for entry in table[:60]:
            left = patched.verify_route(
                str(entry.prefix), entry.as_path, collector="diff"
            )
            right = fresh.verify_route(
                str(entry.prefix), entry.as_path, collector="diff"
            )
            assert str(left) == str(right)
