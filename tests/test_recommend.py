"""Tests for the route-set migration advisor."""

import pytest

from repro.bgp.topology import AsRelationships
from repro.core.status import VerifyStatus
from repro.core.verify import Verifier, VerifyOptions
from repro.irr.dump import parse_dump_text
from repro.tools.recommend import apply_recommendation, recommend_route_set

DUMP = """
aut-num: AS10
import:  from AS99 accept ANY
export:  to AS99 announce AS10
import:  from AS20 accept AS20
export:  to AS20 announce ANY
mnt-by:  MNT-TEN

aut-num: AS20
import:  from AS10 accept ANY
export:  to AS10 announce AS20

route:   10.10.0.0/16
origin:  AS10

route:   10.20.0.0/16
origin:  AS20

aut-num: AS99
import:  from AS10 accept AS10:RS-EXPORT
export:  to AS10 announce ANY
"""

AS_REL = "99|10|-1\n10|20|-1\n"


@pytest.fixture()
def ir():
    parsed, errors = parse_dump_text(DUMP, "RIPE")
    assert not errors.issues
    return parsed


class TestRecommendation:
    def test_detects_export_self(self, ir):
        relationships = AsRelationships.from_as_rel_text(AS_REL)
        recommendation = recommend_route_set(ir, 10, relationships=relationships)
        assert recommendation is not None
        assert recommendation.route_set.name == "AS10:RS-EXPORT"
        # the cone's prefixes: AS10's own plus customer AS20's
        assert {str(prefix) for prefix in recommendation.prefixes} == {
            "10.10.0.0/16", "10.20.0.0/16",
        }
        assert len(recommendation.old_rules) == 1
        assert "AS10:RS-EXPORT" in recommendation.new_rules[0].to_rpsl()

    def test_rpsl_text_parses(self, ir):
        recommendation = recommend_route_set(ir, 10)
        reparsed, errors = parse_dump_text(recommendation.rpsl, "RIPE")
        assert not errors.issues
        assert "AS10:RS-EXPORT" in reparsed.route_sets

    def test_summary_mentions_rewrite(self, ir):
        summary = recommend_route_set(ir, 10).summary()
        assert "- export:" in summary and "+ export:" in summary

    def test_not_applicable_cases(self, ir):
        assert recommend_route_set(ir, 12345) is None  # no aut-num
        assert recommend_route_set(ir, 20) is None or recommend_route_set(ir, 20)
        # AS99 announces ANY only: nothing to rewrite
        dump = "aut-num: AS7\nexport: to AS8 announce ANY\n"
        lone, _ = parse_dump_text(dump, "T")
        assert recommend_route_set(lone, 7) is None

    def test_no_prefixes_no_recommendation(self):
        dump = "aut-num: AS7\nexport: to AS8 announce AS7\n"
        lone, _ = parse_dump_text(dump, "T")
        assert recommend_route_set(lone, 7) is None


class TestMigrationEffect:
    def test_export_self_becomes_verified(self, ir):
        relationships = AsRelationships.from_as_rel_text(AS_REL)
        strict = VerifyOptions(relaxations=False, safelists=False)

        before = Verifier(ir, relationships, strict)
        hop = next(
            h
            for h in before.verify_route("10.20.0.0/16", (99, 10, 20)).hops
            if h.direction == "export" and h.from_asn == 10
        )
        # "announce AS10" does not cover the customer route: unverified.
        assert hop.status is VerifyStatus.UNVERIFIED

        recommendation = recommend_route_set(ir, 10, relationships=relationships)
        apply_recommendation(ir, recommendation)

        after = Verifier(ir, relationships, strict)
        hop = next(
            h
            for h in after.verify_route("10.20.0.0/16", (99, 10, 20)).hops
            if h.direction == "export" and h.from_asn == 10
        )
        assert hop.status is VerifyStatus.VERIFIED

    def test_provider_side_verifies_too(self, ir):
        # AS99 already imports AS10:RS-EXPORT; once defined, it verifies.
        relationships = AsRelationships.from_as_rel_text(AS_REL)
        recommendation = recommend_route_set(ir, 10, relationships=relationships)
        apply_recommendation(ir, recommendation)
        verifier = Verifier(ir, relationships)
        hop = next(
            h
            for h in verifier.verify_route("10.20.0.0/16", (99, 10, 20)).hops
            if h.direction == "import" and h.to_asn == 99
        )
        assert hop.status is VerifyStatus.VERIFIED

    def test_old_rules_removed(self, ir):
        recommendation = recommend_route_set(ir, 10)
        apply_recommendation(ir, recommendation)
        rendered = [rule.to_rpsl() for rule in ir.aut_nums[10].exports]
        assert "to AS99 announce AS10" not in rendered
        assert any("AS10:RS-EXPORT" in text for text in rendered)
        # untouched rules stay
        assert "to AS20 announce ANY" in rendered
