"""Tests for ASN parsing and address-family specifiers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.afi import Afi, AfiError, AfiFamily, AfiSafi
from repro.net.asn import (
    ASN_MAX,
    AsnError,
    format_asn,
    is_private_asn,
    is_reserved_asn,
    parse_asn,
)


class TestAsn:
    def test_parse_basic(self):
        assert parse_asn("AS174") == 174

    def test_parse_case_insensitive(self):
        assert parse_asn("as174") == 174
        assert parse_asn("As174") == 174

    def test_parse_strips_whitespace(self):
        assert parse_asn("  AS42  ") == 42

    def test_parse_32bit(self):
        assert parse_asn("AS4200000000") == 4200000000

    @pytest.mark.parametrize("bad", ["", "174", "ASX", "AS-FOO", "AS 174", "AS99999999999"])
    def test_parse_invalid(self, bad):
        with pytest.raises(AsnError):
            parse_asn(bad)

    def test_format(self):
        assert format_asn(174) == "AS174"
        with pytest.raises(AsnError):
            format_asn(-1)
        with pytest.raises(AsnError):
            format_asn(ASN_MAX + 1)

    def test_private_ranges(self):
        assert is_private_asn(64512)
        assert is_private_asn(4200000000)
        assert not is_private_asn(174)

    def test_reserved(self):
        assert is_reserved_asn(0)
        assert is_reserved_asn(23456)
        assert not is_reserved_asn(174)

    @given(st.integers(min_value=0, max_value=ASN_MAX))
    def test_roundtrip(self, asn):
        assert parse_asn(format_asn(asn)) == asn


class TestAfi:
    def test_parse_families(self):
        assert Afi.parse("ipv4") == Afi(AfiFamily.IPV4, AfiSafi.ANY)
        assert Afi.parse("ipv6.unicast") == Afi(AfiFamily.IPV6, AfiSafi.UNICAST)
        assert Afi.parse("any.unicast") == Afi(AfiFamily.ANY, AfiSafi.UNICAST)
        assert Afi.parse("ANY") == Afi()

    @pytest.mark.parametrize("bad", ["", "ipv5", "ipv4.anycast", "x.y"])
    def test_parse_invalid(self, bad):
        with pytest.raises(AfiError):
            Afi.parse(bad)

    def test_matches_version(self):
        assert Afi.parse("ipv4.unicast").matches_version(4)
        assert not Afi.parse("ipv4.unicast").matches_version(6)
        assert Afi.parse("any.unicast").matches_version(6)
        assert Afi.parse("any").matches_version(4)

    def test_multicast_never_matches_table_routes(self):
        assert not Afi.parse("ipv4.multicast").matches_version(4)
        assert not Afi.parse("any.multicast").matches_version(6)

    def test_str_roundtrip(self):
        for text in ("any", "ipv4", "ipv6.unicast", "any.multicast"):
            assert str(Afi.parse(text)) == text

    def test_implicit_default(self):
        assert Afi.IPV4_UNICAST.matches_version(4)
        assert not Afi.IPV4_UNICAST.matches_version(6)
