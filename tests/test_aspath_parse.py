"""Tests for the AS-path regex parser and unparser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rpsl.aspath import (
    ReAlt,
    ReAsn,
    ReAsnRange,
    ReAsSet,
    ReBegin,
    ReCharSet,
    ReEnd,
    RePeerAs,
    ReRepeat,
    ReSeq,
    ReWildcard,
    parse_as_path_regex,
    regex_flags,
)
from repro.rpsl.errors import RpslSyntaxError


class TestAtoms:
    def test_asn(self):
        assert parse_as_path_regex("AS6327") == ReAsn(6327)

    def test_delimiters_optional(self):
        assert parse_as_path_regex("<AS6327>") == ReAsn(6327)

    def test_as_set(self):
        assert parse_as_path_regex("AS-IKS") == ReAsSet("AS-IKS")

    def test_hierarchical_as_set(self):
        assert parse_as_path_regex("AS1:AS-CUST") == ReAsSet("AS1:AS-CUST")

    def test_peeras(self):
        assert parse_as_path_regex("PeerAS") == RePeerAs()

    def test_wildcard(self):
        assert parse_as_path_regex(".") == ReWildcard()

    def test_asn_range(self):
        assert parse_as_path_regex("AS10-AS20") == ReAsnRange(10, 20)

    def test_inverted_range_raises(self):
        with pytest.raises(RpslSyntaxError):
            parse_as_path_regex("AS20-AS10")

    def test_unknown_atom_raises(self):
        with pytest.raises(RpslSyntaxError):
            parse_as_path_regex("BANANA")


class TestStructure:
    def test_anchored_sequence(self):
        node = parse_as_path_regex("<^AS13911 AS6327+$>")
        assert node == ReSeq(
            (ReBegin(), ReAsn(13911), ReRepeat(ReAsn(6327), 1, None), ReEnd())
        )

    def test_alternation(self):
        node = parse_as_path_regex("AS1 | AS2 | AS3")
        assert node == ReAlt((ReAsn(1), ReAsn(2), ReAsn(3)))

    def test_group_with_postfix(self):
        node = parse_as_path_regex("(AS1 AS2)*")
        assert node == ReRepeat(ReSeq((ReAsn(1), ReAsn(2))), 0, None)

    def test_char_set(self):
        node = parse_as_path_regex("[AS1 AS2 AS-X]")
        assert node == ReCharSet((ReAsn(1), ReAsn(2), ReAsSet("AS-X")))

    def test_complemented_char_set(self):
        node = parse_as_path_regex("[^AS1]")
        assert node == ReCharSet((ReAsn(1),), complemented=True)

    def test_char_set_with_postfix(self):
        node = parse_as_path_regex("[AS1 AS2]+")
        assert isinstance(node, ReRepeat) and node.low == 1

    def test_bounds(self):
        assert parse_as_path_regex("AS1{3}") == ReRepeat(ReAsn(1), 3, 3)
        assert parse_as_path_regex("AS1{2,5}") == ReRepeat(ReAsn(1), 2, 5)
        assert parse_as_path_regex("AS1{2,}") == ReRepeat(ReAsn(1), 2, None)

    def test_optional(self):
        assert parse_as_path_regex("AS1?") == ReRepeat(ReAsn(1), 0, 1)

    def test_same_pattern_ops(self):
        node = parse_as_path_regex("AS-X~+")
        assert node == ReRepeat(ReAsSet("AS-X"), 1, None, same_pattern=True)
        node = parse_as_path_regex(".~*")
        assert node == ReRepeat(ReWildcard(), 0, None, same_pattern=True)

    def test_unbalanced_paren_raises(self):
        with pytest.raises(RpslSyntaxError):
            parse_as_path_regex("(AS1")

    def test_unterminated_set_raises(self):
        with pytest.raises(RpslSyntaxError):
            parse_as_path_regex("[AS1")

    def test_bad_bound_raises(self):
        with pytest.raises(RpslSyntaxError):
            parse_as_path_regex("AS1{5,2}")


class TestFlags:
    def test_plain_regex_no_flags(self):
        assert regex_flags(parse_as_path_regex("<^AS1 .* $>")) == (False, False)

    def test_range_flag(self):
        assert regex_flags(parse_as_path_regex("<AS64512-AS65534>"))[0] is True

    def test_same_pattern_flag(self):
        assert regex_flags(parse_as_path_regex("<AS1~+>"))[1] is True

    def test_nested_flags_found(self):
        node = parse_as_path_regex("<(AS1 | [AS2 AS3-AS5])+>")
        assert regex_flags(node)[0] is True


# -- round-trip property test ---------------------------------------------

atoms = st.one_of(
    st.builds(ReAsn, st.integers(min_value=1, max_value=4_000_000_000)),
    st.just(RePeerAs()),
    st.just(ReWildcard()),
    st.builds(lambda n: ReAsSet(f"AS-SET{n}"), st.integers(0, 99)),
)


def with_repeat(children):
    return st.one_of(
        children,
        st.builds(
            lambda inner, low_high, tilde: ReRepeat(inner, low_high[0], low_high[1], tilde),
            children,
            st.sampled_from([(0, None), (1, None), (0, 1), (2, 2), (1, 3)]),
            st.booleans(),
        ),
    )


regex_asts = st.recursive(
    with_repeat(atoms),
    lambda children: st.one_of(
        st.builds(lambda parts: ReSeq(tuple(parts)), st.lists(children, min_size=2, max_size=3)),
        st.builds(lambda opts: ReAlt(tuple(opts)), st.lists(children, min_size=2, max_size=3)),
    ),
    max_leaves=8,
)


@given(regex_asts)
def test_unparse_parse_roundtrip(node):
    text = node.to_rpsl()
    reparsed = parse_as_path_regex(text)
    # Parsing may flatten nesting; comparing the rendered form is the
    # stable contract.
    assert reparsed.to_rpsl() == parse_as_path_regex(reparsed.to_rpsl()).to_rpsl()
