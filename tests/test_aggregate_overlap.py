"""Tests for prefix aggregation and cross-IRR overlap statistics."""

import ipaddress

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.bgpq4 import Bgpq4Resolver
from repro.irr.dump import parse_dump_text
from repro.net.prefix import Prefix, aggregate_prefixes
from repro.stats.usage import cross_irr_overlap


def prefixes(*texts):
    return [Prefix.parse(text) for text in texts]


class TestAggregation:
    def test_empty(self):
        assert aggregate_prefixes([]) == []

    def test_contained_absorbed(self):
        result = aggregate_prefixes(prefixes("10.0.0.0/8", "10.1.0.0/16"))
        assert result == prefixes("10.0.0.0/8")

    def test_siblings_merge(self):
        result = aggregate_prefixes(prefixes("10.0.0.0/9", "10.128.0.0/9"))
        assert result == prefixes("10.0.0.0/8")

    def test_cascade_merge(self):
        result = aggregate_prefixes(
            prefixes("10.0.0.0/10", "10.64.0.0/10", "10.128.0.0/9")
        )
        assert result == prefixes("10.0.0.0/8")

    def test_non_siblings_do_not_merge(self):
        # /9s from different parents: 10.128/9 and 11.0/9 are not siblings.
        result = aggregate_prefixes(prefixes("10.128.0.0/9", "11.0.0.0/9"))
        assert len(result) == 2

    def test_duplicates_collapse(self):
        result = aggregate_prefixes(prefixes("10.0.0.0/8", "10.0.0.0/8"))
        assert result == prefixes("10.0.0.0/8")

    def test_mixed_versions_kept_separate(self):
        result = aggregate_prefixes(prefixes("0.0.0.0/1", "128.0.0.0/1", "::/1"))
        assert prefixes("0.0.0.0/0")[0] in result
        assert any(p.version == 6 for p in result)

    @staticmethod
    def _interval_union(prefix_list):
        intervals = sorted(
            (p.network, p.network + (1 << (p.max_length - p.length)))
            for p in prefix_list
        )
        merged = []
        for start, end in intervals:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2**16 - 1), st.integers(min_value=8, max_value=24)
            ).map(
                lambda t: Prefix(4, (t[0] << 16) & ~((1 << (32 - t[1])) - 1), t[1])
            ),
            max_size=12,
        )
    )
    @settings(max_examples=200)
    def test_same_address_space(self, input_prefixes):
        aggregated = aggregate_prefixes(input_prefixes)
        assert self._interval_union(input_prefixes) == self._interval_union(aggregated)
        # minimality: no element contains another, no sibling pair remains
        for index, left in enumerate(aggregated):
            for right in aggregated[index + 1 :]:
                assert not left.contains(right) and not right.contains(left)

    def test_bgpq4_aggregate_flag(self):
        dump = """
route:  10.0.0.0/9
origin: AS1

route:  10.128.0.0/9
origin: AS1

route:  10.1.0.0/16
origin: AS1
"""
        ir, _ = parse_dump_text(dump, "T")
        resolver = Bgpq4Resolver(ir)
        plain = resolver.resolve("AS1")
        aggregated = resolver.resolve("AS1", aggregate=True)
        assert len(plain) == 3
        assert aggregated == prefixes("10.0.0.0/8")
        text = resolver.render_prefix_list("AS1", aggregate=True)
        assert text == "10.0.0.0/8"


class TestCrossIrrOverlap:
    def test_overlap_counts(self):
        ripe, _ = parse_dump_text(
            "aut-num: AS1\n\nas-set: AS-X\n\nroute: 10.0.0.0/8\norigin: AS1\n", "RIPE"
        )
        radb, _ = parse_dump_text(
            "aut-num: AS1\n\naut-num: AS2\n\nroute: 10.0.0.0/8\norigin: AS1\n", "RADB"
        )
        overlap = cross_irr_overlap({"RIPE": ripe, "RADB": radb})
        assert overlap["aut-num"] == {"defined": 2, "overlapping": 1, "max_copies": 2}
        assert overlap["as-set"]["overlapping"] == 0
        assert overlap["route"] == {"defined": 1, "overlapping": 1, "max_copies": 2}

    def test_tiny_world_has_overlap(self, tiny_registry):
        irs = {name: source.ir for name, source in tiny_registry.sources.items()}
        overlap = cross_irr_overlap(irs)
        # the generator duplicates a share of route objects into RADB
        assert overlap["route"]["overlapping"] > 0
        assert overlap["route"]["max_copies"] >= 2
