"""The resilience contract under injected faults (``repro.chaos``).

These are the acceptance tests of the chaos harness: damaged dumps parse
to the clean IR minus the damaged objects (with the damage recorded as
issues, never raised), a SIGKILLed verify worker costs nothing but a
degradation entry, and the WHOIS client retries through a flaky network.
"""

from __future__ import annotations

import gzip
import random
import socket

import pytest

from repro.chaos import (
    DUMP_MUTATORS,
    MUTATORS,
    FlakyTcpProxy,
    KillWorkerChunk,
    RaiseOnChunk,
    run_chaos,
)
from repro.chaos.mutators import oversized_paragraph
from repro.core.degradation import DegradationReport
from repro.core.parallel import verify_table
from repro.irr.dump import parse_dump_file, parse_dump_text
from repro.irr.whois import WhoisServer, whois_query
from repro.rpsl.errors import ErrorCollector, ErrorKind
from repro.rpsl.lexer import LexLimits

CLEAN = """\
aut-num:        AS64500
as-name:        TEST-ONE
import:         from AS64501 accept ANY
export:         to AS64501 announce AS64500

as-set:         AS-TEST
members:        AS64500, AS64501

route:          192.0.2.0/24
origin:         AS64500
"""


# -- mutators ---------------------------------------------------------------


def test_mutators_are_deterministic_and_damaging():
    for name, mutator in MUTATORS.items():
        once = mutator(random.Random(7), CLEAN)
        again = mutator(random.Random(7), CLEAN)
        assert once == again, f"{name} is not deterministic under a seed"
        assert once != CLEAN.encode(), f"{name} left the text untouched"


@pytest.mark.parametrize("name", sorted(DUMP_MUTATORS))
def test_damaged_dumps_never_raise(name, tmp_path):
    damaged = DUMP_MUTATORS[name](random.Random(3), CLEAN)
    path = tmp_path / "fuzz.db"
    path.write_bytes(damaged)
    limits = LexLimits(max_object_lines=500, max_object_bytes=64 << 10)
    ir, errors = parse_dump_file(path, source="TEST", limits=limits)
    for asn, aut_num in ir.aut_nums.items():
        assert aut_num.asn == asn


# -- layer 1: ingestion -----------------------------------------------------


def test_truncated_dump_is_clean_minus_final_object(tmp_path):
    clean_ir, clean_errors = parse_dump_text(CLEAN, source="TEST")
    assert not len(clean_errors)
    damaged = CLEAN.rsplit("origin", 1)[0] + "origi"  # cut mid-attribute
    path = tmp_path / "truncated.db"
    path.write_text(damaged, encoding="utf-8")
    ir, errors = parse_dump_file(path, source="TEST")
    counts, clean_counts = ir.counts(), clean_ir.counts()
    assert counts["aut-num"] == clean_counts["aut-num"]
    assert counts["as-set"] == clean_counts["as-set"]
    assert counts["route"] == 0  # only the damaged final object is lost
    assert errors.count_by_kind() == {ErrorKind.TRUNCATED: 1}


def test_in_memory_text_without_trailing_newline_is_not_truncation():
    # A Python string missing its final newline is a formatting quirk;
    # only *file* ingestion treats an unterminated last line as damage.
    ir, errors = parse_dump_text(CLEAN.rstrip("\n"), source="TEST")
    assert ir.counts()["route"] == 1
    assert not len(errors)


def test_oversized_object_dropped_others_kept(tmp_path):
    clean_ir, _ = parse_dump_text(CLEAN, source="TEST")
    path = tmp_path / "big.db"
    path.write_bytes(oversized_paragraph(random.Random(1), CLEAN))
    limits = LexLimits(max_object_bytes=64 << 10)
    ir, errors = parse_dump_file(path, source="TEST", limits=limits)
    assert ir.counts() == clean_ir.counts()
    assert "AS-CHAOS-HUGE" not in ir.as_sets
    assert errors.count_by_kind() == {ErrorKind.OVERSIZED: 1}


def test_gzip_dump_parses_identically(tmp_path):
    clean_ir, _ = parse_dump_text(CLEAN, source="TEST")
    path = tmp_path / "test.db.gz"
    with gzip.open(path, "wt", encoding="utf-8") as stream:
        stream.write(CLEAN)
    ir, errors = parse_dump_file(path)
    assert ir.counts() == clean_ir.counts()
    assert not len(errors)


def test_garbage_gzip_records_unreadable_input(tmp_path):
    path = tmp_path / "garbage.db.gz"
    path.write_bytes(b"\x1f\x8b" + bytes(range(200)))
    ir, errors = parse_dump_file(path)
    assert ErrorKind.UNREADABLE_INPUT in errors.count_by_kind()
    assert sum(ir.counts().values()) == 0


def test_error_collector_cap_counts_overflow():
    collector = ErrorCollector(max_issues=2)
    for index in range(5):
        collector.record(ErrorKind.SYNTAX, "aut-num", f"AS{index}", "TEST", "x")
    assert len(collector.issues) == 2
    assert len(collector) == 5
    assert collector.truncated
    assert collector.count_by_kind()[ErrorKind.SYNTAX] == 5


# -- layer 2: parallel verification -----------------------------------------


def _summaries_match(a, b) -> bool:
    left, right = a.summary(), b.summary()
    left.pop("degradation")
    right.pop("degradation")
    return left == right


def test_worker_kill_mid_run_exact_stats(tiny_ir, tiny_world, tiny_routes):
    baseline = verify_table(tiny_ir, tiny_world.topology, tiny_routes, processes=1)
    chaotic = verify_table(
        tiny_ir,
        tiny_world.topology,
        tiny_routes,
        processes=4,
        chunk_size=200,
        fault_hook=KillWorkerChunk(2),
    )
    assert _summaries_match(baseline, chaotic)
    kinds = chaotic.degradation.by_kind()
    assert kinds.get("verify/worker-lost", 0) >= 1
    assert kinds.get("verify/chunk-serial-fallback", 0) >= 1


def test_worker_exception_retried_then_serial(tiny_ir, tiny_world, tiny_routes):
    baseline = verify_table(tiny_ir, tiny_world.topology, tiny_routes, processes=1)
    chaotic = verify_table(
        tiny_ir,
        tiny_world.topology,
        tiny_routes,
        processes=2,
        chunk_size=300,
        fault_hook=RaiseOnChunk(0),
    )
    assert _summaries_match(baseline, chaotic)
    kinds = chaotic.degradation.by_kind()
    assert kinds.get("verify/chunk-requeued", 0) >= 1
    assert kinds.get("verify/chunk-serial-fallback", 0) >= 1
    assert "verify/worker-lost" not in kinds  # the pool itself never broke


def test_clean_parallel_run_has_empty_degradation(tiny_ir, tiny_world, tiny_routes):
    stats = verify_table(
        tiny_ir, tiny_world.topology, tiny_routes, processes=2, chunk_size=300
    )
    assert not stats.degradation
    assert stats.summary()["degradation"] == {"events": [], "total": 0}


# -- layer 3: whois ---------------------------------------------------------


@pytest.fixture()
def small_ir():
    ir, _ = parse_dump_text(CLEAN, source="TEST")
    return ir


def test_whois_retries_through_flaky_proxy(small_ir):
    with WhoisServer(small_ir) as server:
        with FlakyTcpProxy("127.0.0.1", server.port, failures=2) as proxy:
            answer = whois_query(
                "127.0.0.1", proxy.port, "AS64500", retries=3, backoff=0.01
            )
    assert "aut-num" in answer
    assert proxy.connections == 3


def test_whois_without_retries_surfaces_the_failure(small_ir):
    with WhoisServer(small_ir) as server:
        with FlakyTcpProxy("127.0.0.1", server.port, failures=1) as proxy:
            with pytest.raises(OSError):
                whois_query("127.0.0.1", proxy.port, "AS64500")


def _refused_port() -> int:
    """A port with nothing listening (bound then released)."""
    import socket

    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def test_whois_backoff_full_jitter_is_deterministic(monkeypatch):
    """Seeded rng ⇒ identical delay sequences across runs, and every
    delay stays inside the doubling full-jitter cap."""
    import random as random_module

    port = _refused_port()

    def delays_for(seed: int) -> list[float]:
        recorded: list[float] = []
        monkeypatch.setattr(
            "repro.irr.whois.time.sleep", lambda s: recorded.append(s)
        )
        with pytest.raises(OSError):
            whois_query(
                "127.0.0.1",
                port,
                "AS1",
                timeout=0.5,
                retries=4,
                backoff=0.1,
                max_backoff=0.3,
                rng=random_module.Random(seed),
            )
        return recorded

    first = delays_for(7)
    second = delays_for(7)
    assert first == second
    assert len(first) == 4
    caps = [0.1, 0.2, 0.3, 0.3]  # doubling, clamped at max_backoff
    assert all(0 <= delay <= cap for delay, cap in zip(first, caps))
    assert delays_for(8) != first  # a different seed draws differently


def test_whois_backoff_total_time_budget(monkeypatch):
    """An exhausted max_elapsed re-raises immediately, retries or not."""
    monkeypatch.setattr(
        "repro.irr.whois.time.sleep",
        lambda s: pytest.fail("should not sleep with a spent budget"),
    )
    with pytest.raises(OSError):
        whois_query(
            "127.0.0.1",
            _refused_port(),
            "AS1",
            timeout=0.5,
            retries=5,
            max_elapsed=0.0,
        )


def test_whois_query_line_cap(small_ir):
    with WhoisServer(small_ir) as server:
        refused = whois_query("127.0.0.1", server.port, "A" * 8192)
        assert refused.startswith("F query line too long")
        # The server is still healthy for well-formed queries.
        assert "aut-num" in whois_query("127.0.0.1", server.port, "AS64500")


def test_whois_stop_releases_port_and_thread(small_ir):
    server = WhoisServer(small_ir).start()
    port = server.port
    server.stop()
    assert server._thread is None
    with pytest.raises(OSError):
        socket.create_connection(("127.0.0.1", port), timeout=0.5)


# -- degradation report -----------------------------------------------------


def test_degradation_report_merges_and_serializes():
    left, right = DegradationReport(), DegradationReport()
    left.record("verify", "worker-lost", "pool rebuild #1")
    right.record("verify", "worker-lost", "pool rebuild #1")
    right.record("ingest", "oversized", count=3)
    left.merge(right)
    assert len(left) == 5
    assert left.by_kind() == {"verify/worker-lost": 2, "ingest/oversized": 3}
    document = left.as_dict()
    assert document["total"] == 5
    assert document["events"] == sorted(
        document["events"], key=lambda e: (e["component"], e["kind"], e["detail"])
    )


# -- the harness itself -----------------------------------------------------


def test_run_chaos_passes_and_reports():
    report = run_chaos(seed=7, processes=2)
    assert report.ok, report.render()
    assert len(report.checks) >= 10
    assert len(report.degradation) > 0
    import json

    json.dumps(report.as_dict())  # the report must be JSON-serializable


def test_chaos_cli_is_wired():
    from repro.cli import build_parser

    args = build_parser().parse_args(["chaos", "--seed", "7", "--json"])
    assert args.seed == 7 and args.json and args.preset == "tiny"
