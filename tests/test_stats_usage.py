"""Tests for the Section 4 characterization statistics."""

import pytest

from repro.irr.dump import parse_dump_text
from repro.rpsl.errors import ErrorCollector
from repro.stats.ccdf import ccdf_points, fraction_at_least
from repro.stats.as_sets import as_set_stats
from repro.stats.routes import multi_origin_prefixes, route_object_stats
from repro.stats.usage import (
    error_census,
    filter_kind_census,
    peering_simplicity,
    reference_census,
    rules_ccdf,
    rules_per_aut_num,
)

DUMP = """
aut-num:    AS1
import:     from AS2 accept AS-TWO
export:     to AS2 announce AS1
import:     from AS-GROUP accept RS-SET
import:     from AS3 accept <^AS3+$>
import:     from PRNG-P accept fltr-martian
export:     to AS9 announce ANY

aut-num:    AS2
import:     from AS1 accept ANY AND NOT {0.0.0.0/0}

aut-num:    AS3

as-set:     AS-TWO
members:    AS2

as-set:     AS-GROUP
members:    AS1, AS3

as-set:     AS-UNUSED
members:    AS-DEEP

as-set:     AS-DEEP
members:    AS-DEEPER

as-set:     AS-DEEPER

route-set:  RS-SET
members:    10.0.0.0/8

peering-set: PRNG-P
peering:    AS7

route:      10.1.0.0/16
origin:     AS1
mnt-by:     M1

route:      10.1.0.0/16
origin:     AS2
mnt-by:     M2

route:      10.2.0.0/16
origin:     AS1
mnt-by:     M1

route:      10.2.0.0/16
origin:     AS1
mnt-by:     M1
"""


@pytest.fixture(scope="module")
def sample():
    ir, errors = parse_dump_text(DUMP, "TEST")
    return ir, errors


class TestCcdf:
    def test_points_descend_from_one(self):
        points = ccdf_points([0, 0, 1, 5])
        assert points[0] == (0, 1.0)
        assert points[-1][0] == 5
        assert points[-1][1] == pytest.approx(0.25)

    def test_empty(self):
        assert ccdf_points([]) == []

    def test_fraction_at_least(self):
        assert fraction_at_least([0, 1, 2, 3], 2) == 0.5
        assert fraction_at_least([], 1) == 0.0


class TestRulesPerAutNum:
    def test_counts(self, sample):
        ir, _ = sample
        counts = rules_per_aut_num(ir)
        assert counts[1] == 6
        assert counts[2] == 1
        assert counts[3] == 0

    def test_bgpq4_compatible_subset(self, sample):
        ir, _ = sample
        compatible = rules_per_aut_num(ir, bgpq4_compatible_only=True)
        assert compatible[1] < rules_per_aut_num(ir)[1]

    def test_ccdf_shape(self, sample):
        ir, _ = sample
        points = rules_ccdf(ir)
        assert points[0] == (0, 1.0)


class TestPeeringAndFilterCensus:
    def test_peering_simplicity(self, sample):
        ir, _ = sample
        census = peering_simplicity(ir)
        assert census["single-asn"] == 5
        assert census["as-set"] == 1
        assert census["peering-set"] == 1

    def test_filter_kinds(self, sample):
        ir, _ = sample
        census = filter_kind_census(ir)
        assert census["as-set"] == 1
        assert census["asn"] == 1
        assert census["route-set"] == 1
        assert census["as-path-regex"] == 1
        assert census["filter-set"] == 1
        assert census["any"] == 1
        assert census["composite"] == 1


class TestReferenceCensus:
    def test_table_shape(self, sample):
        ir, _ = sample
        census = reference_census(ir)
        rows = {row[0]: row for row in census.table()}
        assert rows["aut-num"][1] == 3  # defined
        # referenced & defined aut-nums: AS2 (peering+filter), AS1, AS3
        assert rows["aut-num"][2] == 3
        assert rows["as-set"][2] == 2  # AS-TWO (filter), AS-GROUP (peering)
        assert rows["route-set"][2] == 1
        assert rows["peering-set"][2] == 1

    def test_split_by_location(self, sample):
        ir, _ = sample
        census = reference_census(ir)
        assert 2 in census.referenced_peering["aut-num"]
        assert 1 in census.referenced_filter["aut-num"]  # announce AS1
        assert "AS-GROUP" in census.referenced_peering["as-set"]
        assert "AS-TWO" in census.referenced_filter["as-set"]

    def test_dangling_references(self, sample):
        ir, _ = sample
        census = reference_census(ir)
        assert 9 in census.dangling["aut-num"]  # announce to AS9, undefined


class TestRouteObjectStats:
    def test_counts(self, sample):
        ir, _ = sample
        stats = route_object_stats(ir)
        assert stats.total_objects == 4
        assert stats.unique_prefix_origin_pairs == 3
        assert stats.unique_prefixes == 2
        assert stats.prefixes_with_multiple_objects == 2
        assert stats.prefixes_with_multiple_origins == 1
        assert stats.prefixes_with_multiple_maintainers == 1

    def test_multi_origin_map(self, sample):
        ir, _ = sample
        multi = multi_origin_prefixes(ir)
        assert len(multi) == 1
        assert set(next(iter(multi.values()))) == {1, 2}

    def test_as_dict_keys(self, sample):
        ir, _ = sample
        assert len(route_object_stats(ir).as_dict()) == 6


class TestAsSetStats:
    def test_structure_counts(self, sample):
        ir, _ = sample
        stats = as_set_stats(ir, deep_threshold=3)
        assert stats.total == 5
        assert stats.empty == 1  # AS-DEEPER
        assert stats.single_member == 3  # AS-TWO, AS-UNUSED, AS-DEEP
        assert stats.recursive == 2  # AS-UNUSED, AS-DEEP
        assert stats.deep == 1  # AS-UNUSED has depth 3
        assert stats.looping == 0

    def test_loop_detection(self):
        ir, _ = parse_dump_text(
            "as-set: AS-A\nmembers: AS-B\n\nas-set: AS-B\nmembers: AS-A\n", "T"
        )
        stats = as_set_stats(ir)
        assert stats.looping == 2

    def test_huge_threshold(self):
        members = ", ".join(f"AS{i}" for i in range(1, 30))
        ir, _ = parse_dump_text(f"as-set: AS-BIG\nmembers: {members}\n", "T")
        assert as_set_stats(ir, huge_threshold=10).huge == 1
        assert as_set_stats(ir, huge_threshold=100).huge == 0


class TestErrorCensus:
    def test_census_keys(self):
        ir, errors = parse_dump_text(
            "aut-num: AS1\nimport: from AS2 accept BAD SYNTAX AND\n\n"
            "as-set: NOT-VALID\n\nroute-set: ALSO-BAD\n",
            "T",
        )
        census = error_census(errors)
        assert census["syntax"] == 1
        assert census["invalid-as-set-name"] == 1
        assert census["invalid-route-set-name"] == 1
        assert census["total"] == 3

    def test_empty_collector(self):
        assert error_census(ErrorCollector())["total"] == 0
