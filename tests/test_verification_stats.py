"""Tests for the Figures 2–6 aggregation of verification results."""

import pytest

from repro.bgp.table import RouteEntry
from repro.core.report import HopReport, ItemKind, ReportItem, RouteReport
from repro.core.status import SpecialCase, UnrecordedReason, VerifyStatus
from repro.net.prefix import Prefix
from repro.stats.verification import StatusMix, VerificationStats


def entry(path=(1, 2, 3)):
    return RouteEntry("c", path[0], Prefix.parse("10.0.0.0/16"), tuple(path))


def hop(direction, from_asn, to_asn, status, items=()):
    return HopReport(direction, from_asn, to_asn, status, tuple(items))


def report(*hops, path=(1, 2, 3), ignored=None):
    result = RouteReport(entry(path))
    result.ignored = ignored
    result.hops.extend(hops)
    return result


class TestStatusMix:
    def test_fractions(self):
        mix = StatusMix()
        mix.add(VerifyStatus.VERIFIED)
        mix.add(VerifyStatus.VERIFIED)
        mix.add(VerifyStatus.UNVERIFIED)
        fractions = mix.fractions()
        assert fractions[VerifyStatus.VERIFIED] == pytest.approx(2 / 3)

    def test_single_status(self):
        mix = StatusMix()
        assert mix.single_status() is None
        mix.add(VerifyStatus.SKIP)
        assert mix.single_status() is VerifyStatus.SKIP
        mix.add(VerifyStatus.VERIFIED)
        assert mix.single_status() is None


class TestAggregation:
    def make_stats(self):
        stats = VerificationStats()
        stats.add_report(
            report(
                hop("export", 3, 2, VerifyStatus.VERIFIED),
                hop("import", 3, 2, VerifyStatus.VERIFIED),
                hop("export", 2, 1, VerifyStatus.UNRECORDED,
                    [ReportItem.of(ItemKind.UNRECORDED_AUT_NUM, asn=2)]),
                hop("import", 2, 1, VerifyStatus.SAFELISTED,
                    [ReportItem.of(ItemKind.SPEC_UPHILL)]),
            )
        )
        stats.add_report(
            report(
                hop("export", 3, 2, VerifyStatus.VERIFIED),
                hop("import", 3, 2, VerifyStatus.VERIFIED),
            )
        )
        stats.add_report(report(ignored="as-set-path"))
        return stats

    def test_route_counts(self):
        stats = self.make_stats()
        assert stats.routes_total == 3
        assert stats.routes_verified() == 2
        assert stats.routes_ignored["as-set-path"] == 1

    def test_hop_totals(self):
        stats = self.make_stats()
        assert stats.hop_totals[VerifyStatus.VERIFIED] == 4
        assert stats.hop_totals[VerifyStatus.UNRECORDED] == 1

    def test_per_as_subject_attribution(self):
        stats = self.make_stats()
        # import hop's subject is the importer (to_asn).
        assert stats.per_as[2].counts[VerifyStatus.VERIFIED] == 2
        assert stats.per_as[1].counts[VerifyStatus.SAFELISTED] == 1
        # export hop's subject is the exporter (from_asn).
        assert stats.per_as[3].counts[VerifyStatus.VERIFIED] == 2

    def test_single_status_ases(self):
        stats = self.make_stats()
        singles = stats.ases_with_single_status()
        assert singles[VerifyStatus.VERIFIED] == 1  # AS3

    def test_pairs(self):
        stats = self.make_stats()
        assert stats.total_pairs() == 2
        single, total = stats.pairs_with_single_status("import")
        assert (single, total) == (2, 2)
        assert stats.pairs_with_status(VerifyStatus.UNRECORDED) == 1

    def test_route_status_mix(self):
        stats = self.make_stats()
        assert stats.route_single_status[VerifyStatus.VERIFIED] == 1
        assert stats.route_status_count_hist[3] == 1  # first route: 3 statuses
        fractions = stats.single_status_route_fractions()
        assert fractions[VerifyStatus.VERIFIED] == pytest.approx(0.5)

    def test_unrecorded_breakdown(self):
        stats = self.make_stats()
        assert stats.unrecorded_breakdown()[UnrecordedReason.NO_AUT_NUM] == 1

    def test_special_breakdown(self):
        stats = self.make_stats()
        assert stats.special_breakdown()[SpecialCase.UPHILL] == 1
        assert stats.ases_with_special_cases() == 1

    def test_unverified_peering_analysis(self):
        stats = VerificationStats()
        undeclared = hop(
            "export", 3, 2, VerifyStatus.UNVERIFIED,
            [ReportItem.of(ItemKind.MATCH_REMOTE_AS_NUM, asn=7)],
        )
        filter_mismatch = HopReport(
            "import", 3, 2, VerifyStatus.UNVERIFIED,
            (ReportItem.of(ItemKind.MATCH_FILTER_AS_NUM, asn=3),),
            peer_matched=True,
        )
        stats.add_report(report(undeclared, filter_mismatch))
        assert stats.unverified_hops == 2
        assert stats.unverified_peering_only == 1

    def test_first_hop_statuses(self):
        stats = self.make_stats()
        # hops[0] and hops[1] of each non-ignored route.
        assert stats.first_hop_statuses[VerifyStatus.VERIFIED] == 4

    def test_summary_keys(self):
        summary = self.make_stats().summary()
        assert summary["routes"] == 2
        assert summary["hops"] == 6
        assert 0 <= summary["routes_single_status_fraction"] <= 1
        assert set(summary["hop_fractions"]) == {
            status.label for status in VerifyStatus
        }
