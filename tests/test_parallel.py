"""Tests for parallel bulk verification."""

import pytest

from repro.core.parallel import verify_entries, verify_entries_parallel
from repro.stats.verification import VerificationStats


@pytest.fixture(scope="module")
def baseline(tiny_ir, tiny_world, tiny_routes):
    return verify_entries(tiny_ir, tiny_world.topology, tiny_routes)


class TestSequential:
    def test_aggregates_whole_table(self, baseline, tiny_routes):
        assert baseline.routes_total == len(tiny_routes)
        assert sum(baseline.hop_totals.values()) > 0


class TestMerge:
    def test_merge_equals_whole(self, tiny_ir, tiny_world, tiny_routes):
        half = len(tiny_routes) // 2
        first = verify_entries(tiny_ir, tiny_world.topology, tiny_routes[:half])
        second = verify_entries(tiny_ir, tiny_world.topology, tiny_routes[half:])
        first.merge(second)
        whole = verify_entries(tiny_ir, tiny_world.topology, tiny_routes)
        assert first.hop_totals == whole.hop_totals
        assert first.routes_total == whole.routes_total
        assert first.route_single_status == whole.route_single_status
        assert first.summary() == whole.summary()

    def test_merge_into_empty(self, baseline):
        empty = VerificationStats()
        empty.merge(baseline)
        assert empty.hop_totals == baseline.hop_totals
        assert empty.unverified_hops == baseline.unverified_hops


class TestParallel:
    def test_parallel_matches_sequential(self, tiny_ir, tiny_world, tiny_routes, baseline):
        sample = tiny_routes[:3000]
        expected = verify_entries(tiny_ir, tiny_world.topology, sample)
        parallel = verify_entries_parallel(
            tiny_ir, tiny_world.topology, sample, processes=2, chunk_size=500
        )
        assert parallel.hop_totals == expected.hop_totals
        assert parallel.routes_total == expected.routes_total
        assert parallel.per_as.keys() == expected.per_as.keys()
        for asn in expected.per_as:
            assert parallel.per_as[asn].counts == expected.per_as[asn].counts

    def test_small_input_falls_back(self, tiny_ir, tiny_world, tiny_routes):
        sample = tiny_routes[:10]
        stats = verify_entries_parallel(
            tiny_ir, tiny_world.topology, sample, processes=4, chunk_size=2000
        )
        assert stats.routes_total == 10

    def test_single_process_requested(self, tiny_ir, tiny_world, tiny_routes):
        sample = tiny_routes[:50]
        stats = verify_entries_parallel(
            tiny_ir, tiny_world.topology, sample, processes=1
        )
        assert stats.routes_total == 50
