"""Tests for bulk verification: serial/parallel parity and merging."""

import multiprocessing

import pytest

from repro.chaos.faults import KillWorkerChunk, RaiseOnChunk
from repro.core import parallel
from repro.core.parallel import verify_table
from repro.obs import MetricsRegistry, set_registry, use_registry
from repro.obs.trace import set_tracer
from repro.stats.verification import VerificationStats


def _serial(ir, world, routes):
    return verify_table(ir, world.topology, routes, processes=1)


@pytest.fixture(scope="module")
def baseline(tiny_ir, tiny_world, tiny_routes):
    return _serial(tiny_ir, tiny_world, tiny_routes)


class TestSequential:
    def test_aggregates_whole_table(self, baseline, tiny_routes):
        assert baseline.routes_total == len(tiny_routes)
        assert sum(baseline.hop_totals.values()) > 0

    def test_accepts_streaming_iterable(self, tiny_ir, tiny_world, tiny_routes, baseline):
        stats = verify_table(tiny_ir, tiny_world.topology, iter(tiny_routes))
        assert stats.hop_totals == baseline.hop_totals

    def test_on_report_sees_every_route(self, tiny_ir, tiny_world, tiny_routes):
        seen = []
        verify_table(
            tiny_ir, tiny_world.topology, tiny_routes[:100], on_report=seen.append
        )
        assert len(seen) == 100


class TestMerge:
    def test_merge_equals_whole(self, tiny_ir, tiny_world, tiny_routes):
        half = len(tiny_routes) // 2
        first = _serial(tiny_ir, tiny_world, tiny_routes[:half])
        second = _serial(tiny_ir, tiny_world, tiny_routes[half:])
        first.merge(second)
        whole = _serial(tiny_ir, tiny_world, tiny_routes)
        assert first.hop_totals == whole.hop_totals
        assert first.routes_total == whole.routes_total
        assert first.route_single_status == whole.route_single_status
        assert first.summary() == whole.summary()

    def test_merge_into_empty(self, baseline):
        empty = VerificationStats()
        empty.merge(baseline)
        assert empty.hop_totals == baseline.hop_totals
        assert empty.unverified_hops == baseline.unverified_hops


class TestParallel:
    def test_parallel_matches_sequential(self, tiny_ir, tiny_world, tiny_routes):
        sample = tiny_routes[:3000]
        expected = _serial(tiny_ir, tiny_world, sample)
        parallel = verify_table(
            tiny_ir, tiny_world.topology, sample, processes=2, chunk_size=500
        )
        assert parallel.hop_totals == expected.hop_totals
        assert parallel.routes_total == expected.routes_total
        assert parallel.per_as.keys() == expected.per_as.keys()
        for asn in expected.per_as:
            assert parallel.per_as[asn].counts == expected.per_as[asn].counts

    def test_parallel_streams_chunks_lazily(self, tiny_ir, tiny_world, tiny_routes):
        sample = tiny_routes[:1500]
        expected = _serial(tiny_ir, tiny_world, sample)
        stats = verify_table(
            tiny_ir, tiny_world.topology, iter(sample), processes=2, chunk_size=300
        )
        assert stats.hop_totals == expected.hop_totals

    def test_small_input_falls_back(self, tiny_ir, tiny_world, tiny_routes):
        stats = verify_table(
            tiny_ir, tiny_world.topology, tiny_routes[:10], processes=4, chunk_size=2000
        )
        assert stats.routes_total == 10

    def test_empty_input(self, tiny_ir, tiny_world):
        stats = verify_table(tiny_ir, tiny_world.topology, [], processes=4)
        assert stats.routes_total == 0

    def test_single_process_requested(self, tiny_ir, tiny_world, tiny_routes):
        stats = verify_table(tiny_ir, tiny_world.topology, tiny_routes[:50], processes=1)
        assert stats.routes_total == 50


class TestStartMethods:
    """The parallel path must not depend on fork being available."""

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_start_method_matches_serial(
        self, tiny_ir, tiny_world, tiny_routes, start_method
    ):
        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {start_method!r} unavailable here")
        sample = tiny_routes[:1200]
        expected = _serial(tiny_ir, tiny_world, sample)
        stats = verify_table(
            tiny_ir,
            tiny_world.topology,
            sample,
            processes=2,
            chunk_size=300,
            start_method=start_method,
        )
        assert stats.hop_totals == expected.hop_totals
        assert stats.summary() == expected.summary()


def _counter_values(registry: MetricsRegistry, name: str) -> dict:
    return {
        tuple(sorted(record["labels"].items())): record["value"]
        for record in registry.snapshot()["counters"]
        if record["name"] == name
    }


class _PoisonedChunk(list):
    """A chunk whose iteration raises partway through verification."""

    def __init__(self, entries, blow_after: int):
        super().__init__(entries)
        self.blow_after = blow_after

    def __iter__(self):
        for position, entry in enumerate(super().__iter__()):
            if position == self.blow_after:
                raise RuntimeError("poisoned entry")
            yield entry


class TestWorkerMetricsResilience:
    """Degraded parallel runs must still report *exact* metrics.

    The per-chunk snapshot deltas shipped back to the parent have to stay
    an exact sum under every failure mode: a SIGKILLed worker (whole
    attempt lost, chunk re-verified elsewhere), an in-worker exception
    (chunk requeued on a pool whose worker survived), and a mid-chunk
    failure after some hops were already recorded into the worker's
    cumulative registry.
    """

    def test_killed_worker_metrics_match_serial(self, tiny_ir, tiny_world, tiny_routes):
        with use_registry(MetricsRegistry()) as expected_registry:
            expected = verify_table(
                tiny_ir, tiny_world.topology, tiny_routes, processes=1
            )
        with use_registry(MetricsRegistry()) as observed_registry:
            observed = verify_table(
                tiny_ir,
                tiny_world.topology,
                tiny_routes,
                processes=2,
                chunk_size=max(1, len(tiny_routes) // 8),
                fault_hook=KillWorkerChunk(1),
            )
        assert observed.hop_totals == expected.hop_totals
        for name in ("verify_routes_total", "verify_hops_total"):
            assert _counter_values(observed_registry, name) == _counter_values(
                expected_registry, name
            ), name
        kinds = observed.degradation.by_kind()
        assert kinds.get("verify/worker-lost", 0) >= 1

    def test_raised_chunk_metrics_match_serial(self, tiny_ir, tiny_world, tiny_routes):
        sample = tiny_routes[:600]
        with use_registry(MetricsRegistry()) as expected_registry:
            expected = verify_table(tiny_ir, tiny_world.topology, sample, processes=1)
        with use_registry(MetricsRegistry()) as observed_registry:
            observed = verify_table(
                tiny_ir,
                tiny_world.topology,
                sample,
                processes=2,
                chunk_size=100,
                fault_hook=RaiseOnChunk(1),
            )
        assert observed.hop_totals == expected.hop_totals
        for name in ("verify_routes_total", "verify_hops_total"):
            assert _counter_values(observed_registry, name) == _counter_values(
                expected_registry, name
            ), name
        kinds = observed.degradation.by_kind()
        assert kinds.get("verify/chunk-requeued", 0) >= 1

    def test_mid_chunk_failure_advances_snapshot_cursor(
        self, tiny_ir, tiny_world, tiny_routes
    ):
        # Drive the worker protocol in-process: a chunk that dies halfway
        # bakes its partial work into the worker's cumulative registry, so
        # the cursor must advance past it or the retry's delta double-counts.
        chunk_a = tiny_routes[:40]
        chunk_b = tiny_routes[40:80]
        previous = set_registry(None)
        try:
            parallel._init_worker(
                tiny_ir, tiny_world.topology, None, collect_metrics=True
            )
            _, _, delta_a = parallel._verify_chunk((0, chunk_a))
            with pytest.raises(RuntimeError, match="poisoned entry"):
                parallel._verify_chunk((1, _PoisonedChunk(chunk_b, 10)))
            assert parallel._WORKER_LAST_SNAPSHOT is not None
            _, _, delta_b = parallel._verify_chunk((1, chunk_b))
            merged = MetricsRegistry()
            merged.merge_snapshot(delta_a)
            merged.merge_snapshot(delta_b)
            assert merged.counter("verify_routes_total").value == len(chunk_a) + len(
                chunk_b
            )
        finally:
            parallel._WORKER_VERIFIER = None
            parallel._WORKER_LAST_SNAPSHOT = None
            parallel._WORKER_COLLECT_METRICS = False
            parallel._WORKER_FAULT_HOOK = None
            set_registry(previous)
            set_tracer(None)


class TestRemovedAliases:
    def test_verify_entries_aliases_are_gone(self):
        """The long-deprecated 1.x aliases were removed in 1.4."""
        assert not hasattr(parallel, "verify_entries")
        assert not hasattr(parallel, "verify_entries_parallel")
        assert "verify_entries" not in parallel.__all__
