"""Address-family identifiers for RPSLng (RFC 4012) multiprotocol rules.

An ``mp-import``/``mp-export`` rule may restrict itself to an address family
such as ``afi ipv6.unicast`` or ``afi any.unicast``.  Plain ``import`` /
``export`` rules implicitly mean ``ipv4.unicast``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Afi", "AfiFamily", "AfiSafi", "AfiError"]


class AfiError(ValueError):
    """Raised when an afi specifier cannot be parsed."""


class AfiFamily(Enum):
    """The address-family half of an afi specifier."""

    ANY = "any"
    IPV4 = "ipv4"
    IPV6 = "ipv6"

    def matches_version(self, version: int) -> bool:
        """Whether this family covers prefixes of the given IP version."""
        if self is AfiFamily.ANY:
            return True
        return (self is AfiFamily.IPV4) == (version == 4)


class AfiSafi(Enum):
    """The subsequent-address-family half (cast) of an afi specifier."""

    ANY = "any"
    UNICAST = "unicast"
    MULTICAST = "multicast"


@dataclass(frozen=True, slots=True)
class Afi:
    """A parsed afi token such as ``ipv6.unicast`` or ``any``."""

    family: AfiFamily = AfiFamily.ANY
    safi: AfiSafi = AfiSafi.ANY

    # Afi.IPV4_UNICAST — the implicit afi of non-multiprotocol rules — is
    # assigned after the class definition (see module bottom).

    @staticmethod
    def parse(token: str) -> "Afi":
        """Parse one afi token: ``ipv4``, ``ipv6.multicast``, ``any.unicast``…"""
        token = token.strip().lower().rstrip(",")
        family_text, _, safi_text = token.partition(".")
        try:
            family = AfiFamily(family_text)
        except ValueError as exc:
            raise AfiError(f"invalid afi family: {token!r}") from exc
        if not safi_text:
            return Afi(family, AfiSafi.ANY)
        try:
            safi = AfiSafi(safi_text)
        except ValueError as exc:
            raise AfiError(f"invalid afi cast: {token!r}") from exc
        return Afi(family, safi)

    def matches_version(self, version: int) -> bool:
        """Whether a *unicast* route of the given IP version is covered.

        BGP table dumps contain unicast routes, so a rule scoped to
        ``multicast`` never matches them.
        """
        if self.safi is AfiSafi.MULTICAST:
            return False
        return self.family.matches_version(version)

    def __str__(self) -> str:
        if self.safi is AfiSafi.ANY:
            return self.family.value
        return f"{self.family.value}.{self.safi.value}"


Afi.IPV4_UNICAST = Afi(AfiFamily.IPV4, AfiSafi.UNICAST)
