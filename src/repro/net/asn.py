"""AS number parsing and classification.

RPSL spells AS numbers as ``AS<number>`` (asplain, RFC 5396).  The parser is
case-insensitive because registries contain ``as174``, ``As174`` and
``AS174`` for the same AS.
"""

from __future__ import annotations

import re

__all__ = ["AsnError", "parse_asn", "format_asn", "is_private_asn", "is_reserved_asn"]

ASN_MAX = 2**32 - 1

_ASN_RE = re.compile(r"^AS(\d+)$", re.IGNORECASE)

# RFC 6996 private ranges plus RFC 7300 last ASNs.
_PRIVATE_16 = range(64512, 65535)
_PRIVATE_32 = range(4200000000, 4294967295)


class AsnError(ValueError):
    """Raised when an AS number cannot be parsed."""


def parse_asn(text: str) -> int:
    """Parse ``AS<number>`` (case-insensitive) into an integer ASN."""
    match = _ASN_RE.match(text.strip())
    if match is None:
        raise AsnError(f"invalid AS number: {text!r}")
    value = int(match.group(1))
    if value > ASN_MAX:
        raise AsnError(f"AS number out of 32-bit range: {text!r}")
    return value


def format_asn(asn: int) -> str:
    """Format an integer ASN in RPSL asplain notation (``AS<number>``)."""
    if not 0 <= asn <= ASN_MAX:
        raise AsnError(f"AS number out of 32-bit range: {asn}")
    return f"AS{asn}"


def is_private_asn(asn: int) -> bool:
    """Whether the ASN is in an RFC 6996 private-use range."""
    return asn in _PRIVATE_16 or asn in _PRIVATE_32


def is_reserved_asn(asn: int) -> bool:
    """Whether the ASN is reserved (0, 23456, 65535, or 4294967295)."""
    return asn in (0, 23456, 65535, ASN_MAX)
