"""Network primitives: IP prefixes, RPSL range operators, ASNs, and AFIs.

These are the lowest-level building blocks shared by the RPSL parser, the
BGP substrate, and the verification engine.  They are deliberately free of
any RPSL- or BGP-specific policy logic.
"""

from repro.net.afi import Afi, AfiFamily, AfiSafi
from repro.net.asn import AsnError, format_asn, is_private_asn, parse_asn
from repro.net.prefix import (
    Prefix,
    PrefixError,
    RangeOp,
    RangeOpKind,
    parse_prefix,
    parse_prefix_with_op,
)

__all__ = [
    "Afi",
    "AfiFamily",
    "AfiSafi",
    "AsnError",
    "Prefix",
    "PrefixError",
    "RangeOp",
    "RangeOpKind",
    "format_asn",
    "is_private_asn",
    "parse_asn",
    "parse_prefix",
    "parse_prefix_with_op",
]
