"""IP prefixes and RPSL prefix range operators.

RPSL address-prefix sets attach *range operators* to prefixes (RFC 2622
Section 2):

``^-``
    the exclusive more-specifics: every prefix strictly longer than the
    declared one, contained in it.
``^+``
    the inclusive more-specifics: the declared prefix and everything
    contained in it.
``^n``
    all length-*n* prefixes contained in the declared prefix.
``^n-m``
    all prefixes of length *n* through *m* contained in the declared prefix.

A :class:`Prefix` is stored as ``(version, network-int, length)`` so that
containment checks are two integer comparisons — the verifier evaluates
millions of them per run.
"""

from __future__ import annotations

import ipaddress
import re
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

__all__ = [
    "Prefix",
    "PrefixError",
    "RangeOp",
    "RangeOpKind",
    "aggregate_prefixes",
    "parse_prefix",
    "parse_prefix_with_op",
]


class PrefixError(ValueError):
    """Raised when a prefix or range operator cannot be parsed."""


_MAX_LEN = {4: 32, 6: 128}
_RANGE_OP_RE = re.compile(r"^\^(?:(?P<minus>-)|(?P<plus>\+)|(?P<n>\d+)(?:-(?P<m>\d+))?)$")


class RangeOpKind(Enum):
    """The five shapes an RPSL range operator can take (NONE = absent)."""

    NONE = "none"
    MINUS = "minus"  # ^-
    PLUS = "plus"  # ^+
    EXACT = "exact"  # ^n
    RANGE = "range"  # ^n-m


@dataclass(frozen=True, slots=True)
class RangeOp:
    """An RPSL prefix range operator, e.g. ``^+`` or ``^24-32``.

    ``low``/``high`` are only meaningful for :attr:`RangeOpKind.EXACT`
    (``low == high == n``) and :attr:`RangeOpKind.RANGE`.
    """

    kind: RangeOpKind = RangeOpKind.NONE
    low: int = 0
    high: int = 0

    @staticmethod
    def parse(text: str) -> "RangeOp":
        """Parse a range operator like ``^-``, ``^+``, ``^24`` or ``^24-32``."""
        match = _RANGE_OP_RE.match(text.strip())
        if match is None:
            raise PrefixError(f"invalid range operator: {text!r}")
        if match.group("minus"):
            return RangeOp(RangeOpKind.MINUS)
        if match.group("plus"):
            return RangeOp(RangeOpKind.PLUS)
        low = int(match.group("n"))
        high = int(match.group("m")) if match.group("m") else low
        if high < low:
            raise PrefixError(f"inverted range operator: {text!r}")
        return RangeOp(RangeOpKind.RANGE if match.group("m") else RangeOpKind.EXACT, low, high)

    def allows(self, declared_len: int, announced_len: int) -> bool:
        """Whether a contained prefix of ``announced_len`` qualifies.

        ``declared_len`` is the length of the set-member prefix carrying this
        operator; containment itself is checked by the caller.
        """
        if self.kind is RangeOpKind.NONE:
            return announced_len == declared_len
        if self.kind is RangeOpKind.MINUS:
            return announced_len > declared_len
        if self.kind is RangeOpKind.PLUS:
            return announced_len >= declared_len
        return self.low <= announced_len <= self.high

    def compose(self, outer: "RangeOp") -> "RangeOp":
        """Apply an *outer* operator on top of this one (RFC 2622 set ops).

        For example ``{192.0.2.0/24^+}^27-27`` resolves to ``^27``: an outer
        operator replaces the inner one but may never *widen* it; RFC 2622
        specifies the outer operator is applied to each implied prefix, which
        for verification purposes reduces to taking the outer operator.
        """
        if outer.kind is RangeOpKind.NONE:
            return self
        return outer

    def __str__(self) -> str:
        if self.kind is RangeOpKind.NONE:
            return ""
        if self.kind is RangeOpKind.MINUS:
            return "^-"
        if self.kind is RangeOpKind.PLUS:
            return "^+"
        if self.kind is RangeOpKind.EXACT:
            return f"^{self.low}"
        return f"^{self.low}-{self.high}"


@dataclass(frozen=True, slots=True, order=True)
class Prefix:
    """An IPv4 or IPv6 prefix in canonical (network-address) form.

    Ordering is ``(version, network, length)``, which groups prefixes by
    address family and then sorts them numerically — the order the route
    lookup index relies on.
    """

    version: int
    network: int
    length: int

    def __post_init__(self) -> None:
        if self.version not in (4, 6):
            raise PrefixError(f"bad IP version: {self.version}")
        max_len = _MAX_LEN[self.version]
        if not 0 <= self.length <= max_len:
            raise PrefixError(f"bad prefix length /{self.length} for IPv{self.version}")
        if self.network >> max_len:
            raise PrefixError("network address out of range")

    @staticmethod
    def parse(text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` or ``x::y/len``; host bits are masked off.

        Real-world *route* objects occasionally carry host bits (e.g.
        ``192.0.2.1/24``); like IRRd we canonicalize rather than reject.
        """
        return _parse_prefix_cached(text.strip())

    @property
    def max_length(self) -> int:
        """32 for IPv4, 128 for IPv6."""
        return _MAX_LEN[self.version]

    def contains(self, other: "Prefix") -> bool:
        """Whether ``other`` is equal to or more specific than this prefix."""
        if self.version != other.version or other.length < self.length:
            return False
        shift = self.max_length - self.length
        return (self.network >> shift) == (other.network >> shift)

    def overlaps(self, other: "Prefix") -> bool:
        """Whether the two prefixes share any address."""
        return self.contains(other) or other.contains(self)

    def supernet(self, length: int) -> "Prefix":
        """The containing prefix of the given (shorter or equal) length."""
        if length > self.length:
            raise PrefixError(f"supernet /{length} longer than /{self.length}")
        shift = self.max_length - length
        return Prefix(self.version, (self.network >> shift) << shift, length)

    def matches_with_op(self, route_prefix: "Prefix", op: RangeOp) -> bool:
        """Whether ``route_prefix`` matches this declared prefix under ``op``."""
        return self.contains(route_prefix) and op.allows(self.length, route_prefix.length)

    def __str__(self) -> str:
        if self.version == 4:
            address = str(ipaddress.IPv4Address(self.network))
        else:
            address = str(ipaddress.IPv6Address(self.network))
        return f"{address}/{self.length}"


@lru_cache(maxsize=65536)
def _parse_prefix_cached(text: str) -> Prefix:
    try:
        network = ipaddress.ip_network(text, strict=False)
    except ValueError as exc:
        raise PrefixError(f"invalid prefix: {text!r}") from exc
    return Prefix(network.version, int(network.network_address), network.prefixlen)


def parse_prefix(text: str) -> Prefix:
    """Parse a prefix string; alias of :meth:`Prefix.parse`."""
    return Prefix.parse(text)


def parse_prefix_with_op(text: str) -> tuple[Prefix, RangeOp]:
    """Parse ``<prefix>[^op]`` as used inside RPSL address-prefix sets."""
    text = text.strip()
    caret = text.find("^")
    if caret < 0:
        return Prefix.parse(text), RangeOp()
    return Prefix.parse(text[:caret]), RangeOp.parse(text[caret:])


def aggregate_prefixes(prefixes) -> list["Prefix"]:
    """The minimal prefix list covering exactly the same address space.

    Contained prefixes are absorbed and sibling halves merge into their
    parent, repeatedly — what ``bgpq4 -A`` does before emitting router
    filters.  Input order does not matter; the result is sorted.
    """
    result: list[Prefix] = []
    for prefix in sorted(set(prefixes)):
        if result and result[-1].contains(prefix):
            continue
        result.append(prefix)
        while len(result) >= 2:
            left, right = result[-2], result[-1]
            if (
                left.version == right.version
                and left.length == right.length
                and left.length > 0
            ):
                half = 1 << (left.max_length - left.length)
                aligned = left.network % (half * 2) == 0
                if aligned and right.network == left.network + half:
                    result[-2:] = [Prefix(left.version, left.network, left.length - 1)]
                    continue
            break
    return result
