"""The intermediate representation (IR) of parsed RPSL.

The IR is the library's central data structure, mirroring the single
``Ir`` struct of the paper's Rust implementation: every routing-related
object class, fully parsed into interpretable form.  It is the unit of
JSON export/import (:mod:`repro.ir.json_io`) and the input to the
verification engine and to all characterization analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.prefix import Prefix, RangeOp
from repro.rpsl.filter import Filter
from repro.rpsl.names import NameKind
from repro.rpsl.peering import Peering
from repro.rpsl.policy import DefaultRule, PolicyRule

__all__ = [
    "BadRule",
    "AutNum",
    "AsSet",
    "RouteSetMemberName",
    "RouteSet",
    "RouteObject",
    "PeeringSet",
    "FilterSet",
    "Ir",
]


@dataclass(slots=True)
class BadRule:
    """An ``import``/``export`` attribute value that failed to parse.

    Kept verbatim so error statistics and the *skip* verification status
    can account for it.
    """

    attribute: str
    text: str
    error: str


@dataclass(slots=True)
class AutNum:
    """One *aut-num* object: an AS and its routing policy rules."""

    asn: int
    as_name: str = ""
    imports: list[PolicyRule] = field(default_factory=list)
    exports: list[PolicyRule] = field(default_factory=list)
    defaults: list[DefaultRule] = field(default_factory=list)
    bad_rules: list[BadRule] = field(default_factory=list)
    member_of: list[str] = field(default_factory=list)
    mnt_by: list[str] = field(default_factory=list)
    source: str = ""

    @property
    def rule_count(self) -> int:
        """Number of parsed import + export rules (the Figure 1 metric)."""
        return len(self.imports) + len(self.exports)


@dataclass(slots=True)
class AsSet:
    """One *as-set* object.

    ``members_asn``/``members_set`` hold direct members; recursive
    resolution happens in the query engine.  ``contains_any`` flags the
    reserved ``ANY``/``AS-ANY`` appearing as a member (an anomaly the
    paper's error census counts).
    """

    name: str
    members_asn: list[int] = field(default_factory=list)
    members_set: list[str] = field(default_factory=list)
    mbrs_by_ref: list[str] = field(default_factory=list)
    mnt_by: list[str] = field(default_factory=list)
    contains_any: bool = False
    source: str = ""

    @property
    def member_count(self) -> int:
        """Direct member count (ASNs plus nested set names)."""
        return len(self.members_asn) + len(self.members_set)


@dataclass(slots=True)
class RouteSetMemberName:
    """A named member of a *route-set*: another route-set, as-set, or ASN.

    An ASN or as-set member contributes the prefixes of the *route* objects
    those ASes originate (RFC 2622 Section 5.2); ``op`` is an optional range
    operator applied to every contributed prefix.
    """

    name: str
    kind: NameKind
    op: RangeOp = field(default_factory=RangeOp)


@dataclass(slots=True)
class RouteSet:
    """One *route-set* object: explicit prefixes plus named members."""

    name: str
    prefix_members: list[tuple[Prefix, RangeOp]] = field(default_factory=list)
    name_members: list[RouteSetMemberName] = field(default_factory=list)
    mbrs_by_ref: list[str] = field(default_factory=list)
    mnt_by: list[str] = field(default_factory=list)
    source: str = ""

    @property
    def member_count(self) -> int:
        """Direct member count (prefixes plus named members)."""
        return len(self.prefix_members) + len(self.name_members)


@dataclass(slots=True)
class RouteObject:
    """One *route*/*route6* object: a prefix-origin registration."""

    prefix: Prefix
    origin: int
    member_of: list[str] = field(default_factory=list)
    mnt_by: list[str] = field(default_factory=list)
    source: str = ""


@dataclass(slots=True)
class PeeringSet:
    """One *peering-set* object: a named list of peerings."""

    name: str
    peerings: list[Peering] = field(default_factory=list)
    mnt_by: list[str] = field(default_factory=list)
    source: str = ""


@dataclass(slots=True)
class FilterSet:
    """One *filter-set* object: a named filter expression."""

    name: str
    filter: Filter | None = None
    mnt_by: list[str] = field(default_factory=list)
    source: str = ""


@dataclass(slots=True, weakref_slot=True)
class Ir:
    """The full intermediate representation of one or more IRRs.

    Set names are keyed by their upper-cased canonical form.  When built by
    :func:`repro.ir.merge.merge_irs`, each keyed entry is the
    highest-priority definition, while ``route_objects`` keeps *every*
    registration (the multiplicity statistics of Section 4 need duplicates).

    Instances are snapshots: treated as immutable once built (the delta
    path in :mod:`repro.irr.journal` weakly caches per-snapshot route
    indexes, hence the weakref slot).
    """

    aut_nums: dict[int, AutNum] = field(default_factory=dict)
    as_sets: dict[str, AsSet] = field(default_factory=dict)
    route_sets: dict[str, RouteSet] = field(default_factory=dict)
    peering_sets: dict[str, PeeringSet] = field(default_factory=dict)
    filter_sets: dict[str, FilterSet] = field(default_factory=dict)
    route_objects: list[RouteObject] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        """Object counts per class (the columns of Table 1)."""
        return {
            "aut-num": len(self.aut_nums),
            "as-set": len(self.as_sets),
            "route-set": len(self.route_sets),
            "peering-set": len(self.peering_sets),
            "filter-set": len(self.filter_sets),
            "route": len(self.route_objects),
            "import": sum(len(a.imports) for a in self.aut_nums.values()),
            "export": sum(len(a.exports) for a in self.aut_nums.values()),
        }

    def routes_by_origin(self) -> dict[int, list[Prefix]]:
        """Map each origin ASN to its registered prefixes (deduplicated)."""
        by_origin: dict[int, set[Prefix]] = {}
        for route in self.route_objects:
            by_origin.setdefault(route.origin, set()).add(route.prefix)
        return {origin: sorted(prefixes) for origin, prefixes in by_origin.items()}
