"""Rendering IR objects back to RPSL text.

The inverse of :mod:`repro.rpsl.objects`: every IR object renders to
paragraph text that the parser accepts and that round-trips to an equal IR
object.  Used by the WHOIS server (which serves object text), the history
substrate (which re-emits mutated snapshots), and tests (parse ∘ render =
identity).
"""

from __future__ import annotations

from repro.ir.model import (
    AsSet,
    AutNum,
    FilterSet,
    Ir,
    PeeringSet,
    RouteObject,
    RouteSet,
)

__all__ = [
    "render_aut_num",
    "render_as_set",
    "render_route_set",
    "render_route_object",
    "render_peering_set",
    "render_filter_set",
    "render_object",
    "render_ir",
]

_PAD = 12


def _line(name: str, value: str) -> str:
    return f"{name}:".ljust(_PAD) + value


def _tail(obj) -> list[str]:
    lines = []
    for maintainer in obj.mnt_by:
        lines.append(_line("mnt-by", maintainer))
    if obj.source:
        lines.append(_line("source", obj.source))
    return lines


def render_aut_num(aut_num: AutNum) -> str:
    """Render an aut-num with all parsed (and unparsed) rules."""
    lines = [_line("aut-num", f"AS{aut_num.asn}")]
    if aut_num.as_name:
        lines.append(_line("as-name", aut_num.as_name))
    for rule in aut_num.imports:
        lines.append(_line(rule.attribute_name, rule.to_rpsl()))
    for rule in aut_num.exports:
        lines.append(_line(rule.attribute_name, rule.to_rpsl()))
    for default in aut_num.defaults:
        attr = "mp-default" if default.multiprotocol else "default"
        lines.append(_line(attr, default.to_rpsl()))
    for bad in aut_num.bad_rules:
        lines.append(_line(bad.attribute, bad.text))
    if aut_num.member_of:
        lines.append(_line("member-of", ", ".join(aut_num.member_of)))
    lines.extend(_tail(aut_num))
    return "\n".join(lines)


def render_as_set(as_set: AsSet) -> str:
    """Render an as-set; ``ANY`` membership is preserved."""
    lines = [_line("as-set", as_set.name)]
    members = [f"AS{asn}" for asn in as_set.members_asn] + list(as_set.members_set)
    if as_set.contains_any:
        members.append("ANY")
    if members:
        lines.append(_line("members", ", ".join(members)))
    if as_set.mbrs_by_ref:
        lines.append(_line("mbrs-by-ref", ", ".join(as_set.mbrs_by_ref)))
    lines.extend(_tail(as_set))
    return "\n".join(lines)


def render_route_set(route_set: RouteSet) -> str:
    """Render a route-set with prefix and named members."""
    lines = [_line("route-set", route_set.name)]
    members = [f"{prefix}{op}" for prefix, op in route_set.prefix_members]
    members += [f"{member.name}{member.op}" for member in route_set.name_members]
    if members:
        lines.append(_line("members", ", ".join(members)))
    if route_set.mbrs_by_ref:
        lines.append(_line("mbrs-by-ref", ", ".join(route_set.mbrs_by_ref)))
    lines.extend(_tail(route_set))
    return "\n".join(lines)


def render_route_object(route: RouteObject) -> str:
    """Render a route or route6 object."""
    object_class = "route" if route.prefix.version == 4 else "route6"
    lines = [
        _line(object_class, str(route.prefix)),
        _line("origin", f"AS{route.origin}"),
    ]
    if route.member_of:
        lines.append(_line("member-of", ", ".join(route.member_of)))
    lines.extend(_tail(route))
    return "\n".join(lines)


def render_peering_set(peering_set: PeeringSet) -> str:
    """Render a peering-set."""
    lines = [_line("peering-set", peering_set.name)]
    for peering in peering_set.peerings:
        lines.append(_line("peering", peering.to_rpsl()))
    lines.extend(_tail(peering_set))
    return "\n".join(lines)


def render_filter_set(filter_set: FilterSet) -> str:
    """Render a filter-set."""
    lines = [_line("filter-set", filter_set.name)]
    if filter_set.filter is not None:
        lines.append(_line("filter", filter_set.filter.to_rpsl()))
    lines.extend(_tail(filter_set))
    return "\n".join(lines)


_RENDERERS = {
    AutNum: render_aut_num,
    AsSet: render_as_set,
    RouteSet: render_route_set,
    RouteObject: render_route_object,
    PeeringSet: render_peering_set,
    FilterSet: render_filter_set,
}


def render_object(obj) -> str:
    """Render any IR object by type."""
    renderer = _RENDERERS.get(type(obj))
    if renderer is None:
        raise TypeError(f"cannot render {type(obj).__name__}")
    return renderer(obj)


def render_ir(ir: Ir) -> str:
    """Render a whole IR as one dump (paragraphs separated by blank lines).

    The output parses back into an equal IR (modulo object order).
    """
    paragraphs: list[str] = []
    for asn in sorted(ir.aut_nums):
        paragraphs.append(render_aut_num(ir.aut_nums[asn]))
    for name in sorted(ir.as_sets):
        paragraphs.append(render_as_set(ir.as_sets[name]))
    for name in sorted(ir.route_sets):
        paragraphs.append(render_route_set(ir.route_sets[name]))
    for name in sorted(ir.peering_sets):
        paragraphs.append(render_peering_set(ir.peering_sets[name]))
    for name in sorted(ir.filter_sets):
        paragraphs.append(render_filter_set(ir.filter_sets[name]))
    for route in ir.route_objects:
        paragraphs.append(render_route_object(route))
    return "\n\n".join(paragraphs) + "\n"
