"""The intermediate representation: model, JSON I/O, and multi-IRR merge."""

from repro.ir.model import (
    AsSet,
    AutNum,
    BadRule,
    FilterSet,
    Ir,
    PeeringSet,
    RouteObject,
    RouteSet,
    RouteSetMemberName,
)

__all__ = [
    "AsSet",
    "AutNum",
    "BadRule",
    "FilterSet",
    "Ir",
    "PeeringSet",
    "RouteObject",
    "RouteSet",
    "RouteSetMemberName",
]
