"""JSON export/import of the IR (the paper's integration interface).

RPSLyzer exports its intermediate representation to JSON so other tools can
consume RPSL semantics without reimplementing the parser; this module is
that interface.  :func:`dump_ir`/:func:`load_ir` round-trip the complete
:class:`~repro.ir.model.Ir`, including every parsed policy AST.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.ir import serialize
from repro.ir.model import (
    AsSet,
    AutNum,
    BadRule,
    FilterSet,
    Ir,
    PeeringSet,
    RouteObject,
    RouteSet,
    RouteSetMemberName,
)
from repro.net.afi import Afi, AfiFamily, AfiSafi
from repro.net.prefix import RangeOp, RangeOpKind
from repro.rpsl import aspath, filter as filter_mod, peering
from repro.rpsl.action import ActionItem
from repro.rpsl.names import NameKind
from repro.rpsl.policy import (
    DefaultRule,
    PeeringAction,
    PolicyExcept,
    PolicyFactor,
    PolicyRefine,
    PolicyRule,
    PolicyTerm,
)

__all__ = ["ir_to_jsonable", "ir_from_jsonable", "dump_ir", "load_ir", "dumps_ir", "loads_ir"]

serialize.register(
    # IR containers
    Ir,
    AutNum,
    AsSet,
    RouteSet,
    RouteSetMemberName,
    RouteObject,
    PeeringSet,
    FilterSet,
    BadRule,
    # policy AST
    PolicyRule,
    DefaultRule,
    PolicyTerm,
    PolicyExcept,
    PolicyRefine,
    PolicyFactor,
    PeeringAction,
    ActionItem,
    # peering AST
    peering.Peering,
    peering.PeerAsn,
    peering.PeerAsSet,
    peering.PeerAny,
    peering.PeeringSetRef,
    peering.PeerAnd,
    peering.PeerOr,
    peering.PeerExcept,
    # filter AST
    filter_mod.FilterAny,
    filter_mod.FilterPeerAs,
    filter_mod.FilterAsn,
    filter_mod.FilterAsSet,
    filter_mod.FilterRouteSet,
    filter_mod.FilterFltrSetRef,
    filter_mod.FilterPrefixSet,
    filter_mod.FilterAsPathRegex,
    filter_mod.FilterCommunity,
    filter_mod.FilterAnd,
    filter_mod.FilterOr,
    filter_mod.FilterNot,
    # as-path regex AST
    aspath.ReAsn,
    aspath.ReAsnRange,
    aspath.ReAsSet,
    aspath.RePeerAs,
    aspath.ReWildcard,
    aspath.ReCharSet,
    aspath.ReAlt,
    aspath.ReSeq,
    aspath.ReRepeat,
    aspath.ReBegin,
    aspath.ReEnd,
    # primitives
    RangeOp,
    Afi,
    # enums
    RangeOpKind,
    AfiFamily,
    AfiSafi,
    NameKind,
)

FORMAT_VERSION = 1


def ir_to_jsonable(ir: Ir) -> dict:
    """Encode an IR into a JSON-compatible dict with a format header."""
    return {"format": "rpslyzer-ir", "version": FORMAT_VERSION, "ir": serialize.encode(ir)}


def ir_from_jsonable(data: dict) -> Ir:
    """Decode the dict produced by :func:`ir_to_jsonable`."""
    if data.get("format") != "rpslyzer-ir":
        raise ValueError("not an RPSLyzer IR document")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported IR format version {data.get('version')!r}")
    ir = serialize.decode(data["ir"])
    if not isinstance(ir, Ir):
        raise ValueError("malformed IR document")
    # Aut-num keys arrive as JSON pair-lists with int keys already; ensure so.
    ir.aut_nums = {int(asn): aut_num for asn, aut_num in ir.aut_nums.items()}
    return ir


def dumps_ir(ir: Ir, *, indent: int | None = None) -> str:
    """Serialize an IR to a JSON string."""
    return json.dumps(ir_to_jsonable(ir), indent=indent, separators=(",", ":"))


def loads_ir(text: str) -> Ir:
    """Parse an IR from a JSON string."""
    return ir_from_jsonable(json.loads(text))


def dump_ir(ir: Ir, destination: str | Path | IO[str]) -> None:
    """Write an IR to a JSON file (path or open text stream)."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as stream:
            json.dump(ir_to_jsonable(ir), stream, separators=(",", ":"))
    else:
        json.dump(ir_to_jsonable(ir), destination, separators=(",", ":"))


def load_ir(source: str | Path | IO[str]) -> Ir:
    """Read an IR from a JSON file (path or open text stream)."""
    if isinstance(source, (str, Path)):
        with open(source, encoding="utf-8") as stream:
            return ir_from_jsonable(json.load(stream))
    return ir_from_jsonable(json.load(source))
