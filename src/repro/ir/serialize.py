"""Generic JSON-able encoding of the IR and its embedded ASTs.

Every IR and AST node in this library is a dataclass whose fields are
primitives, enums, prefixes, other nodes, or containers of those — so one
generic, registry-driven codec covers the whole object graph.  The encoding
is a plain dict tree tagged with ``"__t"`` type markers:

* dataclass → ``{"__t": "ClassName", "<field>": ...}``;
* Enum → ``{"__e": "EnumName", "v": <value>}``;
* :class:`~repro.net.prefix.Prefix` → ``{"__p": "10.0.0.0/8"}`` (compact);
* tuples/lists → JSON arrays (field type hints restore tuples on decode);
* dicts with int keys → key-value pair arrays.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import types
import typing
from enum import Enum
from functools import lru_cache

from repro.net.prefix import Prefix

__all__ = ["register", "encode", "decode", "registered_types", "stable_digest"]

_DATACLASSES: dict[str, type] = {}
_ENUMS: dict[str, type] = {}


def register(*classes: type) -> None:
    """Register dataclasses/enums so :func:`decode` can reconstruct them."""
    for cls in classes:
        if issubclass(cls, Enum):
            _ENUMS[cls.__name__] = cls
        elif dataclasses.is_dataclass(cls):
            _DATACLASSES[cls.__name__] = cls
        else:
            raise TypeError(f"{cls!r} is neither a dataclass nor an Enum")


def registered_types() -> dict[str, type]:
    """All registered types by name (dataclasses and enums)."""
    return {**_DATACLASSES, **_ENUMS}


def encode(obj: object) -> object:
    """Encode an object graph into JSON-compatible primitives."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Prefix):
        return {"__p": str(obj)}
    if isinstance(obj, Enum):
        return {"__e": type(obj).__name__, "v": obj.value}
    if isinstance(obj, (list, tuple)):
        return [encode(item) for item in obj]
    if isinstance(obj, dict):
        if all(isinstance(key, str) for key in obj):
            return {"__d": None, **{key: encode(value) for key, value in obj.items()}}
        return {"__kv": [[encode(key), encode(value)] for key, value in obj.items()]}
    if dataclasses.is_dataclass(obj):
        cls_name = type(obj).__name__
        if cls_name not in _DATACLASSES:
            raise TypeError(f"unregistered dataclass {cls_name}")
        encoded: dict[str, object] = {"__t": cls_name}
        for field in dataclasses.fields(obj):
            encoded[field.name] = encode(getattr(obj, field.name))
        return encoded
    raise TypeError(f"cannot encode {type(obj).__name__}")


def stable_digest(obj: object) -> str:
    """SHA-256 of an object graph's canonical JSON encoding.

    The content digest used to key derived artifacts (the compiled
    verification index): identical object graphs digest identically
    regardless of where or when they were built.
    """
    payload = json.dumps(encode(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@lru_cache(maxsize=None)
def _field_hints(cls: type) -> dict[str, object]:
    return typing.get_type_hints(cls)


def _coerce_container(value: object, hint: object) -> object:
    """Convert decoded lists to tuples where the field type says tuple."""
    origin = typing.get_origin(hint)
    if origin is tuple and isinstance(value, list):
        args = typing.get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis:
            item_hint = args[0]
            return tuple(_coerce_container(item, item_hint) for item in value)
        if args and len(args) == len(value):
            return tuple(
                _coerce_container(item, arg) for item, arg in zip(value, args)
            )
        return tuple(value)
    if origin is list and isinstance(value, list):
        args = typing.get_args(hint)
        if args:
            return [_coerce_container(item, args[0]) for item in value]
    if origin is typing.Union or isinstance(hint, types.UnionType):
        for arg in typing.get_args(hint):
            if typing.get_origin(arg) in (tuple, list):
                return _coerce_container(value, arg)
    return value


def decode(data: object) -> object:
    """Reconstruct an object graph produced by :func:`encode`."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):
        return [decode(item) for item in data]
    if isinstance(data, dict):
        if "__p" in data:
            return Prefix.parse(data["__p"])
        if "__e" in data:
            enum_cls = _ENUMS.get(data["__e"])
            if enum_cls is None:
                raise TypeError(f"unregistered enum {data['__e']}")
            return enum_cls(data["v"])
        if "__kv" in data:
            return {decode(key): decode(value) for key, value in data["__kv"]}
        if "__d" in data:
            return {
                key: decode(value) for key, value in data.items() if key != "__d"
            }
        if "__t" in data:
            cls = _DATACLASSES.get(data["__t"])
            if cls is None:
                raise TypeError(f"unregistered dataclass {data['__t']}")
            hints = _field_hints(cls)
            kwargs: dict[str, object] = {}
            for field in dataclasses.fields(cls):
                if field.name not in data:
                    continue
                value = decode(data[field.name])
                hint = hints.get(field.name)
                if hint is not None:
                    value = _coerce_container(value, hint)
                kwargs[field.name] = value
            return cls(**kwargs)
        return {key: decode(value) for key, value in data.items()}
    raise TypeError(f"cannot decode {type(data).__name__}")
