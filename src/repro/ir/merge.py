"""Multi-IRR priority merge (Section 4 of the paper).

Objects defined in several IRRs are resolved by a priority order: first
authoritative regional and national registries, then RADB, then the other
databases, ordered by size within each group (Table 1).  The merged IR
keeps the highest-priority definition of each keyed object while retaining
*every* route object, because the Section 4 multiplicity statistics need
the duplicates.
"""

from __future__ import annotations

from repro.ir.model import Ir

__all__ = ["IRR_PRIORITY", "merge_irs"]

# Table 1 of the paper, grouped and ordered by priority.
IRR_PRIORITY: tuple[str, ...] = (
    # authoritative regional registries (by size, descending influence)
    "RIPE",
    "APNIC",
    "AFRINIC",
    "ARIN",
    "LACNIC",
    # national registries
    "IDNIC",
    "JPIRR",
    # RADB
    "RADB",
    # other databases, by size
    "NTTCOM",
    "LEVEL3",
    "TC",
    "REACH",
    "ALTDB",
)


def merge_irs(irs: dict[str, Ir], priority: tuple[str, ...] = IRR_PRIORITY) -> Ir:
    """Merge per-IRR IRs into one, respecting the priority order.

    IRRs absent from ``priority`` are appended after it in name order, so a
    custom registry never silently disappears.
    """
    order = [name for name in priority if name in irs]
    order += sorted(name for name in irs if name not in priority)
    merged = Ir()
    for name in order:
        ir = irs[name]
        for asn, aut_num in ir.aut_nums.items():
            merged.aut_nums.setdefault(asn, aut_num)
        for set_name, as_set in ir.as_sets.items():
            merged.as_sets.setdefault(set_name, as_set)
        for set_name, route_set in ir.route_sets.items():
            merged.route_sets.setdefault(set_name, route_set)
        for set_name, peering_set in ir.peering_sets.items():
            merged.peering_sets.setdefault(set_name, peering_set)
        for set_name, filter_set in ir.filter_sets.items():
            merged.filter_sets.setdefault(set_name, filter_set)
        merged.route_objects.extend(ir.route_objects)
    return merged
