"""Multi-IRR priority merge (Section 4 of the paper).

Objects defined in several IRRs are resolved by a priority order: first
authoritative regional and national registries, then RADB, then the other
databases, ordered by size within each group (Table 1).  The merged IR
keeps the highest-priority definition of each keyed object while retaining
*every* route object, because the Section 4 multiplicity statistics need
the duplicates.
"""

from __future__ import annotations

from repro.ir.model import Ir
from repro.obs import get_registry

__all__ = ["IRR_PRIORITY", "merge_irs"]

# Table 1 of the paper, grouped and ordered by priority.
IRR_PRIORITY: tuple[str, ...] = (
    # authoritative regional registries (by size, descending influence)
    "RIPE",
    "APNIC",
    "AFRINIC",
    "ARIN",
    "LACNIC",
    # national registries
    "IDNIC",
    "JPIRR",
    # RADB
    "RADB",
    # other databases, by size
    "NTTCOM",
    "LEVEL3",
    "TC",
    "REACH",
    "ALTDB",
)


def merge_irs(irs: dict[str, Ir], priority: tuple[str, ...] = IRR_PRIORITY) -> Ir:
    """Merge per-IRR IRs into one, respecting the priority order.

    IRRs absent from ``priority`` are appended after it in name order, so a
    custom registry never silently disappears.
    """
    order = [name for name in priority if name in irs]
    order += sorted(name for name in irs if name not in priority)
    registry = get_registry()
    merged = Ir()
    with registry.span("merge"):
        for name in order:
            ir = irs[name]
            keyed = 0
            shadowed = 0
            for target, objects in (
                (merged.aut_nums, ir.aut_nums),
                (merged.as_sets, ir.as_sets),
                (merged.route_sets, ir.route_sets),
                (merged.peering_sets, ir.peering_sets),
                (merged.filter_sets, ir.filter_sets),
            ):
                for key, value in objects.items():
                    if key in target:
                        shadowed += 1
                    else:
                        target[key] = value
                        keyed += 1
            merged.route_objects.extend(ir.route_objects)
            if registry.enabled:
                # "Wins": keyed objects this IRR contributed to the merged
                # view; "shadowed": definitions a higher-priority IRR beat.
                registry.counter("merge_wins_total", irr=name).inc(keyed)
                registry.counter("merge_shadowed_total", irr=name).inc(shadowed)
                registry.counter("merge_route_objects_total", irr=name).inc(
                    len(ir.route_objects)
                )
    return merged
