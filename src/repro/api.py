"""``repro.api`` — the single supported entry point to the pipeline.

Since 1.4.0 the facade is *session-oriented*: :func:`open_session` loads
an IR once (from a dump directory, an exported JSON IR, a
:class:`~repro.irr.synth.SynthWorld`, or an in-memory :class:`Ir`), adopts
the digest-cached :class:`CompiledIndex`, and hands back a
:class:`Session` whose methods answer any number of queries against the
warm state::

    from repro import api

    with api.open_session("dumps/", as_rel="as-rel.txt") as session:
        report = session.verify_route("192.0.2.0/24", [64500, 64496])
        stats = session.verify_table(entries, processes=8)
        report, events = session.explain("192.0.2.0/24", [64500, 64496])
        print(session.characterize()["counts"])

The CLI, the WHOIS server, and the ``rpslyzer serve`` daemon are all thin
adapters over :class:`Session`.  The pre-1.4 module-level helpers
(:func:`verify_table`, :func:`explain_route`, :func:`serve_whois`) remain
as deprecated shims that open a throwaway session per call.

Loading stages (:func:`synthesize`, :func:`parse_dumps`) return a
:class:`LoadResult` carrying ``ir``, ``errors``, and ``degradation``;
``ir, errors = parse_dumps(...)`` keeps working via tuple unpacking.

All stages report into the current :mod:`repro.obs` metrics registry when
one is installed; a :class:`Session` can also own a private registry
(``open_session(..., registry=MetricsRegistry())``), which is what the
serve daemon exposes at ``GET /metrics``.
"""

from __future__ import annotations

import time
import warnings
from contextlib import nullcontext
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.bgp.table import RouteEntry
from repro.bgp.topology import AsRelationships
from repro.core.compiled import (
    CompiledIndex,
    IndexCacheError,
    get_or_compile,
    index_cache_path,
    ir_digest,
    load_index,
    save_index,
)
from repro.core.compiled import compile_index as _compile_index
from repro.core.compiled import patch_index as _patch_index
from repro.core.degradation import DegradationReport
from repro.core.parallel import verify_table as _verify_table
from repro.core.query import QueryEngine
from repro.core.report import RouteReport
from repro.core.verify import Verifier, VerifyOptions
from repro.ir.model import Ir
from repro.irr.journal import Journal, apply_journal_to_ir, load_journal
from repro.irr.registry import Registry, parse_registry_dir
from repro.irr.synth import SynthConfig, SynthWorld, build_world, default_config, tiny_config
from repro.irr.whois import WhoisServer
from repro.obs import MetricsRegistry, get_registry, use_registry
from repro.obs.trace import TraceConfig, Tracer, use_tracer
from repro.rpsl.errors import ErrorCollector, ErrorKind
from repro.stats.as_sets import as_set_stats
from repro.stats.routes import route_object_stats
from repro.stats.usage import filter_kind_census, peering_simplicity, rules_ccdf
from repro.stats.verification import VerificationStats
from repro.tools.recommend import RouteSetRecommendation, recommend_route_set

__all__ = [
    "CompiledIndex",
    "DegradationReport",
    "IndexCacheError",
    "LoadResult",
    "Session",
    "SessionClosedError",
    "apply_journal",
    "compile_index",
    "get_or_compile",
    "load_journal",
    "patch_index",
    "index_cache_path",
    "ir_digest",
    "load_index",
    "open_session",
    "save_index",
    "synthesize",
    "parse_dumps",
    "parse_registry",
    "make_verifier",
    "explain_route",
    "verify_table",
    "characterize",
    "recommend_migrations",
    "run_chaos",
    "serve_whois",
]

# Parse-issue kinds that are ingestion damage (not merely mis-written
# RPSL); these surface on LoadResult.degradation so a limped-through load
# is distinguishable from a clean one.
_INGEST_DAMAGE = (
    ErrorKind.OVERSIZED,
    ErrorKind.TRUNCATED,
    ErrorKind.UNREADABLE_INPUT,
)


def _ingest_degradation(errors: ErrorCollector) -> DegradationReport:
    """Fold ingestion-level parse damage into a degradation report."""
    report = DegradationReport()
    for issue in errors.issues:
        if issue.kind in _INGEST_DAMAGE:
            report.record("ingest", issue.kind.value, issue.source)
    for kind, count in errors.overflow.items():
        if kind in _INGEST_DAMAGE:
            report.record("ingest", kind.value, "(overflowed)", count=count)
    return report


class LoadResult:
    """What a loading stage produced: IR, parse issues, and degradation.

    The consistent return shape of :func:`synthesize` and
    :func:`parse_dumps`.  Tuple unpacking stays supported —
    ``ir, errors = api.parse_dumps(...)`` — via ``__iter__``; synthesis
    results additionally delegate attribute access to the underlying
    :class:`~repro.irr.synth.SynthWorld` (``result.write_to_dir(...)``,
    ``result.topology``), so pre-1.4 callers keep working unchanged.

    ``ir``/``errors`` are computed lazily for synthesis results (the dump
    text is only parsed when something asks for the IR).
    """

    def __init__(
        self,
        *,
        ir: Ir | None = None,
        errors: ErrorCollector | None = None,
        degradation: DegradationReport | None = None,
        world: SynthWorld | None = None,
        source: str | None = None,
    ):
        self._ir = ir
        self._errors = errors
        self._degradation = degradation
        self.world = world
        self.source = source

    def _parse_world(self) -> None:
        assert self.world is not None, "LoadResult has neither ir nor world"
        registry = self.world.registry()
        self._ir = registry.merged()
        self._errors = registry.all_errors()

    @property
    def ir(self) -> Ir:
        """The (priority-merged) IR this load produced."""
        if self._ir is None:
            self._parse_world()
        return self._ir

    @property
    def errors(self) -> ErrorCollector:
        """Every parse issue recorded while loading."""
        if self._errors is None:
            self._parse_world()
        return self._errors

    @property
    def degradation(self) -> DegradationReport:
        """Ingestion-level damage (truncated/oversized/unreadable input)."""
        if self._degradation is None:
            self._degradation = _ingest_degradation(self.errors)
        return self._degradation

    def __iter__(self):
        """Tuple-unpack compatibility: ``ir, errors = load_result``."""
        return iter((self.ir, self.errors))

    def __getattr__(self, name: str):
        # Compatibility bridge for synthesis results: anything LoadResult
        # itself does not define resolves against the SynthWorld.
        world = self.__dict__.get("world")
        if world is not None:
            return getattr(world, name)
        raise AttributeError(
            f"{type(self).__name__!s} object has no attribute {name!r}"
        )

    def __repr__(self) -> str:
        origin = f"world seed={self.world.config.seed}" if self.world else self.source
        return f"LoadResult({origin})"


def synthesize(
    config: SynthConfig | str | None = None, *, seed: int = 42
) -> LoadResult:
    """Generate a synthetic world (Section 3's offline evaluation setup).

    ``config`` is a :class:`SynthConfig`, a preset name (``"tiny"`` or
    ``"default"``), or None for the default preset; ``seed`` applies to
    preset names only.  Returns a :class:`LoadResult` whose ``world`` is
    the generated :class:`~repro.irr.synth.SynthWorld` (attribute access
    delegates to it, so ``result.write_to_dir(...)`` works) and whose
    ``ir``/``errors`` parse the generated dumps on first use.
    """
    if config is None:
        config = default_config(seed)
    elif isinstance(config, str):
        if config == "tiny":
            config = tiny_config(seed)
        elif config == "default":
            config = default_config(seed)
        else:
            raise ValueError(f"unknown preset {config!r} (try 'tiny' or 'default')")
    with get_registry().span("synth"):
        world = build_world(config)
    return LoadResult(world=world, source=f"synth(seed={world.config.seed})")


def parse_registry(directory: str | Path) -> Registry:
    """Parse every ``*.db`` dump in a directory into a multi-IRR registry."""
    return parse_registry_dir(directory)


def parse_dumps(directory: str | Path) -> LoadResult:
    """Parse and priority-merge a directory of IRR dumps.

    Returns a :class:`LoadResult` with the merged IR, every parse issue
    across all dumps, and the ingestion degradation report;
    ``ir, errors = parse_dumps(...)`` still unpacks.  Use
    :func:`parse_registry` instead when per-IRR views (Table 1) are
    needed.
    """
    registry = parse_registry_dir(directory)
    errors = registry.all_errors()
    return LoadResult(
        ir=registry.merged(),
        errors=errors,
        degradation=_ingest_degradation(errors),
        source=str(directory),
    )


def apply_journal(ir: Ir, journal: Journal) -> LoadResult:
    """Replay an NRTM-style journal onto an IR (provenance intact).

    Returns a :class:`LoadResult` whose ``ir`` is the patched snapshot
    (the input IR is never mutated — objects are shared, containers are
    fresh) and whose ``degradation`` carries every replay anomaly:
    corrupt entries, out-of-order or duplicate serials, missing targets.
    A non-empty report means the journal cannot be trusted for
    incremental index patching; recompile instead (that is exactly what
    :meth:`Session.apply_deltas` does).
    """
    patched, report = apply_journal_to_ir(ir, journal)
    return LoadResult(
        ir=patched,
        errors=ErrorCollector(),
        degradation=report,
        source="journal",
    )


class SessionClosedError(RuntimeError):
    """A method was called on a :class:`Session` after ``close()``."""


class Session:
    """A resident handle over one IR: index, verifier, and metrics lifecycle.

    Construct via :func:`open_session`.  A session owns:

    * the parsed :class:`Ir` (plus its :class:`LoadResult` when loaded
      from disk) and optional :class:`AsRelationships`;
    * the :class:`CompiledIndex`, adopted once (digest-keyed disk cache by
      default) and shared by every query until ``close()``;
    * a warm single-route :class:`Verifier` whose hop cache persists
      across :meth:`verify_route` calls;
    * optionally a private :class:`~repro.obs.MetricsRegistry` installed
      around every operation (otherwise the ambient registry is used).

    Sessions are not thread-safe; the serve daemon serializes access
    through its single-threaded batch executor.
    """

    def __init__(
        self,
        ir: Ir,
        relationships: AsRelationships | None = None,
        *,
        options: VerifyOptions | None = None,
        processes: int | None = 1,
        index: CompiledIndex | None = None,
        cache_dir: str | Path | None = None,
        use_cache: bool = True,
        trace: TraceConfig | None = None,
        registry: MetricsRegistry | None = None,
        load: LoadResult | None = None,
    ):
        self.ir = ir
        self.relationships = relationships
        self.options = options
        self.processes = processes
        self.load = load
        self.cache_dir = cache_dir
        self.use_cache = use_cache
        self.tracer = Tracer(trace) if trace is not None else None
        self._registry = registry
        self._index = index
        # Ownership decides who closes a cache-mmap'd index: an index the
        # caller passed in is shared (the caller closes it); one the
        # session loads/compiles itself is owned and closed with it.
        self._owns_index = False
        self._digest: str | None = index.digest if index is not None else None
        self._verifier: Verifier | None = None
        self._closed = False
        self._last_delta_seconds: float | None = None
        # The serve daemon's flight recorder (repro.obs.flight), attached
        # by VerifyService so embedders can read the lifecycle ring via
        # flight_events() without reaching into serve internals.
        self.flight = None

    # -- lifecycle ---------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError("this Session has been closed")

    def _scope(self):
        """The metrics scope for one operation: the session's own registry
        when it has one, else a no-op pass-through to the ambient one."""
        if self._registry is not None:
            return use_registry(self._registry)
        return nullcontext(get_registry())

    @property
    def registry(self) -> MetricsRegistry:
        """The registry session operations report into."""
        return self._registry if self._registry is not None else get_registry()

    @property
    def digest(self) -> str:
        """The IR content digest (computed once, keys the index cache)."""
        self._check_open()
        if self._digest is None:
            self._digest = ir_digest(self.ir)
        return self._digest

    @property
    def index(self) -> CompiledIndex | None:
        """The adopted compiled index (None until :meth:`warm` runs)."""
        return self._index

    def warm(self) -> "Session":
        """Adopt the compiled index and build the warm single-route verifier.

        The index comes from the digest-keyed disk cache
        (``use_cache=True``, the default) or an in-memory compile;
        either way subsequent queries never recompile — the point of a
        resident session.  Idempotent.
        """
        self._check_open()
        with self._scope():
            if self._index is None:
                self._index = get_or_compile(
                    self.ir,
                    digest=self.digest,
                    cache_dir=self.cache_dir,
                    use_cache=self.use_cache,
                )
                self._owns_index = True
            if self._verifier is None and self.relationships is not None:
                self._verifier = Verifier(
                    self.ir, self.relationships, self.options, index=self._index
                )
        return self

    @property
    def generation(self) -> int:
        """Index generation: 0 for a from-scratch compile, +1 per patch."""
        return self._index.generation if self._index is not None else 0

    @property
    def serials(self) -> dict:
        """Highest journal serial absorbed per source registry."""
        return dict(self._index.serials) if self._index is not None else {}

    @property
    def last_delta_seconds(self) -> float | None:
        """Wall-clock of the most recent :meth:`apply_deltas` (None if never)."""
        return self._last_delta_seconds

    def apply_deltas(self, journal: Journal) -> DegradationReport:
        """Absorb an NRTM-style journal: patch the IR and the live index.

        The IR is replayed first (:func:`repro.irr.journal.apply_journal_to_ir`,
        never mutating the current one).  A clean replay whose serials
        continue from the index's recorded high-water marks takes the
        incremental path — :func:`repro.core.compiled.patch_index`, point
        trie mutations plus reverse-dependency cache invalidation.  Any
        degradation (corrupt entries, serial gaps going backwards,
        missing targets) falls back to a full recompile of the replayed
        IR: slower, never wrong.  Either way the old index is released
        (closing its mmap and file descriptor when session-owned) only
        after the replacement is fully built, and the warm verifier is
        rebuilt against the new state.

        Returns the degradation report (empty ⇒ the fast path ran).
        """
        self._check_open()
        with self._scope() as registry:
            started = time.perf_counter()
            old_ir = self.ir
            old_index = self._index
            patched_ir, report = apply_journal_to_ir(old_ir, journal)
            if old_index is not None and not report:
                # NRTM discipline across applies: a journal whose serials
                # do not advance past what the index already absorbed is
                # a replay/stale stream — degrade to the full path.
                first_serial: dict[str, int] = {}
                for entry in journal:
                    if entry.serial < first_serial.get(entry.source, entry.serial + 1):
                        first_serial[entry.source] = entry.serial
                for source, first in sorted(first_serial.items()):
                    previous = old_index.serials.get(source)
                    if previous is not None and first <= previous:
                        report.record(
                            "journal",
                            "stale-serial",
                            detail=(
                                f"source {source or '?'}: serial {first} "
                                f"not past applied {previous}"
                            ),
                        )
            if old_index is None:
                new_index = None
            elif report:
                new_index = _compile_index(patched_ir, digest=ir_digest(patched_ir))
                new_index.generation = old_index.generation + 1
                new_index.serials = {**old_index.serials, **journal.serials()}
            else:
                new_index = _patch_index(old_index, old_ir, patched_ir, journal)
            self.ir = patched_ir
            self._index = new_index
            self._digest = new_index.digest if new_index is not None else None
            self._verifier = None
            if old_index is not None and self._owns_index:
                old_index.close()
            self._owns_index = new_index is not None
            if new_index is not None and self.relationships is not None:
                self._verifier = Verifier(
                    self.ir, self.relationships, self.options, index=new_index
                )
            elapsed = time.perf_counter() - started
            self._last_delta_seconds = elapsed
            if registry.enabled:
                registry.gauge("delta_apply_seconds").set(elapsed)
                registry.gauge("index_generation").set(self.generation)
                for source, serial in sorted(journal.serials().items()):
                    registry.gauge("journal_serial", source=source or "?").set(serial)
                registry.counter(
                    "delta_apply_total",
                    result="degraded" if report else "patched",
                ).inc()
        return report

    def evict_index(self) -> None:
        """Drop the adopted index (closing its mmap when session-owned).

        The next :meth:`warm` (or warm-requiring query) re-adopts from the
        cache.  Lets a long-lived session release the artifact mapping —
        and its file descriptor — without closing the session.
        """
        self._check_open()
        index, self._index = self._index, None
        self._verifier = None
        if index is not None and self._owns_index:
            index.close()
        self._owns_index = False

    def close(self) -> None:
        """Release the index (closing its mmap when session-owned) and the
        verifier; further queries raise :class:`SessionClosedError`.
        Idempotent."""
        self._closed = True
        index, self._index = self._index, None
        if index is not None and self._owns_index:
            index.close()
        self._owns_index = False
        self._verifier = None

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- queries -----------------------------------------------------------

    def _need_relationships(self) -> AsRelationships:
        if self.relationships is None:
            raise ValueError(
                "this Session has no AS relationships; pass as_rel= to open_session()"
            )
        return self.relationships

    def verify_route(
        self,
        prefix: str,
        as_path: Iterable[int],
        *,
        collector: str = "session",
    ) -> RouteReport:
        """Verify one ⟨prefix, AS-path⟩ against the warm verifier."""
        self._check_open()
        self._need_relationships()
        if self._verifier is None:
            self.warm()
        with self._scope():
            return self._verifier.verify_route(
                prefix, tuple(as_path), collector=collector
            )

    def verify_table(
        self,
        entries: Iterable[RouteEntry],
        *,
        options: VerifyOptions | None = None,
        processes: int | None = None,
        chunk_size: int = 2000,
        start_method: str | None = None,
        on_report: Callable[[RouteReport], None] | None = None,
        fault_hook: Callable[[int], None] | None = None,
    ) -> VerificationStats:
        """Verify a table of routes (Section 5), serial or multi-process.

        Defaults come from the session (``processes``, ``options``, the
        adopted index); see :func:`repro.core.parallel.verify_table` for
        the resilience contract.  When the session owns a tracer, sampled
        decision provenance is recorded into it.
        """
        self._check_open()
        relationships = self._need_relationships()
        tracer_scope = (
            use_tracer(self.tracer) if self.tracer is not None else nullcontext()
        )
        with self._scope(), tracer_scope:
            return _verify_table(
                self.ir,
                relationships,
                entries,
                options=options if options is not None else self.options,
                processes=processes if processes is not None else self.processes,
                chunk_size=chunk_size,
                start_method=start_method,
                on_report=on_report,
                fault_hook=fault_hook,
                index=self._index,
            )

    def explain(
        self,
        prefix: str,
        as_path: Iterable[int],
        *,
        options: VerifyOptions | None = None,
        collector: str = "explain",
    ) -> tuple[RouteReport, list[dict]]:
        """Replay one ⟨prefix, AS-path⟩ with tracing forced on.

        Returns ``(report, events)``: the route report plus the full
        decision-provenance event list (sample rate 1, deep chains always
        recorded — the verifier is fresh, so every hop is a cache miss and
        its filter-evaluation path is captured).  This is what
        ``rpslyzer explain`` and ``POST /explain`` print.
        """
        self._check_open()
        relationships = self._need_relationships()
        tracer = Tracer(TraceConfig(sample_rate=1, deep=True))
        with self._scope(), use_tracer(tracer):
            verifier = Verifier(
                self.ir,
                relationships,
                options if options is not None else self.options,
                index=self._index,
            )
            report = verifier.verify_route(
                prefix, tuple(as_path), collector=collector
            )
        return report, tracer.events

    def characterize(self) -> dict:
        """The Section 4 characterization of the session's IR."""
        self._check_open()
        with self._scope() as registry:
            with registry.span("characterize"):
                return {
                    "counts": self.ir.counts(),
                    "rules_ccdf_head": rules_ccdf(self.ir)[:20],
                    "peering_simplicity": peering_simplicity(self.ir),
                    "filter_kinds": filter_kind_census(self.ir),
                    "route_objects": route_object_stats(self.ir).as_dict(),
                    "as_sets": as_set_stats(self.ir).as_dict(),
                }

    def whois_server(self, host: str = "127.0.0.1", port: int = 0) -> WhoisServer:
        """A threaded WHOIS/IRRd server over the session IR (caller
        starts/stops it; see also the asyncio front-end in
        :mod:`repro.serve`)."""
        self._check_open()
        return WhoisServer(self.ir, host=host, port=port)

    def metrics_snapshot(self) -> dict:
        """A JSON-able snapshot of the session's registry."""
        return self.registry.snapshot()

    def flight_events(self, **filters) -> list[dict]:
        """Decoded serve flight-recorder events, oldest first.

        Filters pass through to
        :meth:`repro.obs.flight.FlightRecorder.events` (``request_id``,
        ``types``, ``since``, ``until``, ``limit``).  Returns ``[]``
        until a :class:`~repro.serve.core.VerifyService` has attached a
        recorder to this session.
        """
        if self.flight is None:
            return []
        return self.flight.events(**filters)


def _load_source(
    source: str | Path | Ir | SynthWorld | LoadResult,
) -> tuple[Ir, LoadResult | None, AsRelationships | None]:
    """Resolve an open_session source to (ir, load, implied relationships)."""
    if isinstance(source, Ir):
        return source, None, None
    if isinstance(source, SynthWorld):
        load = LoadResult(world=source, source="synth-world")
        return load.ir, load, source.topology
    if isinstance(source, LoadResult):
        implied = source.world.topology if source.world is not None else None
        return source.ir, source, implied
    path = Path(source)
    if path.is_dir():
        load = parse_dumps(path)
        return load.ir, load, None
    from repro.ir.json_io import load_ir

    with get_registry().span("load-ir"):
        return load_ir(path), None, None


def open_session(
    source: str | Path | Ir | SynthWorld | LoadResult,
    *,
    as_rel: str | Path | AsRelationships | None = None,
    options: VerifyOptions | None = None,
    processes: int | None = 1,
    index: CompiledIndex | str | Path | None = None,
    cache_dir: str | Path | None = None,
    use_cache: bool = True,
    trace: TraceConfig | None = None,
    registry: MetricsRegistry | None = None,
    warm: bool = True,
) -> Session:
    """Open a :class:`Session`: load once, answer many queries warm.

    ``source`` is a directory of IRR dumps, a path to an exported IR JSON
    file, an in-memory :class:`Ir`, a :class:`~repro.irr.synth.SynthWorld`,
    or a prior :class:`LoadResult`.  ``as_rel`` is an
    :class:`AsRelationships` or a path to a CAIDA-style as-rel file; a
    SynthWorld source implies its own topology when ``as_rel`` is omitted.

    ``index`` pins a compiled-index artifact (a :class:`CompiledIndex` or
    a path saved by ``rpslyzer compile``); otherwise the digest-keyed disk
    cache under ``cache_dir`` is consulted and populated
    (``use_cache=False`` compiles in memory, never touching disk).  With
    ``warm=True`` (default) adoption happens before this returns, so the
    first query is already index-lookup bound.

    ``registry`` makes the session own a private metrics registry that
    every operation reports into (the serve daemon's ``/metrics`` source);
    by default operations report to the ambient registry, preserving the
    CLI's ``--metrics`` behavior.
    """
    scope = use_registry(registry) if registry is not None else nullcontext()
    with scope:
        ir, load, implied_rels = _load_source(source)
        if as_rel is None:
            relationships = implied_rels
        elif isinstance(as_rel, AsRelationships):
            relationships = as_rel
        else:
            relationships = AsRelationships.load(as_rel)
    loaded_index: CompiledIndex | None
    loaded_here = False
    if index is None or isinstance(index, CompiledIndex):
        loaded_index = index
    else:
        loaded_index = load_index(index, expect_digest=ir_digest(ir))
        loaded_here = True
    session = Session(
        ir,
        relationships,
        options=options,
        processes=processes,
        index=loaded_index,
        cache_dir=cache_dir,
        use_cache=use_cache,
        trace=trace,
        registry=registry,
        load=load,
    )
    # An artifact loaded from a path here is session-owned: close() must
    # release its mmap.  A CompiledIndex object stays caller-owned.
    session._owns_index = loaded_here
    if warm:
        session.warm()
    return session


def make_verifier(
    ir: Ir,
    relationships: AsRelationships,
    options: VerifyOptions | None = None,
    *,
    index: CompiledIndex | None = None,
) -> Verifier:
    """A single-route verifier for ad-hoc ⟨prefix, AS-path⟩ checks.

    Pass ``index`` (see :func:`compile_index`) to start the verifier from
    precompiled query caches instead of deriving them lazily.  Prefer
    :meth:`Session.verify_route` for repeated queries.
    """
    return Verifier(ir, relationships, options, index=index)


def explain_route(
    ir: Ir,
    relationships: AsRelationships,
    prefix: str,
    as_path: Iterable[int],
    *,
    options: VerifyOptions | None = None,
    index: CompiledIndex | None = None,
    collector: str = "explain",
):
    """Deprecated shim: use :meth:`Session.explain` instead."""
    warnings.warn(
        "api.explain_route() is deprecated; use "
        "api.open_session(...).explain(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    with Session(ir, relationships, options=options, index=index) as session:
        return session.explain(prefix, as_path, collector=collector)


def compile_index(ir: Ir, *, digest: str | None = None) -> CompiledIndex:
    """Compile an IR's query plans once, ahead of verification.

    The returned :class:`CompiledIndex` is immutable and picklable: every
    as-set closure, route-/filter-/peering-set resolution, prefix index,
    and AS-path regex program is materialized eagerly, so verifiers built
    from it never resolve anything in the hot loop.  Feed it to
    :func:`open_session`/:func:`make_verifier`, persist it with
    :func:`save_index`, or let :func:`get_or_compile` manage an on-disk
    cache keyed by :func:`ir_digest`.  ``digest`` stamps the artifact for
    cache validation (defaults to unstamped).
    """
    return _compile_index(ir, digest=digest)


def patch_index(
    index: CompiledIndex,
    old_ir: Ir,
    new_ir: Ir,
    journal: Journal,
    *,
    digest: str | None = None,
) -> CompiledIndex:
    """Patch a compiled index with one journal's deltas (the fast path).

    See :func:`repro.core.compiled.patch_index`; prefer
    :meth:`Session.apply_deltas`, which also handles the degraded-journal
    fallback and the old index's fd lifecycle.
    """
    return _patch_index(index, old_ir, new_ir, journal, digest=digest)


def verify_table(
    ir: Ir,
    relationships: AsRelationships,
    entries: Iterable[RouteEntry],
    *,
    options: VerifyOptions | None = None,
    processes: int | None = 1,
    chunk_size: int = 2000,
    start_method: str | None = None,
    on_report: Callable[[RouteReport], None] | None = None,
    fault_hook: Callable[[int], None] | None = None,
    index: CompiledIndex | None = None,
) -> VerificationStats:
    """Deprecated shim: use :meth:`Session.verify_table` instead.

    Opens a throwaway :class:`Session` per call; behavior (serial/parallel
    paths, degradation reporting, index handling) is unchanged from 1.3.
    """
    warnings.warn(
        "api.verify_table() is deprecated; use "
        "api.open_session(...).verify_table(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    with Session(ir, relationships, options=options, index=index) as session:
        return session.verify_table(
            entries,
            processes=processes,
            chunk_size=chunk_size,
            start_method=start_method,
            on_report=on_report,
            fault_hook=fault_hook,
        )


def characterize(ir: Ir) -> dict:
    """The Section 4 characterization of an IR as one JSON-able dict."""
    with Session(ir) as session:
        return session.characterize()


def recommend_migrations(
    ir: Ir,
    asns: Iterable[int] | None = None,
    relationships: AsRelationships | None = None,
    limit: int = 0,
) -> Iterator[RouteSetRecommendation]:
    """Yield route-set migration proposals (the paper's Section 4 advice)."""
    query = QueryEngine(ir)
    targets = sorted(ir.aut_nums) if asns is None else [int(asn) for asn in asns]
    emitted = 0
    for asn in targets:
        recommendation = recommend_route_set(ir, asn, query, relationships)
        if recommendation is None:
            continue
        yield recommendation
        emitted += 1
        if limit and emitted >= limit:
            return


def serve_whois(ir: Ir, host: str = "127.0.0.1", port: int = 4343) -> WhoisServer:
    """Deprecated shim: use :meth:`Session.whois_server` instead."""
    warnings.warn(
        "api.serve_whois() is deprecated; use "
        "api.open_session(...).whois_server(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    with Session(ir) as session:
        return session.whois_server(host=host, port=port)


def run_chaos(
    seed: int = 42,
    preset: str = "tiny",
    processes: int = 2,
    only: str | None = None,
):
    """Run the fault-injection suite; returns a ``repro.chaos.ChaosReport``.

    Every mutator and fault in the catalogue is driven against a seeded
    synthetic world (see ``docs/robustness.md``); the report carries
    pass/fail resilience checks plus the aggregated
    :class:`DegradationReport`.  ``only="serve-supervisor"`` restricts
    the run to the serve worker-pool crash/hang layer.
    """
    from repro.chaos import run_chaos as _run_chaos

    return _run_chaos(seed=seed, preset=preset, processes=processes, only=only)
