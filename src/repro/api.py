"""``repro.api`` — the single supported entry point to the pipeline.

The facade mirrors the paper's four stages and is what the CLI itself
runs on; everything else under ``repro.core``/``repro.irr`` is
implementation detail and may change between versions:

* :func:`synthesize` — build an offline world (IRR dumps + topology);
* :func:`parse_dumps` — parse a directory of dumps into one merged IR;
* :func:`verify_table` — verify routes, serial or multi-process;
* :func:`characterize` — the Section 4 characterization of an IR.

All stages report into the current :mod:`repro.obs` metrics registry when
one is installed, so a caller gets phase timings and counters with::

    from repro import api
    from repro.obs import MetricsRegistry, use_registry, build_manifest

    with use_registry(MetricsRegistry()) as registry:
        ir, errors = api.parse_dumps("dumps/")
        stats = api.verify_table(ir, rels, entries, processes=8)
    manifest = build_manifest("my-run", registry)
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.bgp.table import RouteEntry
from repro.bgp.topology import AsRelationships
from repro.core.compiled import (
    CompiledIndex,
    IndexCacheError,
    get_or_compile,
    index_cache_path,
    ir_digest,
    load_index,
    save_index,
)
from repro.core.compiled import compile_index as _compile_index
from repro.core.degradation import DegradationReport
from repro.core.parallel import verify_table as _verify_table
from repro.core.query import QueryEngine
from repro.core.report import RouteReport
from repro.core.verify import Verifier, VerifyOptions
from repro.ir.model import Ir
from repro.irr.registry import Registry, parse_registry_dir
from repro.irr.synth import SynthConfig, SynthWorld, build_world, default_config, tiny_config
from repro.irr.whois import WhoisServer
from repro.obs import get_registry
from repro.obs.trace import TraceConfig, Tracer, use_tracer
from repro.rpsl.errors import ErrorCollector
from repro.stats.as_sets import as_set_stats
from repro.stats.routes import route_object_stats
from repro.stats.usage import filter_kind_census, peering_simplicity, rules_ccdf
from repro.stats.verification import VerificationStats
from repro.tools.recommend import RouteSetRecommendation, recommend_route_set

__all__ = [
    "CompiledIndex",
    "DegradationReport",
    "IndexCacheError",
    "compile_index",
    "get_or_compile",
    "index_cache_path",
    "ir_digest",
    "load_index",
    "save_index",
    "synthesize",
    "parse_dumps",
    "parse_registry",
    "make_verifier",
    "explain_route",
    "verify_table",
    "characterize",
    "recommend_migrations",
    "run_chaos",
    "serve_whois",
]


def synthesize(
    config: SynthConfig | str | None = None, *, seed: int = 42
) -> SynthWorld:
    """Generate a synthetic world (Section 3's offline evaluation setup).

    ``config`` is a :class:`SynthConfig`, a preset name (``"tiny"`` or
    ``"default"``), or None for the default preset; ``seed`` applies to
    preset names only.
    """
    if config is None:
        config = default_config(seed)
    elif isinstance(config, str):
        if config == "tiny":
            config = tiny_config(seed)
        elif config == "default":
            config = default_config(seed)
        else:
            raise ValueError(f"unknown preset {config!r} (try 'tiny' or 'default')")
    with get_registry().span("synth"):
        return build_world(config)


def parse_registry(directory: str | Path) -> Registry:
    """Parse every ``*.db`` dump in a directory into a multi-IRR registry."""
    return parse_registry_dir(directory)


def parse_dumps(directory: str | Path) -> tuple[Ir, ErrorCollector]:
    """Parse and priority-merge a directory of IRR dumps.

    Returns the merged IR plus every parse issue across all dumps.  Use
    :func:`parse_registry` instead when per-IRR views (Table 1) are needed.
    """
    registry = parse_registry_dir(directory)
    return registry.merged(), registry.all_errors()


def make_verifier(
    ir: Ir,
    relationships: AsRelationships,
    options: VerifyOptions | None = None,
    *,
    index: CompiledIndex | None = None,
) -> Verifier:
    """A single-route verifier for ad-hoc ⟨prefix, AS-path⟩ checks.

    Pass ``index`` (see :func:`compile_index`) to start the verifier from
    precompiled query caches instead of deriving them lazily.
    """
    return Verifier(ir, relationships, options, index=index)


def explain_route(
    ir: Ir,
    relationships: AsRelationships,
    prefix: str,
    as_path: Iterable[int],
    *,
    options: VerifyOptions | None = None,
    index: CompiledIndex | None = None,
    collector: str = "explain",
):
    """Replay one ⟨prefix, AS-path⟩ with tracing forced on.

    Returns ``(report, events)``: the :class:`~repro.core.report.
    RouteReport` plus the full decision-provenance event list (sample rate
    1, deep chains always recorded — the verifier is fresh, so every hop is
    a cache miss and its filter-evaluation path is captured).  This is what
    ``rpslyzer explain`` prints.
    """
    tracer = Tracer(TraceConfig(sample_rate=1, deep=True))
    with use_tracer(tracer):
        verifier = Verifier(ir, relationships, options, index=index)
        report = verifier.verify_route(prefix, tuple(as_path), collector=collector)
    return report, tracer.events


def compile_index(ir: Ir, *, digest: str | None = None) -> CompiledIndex:
    """Compile an IR's query plans once, ahead of verification.

    The returned :class:`CompiledIndex` is immutable and picklable: every
    as-set closure, route-/filter-/peering-set resolution, prefix index,
    and AS-path regex program is materialized eagerly, so verifiers built
    from it never resolve anything in the hot loop.  Feed it to
    :func:`verify_table`/:func:`make_verifier`, persist it with
    :func:`save_index`, or let :func:`get_or_compile` manage an on-disk
    cache keyed by :func:`ir_digest`.  ``digest`` stamps the artifact for
    cache validation (defaults to unstamped).
    """
    return _compile_index(ir, digest=digest)


def verify_table(
    ir: Ir,
    relationships: AsRelationships,
    entries: Iterable[RouteEntry],
    *,
    options: VerifyOptions | None = None,
    processes: int | None = 1,
    chunk_size: int = 2000,
    start_method: str | None = None,
    on_report: Callable[[RouteReport], None] | None = None,
    fault_hook: Callable[[int], None] | None = None,
    index: CompiledIndex | None = None,
) -> VerificationStats:
    """Verify a table of routes (Section 5), serial or multi-process.

    ``entries`` may be any iterable — including the streaming generator
    from :func:`repro.bgp.table.parse_table_file` — and is chunked lazily.
    ``processes=1`` verifies in-process; ``N`` fans out to worker
    processes; ``None`` uses every CPU.  Both paths return equal
    :class:`VerificationStats`.  ``on_report`` receives every per-route
    report (forces the serial path).

    The parallel path survives worker death: failed chunks are requeued
    and, if they keep failing, verified serially in-process; what happened
    is recorded on the returned stats' ``degradation``
    (:class:`DegradationReport`) and in the run manifest.  ``fault_hook``
    is chaos-harness instrumentation (see :mod:`repro.chaos`).

    ``index`` is a precompiled :class:`CompiledIndex` (see
    :func:`compile_index`/:func:`get_or_compile`); the multi-process path
    compiles one automatically when none is given, so workers share the
    artifact instead of re-deriving caches per process.
    """
    return _verify_table(
        ir,
        relationships,
        entries,
        options=options,
        processes=processes,
        chunk_size=chunk_size,
        start_method=start_method,
        on_report=on_report,
        fault_hook=fault_hook,
        index=index,
    )


def characterize(ir: Ir) -> dict:
    """The Section 4 characterization of an IR as one JSON-able dict."""
    with get_registry().span("characterize"):
        return {
            "counts": ir.counts(),
            "rules_ccdf_head": rules_ccdf(ir)[:20],
            "peering_simplicity": peering_simplicity(ir),
            "filter_kinds": filter_kind_census(ir),
            "route_objects": route_object_stats(ir).as_dict(),
            "as_sets": as_set_stats(ir).as_dict(),
        }


def recommend_migrations(
    ir: Ir,
    asns: Iterable[int] | None = None,
    relationships: AsRelationships | None = None,
    limit: int = 0,
) -> Iterator[RouteSetRecommendation]:
    """Yield route-set migration proposals (the paper's Section 4 advice)."""
    query = QueryEngine(ir)
    targets = sorted(ir.aut_nums) if asns is None else [int(asn) for asn in asns]
    emitted = 0
    for asn in targets:
        recommendation = recommend_route_set(ir, asn, query, relationships)
        if recommendation is None:
            continue
        yield recommendation
        emitted += 1
        if limit and emitted >= limit:
            return


def serve_whois(ir: Ir, host: str = "127.0.0.1", port: int = 4343) -> WhoisServer:
    """A WHOIS/IRRd-style server over an IR (caller starts/stops it)."""
    return WhoisServer(ir, host=host, port=port)


def run_chaos(seed: int = 42, preset: str = "tiny", processes: int = 2):
    """Run the fault-injection suite; returns a ``repro.chaos.ChaosReport``.

    Every mutator and fault in the catalogue is driven against a seeded
    synthetic world (see ``docs/robustness.md``); the report carries
    pass/fail resilience checks plus the aggregated
    :class:`DegradationReport`.
    """
    from repro.chaos import run_chaos as _run_chaos

    return _run_chaos(seed=seed, preset=preset, processes=processes)
