"""Command-line interface: ``rpslyzer <subcommand>``.

Subcommands mirror the paper's pipeline:

* ``synth <dir>`` — generate a synthetic world (13 IRR dumps, an as-rel
  file, collector peers) into a directory;
* ``parse <dir> -o ir.json`` — parse all ``*.db`` dumps, priority-merge,
  and export the IR as JSON;
* ``verify --ir ir.json --as-rel as-rel.txt --table dump.txt`` — verify a
  BGP table dump and print summary statistics (or per-route reports with
  ``--report``);
* ``stats --ir ir.json`` — print the Section 4 characterization.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bgp.table import parse_table_file, write_table_file
from repro.bgp.routegen import collector_routes
from repro.bgp.topology import AsRelationships
from repro.core.verify import Verifier, VerifyOptions
from repro.ir.json_io import dump_ir, load_ir
from repro.irr.registry import parse_registry_dir
from repro.stats.as_sets import as_set_stats
from repro.stats.routes import route_object_stats
from repro.stats.usage import filter_kind_census, peering_simplicity, rules_ccdf
from repro.stats.verification import VerificationStats

__all__ = ["main"]


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.irr.synth import SynthConfig, build_world, default_config, tiny_config

    if args.preset == "tiny":
        config = tiny_config(args.seed)
    elif args.preset == "default":
        config = default_config(args.seed)
    else:
        config = SynthConfig(seed=args.seed)
    world = build_world(config)
    world.write_to_dir(args.directory)
    if args.routes:
        entries = collector_routes(world.topology, world.announced, world.collectors)
        count = write_table_file(Path(args.directory) / "table.txt", entries)
        print(f"wrote {count} routes", file=sys.stderr)
    print(f"world written to {args.directory}", file=sys.stderr)
    return 0


def _cmd_parse(args: argparse.Namespace) -> int:
    registry = parse_registry_dir(args.directory)
    merged = registry.merged()
    errors = registry.all_errors()
    dump_ir(merged, args.output)
    counts = merged.counts()
    print(
        f"parsed {counts['aut-num']} aut-nums, {counts['route']} routes, "
        f"{counts['import'] + counts['export']} rules, "
        f"{len(errors)} parse issues -> {args.output}",
        file=sys.stderr,
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    ir = load_ir(args.ir)
    relationships = AsRelationships.load(args.as_rel)
    options = VerifyOptions(
        relaxations=not args.no_relaxations, safelists=not args.no_safelists
    )
    if args.processes > 1 and not args.report:
        from repro.core.parallel import verify_entries_parallel

        entries = list(parse_table_file(args.table))
        stats = verify_entries_parallel(
            ir, relationships, entries, options, processes=args.processes
        )
    else:
        verifier = Verifier(ir, relationships, options)
        stats = VerificationStats()
        for entry in parse_table_file(args.table):
            report = verifier.verify_entry(entry)
            stats.add_report(report)
            if args.report and report.ignored is None:
                print(report)
                print()
    if args.figures_dir:
        from repro.stats import export

        directory = Path(args.figures_dir)
        directory.mkdir(parents=True, exist_ok=True)
        export.write_csv(export.fig2_rows(stats), directory / "fig2_per_as.csv")
        export.write_csv(export.fig3_rows(stats), directory / "fig3_per_pair.csv")
        export.write_csv(export.fig4_rows(stats), directory / "fig4_per_route.csv")
        export.write_csv(export.fig5_rows(stats), directory / "fig5_unrecorded.csv")
        export.write_csv(export.fig6_rows(stats), directory / "fig6_special.csv")
        print(f"figure CSVs written to {directory}", file=sys.stderr)
    json.dump(stats.summary(), sys.stdout, indent=2, default=str)
    print()
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    ir = load_ir(args.ir)
    result = {
        "counts": ir.counts(),
        "rules_ccdf_head": rules_ccdf(ir)[:20],
        "peering_simplicity": peering_simplicity(ir),
        "filter_kinds": filter_kind_census(ir),
        "route_objects": route_object_stats(ir).as_dict(),
        "as_sets": as_set_stats(ir).as_dict(),
    }
    json.dump(result, sys.stdout, indent=2, default=str)
    print()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.tools.lint import lint_ir

    ir = load_ir(args.ir)
    relationships = AsRelationships.load(args.as_rel) if args.as_rel else None
    report = lint_ir(ir, None, relationships)
    print(report.render())
    print(f"\n{len(report)} finding(s): {report.counts()}", file=sys.stderr)
    return 1 if args.strict and report.findings else 0


def _cmd_asrel(args: argparse.Namespace) -> int:
    from repro.tools.asrel import infer_relationships, score_inference

    ir = load_ir(args.ir)
    inferred = infer_relationships(ir)
    if args.output:
        inferred.save(args.output)
        print(f"inferred as-rel written to {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(inferred.to_as_rel_text())
    if args.truth:
        truth = AsRelationships.load(args.truth)
        json.dump(score_inference(truth, inferred).as_dict(), sys.stderr, indent=2)
        print(file=sys.stderr)
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.tools.classify import classify_ir

    ir = load_ir(args.ir)
    relationships = AsRelationships.load(args.as_rel) if args.as_rel else None
    all_asns = set(relationships.ases()) if relationships else None
    labels, census = classify_ir(ir, all_asns, relationships)
    json.dump({"census": dict(census)}, sys.stdout, indent=2)
    print()
    if args.verbose:
        for asn in sorted(labels):
            print(f"AS{asn}\t{labels[asn]}", file=sys.stderr)
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    from repro.core.query import QueryEngine
    from repro.tools.recommend import recommend_route_set

    ir = load_ir(args.ir)
    relationships = AsRelationships.load(args.as_rel) if args.as_rel else None
    query = QueryEngine(ir)
    targets = [int(asn) for asn in args.asn] if args.asn else sorted(ir.aut_nums)
    emitted = 0
    for asn in targets:
        recommendation = recommend_route_set(ir, asn, query, relationships)
        if recommendation is None:
            continue
        print(recommendation.summary())
        print(recommendation.rpsl)
        print()
        emitted += 1
        if args.limit and emitted >= args.limit:
            break
    print(f"{emitted} migration(s) proposed", file=sys.stderr)
    return 0


def _cmd_whois(args: argparse.Namespace) -> int:
    from repro.irr.whois import WhoisServer

    ir = load_ir(args.ir)
    server = WhoisServer(ir, host=args.host, port=args.port)
    print(f"whois server on {args.host}:{server.port} (Ctrl-C to stop)", file=sys.stderr)
    try:
        server.start()
        import time

        while True:  # pragma: no cover - interactive loop
            time.sleep(1)
    except KeyboardInterrupt:  # pragma: no cover
        pass
    finally:
        server.stop()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="rpslyzer", description="RPSL parsing, characterization, verification"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    synth = subparsers.add_parser("synth", help="generate a synthetic world")
    synth.add_argument("directory")
    synth.add_argument("--preset", choices=("tiny", "default"), default="default")
    synth.add_argument("--seed", type=int, default=42)
    synth.add_argument("--routes", action="store_true", help="also write table.txt")
    synth.set_defaults(func=_cmd_synth)

    parse = subparsers.add_parser("parse", help="parse IRR dumps to IR JSON")
    parse.add_argument("directory")
    parse.add_argument("-o", "--output", default="ir.json")
    parse.set_defaults(func=_cmd_parse)

    verify = subparsers.add_parser("verify", help="verify a BGP table dump")
    verify.add_argument("--ir", required=True)
    verify.add_argument("--as-rel", required=True)
    verify.add_argument("--table", required=True)
    verify.add_argument("--report", action="store_true", help="print per-route reports")
    verify.add_argument("--no-relaxations", action="store_true")
    verify.add_argument("--no-safelists", action="store_true")
    verify.add_argument("--processes", type=int, default=1, help="worker processes")
    verify.add_argument("--figures-dir", help="also write Figures 2-6 CSV data here")
    verify.set_defaults(func=_cmd_verify)

    stats = subparsers.add_parser("stats", help="characterize an IR")
    stats.add_argument("--ir", required=True)
    stats.set_defaults(func=_cmd_stats)

    lint = subparsers.add_parser("lint", help="lint RPSL policies")
    lint.add_argument("--ir", required=True)
    lint.add_argument("--as-rel", help="enable relationship-aware checks")
    lint.add_argument("--strict", action="store_true", help="exit 1 on findings")
    lint.set_defaults(func=_cmd_lint)

    asrel = subparsers.add_parser(
        "asrel", help="infer AS relationships from policies"
    )
    asrel.add_argument("--ir", required=True)
    asrel.add_argument("-o", "--output", help="write as-rel file here")
    asrel.add_argument("--truth", help="ground-truth as-rel for scoring")
    asrel.set_defaults(func=_cmd_asrel)

    classify = subparsers.add_parser("classify", help="classify ASes by RPSL usage")
    classify.add_argument("--ir", required=True)
    classify.add_argument("--as-rel")
    classify.add_argument("-v", "--verbose", action="store_true")
    classify.set_defaults(func=_cmd_classify)

    recommend = subparsers.add_parser(
        "recommend", help="propose route-set migrations (the paper's §4 advice)"
    )
    recommend.add_argument("--ir", required=True)
    recommend.add_argument("--as-rel")
    recommend.add_argument("--asn", nargs="*", help="specific ASNs (default: all)")
    recommend.add_argument("--limit", type=int, default=0)
    recommend.set_defaults(func=_cmd_recommend)

    whois = subparsers.add_parser("whois", help="serve the IR over WHOIS/IRRd")
    whois.add_argument("--ir", required=True)
    whois.add_argument("--host", default="127.0.0.1")
    whois.add_argument("--port", type=int, default=4343)
    whois.set_defaults(func=_cmd_whois)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
