"""Command-line interface: ``rpslyzer <subcommand>``.

Subcommands mirror the paper's pipeline:

* ``synth <dir>`` — generate a synthetic world (13 IRR dumps, an as-rel
  file, collector peers) into a directory;
* ``parse <dir> -o ir.json`` — parse all ``*.db`` dumps, priority-merge,
  and export the IR as JSON;
* ``verify --ir ir.json --as-rel as-rel.txt --table dump.txt`` — verify a
  BGP table dump and print summary statistics (or per-route reports with
  ``--report``); the verification index is compiled once and cached on
  disk keyed by the IR digest (``--no-index-cache`` opts out);
* ``compile --ir ir.json`` — precompile the verification index into the
  cache (or ``-o artifact.pkl``) ahead of a verify run;
* ``stats --ir ir.json`` — print the Section 4 characterization;
* ``metrics run.json`` — render a run manifest as Prometheus exposition
  text (``--format json`` for the manifest with each histogram's
  cumulative ``[le, count]`` view spelled out, ``--out`` to a file);
* ``explain --ir ir.json --as-rel as-rel.txt 10.0.0.0/24 64500 64501`` —
  replay one route with tracing forced on and print which rule, filter
  term, and relaxation tier decided each hop;
* ``trace events.jsonl`` — summarize or filter a trace file written by
  ``verify --trace``;
* ``chaos --seed 42`` — run the fault-injection suite and print its
  degradation report (exit 1 if any resilience check fails);
* ``serve --ir ir.json --as-rel as-rel.txt`` — run the resident
  verification daemon: HTTP/JSON (``POST /verify``, ``POST /explain``,
  ``GET /healthz``, ``GET /metrics``) and optionally the WHOIS line
  protocol with a ``!v`` verify command, answering warm from one
  loaded session (see ``docs/serving.md``); request-scoped telemetry
  (correlation ids, stage timings, ``--access-log``, the flight
  recorder) is on by default — ``--no-telemetry`` opts out;
* ``debug <incident.jsonl | http://host:port>`` — render a flight
  recording (an incident dump or a live daemon's ``/debug/flight``
  ring) as a filtered timeline (``--id``, ``--type``, ``--since``,
  ``--until``, ``--limit``, ``--json``).

The pipeline subcommands accept ``--metrics <path>`` to record the run —
phase wall/CPU timings, counters, histograms, input digests — into a JSON
run manifest for diffable, auditable benchmarking (see
``docs/observability.md``).

Every subcommand is a thin adapter over a :class:`repro.api.Session`
(opened via :func:`repro.api.open_session`), the supported programmatic
entry point; the CLI touches no pipeline internals.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from contextlib import contextmanager
from pathlib import Path

from repro import VerifyOptions, api
from repro.bgp.routegen import collector_routes
from repro.bgp.table import parse_table_file, write_table_file
from repro.bgp.topology import AsRelationships
from repro.ir.json_io import dump_ir, load_ir
from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    PhaseProfiler,
    TraceConfig,
    build_manifest,
    cache_summary,
    cumulative_view,
    load_manifest,
    read_trace_events,
    render_prometheus,
    summarize_events,
    use_registry,
    write_manifest,
)

__all__ = ["main"]


@contextmanager
def _metrics_session(
    args: argparse.Namespace, inputs: list, config: dict, extras: dict | None = None
):
    """Record the run into a manifest when ``--metrics <path>`` was given.

    ``extras`` lets the command deposit values computed inside the session
    (``extras["degradation"]``, ``extras["trace"]``) for inclusion in the
    manifest.  ``--profile`` additionally runs the background resource
    sampler for the session and records its timeline.
    """
    path = getattr(args, "metrics", None)
    if not path:
        if getattr(args, "profile", False):
            print("--profile requires --metrics; ignoring", file=sys.stderr)
        yield
        return
    registry = MetricsRegistry()
    profiler = PhaseProfiler(registry) if getattr(args, "profile", False) else None
    with use_registry(registry):
        if profiler is not None:
            profiler.start()
        try:
            yield
        finally:
            if profiler is not None:
                profiler.stop()
    manifest = build_manifest(
        command=" ".join([args.command, *map(str, inputs)]),
        registry=registry,
        inputs=inputs,
        config=config,
        degradation=(extras or {}).get("degradation"),
        profile=profiler.snapshot() if profiler is not None else None,
        trace=(extras or {}).get("trace"),
    )
    write_manifest(path, manifest)
    print(f"run manifest written to {path}", file=sys.stderr)


def _cmd_synth(args: argparse.Namespace) -> int:
    world = api.synthesize(args.preset, seed=args.seed)
    world.write_to_dir(args.directory)
    if args.routes:
        entries = collector_routes(world.topology, world.announced, world.collectors)
        count = write_table_file(Path(args.directory) / "table.txt", entries)
        print(f"wrote {count} routes", file=sys.stderr)
    print(f"world written to {args.directory}", file=sys.stderr)
    return 0


def _cmd_parse(args: argparse.Namespace) -> int:
    with _metrics_session(args, [args.directory], {"output": args.output}):
        load = api.parse_dumps(args.directory)
        dump_ir(load.ir, args.output)
    counts = load.ir.counts()
    print(
        f"parsed {counts['aut-num']} aut-nums, {counts['route']} routes, "
        f"{counts['import'] + counts['export']} rules, "
        f"{len(load.errors)} parse issues -> {args.output}",
        file=sys.stderr,
    )
    return 0


def _open_cli_session(args: argparse.Namespace, config: dict, **kwargs):
    """An :func:`api.open_session` honoring the CLI's index-cache knobs.

    ``--index PATH`` pins a specific artifact; ``--no-index-cache``
    compiles in-memory without touching disk; the default consults (and
    populates) the on-disk cache keyed by the IR content digest.  The
    choice and the digest are recorded into the manifest ``config``.
    """
    index = getattr(args, "index", None) or None
    use_cache = True
    if index is not None:
        config["index"] = {"source": str(index)}
    elif getattr(args, "no_index_cache", False):
        use_cache = False
        config["index"] = {"source": "compiled", "cache": False}
    else:
        config["index"] = {"source": "cache", "cache": True}
    session = api.open_session(
        args.ir,
        index=index,
        cache_dir=getattr(args, "cache_dir", None),
        use_cache=use_cache,
        **kwargs,
    )
    config["ir_digest"] = session.digest
    return session


def _cmd_verify(args: argparse.Namespace) -> int:
    options = VerifyOptions(
        relaxations=not args.no_relaxations, safelists=not args.no_safelists
    )
    config = {
        "relaxations": options.relaxations,
        "safelists": options.safelists,
        "processes": args.processes,
        "report": bool(args.report),
    }
    trace_config = None
    if args.trace:
        trace_config = TraceConfig(sample_rate=args.trace_sample)
        config["trace"] = {"path": str(args.trace), "sample_rate": args.trace_sample}
    extras: dict = {}
    tracer = None
    with _metrics_session(args, [args.ir, args.as_rel, args.table], config, extras):
        with _open_cli_session(
            args,
            config,
            as_rel=args.as_rel,
            options=options,
            processes=args.processes,
            trace=trace_config,
        ) as session:

            def print_report(report) -> None:
                if report.ignored is None:
                    print(report)
                    print()

            stats = session.verify_table(
                parse_table_file(args.table),
                on_report=print_report if args.report else None,
            )
            extras["degradation"] = stats.degradation.as_dict()
            tracer = session.tracer
            if tracer is not None:
                extras["trace"] = {"path": str(args.trace), **tracer.stats()}
    if tracer is not None:
        tracer.write(args.trace)
        print(
            f"trace: {tracer.emitted} event(s) "
            f"({tracer.sampled['head']} head / {tracer.sampled['verdict']} verdict "
            f"sampled route(s)) -> {args.trace}",
            file=sys.stderr,
        )
    if args.figures_dir:
        from repro.stats import export

        directory = Path(args.figures_dir)
        directory.mkdir(parents=True, exist_ok=True)
        export.write_csv(export.fig2_rows(stats), directory / "fig2_per_as.csv")
        export.write_csv(export.fig3_rows(stats), directory / "fig3_per_pair.csv")
        export.write_csv(export.fig4_rows(stats), directory / "fig4_per_route.csv")
        export.write_csv(export.fig5_rows(stats), directory / "fig5_unrecorded.csv")
        export.write_csv(export.fig6_rows(stats), directory / "fig6_special.csv")
        print(f"figure CSVs written to {directory}", file=sys.stderr)
    json.dump(stats.summary(), sys.stdout, indent=2, default=str)
    print()
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with _metrics_session(args, [args.ir], {}):
        ir = load_ir(args.ir)
        result = api.characterize(ir)
    json.dump(result, sys.stdout, indent=2, default=str)
    print()
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    config = {"output": args.output, "cache_dir": args.cache_dir}
    with _metrics_session(args, [args.ir], config):
        ir = load_ir(args.ir)
        digest = api.ir_digest(ir)
        config["ir_digest"] = digest
        destination = (
            Path(args.output)
            if args.output
            else api.index_cache_path(digest, args.cache_dir)
        )
        if destination.exists() and not args.force:
            print(
                f"{destination} already exists (use --force to recompile)",
                file=sys.stderr,
            )
            if args.stats:
                existing = api.load_index(destination, expect_digest=digest)
                try:
                    json.dump(existing.stats(), sys.stdout, indent=2, sort_keys=True)
                    print()
                finally:
                    existing.close()
            return 0
        index = api.compile_index(ir, digest=digest)
        api.save_index(index, destination)
    stats = index.stats()
    print(
        f"compiled index for IR {digest[:16]} -> {destination} "
        f"({stats['as_sets']} as-sets, {stats['route_sets']} route-sets, "
        f"{stats['aspath_regexes']} regexes, "
        f"{stats['plane_bytes']} plane bytes, "
        f"{stats['compile_seconds']:.2f}s)",
        file=sys.stderr,
    )
    if args.stats:
        json.dump(stats, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


_CACHE_FIGURES = (
    "hop_cache_hits",
    "hop_cache_misses",
    "hop_cache_evictions",
    "hop_cache_hit_rate",
    "index_cache_hits",
    "index_cache_misses",
    "index_compile_seconds",
    "index_load_seconds",
    "index_mmap_bytes",
)


def _cmd_metrics(args: argparse.Namespace) -> int:
    manifest = load_manifest(args.manifest)
    if args.format == "json":
        document = dict(manifest)
        metrics = document.get("metrics")
        if isinstance(metrics, dict) and metrics.get("histograms"):
            # Spell out each histogram's cumulative [le, count] pairs so
            # external percentile math never has to know the internal
            # bucket_counts alignment (the final +Inf bucket is implicit
            # there — one more count than there are bounds).
            metrics = dict(metrics)
            metrics["histograms"] = [
                {**record, "cumulative": cumulative_view(record)}
                for record in metrics["histograms"]
            ]
            document["metrics"] = metrics
        rendered = json.dumps(document, indent=2, sort_keys=True) + "\n"
    else:
        rendered = render_prometheus(manifest)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(rendered)
        print(f"metrics ({args.format}) written to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(rendered)
    if args.format == "prom":
        # The exposition content type a scraper should be served with.
        print(f"content-type: {PROMETHEUS_CONTENT_TYPE}", file=sys.stderr)
    caches = cache_summary(manifest, cache_dir=args.cache_dir)
    # The run's own cache counters; disk figures are reported separately
    # below (disk_cache_dir is always set, so it must not gate this line).
    if any(caches[figure] for figure in _CACHE_FIGURES):
        print(
            "caches: hop {hits}/{total} hits ({rate:.1%}), "
            "{evictions} evictions; index {index_hits} hits / "
            "{index_misses} misses, compile {compile:.2f}s".format(
                hits=caches["hop_cache_hits"],
                total=caches["hop_cache_hits"] + caches["hop_cache_misses"],
                rate=caches["hop_cache_hit_rate"],
                evictions=caches["hop_cache_evictions"],
                index_hits=caches["index_cache_hits"],
                index_misses=caches["index_cache_misses"],
                compile=caches["index_compile_seconds"],
            ),
            file=sys.stderr,
        )
        if caches["index_mmap_bytes"]:
            print(
                "index mmap: {size:.0f} bytes attached in {load:.3f}s".format(
                    size=caches["index_mmap_bytes"],
                    load=caches["index_load_seconds"],
                ),
                file=sys.stderr,
            )
    if caches["index_generation"]:
        serials = ", ".join(
            f"{source}:{serial:.0f}"
            for source, serial in sorted(caches["journal_serials"].items())
        )
        print(
            "incremental: generation {generation:.0f}, last delta apply "
            "{delta:.4f}s{serials}".format(
                generation=caches["index_generation"],
                delta=caches["delta_apply_seconds"],
                serials=f" (serials {serials})" if serials else "",
            ),
            file=sys.stderr,
        )
    if caches["disk_cache_entries"] is None:
        print(
            f"index disk cache: none ({caches['disk_cache_dir']} does not exist)",
            file=sys.stderr,
        )
    else:
        print(
            "index disk cache: {entries} artifact(s), {size} bytes in {directory}".format(
                entries=caches["disk_cache_entries"],
                size=caches["disk_cache_bytes"],
                directory=caches["disk_cache_dir"],
            ),
            file=sys.stderr,
        )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    with api.open_session(args.ir, as_rel=args.as_rel, warm=False) as session:
        ir = session.ir
        report, events = session.explain(args.prefix, args.as_path)
    if args.json:
        json.dump(
            {"report": str(report), "events": events},
            sys.stdout,
            indent=2,
            sort_keys=True,
        )
        print()
        return 0
    print(f"route {args.prefix} path {' '.join(map(str, args.as_path))}")
    if report.ignored is not None:
        print(f"  ignored: {report.ignored}")
        return 0
    hop_events = [event for event in events if event.get("event") == "hop"]
    for hop, event in zip(report.hops, hop_events):
        subject = hop.subject_asn
        print(
            f"  {hop.direction} {hop.from_asn} -> {hop.to_asn}: "
            f"{hop.status.label} (rules of AS{subject})"
        )
        rule_index = event.get("rule")
        if rule_index is not None:
            aut_num = ir.aut_nums.get(subject)
            rules = (
                aut_num.imports if hop.direction == "import" else aut_num.exports
            ) if aut_num is not None else []
            if 0 <= rule_index < len(rules) and rules[rule_index].raw:
                print(f"    rule[{rule_index}]: {' '.join(rules[rule_index].raw.split())}")
            else:
                print(f"    rule[{rule_index}]")
        if event.get("registry"):
            print(f"    registry: {event['registry']}")
        if event.get("tier"):
            print(f"    tier: {event['tier']}")
        if event.get("unrecorded"):
            print(f"    unrecorded: {event['unrecorded']}")
        for item in event.get("items", ()):
            print(f"    item: {item}")
        for step in event.get("chain", ()):
            print(f"    eval: {step}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    events = read_trace_events(args.trace_file)
    selected = events
    if args.status:
        wanted_traces = {
            event.get("trace")
            for event in events
            if event.get("event") == "hop" and event.get("status") == args.status
        }
        selected = [event for event in selected if event.get("trace") in wanted_traces]
    if args.prefix:
        wanted_traces = {
            event.get("trace")
            for event in events
            if event.get("event") == "route" and event.get("prefix") == args.prefix
        }
        selected = [event for event in selected if event.get("trace") in wanted_traces]
    if args.trace_id:
        selected = [event for event in selected if event.get("trace") == args.trace_id]
    if args.json:
        shown = selected[: args.limit] if args.limit else selected
        for event in shown:
            print(json.dumps(event, separators=(",", ":"), sort_keys=True))
        return 0
    summary = summarize_events(selected)
    print(
        f"{summary['routes']} route(s), {summary['hops']} hop event(s), "
        f"{summary['workers']} worker(s)"
    )
    if summary["sampled"]:
        sampled = ", ".join(
            f"{reason}: {count}" for reason, count in sorted(summary["sampled"].items())
        )
        print(f"sampled: {sampled}")
    for status, count in sorted(summary["hop_status"].items()):
        print(f"  {status}: {count}")
    if summary["top_evidence"]:
        print("top evidence:")
        for name, count in summary["top_evidence"]:
            print(f"  {name}: {count}")
    if args.limit:
        for event in selected[: args.limit]:
            print(json.dumps(event, separators=(",", ":"), sort_keys=True))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.tools.lint import lint_ir

    ir = load_ir(args.ir)
    relationships = AsRelationships.load(args.as_rel) if args.as_rel else None
    report = lint_ir(ir, None, relationships)
    print(report.render())
    print(f"\n{len(report)} finding(s): {report.counts()}", file=sys.stderr)
    return 1 if args.strict and report.findings else 0


def _cmd_asrel(args: argparse.Namespace) -> int:
    from repro.tools.asrel import infer_relationships, score_inference

    ir = load_ir(args.ir)
    inferred = infer_relationships(ir)
    if args.output:
        inferred.save(args.output)
        print(f"inferred as-rel written to {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(inferred.to_as_rel_text())
    if args.truth:
        truth = AsRelationships.load(args.truth)
        json.dump(score_inference(truth, inferred).as_dict(), sys.stderr, indent=2)
        print(file=sys.stderr)
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.tools.classify import classify_ir

    ir = load_ir(args.ir)
    relationships = AsRelationships.load(args.as_rel) if args.as_rel else None
    all_asns = set(relationships.ases()) if relationships else None
    labels, census = classify_ir(ir, all_asns, relationships)
    json.dump({"census": dict(census)}, sys.stdout, indent=2)
    print()
    if args.verbose:
        for asn in sorted(labels):
            print(f"AS{asn}\t{labels[asn]}", file=sys.stderr)
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    ir = load_ir(args.ir)
    relationships = AsRelationships.load(args.as_rel) if args.as_rel else None
    asns = [int(asn) for asn in args.asn] if args.asn else None
    emitted = 0
    for recommendation in api.recommend_migrations(
        ir, asns, relationships, limit=args.limit
    ):
        print(recommendation.summary())
        print(recommendation.rpsl)
        print()
        emitted += 1
    print(f"{emitted} migration(s) proposed", file=sys.stderr)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import run_chaos

    report = run_chaos(
        seed=args.seed, preset=args.preset, processes=args.processes, only=args.only
    )
    if args.json:
        json.dump(report.as_dict(), sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_whois(args: argparse.Namespace) -> int:
    with api.open_session(args.ir, warm=False) as session:
        server = session.whois_server(host=args.host, port=args.port)
        print(
            f"whois server on {args.host}:{server.port} (Ctrl-C to stop)",
            file=sys.stderr,
        )
        try:
            server.start()
            import time

            while True:  # pragma: no cover - interactive loop
                time.sleep(1)
        except KeyboardInterrupt:  # pragma: no cover
            pass
        finally:
            server.stop()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, ServeDaemon

    config: dict = {}
    # The daemon owns a private registry so GET /metrics reflects this
    # process alone (load, index adoption, and every query report there).
    session = _open_cli_session(
        args, config, as_rel=args.as_rel, processes=1, registry=MetricsRegistry()
    )
    serve_config = ServeConfig(
        host=args.host,
        http_port=args.http_port,
        whois_port=args.whois_port,
        queue_size=args.queue_size,
        batch_max=args.batch_max,
        default_deadline=args.deadline,
        max_deadline=max(args.deadline, args.max_deadline),
        drain_timeout=args.drain_timeout,
        workers=args.workers,
        journal_path=args.journal,
        journal_poll=args.journal_poll,
        telemetry=not args.no_telemetry,
        access_log=args.access_log,
        slow_ms=args.slow_ms,
        flight_events=args.flight_events,
        incident_dir=args.incident_dir,
    )
    daemon = ServeDaemon(session, serve_config)

    def banner(ready: ServeDaemon) -> None:
        if ready.http is not None:
            print(
                f"http on {serve_config.host}:{ready.http.port} "
                "(POST /verify, POST /explain, POST /reload, "
                "GET /healthz, GET /metrics, GET /debug/flight)",
                file=sys.stderr,
            )
        if ready.whois is not None:
            print(
                f"whois on {serve_config.host}:{ready.whois.port} (!v to verify)",
                file=sys.stderr,
            )
        print(
            f"serving IR {config['ir_digest'][:16]} "
            "(SIGTERM or Ctrl-C drains and exits)",
            file=sys.stderr,
        )

    try:
        asyncio.run(daemon.run(on_ready=banner))
    except KeyboardInterrupt:  # pragma: no cover - loops without signal support
        pass
    finally:
        session.close()
    return 0


def _filter_flight_events(events: list, args: argparse.Namespace) -> list:
    """Apply the debug subcommand's filters to decoded flight events."""
    wanted = frozenset(args.type) if args.type else None
    matched = []
    for event in events:
        if args.id is not None and event.get("id") != args.id:
            continue
        if wanted is not None and event.get("type") not in wanted:
            continue
        ts = event.get("ts", 0.0)
        if args.since is not None and ts < args.since:
            continue
        if args.until is not None and ts > args.until:
            continue
        matched.append(event)
    if args.limit is not None and args.limit > 0:
        matched = matched[-args.limit :]
    return matched


def _cmd_debug(args: argparse.Namespace) -> int:
    from repro.obs import read_flight_events

    header: dict = {}
    if args.source.startswith(("http://", "https://")):
        from urllib.parse import urlencode
        from urllib.request import urlopen

        params = []
        if args.id:
            params.append(("id", args.id))
        for event_type in args.type or ():
            params.append(("type", event_type))
        for name in ("since", "until", "limit"):
            value = getattr(args, name)
            if value is not None:
                params.append((name, value))
        url = args.source.rstrip("/") + "/debug/flight"
        if params:
            url += "?" + urlencode(params)
        try:
            with urlopen(url, timeout=10) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except OSError as exc:
            print(f"cannot reach {url}: {exc}", file=sys.stderr)
            return 1
        events = payload.get("events", [])
        header = {"source": url, "stats": payload.get("stats")}
    else:
        try:
            header, events = read_flight_events(args.source)
        except (OSError, ValueError) as exc:
            print(f"cannot read {args.source}: {exc}", file=sys.stderr)
            return 1
        events = _filter_flight_events(events, args)
    if args.json:
        json.dump({"header": header, "events": events}, sys.stdout, sort_keys=True)
        print()
        return 0
    reason = header.get("reason")
    if reason:
        print(f"# incident: {reason} (pid {header.get('pid')})", file=sys.stderr)
    stats = header.get("stats")
    if stats:
        print(
            f"# ring: {stats['events']}/{stats['capacity']} events, "
            f"{stats['incidents']} incident dump(s)",
            file=sys.stderr,
        )
    for event in events:
        extras = " ".join(
            f"{key}={event[key]}"
            for key in sorted(event)
            if key not in ("seq", "ts", "type", "id")
        )
        rid = f" id={event['id']}" if event.get("id") else ""
        print(
            f"{event.get('ts', 0.0):.6f} {event.get('type', '?'):<20}"
            f"{rid}{' ' + extras if extras else ''}"
        )
    print(f"{len(events)} event(s)", file=sys.stderr)
    return 0


def _add_metrics_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--metrics",
        metavar="PATH",
        help="write a JSON run manifest (timings, counters, input digests) here",
    )
    subparser.add_argument(
        "--profile",
        action="store_true",
        help="sample wall/CPU/RSS during the run into the manifest (needs --metrics)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="rpslyzer", description="RPSL parsing, characterization, verification"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    synth = subparsers.add_parser("synth", help="generate a synthetic world")
    synth.add_argument("directory")
    synth.add_argument("--preset", choices=("tiny", "default"), default="default")
    synth.add_argument("--seed", type=int, default=42)
    synth.add_argument("--routes", action="store_true", help="also write table.txt")
    synth.set_defaults(func=_cmd_synth)

    parse = subparsers.add_parser("parse", help="parse IRR dumps to IR JSON")
    parse.add_argument("directory")
    parse.add_argument("-o", "--output", default="ir.json")
    _add_metrics_flag(parse)
    parse.set_defaults(func=_cmd_parse)

    verify = subparsers.add_parser("verify", help="verify a BGP table dump")
    verify.add_argument("--ir", required=True)
    verify.add_argument("--as-rel", required=True)
    verify.add_argument("--table", required=True)
    verify.add_argument("--report", action="store_true", help="print per-route reports")
    verify.add_argument("--no-relaxations", action="store_true")
    verify.add_argument("--no-safelists", action="store_true")
    verify.add_argument("--processes", type=int, default=1, help="worker processes")
    verify.add_argument("--figures-dir", help="also write Figures 2-6 CSV data here")
    verify.add_argument(
        "--index",
        metavar="PATH",
        help="use a compiled index artifact (see 'rpslyzer compile')",
    )
    verify.add_argument(
        "--no-index-cache",
        action="store_true",
        help="compile the index in-memory; never read or write the disk cache",
    )
    verify.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="compiled-index cache directory (default: ~/.cache/rpslyzer)",
    )
    verify.add_argument(
        "--trace",
        metavar="PATH",
        help="write sampled decision-provenance events (JSONL) here",
    )
    verify.add_argument(
        "--trace-sample",
        type=int,
        default=128,
        metavar="N",
        help="head-sample 1-in-N routes (default 128; non-verified verdicts "
        "are always traced)",
    )
    _add_metrics_flag(verify)
    verify.set_defaults(func=_cmd_verify)

    compile_ = subparsers.add_parser(
        "compile",
        help="precompile the verification index for an IR (docs/performance.md)",
    )
    compile_.add_argument("--ir", required=True)
    compile_.add_argument(
        "-o",
        "--output",
        help="artifact path (default: the digest-keyed cache entry)",
    )
    compile_.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="compiled-index cache directory (default: ~/.cache/rpslyzer)",
    )
    compile_.add_argument(
        "--force", action="store_true", help="recompile even if the artifact exists"
    )
    compile_.add_argument(
        "--stats",
        action="store_true",
        help="print the full artifact stats (table sizes, trie planes) as JSON",
    )
    _add_metrics_flag(compile_)
    compile_.set_defaults(func=_cmd_compile)

    stats = subparsers.add_parser("stats", help="characterize an IR")
    stats.add_argument("--ir", required=True)
    _add_metrics_flag(stats)
    stats.set_defaults(func=_cmd_stats)

    metrics = subparsers.add_parser(
        "metrics", help="render a run manifest (Prometheus text or JSON)"
    )
    metrics.add_argument("manifest")
    metrics.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        help="prom = Prometheus exposition text (default), json = full manifest",
    )
    metrics.add_argument("--out", metavar="FILE", help="write here instead of stdout")
    metrics.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="index disk-cache directory to inspect (default: ~/.cache/rpslyzer)",
    )
    metrics.set_defaults(func=_cmd_metrics)

    explain = subparsers.add_parser(
        "explain",
        help="replay one route with tracing forced on and print the decision chain",
    )
    explain.add_argument("--ir", required=True)
    explain.add_argument("--as-rel", required=True)
    explain.add_argument("prefix")
    explain.add_argument("as_path", nargs="+", type=int, help="AS path, neighbor first")
    explain.add_argument("--json", action="store_true", help="emit raw trace events")
    explain.set_defaults(func=_cmd_explain)

    trace = subparsers.add_parser(
        "trace", help="summarize or filter a trace JSONL file"
    )
    trace.add_argument("trace_file")
    trace.add_argument("--status", help="keep routes with a hop of this status")
    trace.add_argument("--prefix", help="keep routes announcing this prefix")
    trace.add_argument("--trace-id", help="keep one trace id")
    trace.add_argument(
        "--limit", type=int, default=0, metavar="N", help="also print the first N events"
    )
    trace.add_argument("--json", action="store_true", help="print events, no summary")
    trace.set_defaults(func=_cmd_trace)

    lint = subparsers.add_parser("lint", help="lint RPSL policies")
    lint.add_argument("--ir", required=True)
    lint.add_argument("--as-rel", help="enable relationship-aware checks")
    lint.add_argument("--strict", action="store_true", help="exit 1 on findings")
    lint.set_defaults(func=_cmd_lint)

    asrel = subparsers.add_parser(
        "asrel", help="infer AS relationships from policies"
    )
    asrel.add_argument("--ir", required=True)
    asrel.add_argument("-o", "--output", help="write as-rel file here")
    asrel.add_argument("--truth", help="ground-truth as-rel for scoring")
    asrel.set_defaults(func=_cmd_asrel)

    classify = subparsers.add_parser("classify", help="classify ASes by RPSL usage")
    classify.add_argument("--ir", required=True)
    classify.add_argument("--as-rel")
    classify.add_argument("-v", "--verbose", action="store_true")
    classify.set_defaults(func=_cmd_classify)

    recommend = subparsers.add_parser(
        "recommend", help="propose route-set migrations (the paper's §4 advice)"
    )
    recommend.add_argument("--ir", required=True)
    recommend.add_argument("--as-rel")
    recommend.add_argument("--asn", nargs="*", help="specific ASNs (default: all)")
    recommend.add_argument("--limit", type=int, default=0)
    recommend.set_defaults(func=_cmd_recommend)

    chaos = subparsers.add_parser(
        "chaos", help="run the fault-injection suite (see docs/robustness.md)"
    )
    chaos.add_argument("--seed", type=int, default=42)
    chaos.add_argument("--preset", choices=("tiny", "default"), default="tiny")
    chaos.add_argument("--processes", type=int, default=2)
    chaos.add_argument(
        "--only",
        choices=("serve-supervisor",),
        default=None,
        help="run a single chaos layer instead of the full suite",
    )
    chaos.add_argument("--json", action="store_true", help="emit the report as JSON")
    chaos.set_defaults(func=_cmd_chaos)

    whois = subparsers.add_parser("whois", help="serve the IR over WHOIS/IRRd")
    whois.add_argument("--ir", required=True)
    whois.add_argument("--host", default="127.0.0.1")
    whois.add_argument("--port", type=int, default=4343)
    whois.set_defaults(func=_cmd_whois)

    serve = subparsers.add_parser(
        "serve",
        help="run the resident verification daemon (docs/serving.md)",
    )
    serve.add_argument("--ir", required=True)
    serve.add_argument("--as-rel", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--http-port",
        type=int,
        default=8080,
        help="HTTP/JSON port (0 = ephemeral; default 8080)",
    )
    serve.add_argument(
        "--whois-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also speak the WHOIS line protocol here (0 = ephemeral; off by default)",
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=256,
        help="bounded request queue; overflow answers 429/%%%% BUSY (default 256)",
    )
    serve.add_argument(
        "--batch-max",
        type=int,
        default=64,
        help="most queries coalesced into one verify pass (default 64)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="default per-request deadline (default 5s)",
    )
    serve.add_argument(
        "--max-deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="cap on client-requested deadlines (default 30s)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="bound on the graceful shutdown drain (default 5s)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="supervised verify worker processes (0 = in-process, the default)",
    )
    serve.add_argument(
        "--journal",
        metavar="PATH",
        help="follow this NRTM-style journal file, hot-swapping new entries "
        "into the live index (see docs/incremental.md)",
    )
    serve.add_argument(
        "--journal-poll",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="how often to poll --journal for new entries (default 2s)",
    )
    serve.add_argument(
        "--index",
        metavar="PATH",
        help="use a compiled index artifact (see 'rpslyzer compile')",
    )
    serve.add_argument(
        "--no-index-cache",
        action="store_true",
        help="compile the index in-memory; never read or write the disk cache",
    )
    serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="compiled-index cache directory (default: ~/.cache/rpslyzer)",
    )
    serve.add_argument(
        "--access-log",
        metavar="PATH",
        help="append one JSONL line per request here (id, stages, outcome)",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="promote requests at/above this latency to <access-log>.slow "
        "and the flight recorder (0 = off, the default)",
    )
    serve.add_argument(
        "--flight-events",
        type=int,
        default=2048,
        metavar="N",
        help="flight-recorder ring capacity (0 disables it; default 2048)",
    )
    serve.add_argument(
        "--incident-dir",
        metavar="DIR",
        help="write flight incident dumps here (default: working directory)",
    )
    serve.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable request ids, stage histograms, and the access log",
    )
    serve.set_defaults(func=_cmd_serve)

    debug = subparsers.add_parser(
        "debug",
        help="inspect a flight recording (incident dump file or live daemon)",
    )
    debug.add_argument(
        "source",
        help="an incident .jsonl file, or http://host:port of a live daemon",
    )
    debug.add_argument("--id", help="keep events with this request id")
    debug.add_argument(
        "--type",
        action="append",
        metavar="EVENT",
        help="keep these event types (repeatable)",
    )
    debug.add_argument(
        "--since", type=float, metavar="EPOCH", help="drop events before this ts"
    )
    debug.add_argument(
        "--until", type=float, metavar="EPOCH", help="drop events after this ts"
    )
    debug.add_argument(
        "--limit", type=int, metavar="N", help="keep only the newest N matches"
    )
    debug.add_argument("--json", action="store_true", help="emit raw JSON events")
    debug.set_defaults(func=_cmd_debug)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
