"""Classification and validation of RPSL object names.

RPSL set names are distinguished by reserved prefixes (RFC 2622 Section 5):
``AS-`` (*as-set*), ``RS-`` (*route-set*), ``FLTR-`` (*filter-set*),
``PRNG-`` (*peering-set*), and ``RTRS-`` (*rtr-set*).  Names may be
*hierarchical* — colon-separated components where each component is an ASN
or a set name, and at least one component carries the prefix of the set's
type (e.g. ``AS8267:AS-KRAKOW-1014``).

The paper's error census counts as-set/route-set objects whose names violate
these rules (12 and 17 respectively across the IRRs), so validation here is
strict while *classification* (guessing what a reference denotes) is lenient.
"""

from __future__ import annotations

import re
from enum import Enum

__all__ = ["NameKind", "classify_name", "is_valid_set_name", "normalize_name"]

_ASN_COMPONENT_RE = re.compile(r"^AS\d+$", re.IGNORECASE)

_SET_PREFIXES = {
    "as-set": "AS-",
    "route-set": "RS-",
    "filter-set": "FLTR-",
    "peering-set": "PRNG-",
    "rtr-set": "RTRS-",
}

# Words that can never be set names (RFC 2622 reserved keywords).
_RESERVED_WORDS = frozenset(
    {
        "any",
        "as-any",
        "rs-any",
        "peeras",
        "and",
        "or",
        "not",
        "atomic",
        "from",
        "to",
        "at",
        "action",
        "accept",
        "announce",
        "except",
        "refine",
        "networks",
        "into",
        "inbound",
        "outbound",
    }
)


class NameKind(Enum):
    """What a bare word in an expression most plausibly denotes."""

    ASN = "asn"
    AS_SET = "as-set"
    ROUTE_SET = "route-set"
    FILTER_SET = "filter-set"
    PEERING_SET = "peering-set"
    RTR_SET = "rtr-set"
    PEER_AS = "peeras"
    ANY = "any"
    AS_ANY = "as-any"
    RS_ANY = "rs-any"
    UNKNOWN = "unknown"


def normalize_name(name: str) -> str:
    """Canonical (upper-case) spelling used as a dictionary key."""
    return name.strip().upper()


def _component_kind(component: str) -> NameKind:
    upper = component.upper()
    if _ASN_COMPONENT_RE.match(component):
        return NameKind.ASN
    if upper.startswith("AS-"):
        return NameKind.AS_SET
    if upper.startswith("RS-"):
        return NameKind.ROUTE_SET
    if upper.startswith("FLTR-"):
        return NameKind.FILTER_SET
    if upper.startswith("PRNG-"):
        return NameKind.PEERING_SET
    if upper.startswith("RTRS-"):
        return NameKind.RTR_SET
    return NameKind.UNKNOWN


def classify_name(word: str) -> NameKind:
    """Classify one expression word: keyword, ASN, or (hierarchical) set name.

    For hierarchical names the classification is the kind of the first
    set-typed component; ASN components are allowed anywhere.
    """
    word = word.strip()
    lowered = word.lower()
    if lowered == "any":
        return NameKind.ANY
    if lowered == "as-any":
        return NameKind.AS_ANY
    if lowered == "rs-any":
        return NameKind.RS_ANY
    if lowered == "peeras":
        return NameKind.PEER_AS
    kinds = [_component_kind(component) for component in word.split(":")]
    for kind in kinds:
        if kind not in (NameKind.ASN, NameKind.UNKNOWN):
            return kind
    if len(kinds) == 1 and kinds[0] is NameKind.ASN:
        return NameKind.ASN
    return NameKind.UNKNOWN


def is_valid_set_name(name: str, object_class: str) -> bool:
    """Strict RFC 2622 validity of a set *object's* name.

    Every colon component must be an ASN or a set name of the object's own
    class, at least one component must be a set name, and reserved keywords
    are not valid names (the paper flags an as-set literally named
    ``AS-ANY``).
    """
    prefix = _SET_PREFIXES.get(object_class)
    if prefix is None:
        return False
    name = name.strip()
    if not name or name.lower() in _RESERVED_WORDS:
        return False
    components = name.split(":")
    saw_set_component = False
    for component in components:
        if not component:
            return False
        if _ASN_COMPONENT_RE.match(component):
            continue
        upper = component.upper()
        if upper.startswith(prefix) and len(upper) > len(prefix):
            # "AS-ANY" etc. are reserved even as components.
            if upper.lower() in _RESERVED_WORDS:
                return False
            saw_set_component = True
            continue
        return False
    return saw_set_component
