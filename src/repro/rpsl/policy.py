"""Parsing of ``import``/``export`` rules, including Structured Policies.

This is the top of the RPSL expression grammar (RFC 2622 Section 6,
RFC 4012 for the ``mp-`` multiprotocol variants):

.. code-block:: text

    rule        := [protocol <p>] [into <p>] [afi <afi-list>] policy-expr
    policy-expr := policy-term
                 | policy-term EXCEPT [afi <afi-list>] policy-expr
                 | policy-term REFINE [afi <afi-list>] policy-expr
    policy-term := '{' (factor ';')* '}' | factor [';']
    factor      := peering-action+ (accept | announce) filter
    peering-action := (from | to) peering [action action-list]

``import`` rules use ``from``/``accept``; ``export`` rules use
``to``/``announce``.  A factor may carry several peering-action pairs that
share one filter (the AS8323 example in the paper's appendix).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.afi import Afi, AfiError
from repro.rpsl.action import ActionItem, parse_action_tokens
from repro.rpsl.errors import RpslSyntaxError
from repro.rpsl.filter import Filter, parse_filter
from repro.rpsl.peering import Peering, parse_peering
from repro.rpsl.tokens import Token, TokenKind, TokenStream

__all__ = [
    "PeeringAction",
    "PolicyFactor",
    "PolicyTerm",
    "PolicyExcept",
    "PolicyRefine",
    "PolicyExpr",
    "PolicyRule",
    "DefaultRule",
    "parse_policy",
    "parse_default",
]

_FACTOR_KEYWORDS = ("from", "to", "action", "accept", "announce")
_OPERATOR_KEYWORDS = ("except", "refine")


@dataclass(frozen=True, slots=True)
class PeeringAction:
    """One ``from``/``to`` clause: a peering plus its optional actions."""

    peering: Peering
    actions: tuple[ActionItem, ...] = ()

    def to_rpsl(self, direction: str) -> str:
        """Render as a ``from``/``to`` clause with its actions."""
        text = f"{direction} {self.peering.to_rpsl()}"
        if self.actions:
            actions = "; ".join(action.to_rpsl() for action in self.actions)
            text += f" action {actions};"
        return text


@dataclass(frozen=True, slots=True)
class PolicyFactor:
    """Peering-action pairs sharing one filter."""

    peerings: tuple[PeeringAction, ...]
    filter: Filter

    def to_rpsl(self, kind: str) -> str:
        """Render the factor for an import or export rule."""
        direction = "from" if kind == "import" else "to"
        verb = "accept" if kind == "import" else "announce"
        clauses = " ".join(pa.to_rpsl(direction) for pa in self.peerings)
        return f"{clauses} {verb} {self.filter.to_rpsl()}"


@dataclass(frozen=True, slots=True)
class PolicyTerm:
    """A policy term: one factor, or a braced group of factors."""

    factors: tuple[PolicyFactor, ...]
    braced: bool = False

    def to_rpsl(self, kind: str) -> str:
        """Render the term (braced when it groups several factors)."""
        if self.braced:
            inner = " ".join(f"{factor.to_rpsl(kind)};" for factor in self.factors)
            return f"{{ {inner} }}"
        return self.factors[0].to_rpsl(kind)


@dataclass(frozen=True, slots=True)
class PolicyExcept:
    """``term EXCEPT [afi ...] rest`` — the rest overrides matching routes."""

    term: PolicyTerm
    afis: tuple[Afi, ...]
    rest: "PolicyExpr"

    def to_rpsl(self, kind: str) -> str:
        """Render ``term EXCEPT [afi ...] rest``."""
        afi_text = _afi_text(self.afis)
        return f"{self.term.to_rpsl(kind)} EXCEPT {afi_text}{_expr_rpsl(self.rest, kind)}"


@dataclass(frozen=True, slots=True)
class PolicyRefine:
    """``term REFINE [afi ...] rest`` — routes must match both sides."""

    term: PolicyTerm
    afis: tuple[Afi, ...]
    rest: "PolicyExpr"

    def to_rpsl(self, kind: str) -> str:
        """Render ``term REFINE [afi ...] rest``."""
        afi_text = _afi_text(self.afis)
        return f"{self.term.to_rpsl(kind)} REFINE {afi_text}{_expr_rpsl(self.rest, kind)}"


PolicyExpr = PolicyTerm | PolicyExcept | PolicyRefine


def _afi_text(afis: tuple[Afi, ...]) -> str:
    if not afis:
        return ""
    return "afi " + ", ".join(str(afi) for afi in afis) + " "


def _expr_rpsl(expr: PolicyExpr, kind: str) -> str:
    return expr.to_rpsl(kind)


@dataclass(frozen=True, slots=True)
class PolicyRule:
    """One fully parsed ``import``/``export``/``mp-import``/``mp-export``."""

    kind: str  # "import" or "export"
    expr: PolicyExpr
    afis: tuple[Afi, ...] = ()
    protocol: str | None = None
    into_protocol: str | None = None
    multiprotocol: bool = False
    raw: str = field(default="", compare=False)

    @property
    def attribute_name(self) -> str:
        """The RPSL attribute this rule belongs under."""
        return f"mp-{self.kind}" if self.multiprotocol else self.kind

    def effective_afis(self) -> tuple[Afi, ...]:
        """The address families this rule covers.

        A non-multiprotocol rule is implicitly IPv4 unicast; an ``mp-`` rule
        with no afi list covers any family (RFC 4012 defaults to any).
        """
        if self.afis:
            return self.afis
        if self.multiprotocol:
            return (Afi(),)
        return (Afi.IPV4_UNICAST,)

    def to_rpsl(self) -> str:
        """Render the whole rule (attribute value, without the name)."""
        parts: list[str] = []
        if self.protocol:
            parts.append(f"protocol {self.protocol}")
        if self.into_protocol:
            parts.append(f"into {self.into_protocol}")
        if self.afis:
            parts.append(_afi_text(self.afis).strip())
        parts.append(_expr_rpsl(self.expr, self.kind))
        return " ".join(parts)


@dataclass(frozen=True, slots=True)
class DefaultRule:
    """A ``default:`` attribute (RFC 2622 Section 6.5).

    ``default: to <peering> [action <actions>] [networks <filter>]`` —
    the AS defaults traffic toward the peering; ``networks`` limits the
    destinations the default covers.
    """

    peering: Peering
    actions: tuple[ActionItem, ...] = ()
    networks: Filter | None = None
    afis: tuple[Afi, ...] = ()
    multiprotocol: bool = False
    raw: str = field(default="", compare=False)

    def to_rpsl(self) -> str:
        """Render the default rule (attribute value, without the name)."""
        parts = []
        if self.afis:
            parts.append(_afi_text(self.afis).strip())
        parts.append(f"to {self.peering.to_rpsl()}")
        if self.actions:
            actions = "; ".join(action.to_rpsl() for action in self.actions)
            parts.append(f"action {actions};")
        if self.networks is not None:
            parts.append(f"networks {self.networks.to_rpsl()}")
        return " ".join(parts)


def parse_default(text: str, multiprotocol: bool = False) -> DefaultRule:
    """Parse the value of a ``default``/``mp-default`` attribute."""
    stream = TokenStream.of(text)
    afis: tuple[Afi, ...] = ()
    if stream.take_keyword("afi"):
        afis = _parse_afi_list(stream)
    if not stream.take_keyword("to"):
        raise RpslSyntaxError("default rule must start with 'to'")
    peering_tokens = _slice_until(stream, ("action", "networks"), ())
    if not peering_tokens:
        raise RpslSyntaxError("empty peering in default rule")
    peering = parse_peering(TokenStream(peering_tokens))
    actions: tuple[ActionItem, ...] = ()
    if stream.take_keyword("action"):
        actions = parse_action_tokens(_slice_until(stream, ("networks",), ()))
    networks: Filter | None = None
    if stream.take_keyword("networks"):
        networks = parse_filter(stream)
    if not stream.exhausted():
        raise RpslSyntaxError(f"trailing tokens in default rule: {stream.rest_text()!r}")
    return DefaultRule(
        peering=peering,
        actions=actions,
        networks=networks,
        afis=afis,
        multiprotocol=multiprotocol,
        raw=text,
    )


def _slice_until(
    stream: TokenStream, stop_keywords: tuple[str, ...], stop_kinds: tuple[TokenKind, ...]
) -> list[Token]:
    """Collect tokens until a stop keyword/kind at bracket depth zero.

    The stopping token is *not* consumed.
    """
    collected: list[Token] = []
    depth = 0
    while True:
        token = stream.peek()
        if token is None:
            return collected
        if depth == 0:
            if token.kind in stop_kinds:
                return collected
            if token.kind is TokenKind.WORD and token.text.lower() in stop_keywords:
                return collected
        if token.kind in (TokenKind.LPAREN, TokenKind.LBRACE):
            depth += 1
        elif token.kind in (TokenKind.RPAREN, TokenKind.RBRACE):
            if depth == 0:
                return collected
            depth -= 1
        collected.append(stream.next())


def _parse_afi_list(stream: TokenStream) -> tuple[Afi, ...]:
    """Parse a comma-separated afi list following the ``afi`` keyword."""
    afis: list[Afi] = []
    expecting = True
    while True:
        token = stream.peek()
        if token is None:
            break
        if token.kind is TokenKind.COMMA:
            stream.next()
            expecting = True
            continue
        if not expecting or token.kind is not TokenKind.WORD:
            break
        had_comma = token.text.endswith(",")
        try:
            afis.append(Afi.parse(token.text))
        except AfiError as exc:
            if not afis:
                raise RpslSyntaxError(str(exc)) from exc
            break
        stream.next()
        expecting = had_comma
    if not afis:
        raise RpslSyntaxError("empty afi list")
    return tuple(afis)


def _parse_factor(stream: TokenStream, kind: str) -> PolicyFactor:
    direction = "from" if kind == "import" else "to"
    wrong_direction = "to" if kind == "import" else "from"
    verb = "accept" if kind == "import" else "announce"
    wrong_verb = "announce" if kind == "import" else "accept"

    peerings: list[PeeringAction] = []
    while True:
        token = stream.peek()
        if token is None:
            raise RpslSyntaxError(f"missing '{verb}' in {kind} rule")
        if token.is_keyword(wrong_direction):
            raise RpslSyntaxError(
                f"'{wrong_direction}' keyword is invalid in an {kind} rule"
            )
        if not token.is_keyword(direction):
            break
        stream.next()
        peering_tokens = _slice_until(stream, _FACTOR_KEYWORDS, ())
        if not peering_tokens:
            raise RpslSyntaxError(f"empty peering after '{direction}'")
        peering = parse_peering(TokenStream(peering_tokens))
        actions: tuple[ActionItem, ...] = ()
        if stream.take_keyword("action"):
            action_tokens = _slice_until(stream, _FACTOR_KEYWORDS, ())
            actions = parse_action_tokens(action_tokens)
        peerings.append(PeeringAction(peering, actions))

    if not peerings:
        token = stream.peek()
        found = token.text if token is not None else "end of rule"
        raise RpslSyntaxError(f"expected '{direction}', found {found!r}")

    token = stream.peek()
    if token is not None and token.is_keyword(wrong_verb):
        raise RpslSyntaxError(f"'{wrong_verb}' keyword is invalid in an {kind} rule")
    if token is None or not token.is_keyword(verb):
        found = token.text if token is not None else "end of rule"
        raise RpslSyntaxError(f"expected '{verb}', found {found!r}")
    stream.next()
    filter_tokens = _slice_until(stream, _OPERATOR_KEYWORDS, (TokenKind.SEMI,))
    if not filter_tokens:
        raise RpslSyntaxError(f"empty filter after '{verb}'")
    parsed_filter = parse_filter(TokenStream(filter_tokens))
    return PolicyFactor(tuple(peerings), parsed_filter)


def _parse_term(stream: TokenStream, kind: str) -> PolicyExpr:
    """Parse a term; braces may also enclose a whole nested expression.

    RFC 2622 §6.6 writes nested Structured Policies with the operator
    *inside* the braces (``except { <factor>; except { ... } }``), so a
    braced group that runs into EXCEPT/REFINE closes its factors into a
    term and continues as an expression.
    """
    token = stream.peek()
    if token is not None and token.kind is TokenKind.LBRACE:
        stream.next()
        factors: list[PolicyFactor] = []
        while True:
            token = stream.peek()
            if token is None:
                raise RpslSyntaxError("unterminated '{' in structured policy")
            if token.kind is TokenKind.RBRACE:
                stream.next()
                break
            if token.kind is TokenKind.SEMI:
                stream.next()
                continue
            if token.is_keyword("except", "refine") and factors:
                operator = stream.next().text.lower()
                afis = _parse_afi_list(stream) if stream.take_keyword("afi") else ()
                rest = _parse_expr(stream, kind)
                stream.expect(TokenKind.RBRACE)
                left = PolicyTerm(tuple(factors), braced=True)
                if operator == "except":
                    return PolicyExcept(left, afis, rest)
                return PolicyRefine(left, afis, rest)
            factors.append(_parse_factor(stream, kind))
        if not factors:
            raise RpslSyntaxError("empty structured policy term")
        return PolicyTerm(tuple(factors), braced=True)
    factor = _parse_factor(stream, kind)
    while stream.peek() is not None and stream.peek().kind is TokenKind.SEMI:
        stream.next()
    return PolicyTerm((factor,), braced=False)


def _parse_expr(stream: TokenStream, kind: str) -> PolicyExpr:
    term = _parse_term(stream, kind)
    if not isinstance(term, PolicyTerm):
        # the braces already contained a full nested expression
        return term
    if stream.take_keyword("except"):
        afis = _parse_afi_list(stream) if stream.take_keyword("afi") else ()
        return PolicyExcept(term, afis, _parse_expr(stream, kind))
    if stream.take_keyword("refine"):
        afis = _parse_afi_list(stream) if stream.take_keyword("afi") else ()
        return PolicyRefine(term, afis, _parse_expr(stream, kind))
    return term


def parse_policy(kind: str, text: str, multiprotocol: bool = False) -> PolicyRule:
    """Parse the value of an ``import``/``export`` (or ``mp-``) attribute.

    ``kind`` must be ``"import"`` or ``"export"``.  Raises
    :class:`~repro.rpsl.errors.RpslSyntaxError` on malformed input; the
    object-level parser converts that into a recorded issue.
    """
    if kind not in ("import", "export"):
        raise ValueError(f"kind must be 'import' or 'export', not {kind!r}")
    stream = TokenStream.of(text)
    protocol = None
    into_protocol = None
    if stream.take_keyword("protocol"):
        protocol = stream.expect(TokenKind.WORD).text
    if stream.take_keyword("into"):
        into_protocol = stream.expect(TokenKind.WORD).text
    afis: tuple[Afi, ...] = ()
    if stream.take_keyword("afi"):
        afis = _parse_afi_list(stream)
    expr = _parse_expr(stream, kind)
    if not stream.exhausted():
        raise RpslSyntaxError(f"trailing tokens in {kind} rule: {stream.rest_text()!r}")
    return PolicyRule(
        kind=kind,
        expr=expr,
        afis=afis,
        protocol=protocol,
        into_protocol=into_protocol,
        multiprotocol=multiprotocol,
        raw=text,
    )
