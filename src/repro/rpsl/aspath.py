"""AS-path regular expressions (RFC 2622 Section 5.4).

An RPSL *filter* may contain an AS-path regex delimited by angle brackets,
e.g. ``<^AS13911 AS6327+$>``.  Atoms are ASNs, ASN ranges (``AS1-AS5``),
*as-set* names, the ``PeerAS`` keyword, the ``.`` wildcard, and character
sets ``[...]`` (possibly complemented ``[^...]``).  Postfix operators are
``* + ?``, bounded repetitions ``{n}``/``{n,m}``/``{n,}``, and the
same-pattern variants prefixed with ``~``.

This module parses the regex into an AST and unparses it back; the symbolic
matcher that evaluates it against observed AS-paths (Appendix B of the
paper) lives in :mod:`repro.core.aspath_match`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.rpsl.errors import RpslSyntaxError

__all__ = [
    "AsPathRegexNode",
    "ReAsn",
    "ReAsnRange",
    "ReAsSet",
    "RePeerAs",
    "ReWildcard",
    "ReCharSet",
    "ReAlt",
    "ReSeq",
    "ReRepeat",
    "ReBegin",
    "ReEnd",
    "parse_as_path_regex",
    "regex_flags",
]

_ASN_RE = re.compile(r"^AS(\d+)$", re.IGNORECASE)
_ASN_RANGE_RE = re.compile(r"^AS(\d+)-AS(\d+)$", re.IGNORECASE)
_WORD_CHARS = re.compile(r"[A-Za-z0-9:_-]")
_BOUND_RE = re.compile(r"^(\d+)(?:(,)(\d*))?$")


class AsPathRegexNode:
    """Base class for AS-path regex AST nodes."""

    __slots__ = ()

    def to_rpsl(self) -> str:
        """Render this node back to RPSL regex syntax."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class ReAsn(AsPathRegexNode):
    """A literal ASN atom, e.g. ``AS6327``."""

    asn: int

    def to_rpsl(self) -> str:
        return f"AS{self.asn}"


@dataclass(frozen=True, slots=True)
class ReAsnRange(AsPathRegexNode):
    """An ASN range atom, e.g. ``AS64512-AS65534`` (rare; skip-listed)."""

    low: int
    high: int

    def to_rpsl(self) -> str:
        return f"AS{self.low}-AS{self.high}"


@dataclass(frozen=True, slots=True)
class ReAsSet(AsPathRegexNode):
    """An *as-set* atom: matches any member AS of the (flattened) set."""

    name: str

    def to_rpsl(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class RePeerAs(AsPathRegexNode):
    """The ``PeerAS`` keyword: the neighbor AS the route came from."""

    def to_rpsl(self) -> str:
        return "PeerAS"


@dataclass(frozen=True, slots=True)
class ReWildcard(AsPathRegexNode):
    """The ``.`` wildcard: matches any single AS."""

    def to_rpsl(self) -> str:
        return "."


@dataclass(frozen=True, slots=True)
class ReCharSet(AsPathRegexNode):
    """A character-set atom ``[...]`` / ``[^...]`` over AS atoms."""

    items: tuple[AsPathRegexNode, ...]
    complemented: bool = False

    def to_rpsl(self) -> str:
        inner = " ".join(item.to_rpsl() for item in self.items)
        caret = "^" if self.complemented else ""
        return f"[{caret}{inner}]"


@dataclass(frozen=True, slots=True)
class ReAlt(AsPathRegexNode):
    """Alternation ``a | b | c``."""

    options: tuple[AsPathRegexNode, ...]

    def to_rpsl(self) -> str:
        return "(" + " | ".join(option.to_rpsl() for option in self.options) + ")"


@dataclass(frozen=True, slots=True)
class ReSeq(AsPathRegexNode):
    """Concatenation of parts."""

    parts: tuple[AsPathRegexNode, ...]

    def to_rpsl(self) -> str:
        return " ".join(part.to_rpsl() for part in self.parts)


@dataclass(frozen=True, slots=True)
class ReRepeat(AsPathRegexNode):
    """A postfix repetition.  ``high is None`` means unbounded.

    ``same_pattern`` marks the ``~``-prefixed operators (``~+``, ``~{2,3}``)
    that require every repetition to match the *same* AS; the paper leaves
    them as future work and skips rules containing them.
    """

    inner: AsPathRegexNode
    low: int
    high: int | None
    same_pattern: bool = False

    def to_rpsl(self) -> str:
        inner = self.inner.to_rpsl()
        if isinstance(self.inner, (ReSeq, ReAlt)) and not isinstance(self.inner, ReAlt):
            inner = f"({inner})"
        tilde = "~" if self.same_pattern else ""
        if (self.low, self.high) == (0, None):
            return f"{inner}{tilde}*"
        if (self.low, self.high) == (1, None):
            return f"{inner}{tilde}+"
        if (self.low, self.high) == (0, 1) and not self.same_pattern:
            return f"{inner}?"
        if self.high is None:
            return f"{inner}{tilde}{{{self.low},}}"
        if self.high == self.low:
            return f"{inner}{tilde}{{{self.low}}}"
        return f"{inner}{tilde}{{{self.low},{self.high}}}"


@dataclass(frozen=True, slots=True)
class ReBegin(AsPathRegexNode):
    """The ``^`` anchor (start of AS-path)."""

    def to_rpsl(self) -> str:
        return "^"


@dataclass(frozen=True, slots=True)
class ReEnd(AsPathRegexNode):
    """The ``$`` anchor (end of AS-path, i.e. the origin side)."""

    def to_rpsl(self) -> str:
        return "$"


class _RegexLexer:
    """Character-level cursor over the regex body."""

    def __init__(self, text: str):
        self.text = text
        self.index = 0

    def skip_spaces(self) -> None:
        while self.index < len(self.text) and self.text[self.index].isspace():
            self.index += 1

    def peek(self) -> str:
        self.skip_spaces()
        if self.index < len(self.text):
            return self.text[self.index]
        return ""

    def peek_raw(self) -> str:
        """Next character without skipping whitespace (postfix ops bind tight)."""
        if self.index < len(self.text):
            return self.text[self.index]
        return ""

    def advance(self) -> str:
        char = self.peek()
        if char:
            self.index += 1
        return char

    def word(self) -> str:
        self.skip_spaces()
        start = self.index
        while self.index < len(self.text) and _WORD_CHARS.match(self.text[self.index]):
            self.index += 1
        if start == self.index:
            raise RpslSyntaxError(
                f"expected AS atom at offset {self.index} in regex {self.text!r}"
            )
        return self.text[start : self.index]


def _atom_from_word(word: str) -> AsPathRegexNode:
    range_match = _ASN_RANGE_RE.match(word)
    if range_match is not None:
        low, high = int(range_match.group(1)), int(range_match.group(2))
        if high < low:
            raise RpslSyntaxError(f"inverted ASN range {word!r}")
        return ReAsnRange(low, high)
    asn_match = _ASN_RE.match(word)
    if asn_match is not None:
        return ReAsn(int(asn_match.group(1)))
    if word.lower() == "peeras":
        return RePeerAs()
    upper = word.upper()
    if any(component.startswith("AS-") for component in upper.split(":")) or upper.startswith("AS-"):
        return ReAsSet(upper)
    raise RpslSyntaxError(f"unrecognized AS-path atom {word!r}")


def _parse_char_set(lexer: _RegexLexer) -> ReCharSet:
    complemented = False
    if lexer.peek() == "^":
        lexer.advance()
        complemented = True
    items: list[AsPathRegexNode] = []
    while True:
        char = lexer.peek()
        if char == "]":
            lexer.advance()
            break
        if not char:
            raise RpslSyntaxError("unterminated character set in AS-path regex")
        if char == ".":
            lexer.advance()
            items.append(ReWildcard())
            continue
        items.append(_atom_from_word(lexer.word()))
    return ReCharSet(tuple(items), complemented)


def _parse_bound(lexer: _RegexLexer) -> tuple[int, int | None]:
    start = lexer.index
    end = lexer.text.find("}", start)
    if end < 0:
        raise RpslSyntaxError("unterminated {n,m} bound in AS-path regex")
    body = lexer.text[start:end].replace(" ", "")
    lexer.index = end + 1
    match = _BOUND_RE.match(body)
    if match is None:
        raise RpslSyntaxError(f"invalid repetition bound {{{body}}}")
    low = int(match.group(1))
    if match.group(2) is None:
        return low, low
    if match.group(3):
        high = int(match.group(3))
        if high < low:
            raise RpslSyntaxError(f"inverted repetition bound {{{body}}}")
        return low, high
    return low, None


def _parse_postfix(lexer: _RegexLexer, atom: AsPathRegexNode) -> AsPathRegexNode:
    while True:
        char = lexer.peek_raw()
        if char == "*":
            lexer.advance()
            atom = ReRepeat(atom, 0, None)
        elif char == "+":
            lexer.advance()
            atom = ReRepeat(atom, 1, None)
        elif char == "?":
            lexer.advance()
            atom = ReRepeat(atom, 0, 1)
        elif char == "{":
            lexer.advance()
            low, high = _parse_bound(lexer)
            atom = ReRepeat(atom, low, high)
        elif char == "~":
            lexer.advance()
            operator = lexer.peek_raw()
            if operator == "*":
                lexer.advance()
                atom = ReRepeat(atom, 0, None, same_pattern=True)
            elif operator == "+":
                lexer.advance()
                atom = ReRepeat(atom, 1, None, same_pattern=True)
            elif operator == "{":
                lexer.advance()
                low, high = _parse_bound(lexer)
                atom = ReRepeat(atom, low, high, same_pattern=True)
            else:
                raise RpslSyntaxError(f"invalid ~ operator in regex at offset {lexer.index}")
        else:
            return atom


def _parse_concat(lexer: _RegexLexer) -> AsPathRegexNode:
    parts: list[AsPathRegexNode] = []
    while True:
        char = lexer.peek()
        if char in ("", ")", "|"):
            break
        if char == "^":
            lexer.advance()
            parts.append(ReBegin())
            continue
        if char == "$":
            lexer.advance()
            parts.append(ReEnd())
            continue
        if char == ".":
            lexer.advance()
            parts.append(_parse_postfix(lexer, ReWildcard()))
            continue
        if char == "[":
            lexer.advance()
            parts.append(_parse_postfix(lexer, _parse_char_set(lexer)))
            continue
        if char == "(":
            lexer.advance()
            inner = _parse_alternation(lexer)
            if lexer.advance() != ")":
                raise RpslSyntaxError("unbalanced parenthesis in AS-path regex")
            parts.append(_parse_postfix(lexer, inner))
            continue
        parts.append(_parse_postfix(lexer, _atom_from_word(lexer.word())))
    if len(parts) == 1:
        return parts[0]
    return ReSeq(tuple(parts))


def _parse_alternation(lexer: _RegexLexer) -> AsPathRegexNode:
    options = [_parse_concat(lexer)]
    while lexer.peek() == "|":
        lexer.advance()
        options.append(_parse_concat(lexer))
    if len(options) == 1:
        return options[0]
    return ReAlt(tuple(options))


def parse_as_path_regex(text: str) -> AsPathRegexNode:
    """Parse an AS-path regex, with or without the ``<`` ``>`` delimiters."""
    body = text.strip()
    if body.startswith("<") and body.endswith(">"):
        body = body[1:-1]
    lexer = _RegexLexer(body)
    node = _parse_alternation(lexer)
    lexer.skip_spaces()
    if lexer.index != len(lexer.text):
        raise RpslSyntaxError(
            f"trailing characters in AS-path regex: {lexer.text[lexer.index:]!r}"
        )
    return node


def regex_flags(node: AsPathRegexNode) -> tuple[bool, bool]:
    """Return ``(has_asn_range, has_same_pattern_op)`` for skip accounting.

    These are the two AS-path constructs the paper leaves unhandled (58
    rules total across the IRRs); the verifier classifies rules containing
    them as *skip* unless support is explicitly enabled.
    """
    has_range = False
    has_same_pattern = False
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ReAsnRange):
            has_range = True
        elif isinstance(current, ReRepeat):
            if current.same_pattern:
                has_same_pattern = True
            stack.append(current.inner)
        elif isinstance(current, (ReSeq, ReAlt)):
            stack.extend(current.parts if isinstance(current, ReSeq) else current.options)
        elif isinstance(current, ReCharSet):
            stack.extend(current.items)
    return has_range, has_same_pattern
