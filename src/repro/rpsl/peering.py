"""RPSL peering specifications (RFC 2622 Sections 5.6 and 6).

A *peering* names the set of BGP sessions a rule applies to:

.. code-block:: text

    peering  := as-expr [remote-router-expr] [at local-router-expr]
              | prng-set-name
    as-expr  := as-term ((AND | OR | EXCEPT) as-term)*
    as-term  := ASN | as-set | AS-ANY | '(' as-expr ')'

``EXCEPT`` is syntactic sugar for ``AND NOT``.  Router expressions select
specific routers within the AS pair; the verifier matches at the AS level
(as the paper does), so they are preserved as raw text for round-tripping
and statistics but do not affect matching.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rpsl.errors import RpslSyntaxError
from repro.rpsl.names import NameKind, classify_name
from repro.rpsl.tokens import Token, TokenKind, TokenStream

__all__ = [
    "AsExpr",
    "PeerAsn",
    "PeerAsSet",
    "PeerAny",
    "PeeringSetRef",
    "PeerAnd",
    "PeerOr",
    "PeerExcept",
    "Peering",
    "parse_peering",
    "parse_peering_text",
]


class AsExpr:
    """Base class for AS-expression nodes inside a peering."""

    __slots__ = ()

    def to_rpsl(self) -> str:
        """Render back to RPSL syntax."""
        raise NotImplementedError

    def _atom_rpsl(self) -> str:
        return self.to_rpsl()


@dataclass(frozen=True, slots=True)
class PeerAsn(AsExpr):
    """A single neighbor ASN."""

    asn: int

    def to_rpsl(self) -> str:
        return f"AS{self.asn}"


@dataclass(frozen=True, slots=True)
class PeerAsSet(AsExpr):
    """Any member of the named *as-set*."""

    name: str

    def to_rpsl(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class PeerAny(AsExpr):
    """``AS-ANY``: every AS."""

    def to_rpsl(self) -> str:
        return "AS-ANY"


@dataclass(frozen=True, slots=True)
class PeeringSetRef(AsExpr):
    """A reference to a *peering-set* object (``PRNG-...``)."""

    name: str

    def to_rpsl(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class PeerAnd(AsExpr):
    """Intersection of two AS expressions."""

    left: AsExpr
    right: AsExpr

    def to_rpsl(self) -> str:
        return f"{self.left._atom_rpsl()} AND {self.right._atom_rpsl()}"

    def _atom_rpsl(self) -> str:
        return f"({self.to_rpsl()})"


@dataclass(frozen=True, slots=True)
class PeerOr(AsExpr):
    """Union of two AS expressions."""

    left: AsExpr
    right: AsExpr

    def to_rpsl(self) -> str:
        return f"{self.left._atom_rpsl()} OR {self.right._atom_rpsl()}"

    def _atom_rpsl(self) -> str:
        return f"({self.to_rpsl()})"


@dataclass(frozen=True, slots=True)
class PeerExcept(AsExpr):
    """Set difference: ``left EXCEPT right`` = left AND NOT right."""

    left: AsExpr
    right: AsExpr

    def to_rpsl(self) -> str:
        return f"{self.left._atom_rpsl()} EXCEPT {self.right._atom_rpsl()}"

    def _atom_rpsl(self) -> str:
        return f"({self.to_rpsl()})"


@dataclass(frozen=True, slots=True)
class Peering:
    """A full peering: the AS expression plus optional router expressions."""

    as_expr: AsExpr
    remote_router: str | None = None
    local_router: str | None = None

    def to_rpsl(self) -> str:
        """Render the peering (AS expression plus router expressions)."""
        parts = [self.as_expr.to_rpsl()]
        if self.remote_router:
            parts.append(self.remote_router)
        if self.local_router:
            parts.append(f"at {self.local_router}")
        return " ".join(parts)


def _as_term(stream: TokenStream) -> AsExpr:
    token = stream.next()
    if token.kind is TokenKind.LPAREN:
        inner = _as_expr(stream)
        stream.expect(TokenKind.RPAREN)
        return inner
    if token.kind is not TokenKind.WORD:
        raise RpslSyntaxError(f"unexpected {token.text!r} in peering")
    kind = classify_name(token.text)
    if kind is NameKind.AS_ANY or kind is NameKind.ANY:
        return PeerAny()
    if kind is NameKind.ASN:
        return PeerAsn(int(token.text[2:]))
    if kind is NameKind.AS_SET:
        return PeerAsSet(token.text.upper())
    if kind is NameKind.PEERING_SET:
        return PeeringSetRef(token.text.upper())
    raise RpslSyntaxError(f"unrecognized peering term {token.text!r}")


def _as_expr(stream: TokenStream) -> AsExpr:
    node = _as_term(stream)
    while True:
        if stream.take_keyword("and"):
            node = PeerAnd(node, _as_term(stream))
        elif stream.take_keyword("or"):
            node = PeerOr(node, _as_term(stream))
        elif stream.take_keyword("except"):
            node = PeerExcept(node, _as_term(stream))
        else:
            return node


def _is_router_word(token: Token) -> bool:
    if token.kind is not TokenKind.WORD:
        return False
    if token.is_keyword("at", "and", "or", "except"):
        return False
    # Router expressions are IP addresses, inet-rtr DNS names, or rtr-sets.
    text = token.text
    return "." in text or ":" in text or text.upper().startswith("RTRS-")


def _router_expr(stream: TokenStream) -> str | None:
    words: list[str] = []
    while True:
        token = stream.peek()
        if token is None:
            break
        if _is_router_word(token):
            words.append(stream.next().text)
            continue
        if token.is_keyword("and", "or", "except") and words:
            ahead = stream.peek(1)
            if ahead is not None and _is_router_word(ahead):
                words.append(stream.next().text)
                words.append(stream.next().text)
                continue
        break
    return " ".join(words) if words else None


def parse_peering(stream: TokenStream) -> Peering:
    """Parse one peering from a token stream, consuming every token."""
    as_expr = _as_expr(stream)
    remote_router = _router_expr(stream)
    local_router = None
    if stream.take_keyword("at"):
        local_router = _router_expr(stream)
        if local_router is None:
            raise RpslSyntaxError("'at' with no router expression in peering")
    if not stream.exhausted():
        raise RpslSyntaxError(f"trailing tokens in peering: {stream.rest_text()!r}")
    return Peering(as_expr, remote_router, local_router)


def parse_peering_text(text: str) -> Peering:
    """Parse a peering from a standalone string (e.g. a peering-set body)."""
    return parse_peering(TokenStream.of(text))
