"""Error types and the error collector used across the RPSL parser.

A registry dump contains thousands of objects written by thousands of
operators; a handful are malformed (the paper counts 663 syntax errors and
29 invalid set names across 13 IRRs).  Parsing therefore *never* aborts on a
bad object: errors are recorded in an :class:`ErrorCollector` and the parser
moves on, exactly like IRRd and RPSLyzer do.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["ErrorKind", "ParseIssue", "ErrorCollector", "RpslSyntaxError"]


class RpslSyntaxError(ValueError):
    """Raised internally when an expression cannot be parsed.

    Object-level parsers catch this and convert it into a
    :class:`ParseIssue`; it never escapes to library users.
    """


class ErrorKind(Enum):
    """Categories matching the error census of Section 4 of the paper."""

    SYNTAX = "syntax"
    INVALID_AS_SET_NAME = "invalid-as-set-name"
    INVALID_ROUTE_SET_NAME = "invalid-route-set-name"
    INVALID_PEERING_SET_NAME = "invalid-peering-set-name"
    INVALID_FILTER_SET_NAME = "invalid-filter-set-name"
    INVALID_PREFIX = "invalid-prefix"
    INVALID_ASN = "invalid-asn"
    RESERVED_NAME = "reserved-name"
    UNKNOWN_CLASS = "unknown-class"
    # ingestion-level damage (see docs/robustness.md): the object or the
    # input around it was corrupt, not merely mis-written RPSL.
    OVERSIZED = "oversized"
    TRUNCATED = "truncated"
    UNREADABLE_INPUT = "unreadable-input"


@dataclass(frozen=True, slots=True)
class ParseIssue:
    """One recorded parse problem, tied to the object that produced it."""

    kind: ErrorKind
    object_class: str
    object_name: str
    source: str
    message: str

    def __str__(self) -> str:
        return (
            f"[{self.kind.value}] {self.object_class} {self.object_name} "
            f"({self.source}): {self.message}"
        )


@dataclass(slots=True)
class ErrorCollector:
    """Accumulates :class:`ParseIssue` records during a parse run.

    ``max_issues`` bounds how many full :class:`ParseIssue` records are
    *stored*; a hostile dump that is nothing but errors can otherwise grow
    the list without limit.  Past the cap, issues are still *counted* per
    kind in ``overflow``, so the Section 4 census stays exact while memory
    stays flat.  The default (None) keeps the historical unlimited
    behaviour.
    """

    issues: list[ParseIssue] = field(default_factory=list)
    max_issues: int | None = None
    overflow: Counter = field(default_factory=Counter)

    def record(
        self,
        kind: ErrorKind,
        object_class: str,
        object_name: str,
        source: str,
        message: str,
    ) -> None:
        """Append one issue; cheap enough to call inside parsing loops."""
        if self.max_issues is not None and len(self.issues) >= self.max_issues:
            self.overflow[kind] += 1
            return
        self.issues.append(ParseIssue(kind, object_class, object_name, source, message))

    def count_by_kind(self) -> Counter:
        """Error counts per :class:`ErrorKind` (the Section 4 census).

        Includes issues counted past ``max_issues``.
        """
        counts = Counter(issue.kind for issue in self.issues)
        counts.update(self.overflow)
        return counts

    def extend(self, other: "ErrorCollector") -> None:
        """Merge another collector's issues into this one (cap respected)."""
        if self.max_issues is None:
            self.issues.extend(other.issues)
        else:
            room = self.max_issues - len(self.issues)
            if room > 0:
                self.issues.extend(other.issues[:room])
            for issue in other.issues[max(room, 0):]:
                self.overflow[issue.kind] += 1
        self.overflow.update(other.overflow)

    @property
    def truncated(self) -> bool:
        """True when some issues were counted but not stored."""
        return bool(self.overflow)

    def __len__(self) -> int:
        """Total issues *recorded*, stored or merely counted."""
        return len(self.issues) + sum(self.overflow.values())
