"""Error types and the error collector used across the RPSL parser.

A registry dump contains thousands of objects written by thousands of
operators; a handful are malformed (the paper counts 663 syntax errors and
29 invalid set names across 13 IRRs).  Parsing therefore *never* aborts on a
bad object: errors are recorded in an :class:`ErrorCollector` and the parser
moves on, exactly like IRRd and RPSLyzer do.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["ErrorKind", "ParseIssue", "ErrorCollector", "RpslSyntaxError"]


class RpslSyntaxError(ValueError):
    """Raised internally when an expression cannot be parsed.

    Object-level parsers catch this and convert it into a
    :class:`ParseIssue`; it never escapes to library users.
    """


class ErrorKind(Enum):
    """Categories matching the error census of Section 4 of the paper."""

    SYNTAX = "syntax"
    INVALID_AS_SET_NAME = "invalid-as-set-name"
    INVALID_ROUTE_SET_NAME = "invalid-route-set-name"
    INVALID_PEERING_SET_NAME = "invalid-peering-set-name"
    INVALID_FILTER_SET_NAME = "invalid-filter-set-name"
    INVALID_PREFIX = "invalid-prefix"
    INVALID_ASN = "invalid-asn"
    RESERVED_NAME = "reserved-name"
    UNKNOWN_CLASS = "unknown-class"


@dataclass(frozen=True, slots=True)
class ParseIssue:
    """One recorded parse problem, tied to the object that produced it."""

    kind: ErrorKind
    object_class: str
    object_name: str
    source: str
    message: str

    def __str__(self) -> str:
        return (
            f"[{self.kind.value}] {self.object_class} {self.object_name} "
            f"({self.source}): {self.message}"
        )


@dataclass(slots=True)
class ErrorCollector:
    """Accumulates :class:`ParseIssue` records during a parse run."""

    issues: list[ParseIssue] = field(default_factory=list)

    def record(
        self,
        kind: ErrorKind,
        object_class: str,
        object_name: str,
        source: str,
        message: str,
    ) -> None:
        """Append one issue; cheap enough to call inside parsing loops."""
        self.issues.append(ParseIssue(kind, object_class, object_name, source, message))

    def count_by_kind(self) -> Counter:
        """Error counts per :class:`ErrorKind` (the Section 4 census)."""
        return Counter(issue.kind for issue in self.issues)

    def extend(self, other: "ErrorCollector") -> None:
        """Merge another collector's issues into this one."""
        self.issues.extend(other.issues)

    def __len__(self) -> int:
        return len(self.issues)
