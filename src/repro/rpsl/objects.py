"""Object-class parsers: raw paragraphs to IR objects.

Each parser consumes a lexed :class:`~repro.rpsl.lexer.RpslParagraph` and
produces the corresponding IR dataclass, recording every problem in an
:class:`~repro.rpsl.errors.ErrorCollector` instead of raising.  Malformed
objects are still emitted whenever a usable key exists (an aut-num with one
bad rule keeps its good rules), matching RPSLyzer's tolerance.
"""

from __future__ import annotations

import re

from repro.ir.model import (
    AsSet,
    AutNum,
    BadRule,
    FilterSet,
    Ir,
    PeeringSet,
    RouteObject,
    RouteSet,
    RouteSetMemberName,
)
from repro.net.asn import AsnError, parse_asn
from repro.net.prefix import PrefixError, RangeOp, parse_prefix_with_op
from repro.rpsl.errors import ErrorCollector, ErrorKind, RpslSyntaxError
from repro.rpsl.filter import parse_filter_text
from repro.rpsl.lexer import RpslParagraph
from repro.rpsl.names import NameKind, classify_name, is_valid_set_name, normalize_name
from repro.rpsl.peering import parse_peering_text
from repro.rpsl.policy import parse_default, parse_policy

__all__ = [
    "ROUTING_CLASSES",
    "parse_aut_num",
    "parse_as_set",
    "parse_route_set",
    "parse_route",
    "parse_peering_set",
    "parse_filter_set",
    "collect_into_ir",
]

ROUTING_CLASSES = frozenset(
    {"aut-num", "as-set", "route-set", "route", "route6", "peering-set", "filter-set"}
)

_LIST_SPLIT_RE = re.compile(r"[,\s]+")


def _split_list(value: str) -> list[str]:
    """Split a members-style value on commas and whitespace."""
    return [item for item in _LIST_SPLIT_RE.split(value.strip()) if item]


def _record_strays(
    paragraph: RpslParagraph, name: str, source: str, errors: ErrorCollector
) -> None:
    for stray in paragraph.stray_lines:
        errors.record(
            ErrorKind.SYNTAX,
            paragraph.object_class,
            name,
            source,
            f"out-of-place text: {stray.strip()!r}",
        )


def parse_aut_num(
    paragraph: RpslParagraph, source: str, errors: ErrorCollector
) -> AutNum | None:
    """Parse an *aut-num* paragraph; None if the AS number itself is bad."""
    name = paragraph.object_name
    try:
        asn = parse_asn(name)
    except AsnError as exc:
        errors.record(ErrorKind.INVALID_ASN, "aut-num", name, source, str(exc))
        return None
    aut_num = AutNum(asn=asn, source=source)
    _record_strays(paragraph, name, source, errors)
    aut_num.as_name = paragraph.get("as-name") or ""
    aut_num.member_of = [
        normalize_name(member)
        for attribute in paragraph.get_all("member-of")
        for member in _split_list(attribute.value)
    ]
    aut_num.mnt_by = [
        maintainer.upper()
        for attribute in paragraph.get_all("mnt-by")
        for maintainer in _split_list(attribute.value)
    ]
    for attribute in paragraph.get_all("import", "export", "mp-import", "mp-export"):
        attr_name = attribute.name.lower()
        multiprotocol = attr_name.startswith("mp-")
        kind = attr_name.removeprefix("mp-")
        try:
            rule = parse_policy(kind, attribute.value, multiprotocol=multiprotocol)
        except RpslSyntaxError as exc:
            aut_num.bad_rules.append(BadRule(attr_name, attribute.value, str(exc)))
            errors.record(ErrorKind.SYNTAX, "aut-num", name, source, str(exc))
            continue
        if kind == "import":
            aut_num.imports.append(rule)
        else:
            aut_num.exports.append(rule)
    for attribute in paragraph.get_all("default", "mp-default"):
        attr_name = attribute.name.lower()
        try:
            aut_num.defaults.append(
                parse_default(attribute.value, multiprotocol=attr_name.startswith("mp-"))
            )
        except RpslSyntaxError as exc:
            aut_num.bad_rules.append(BadRule(attr_name, attribute.value, str(exc)))
            errors.record(ErrorKind.SYNTAX, "aut-num", name, source, str(exc))
    return aut_num


def parse_as_set(
    paragraph: RpslParagraph, source: str, errors: ErrorCollector
) -> AsSet | None:
    """Parse an *as-set* paragraph."""
    name = normalize_name(paragraph.object_name)
    if not name:
        errors.record(ErrorKind.SYNTAX, "as-set", name, source, "missing set name")
        return None
    if not is_valid_set_name(name, "as-set"):
        errors.record(
            ErrorKind.INVALID_AS_SET_NAME, "as-set", name, source, "invalid as-set name"
        )
    as_set = AsSet(name=name, source=source)
    _record_strays(paragraph, name, source, errors)
    for attribute in paragraph.get_all("members", "mp-members"):
        for member in _split_list(attribute.value):
            kind = classify_name(member)
            if kind is NameKind.ASN:
                as_set.members_asn.append(int(member[2:]))
            elif kind is NameKind.AS_SET:
                as_set.members_set.append(normalize_name(member))
            elif kind in (NameKind.ANY, NameKind.AS_ANY):
                as_set.contains_any = True
                errors.record(
                    ErrorKind.RESERVED_NAME,
                    "as-set",
                    name,
                    source,
                    f"reserved keyword {member!r} used as a member",
                )
            else:
                errors.record(
                    ErrorKind.SYNTAX,
                    "as-set",
                    name,
                    source,
                    f"invalid as-set member {member!r}",
                )
    as_set.mbrs_by_ref = [m.upper() for a in paragraph.get_all("mbrs-by-ref") for m in _split_list(a.value)]
    as_set.mnt_by = [m.upper() for a in paragraph.get_all("mnt-by") for m in _split_list(a.value)]
    return as_set


def parse_route_set(
    paragraph: RpslParagraph, source: str, errors: ErrorCollector
) -> RouteSet | None:
    """Parse a *route-set* paragraph."""
    name = normalize_name(paragraph.object_name)
    if not name:
        errors.record(ErrorKind.SYNTAX, "route-set", name, source, "missing set name")
        return None
    if not is_valid_set_name(name, "route-set"):
        errors.record(
            ErrorKind.INVALID_ROUTE_SET_NAME,
            "route-set",
            name,
            source,
            "invalid route-set name",
        )
    route_set = RouteSet(name=name, source=source)
    _record_strays(paragraph, name, source, errors)
    for attribute in paragraph.get_all("members", "mp-members"):
        for member in _split_list(attribute.value):
            if "/" in member:
                try:
                    prefix, op = parse_prefix_with_op(member)
                except PrefixError as exc:
                    errors.record(
                        ErrorKind.INVALID_PREFIX, "route-set", name, source, str(exc)
                    )
                    continue
                route_set.prefix_members.append((prefix, op))
                continue
            base = member
            op_text = ""
            caret = member.find("^")
            if caret >= 0:
                base, op_text = member[:caret], member[caret:]
            kind = classify_name(base)
            if kind in (NameKind.ASN, NameKind.AS_SET, NameKind.ROUTE_SET, NameKind.RS_ANY):
                try:
                    op = RangeOp.parse(op_text) if op_text else RangeOp()
                except PrefixError as exc:
                    errors.record(
                        ErrorKind.SYNTAX, "route-set", name, source, str(exc)
                    )
                    continue
                route_set.name_members.append(
                    RouteSetMemberName(normalize_name(base), kind, op)
                )
            else:
                errors.record(
                    ErrorKind.SYNTAX,
                    "route-set",
                    name,
                    source,
                    f"invalid route-set member {member!r}",
                )
    route_set.mbrs_by_ref = [m.upper() for a in paragraph.get_all("mbrs-by-ref") for m in _split_list(a.value)]
    route_set.mnt_by = [m.upper() for a in paragraph.get_all("mnt-by") for m in _split_list(a.value)]
    return route_set


def parse_route(
    paragraph: RpslParagraph, source: str, errors: ErrorCollector
) -> RouteObject | None:
    """Parse a *route* or *route6* paragraph."""
    name = paragraph.object_name
    object_class = paragraph.object_class
    try:
        prefix, op = parse_prefix_with_op(name)
    except PrefixError as exc:
        errors.record(ErrorKind.INVALID_PREFIX, object_class, name, source, str(exc))
        return None
    origin_text = paragraph.get("origin")
    if origin_text is None:
        errors.record(
            ErrorKind.SYNTAX, object_class, name, source, "route object without origin"
        )
        return None
    try:
        origin = parse_asn(origin_text.split()[0])
    except (AsnError, IndexError) as exc:
        errors.record(ErrorKind.INVALID_ASN, object_class, name, source, str(exc))
        return None
    route = RouteObject(prefix=prefix, origin=origin, source=source)
    _record_strays(paragraph, name, source, errors)
    route.member_of = [
        normalize_name(member)
        for attribute in paragraph.get_all("member-of")
        for member in _split_list(attribute.value)
    ]
    route.mnt_by = [m.upper() for a in paragraph.get_all("mnt-by") for m in _split_list(a.value)]
    return route


def parse_peering_set(
    paragraph: RpslParagraph, source: str, errors: ErrorCollector
) -> PeeringSet | None:
    """Parse a *peering-set* paragraph."""
    name = normalize_name(paragraph.object_name)
    if not name:
        errors.record(ErrorKind.SYNTAX, "peering-set", name, source, "missing set name")
        return None
    if not is_valid_set_name(name, "peering-set"):
        errors.record(
            ErrorKind.INVALID_PEERING_SET_NAME,
            "peering-set",
            name,
            source,
            "invalid peering-set name",
        )
    peering_set = PeeringSet(name=name, source=source)
    _record_strays(paragraph, name, source, errors)
    for attribute in paragraph.get_all("peering", "mp-peering"):
        try:
            peering_set.peerings.append(parse_peering_text(attribute.value))
        except RpslSyntaxError as exc:
            errors.record(ErrorKind.SYNTAX, "peering-set", name, source, str(exc))
    peering_set.mnt_by = [m.upper() for a in paragraph.get_all("mnt-by") for m in _split_list(a.value)]
    return peering_set


def parse_filter_set(
    paragraph: RpslParagraph, source: str, errors: ErrorCollector
) -> FilterSet | None:
    """Parse a *filter-set* paragraph."""
    name = normalize_name(paragraph.object_name)
    if not name:
        errors.record(ErrorKind.SYNTAX, "filter-set", name, source, "missing set name")
        return None
    if not is_valid_set_name(name, "filter-set"):
        errors.record(
            ErrorKind.INVALID_FILTER_SET_NAME,
            "filter-set",
            name,
            source,
            "invalid filter-set name",
        )
    filter_set = FilterSet(name=name, source=source)
    _record_strays(paragraph, name, source, errors)
    filter_text = paragraph.get("filter") or paragraph.get("mp-filter")
    if filter_text is None:
        errors.record(
            ErrorKind.SYNTAX, "filter-set", name, source, "filter-set without filter"
        )
    else:
        try:
            filter_set.filter = parse_filter_text(filter_text)
        except RpslSyntaxError as exc:
            errors.record(ErrorKind.SYNTAX, "filter-set", name, source, str(exc))
    filter_set.mnt_by = [m.upper() for a in paragraph.get_all("mnt-by") for m in _split_list(a.value)]
    return filter_set


def collect_into_ir(
    paragraphs, source: str, errors: ErrorCollector, ir: Ir | None = None
) -> Ir:
    """Parse an iterable of paragraphs into an :class:`~repro.ir.model.Ir`.

    Unknown (non-routing) object classes are skipped silently, as they are
    plentiful in real dumps (*person*, *mntner*, *inetnum*, ...).

    Paragraphs the lexer flagged as damaged — ``oversized`` (blew the
    :class:`~repro.rpsl.lexer.LexLimits` caps) or ``truncated`` (cut off
    by the end of a partial dump) — are dropped with an ``OVERSIZED`` /
    ``TRUNCATED`` issue rather than half-parsed: a partial object is worse
    than an accounted-for missing one.
    """
    if ir is None:
        ir = Ir()
    for paragraph in paragraphs:
        object_class = paragraph.object_class
        if paragraph.oversized:
            errors.record(
                ErrorKind.OVERSIZED,
                object_class,
                paragraph.object_name,
                source,
                "object exceeded the per-paragraph size cap; dropped",
            )
            continue
        if paragraph.truncated:
            errors.record(
                ErrorKind.TRUNCATED,
                object_class,
                paragraph.object_name,
                source,
                "dump ended mid-object; dropped the partial paragraph",
            )
            continue
        if object_class == "aut-num":
            aut_num = parse_aut_num(paragraph, source, errors)
            if aut_num is not None and aut_num.asn not in ir.aut_nums:
                ir.aut_nums[aut_num.asn] = aut_num
        elif object_class == "as-set":
            as_set = parse_as_set(paragraph, source, errors)
            if as_set is not None and as_set.name not in ir.as_sets:
                ir.as_sets[as_set.name] = as_set
        elif object_class == "route-set":
            route_set = parse_route_set(paragraph, source, errors)
            if route_set is not None and route_set.name not in ir.route_sets:
                ir.route_sets[route_set.name] = route_set
        elif object_class in ("route", "route6"):
            route = parse_route(paragraph, source, errors)
            if route is not None:
                ir.route_objects.append(route)
        elif object_class == "peering-set":
            peering_set = parse_peering_set(paragraph, source, errors)
            if peering_set is not None and peering_set.name not in ir.peering_sets:
                ir.peering_sets[peering_set.name] = peering_set
        elif object_class == "filter-set":
            filter_set = parse_filter_set(paragraph, source, errors)
            if filter_set is not None and filter_set.name not in ir.filter_sets:
                ir.filter_sets[filter_set.name] = filter_set
    return ir
