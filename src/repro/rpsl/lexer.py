"""Object-level lexing of RPSL dump files.

An IRR dump is a sequence of *paragraphs* separated by blank lines.  Each
paragraph is one RPSL object: a list of ``attribute: value`` lines, where a
value continues onto the next line if that line starts with whitespace or a
``+`` (RFC 2622 Section 2).  ``#`` starts a comment running to end of line;
lines starting with ``%`` are server remarks (IRRd/whois chatter) and are
ignored.

This module is deliberately tolerant: anything that does not look like an
attribute line becomes a *stray line*, which the object parsers report as a
syntax error — mirroring how RPSLyzer counts "out-of-place text".

Two ingestion hazards are handled here rather than upstream (see
``docs/robustness.md``):

* **oversized paragraphs** — an operator-typed (or hostile) dump can hold
  a multi-megabyte single object; :class:`LexLimits` caps the lines and
  bytes buffered per paragraph.  An over-cap paragraph keeps only its
  first line (so the object class and key survive for the error report),
  is flagged ``oversized``, and is dropped by the object parsers with an
  ``OVERSIZED`` :class:`~repro.rpsl.errors.ErrorKind`;
* **truncated dumps** — a download cut off mid-object ends with an
  unterminated line.  With ``detect_truncation`` enabled (file ingestion
  turns it on; in-memory text does not), the final paragraph of such a
  stream is flagged ``truncated`` and dropped with a ``TRUNCATED`` issue
  instead of silently producing a half-parsed object.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, TextIO

__all__ = [
    "Attribute",
    "LexLimits",
    "DEFAULT_LIMITS",
    "RpslParagraph",
    "iter_paragraphs",
    "split_dump",
    "lex_paragraph",
]

# Attribute names: letters, digits, hyphens; must start with a letter
# (RFC 2622 allows leading digits in practice for e.g. "*xxte" IRRd metadata,
# which we exclude on purpose).
_ATTR_RE = re.compile(r"^([A-Za-z][A-Za-z0-9_-]*):(.*)$")


@dataclass(frozen=True, slots=True)
class Attribute:
    """One ``name: value`` pair with comments stripped and lines joined."""

    name: str
    value: str


@dataclass(frozen=True, slots=True)
class LexLimits:
    """Per-paragraph buffering caps applied while lexing a dump.

    Defaults are far above anything a legitimate registry object reaches
    (the largest real-world objects are sets with tens of thousands of
    members, well under a megabyte) while still bounding what one
    paragraph can make the lexer hold in memory.
    """

    max_object_lines: int = 100_000
    max_object_bytes: int = 16 << 20  # 16 MiB of buffered paragraph text
    max_line_bytes: int = 1 << 20  # one attribute line

    def line_over(self, line: str) -> bool:
        """Whether one line exceeds the per-line cap."""
        return len(line) > self.max_line_bytes

    def block_over(self, lines: int, size: int) -> bool:
        """Whether a paragraph of ``lines`` lines / ``size`` chars is over cap."""
        return lines > self.max_object_lines or size > self.max_object_bytes


DEFAULT_LIMITS = LexLimits()


@dataclass(slots=True)
class RpslParagraph:
    """One raw object: its attributes plus any stray (non-attribute) lines.

    ``oversized`` marks a paragraph whose body blew the :class:`LexLimits`
    caps (only its first line was kept); ``truncated`` marks the final
    paragraph of a stream that ended mid-line.  Both are dropped by
    :func:`~repro.rpsl.objects.collect_into_ir` with a recorded issue.
    """

    attributes: list[Attribute] = field(default_factory=list)
    stray_lines: list[str] = field(default_factory=list)
    first_line: int = 0
    oversized: bool = False
    truncated: bool = False

    @property
    def object_class(self) -> str:
        """The class (first attribute name), lowercased; '' if empty."""
        return self.attributes[0].name.lower() if self.attributes else ""

    @property
    def object_name(self) -> str:
        """The object key (first attribute value), whitespace-normalized."""
        return self.attributes[0].value.strip() if self.attributes else ""

    def get(self, name: str) -> str | None:
        """First value of the named attribute (case-insensitive), or None."""
        wanted = name.lower()
        for attribute in self.attributes:
            if attribute.name.lower() == wanted:
                return attribute.value
        return None

    def get_all(self, *names: str) -> list[Attribute]:
        """All attributes whose name matches any of ``names``, in order."""
        wanted = {name.lower() for name in names}
        return [a for a in self.attributes if a.name.lower() in wanted]


def strip_comment(line: str) -> str:
    """Remove a trailing ``# ...`` comment."""
    position = line.find("#")
    if position < 0:
        return line
    return line[:position]


def iter_paragraphs(
    lines: Iterable[str], limits: LexLimits | None = None
) -> Iterator[tuple[int, list[str], bool]]:
    """Group raw dump lines into paragraphs.

    Yields ``(first_line_number, lines, oversized)`` with server remarks
    (``%``) and blank separators removed.  Line numbers are 1-based.  When
    a paragraph exceeds ``limits`` (default :data:`DEFAULT_LIMITS`), only
    its first line is retained and the paragraph is flagged oversized; the
    rest of its lines are consumed without being buffered, so a hostile
    multi-megabyte object costs one line of memory.
    """
    if limits is None:
        limits = DEFAULT_LIMITS
    block: list[str] = []
    block_start = 0
    block_bytes = 0
    block_lines = 0
    oversized = False
    for number, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n").rstrip("\r")
        if line.startswith("%"):
            continue
        if not line.strip():
            if block:
                yield block_start, block, oversized
                block = []
                block_bytes = 0
                block_lines = 0
                oversized = False
            continue
        if not block:
            block_start = number
        block_lines += 1
        block_bytes += len(line) + 1
        if oversized:
            continue  # drain the oversized paragraph without buffering
        if limits.line_over(line):
            line = line[: limits.max_line_bytes]
            oversized = True
        if limits.block_over(block_lines, block_bytes):
            oversized = True
        if oversized:
            del block[1:]
            if not block:
                block.append(line)
            continue
        block.append(line)
    if block:
        yield block_start, block, oversized


def lex_paragraph(block_start: int, lines: list[str]) -> RpslParagraph:
    """Turn one paragraph's lines into attributes, folding continuations."""
    paragraph = RpslParagraph(first_line=block_start)
    current_name: str | None = None
    current_parts: list[str] = []

    def flush() -> None:
        nonlocal current_name, current_parts
        if current_name is not None:
            value = " ".join(part for part in current_parts if part)
            paragraph.attributes.append(Attribute(current_name, value.strip()))
        current_name = None
        current_parts = []

    for line in lines:
        if line[:1] in (" ", "\t", "+") and current_name is not None:
            # Continuation line; "+" means "continue with empty first column".
            continuation = line[1:] if line[0] == "+" else line
            current_parts.append(strip_comment(continuation).strip())
            continue
        match = _ATTR_RE.match(line)
        if match is None:
            flush()
            paragraph.stray_lines.append(line)
            continue
        flush()
        current_name = match.group(1)
        current_parts = [strip_comment(match.group(2)).strip()]
    flush()
    return paragraph


def _track_termination(stream: Iterable[str], state: dict) -> Iterator[str]:
    """Pass lines through, remembering whether the last one ended in ``\\n``."""
    for raw in stream:
        state["terminated"] = raw.endswith("\n")
        yield raw


def _lex_stream(
    stream: TextIO | Iterable[str],
    limits: LexLimits | None,
    detect_truncation: bool,
) -> Iterator[RpslParagraph]:
    state = {"terminated": True}
    lines: Iterable[str] = (
        _track_termination(stream, state) if detect_truncation else stream
    )
    # One-paragraph lookahead so the *final* paragraph (the only one a
    # truncated stream can damage) can be flagged before it is yielded.
    previous: RpslParagraph | None = None
    for block_start, block, oversized in iter_paragraphs(lines, limits):
        if previous is not None:
            yield previous
        previous = lex_paragraph(block_start, block)
        previous.oversized = oversized
    if previous is not None:
        if detect_truncation and not state["terminated"]:
            previous.truncated = True
        yield previous


def split_dump(
    stream: TextIO | Iterable[str],
    limits: LexLimits | None = None,
    detect_truncation: bool = False,
) -> Iterator[RpslParagraph]:
    """Lex a whole dump file (or any iterable of lines) into paragraphs.

    ``limits`` caps per-paragraph buffering (default
    :data:`DEFAULT_LIMITS`); ``detect_truncation`` flags the final
    paragraph when the stream ends with an unterminated line — file-based
    ingestion enables it, in-memory parsing (where a missing trailing
    newline is a formatting quirk, not damage) does not.

    When a metrics registry is live, object and stray-line counts are
    accumulated locally and folded in once at exhaustion — the per-object
    cost of instrumentation is two integer adds.
    """
    from repro.obs import get_registry

    paragraphs_iter = _lex_stream(stream, limits, detect_truncation)
    registry = get_registry()
    if not registry.enabled:
        yield from paragraphs_iter
        return
    paragraphs = 0
    stray_lines = 0
    attributes = 0
    try:
        for paragraph in paragraphs_iter:
            paragraphs += 1
            stray_lines += len(paragraph.stray_lines)
            attributes += len(paragraph.attributes)
            yield paragraph
    finally:
        registry.counter("lex_objects_total").inc(paragraphs)
        registry.counter("lex_attributes_total").inc(attributes)
        registry.counter("lex_stray_lines_total").inc(stray_lines)
