"""Object-level lexing of RPSL dump files.

An IRR dump is a sequence of *paragraphs* separated by blank lines.  Each
paragraph is one RPSL object: a list of ``attribute: value`` lines, where a
value continues onto the next line if that line starts with whitespace or a
``+`` (RFC 2622 Section 2).  ``#`` starts a comment running to end of line;
lines starting with ``%`` are server remarks (IRRd/whois chatter) and are
ignored.

This module is deliberately tolerant: anything that does not look like an
attribute line becomes a *stray line*, which the object parsers report as a
syntax error — mirroring how RPSLyzer counts "out-of-place text".
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, TextIO

__all__ = ["Attribute", "RpslParagraph", "iter_paragraphs", "split_dump", "lex_paragraph"]

# Attribute names: letters, digits, hyphens; must start with a letter
# (RFC 2622 allows leading digits in practice for e.g. "*xxte" IRRd metadata,
# which we exclude on purpose).
_ATTR_RE = re.compile(r"^([A-Za-z][A-Za-z0-9_-]*):(.*)$")


@dataclass(frozen=True, slots=True)
class Attribute:
    """One ``name: value`` pair with comments stripped and lines joined."""

    name: str
    value: str


@dataclass(slots=True)
class RpslParagraph:
    """One raw object: its attributes plus any stray (non-attribute) lines."""

    attributes: list[Attribute] = field(default_factory=list)
    stray_lines: list[str] = field(default_factory=list)
    first_line: int = 0

    @property
    def object_class(self) -> str:
        """The class (first attribute name), lowercased; '' if empty."""
        return self.attributes[0].name.lower() if self.attributes else ""

    @property
    def object_name(self) -> str:
        """The object key (first attribute value), whitespace-normalized."""
        return self.attributes[0].value.strip() if self.attributes else ""

    def get(self, name: str) -> str | None:
        """First value of the named attribute (case-insensitive), or None."""
        wanted = name.lower()
        for attribute in self.attributes:
            if attribute.name.lower() == wanted:
                return attribute.value
        return None

    def get_all(self, *names: str) -> list[Attribute]:
        """All attributes whose name matches any of ``names``, in order."""
        wanted = {name.lower() for name in names}
        return [a for a in self.attributes if a.name.lower() in wanted]


def strip_comment(line: str) -> str:
    """Remove a trailing ``# ...`` comment."""
    position = line.find("#")
    if position < 0:
        return line
    return line[:position]


def iter_paragraphs(lines: Iterable[str]) -> Iterator[tuple[int, list[str]]]:
    """Group raw dump lines into paragraphs.

    Yields ``(first_line_number, lines)`` with server remarks (``%``) and
    blank separators removed.  Line numbers are 1-based.
    """
    block: list[str] = []
    block_start = 0
    for number, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n").rstrip("\r")
        if line.startswith("%"):
            continue
        if not line.strip():
            if block:
                yield block_start, block
                block = []
            continue
        if not block:
            block_start = number
        block.append(line)
    if block:
        yield block_start, block


def lex_paragraph(block_start: int, lines: list[str]) -> RpslParagraph:
    """Turn one paragraph's lines into attributes, folding continuations."""
    paragraph = RpslParagraph(first_line=block_start)
    current_name: str | None = None
    current_parts: list[str] = []

    def flush() -> None:
        nonlocal current_name, current_parts
        if current_name is not None:
            value = " ".join(part for part in current_parts if part)
            paragraph.attributes.append(Attribute(current_name, value.strip()))
        current_name = None
        current_parts = []

    for line in lines:
        if line[:1] in (" ", "\t", "+") and current_name is not None:
            # Continuation line; "+" means "continue with empty first column".
            continuation = line[1:] if line[0] == "+" else line
            current_parts.append(strip_comment(continuation).strip())
            continue
        match = _ATTR_RE.match(line)
        if match is None:
            flush()
            paragraph.stray_lines.append(line)
            continue
        flush()
        current_name = match.group(1)
        current_parts = [strip_comment(match.group(2)).strip()]
    flush()
    return paragraph


def split_dump(stream: TextIO | Iterable[str]) -> Iterator[RpslParagraph]:
    """Lex a whole dump file (or any iterable of lines) into paragraphs.

    When a metrics registry is live, object and stray-line counts are
    accumulated locally and folded in once at exhaustion — the per-object
    cost of instrumentation is two integer adds.
    """
    from repro.obs import get_registry

    registry = get_registry()
    if not registry.enabled:
        for block_start, lines in iter_paragraphs(stream):
            yield lex_paragraph(block_start, lines)
        return
    paragraphs = 0
    stray_lines = 0
    attributes = 0
    try:
        for block_start, lines in iter_paragraphs(stream):
            paragraph = lex_paragraph(block_start, lines)
            paragraphs += 1
            stray_lines += len(paragraph.stray_lines)
            attributes += len(paragraph.attributes)
            yield paragraph
    finally:
        registry.counter("lex_objects_total").inc(paragraphs)
        registry.counter("lex_attributes_total").inc(attributes)
        registry.counter("lex_stray_lines_total").inc(stray_lines)
