"""RPSL action specifications (RFC 2622 Section 6.1.1).

An *action* modifies route attributes as routes cross a peering, e.g.
``action pref=50; med=0; community.append(8226:1102);``.  Verification does
not depend on actions (they do not affect whether a route matches a rule),
but the characterization analyses count and classify them, and the unparser
must round-trip them, so they are parsed into a structured form:

* assignments — ``pref = 100``, ``community .= { 64628:20 }``;
* method calls — ``community.append(...)``, ``aspath.prepend(...)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.rpsl.errors import RpslSyntaxError
from repro.rpsl.tokens import Token, TokenKind

__all__ = ["ActionItem", "parse_action_tokens"]

_ASSIGN_RE = re.compile(
    r"^(?P<attr>[A-Za-z][A-Za-z0-9_-]*)\s*(?P<op>\.=|=|\+=|-=)\s*(?P<rest>.+)$",
    re.DOTALL,
)
_CALL_HEAD_RE = re.compile(r"^(?P<attr>[A-Za-z][A-Za-z0-9_-]*)\.(?P<method>[A-Za-z_]+)$")


@dataclass(frozen=True, slots=True)
class ActionItem:
    """One parsed action: either an assignment or a method call."""

    attribute: str
    operator: str | None = None
    method: str | None = None
    values: tuple[str, ...] = ()
    braced: bool = False

    def to_rpsl(self) -> str:
        """Render back to RPSL action syntax (without the trailing ``;``)."""
        if self.method is not None:
            return f"{self.attribute}.{self.method}({', '.join(self.values)})"
        value_text = ", ".join(self.values)
        if self.braced:
            value_text = f"{{{value_text}}}"
        return f"{self.attribute} {self.operator} {value_text}"


def _split_on_semicolons(tokens: list[Token]) -> list[list[Token]]:
    items: list[list[Token]] = []
    current: list[Token] = []
    depth = 0
    for token in tokens:
        if token.kind in (TokenKind.LPAREN, TokenKind.LBRACE):
            depth += 1
        elif token.kind in (TokenKind.RPAREN, TokenKind.RBRACE):
            depth -= 1
        if token.kind is TokenKind.SEMI and depth == 0:
            if current:
                items.append(current)
            current = []
            continue
        current.append(token)
    if current:
        items.append(current)
    return items


def _parse_call(tokens: list[Token]) -> ActionItem | None:
    if len(tokens) < 3 or tokens[0].kind is not TokenKind.WORD:
        return None
    match = _CALL_HEAD_RE.match(tokens[0].text)
    if match is None or tokens[1].kind is not TokenKind.LPAREN:
        return None
    if tokens[-1].kind is not TokenKind.RPAREN:
        raise RpslSyntaxError(f"unterminated action call {tokens[0].text!r}")
    values = tuple(
        token.text for token in tokens[2:-1] if token.kind is not TokenKind.COMMA
    )
    return ActionItem(
        attribute=match.group("attr").lower(),
        method=match.group("method").lower(),
        values=values,
    )


def _parse_assignment(tokens: list[Token]) -> ActionItem:
    braced = any(token.kind is TokenKind.LBRACE for token in tokens)
    if braced:
        head = [t for t in tokens if t.kind is TokenKind.WORD and t.position < _first_brace(tokens)]
        values = tuple(
            token.text
            for token in tokens
            if token.kind is TokenKind.WORD and token.position > _first_brace(tokens)
        )
        joined_head = " ".join(token.text for token in head)
        match = _ASSIGN_RE.match(joined_head + " {}")
        if match is None:
            raise RpslSyntaxError(f"invalid action {joined_head!r}")
        return ActionItem(
            attribute=match.group("attr").lower(),
            operator=match.group("op"),
            values=values,
            braced=True,
        )
    joined = " ".join(token.text for token in tokens)
    match = _ASSIGN_RE.match(joined)
    if match is None:
        raise RpslSyntaxError(f"invalid action {joined!r}")
    return ActionItem(
        attribute=match.group("attr").lower(),
        operator=match.group("op"),
        values=(match.group("rest").strip(),),
    )


def _first_brace(tokens: list[Token]) -> int:
    for token in tokens:
        if token.kind is TokenKind.LBRACE:
            return token.position
    return -1


def parse_action_tokens(tokens: list[Token]) -> tuple[ActionItem, ...]:
    """Parse the token span following the ``action`` keyword."""
    items: list[ActionItem] = []
    for chunk in _split_on_semicolons(tokens):
        call = _parse_call(chunk)
        items.append(call if call is not None else _parse_assignment(chunk))
    return tuple(items)
