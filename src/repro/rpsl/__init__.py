"""The RPSL parser: lexing, expression grammars, and object-class parsers.

Layers, bottom to top:

1. :mod:`repro.rpsl.lexer` — dump files to paragraphs of attributes;
2. :mod:`repro.rpsl.tokens` — expression tokenizer;
3. :mod:`repro.rpsl.aspath` / :mod:`~repro.rpsl.filter` /
   :mod:`~repro.rpsl.peering` / :mod:`~repro.rpsl.action` /
   :mod:`~repro.rpsl.policy` — the expression grammars;
4. :mod:`repro.rpsl.objects` — object classes to IR.
"""

from repro.rpsl.errors import ErrorCollector, ErrorKind, ParseIssue, RpslSyntaxError
from repro.rpsl.lexer import Attribute, LexLimits, RpslParagraph, split_dump
from repro.rpsl.names import NameKind, classify_name, is_valid_set_name
from repro.rpsl.policy import PolicyRule, parse_policy

# NOTE: repro.rpsl.objects is intentionally not imported here — it depends
# on repro.ir.model, which imports the expression modules of this package;
# importing it at package-init time would create an import cycle.  Use
# ``from repro.rpsl.objects import collect_into_ir`` directly.

__all__ = [
    "Attribute",
    "ErrorCollector",
    "ErrorKind",
    "LexLimits",
    "NameKind",
    "ParseIssue",
    "PolicyRule",
    "RpslParagraph",
    "RpslSyntaxError",
    "classify_name",
    "is_valid_set_name",
    "parse_policy",
    "split_dump",
]
