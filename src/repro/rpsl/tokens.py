"""Tokenizer for RPSL policy expressions.

The values of ``import``/``export`` attributes — and the peering, action,
and filter expressions inside them — share one lexical structure:

* punctuation ``{ } ( ) ; ,`` are single-character tokens,
* ``<...>`` is one token (an AS-path regular expression),
* everything else whitespace-separated is a *word* (``AS174``,
  ``AS-FOO^+``, ``pref=100``, ``192.0.2.0/24^24-28``, ``community.delete``).

Keyword comparisons are case-insensitive, as required by RFC 2622.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.rpsl.errors import RpslSyntaxError

__all__ = ["TokenKind", "Token", "tokenize", "TokenStream"]

_PUNCT = {
    "{": "LBRACE",
    "}": "RBRACE",
    "(": "LPAREN",
    ")": "RPAREN",
    ";": "SEMI",
    ",": "COMMA",
}


class TokenKind(Enum):
    """Lexical categories of policy-expression tokens."""

    WORD = "word"
    REGEX = "regex"
    LBRACE = "LBRACE"
    RBRACE = "RBRACE"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    SEMI = "SEMI"
    COMMA = "COMMA"


@dataclass(frozen=True, slots=True)
class Token:
    """One token with its source offset (for error messages)."""

    kind: TokenKind
    text: str
    position: int

    def is_keyword(self, *keywords: str) -> bool:
        """Case-insensitive keyword test; only WORD tokens can be keywords."""
        return self.kind is TokenKind.WORD and self.text.lower() in keywords


def tokenize(text: str) -> list[Token]:
    """Tokenize a policy/filter/peering expression string."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char in _PUNCT:
            tokens.append(Token(TokenKind(_PUNCT[char]), char, index))
            index += 1
            continue
        if char == "<":
            end = text.find(">", index + 1)
            if end < 0:
                raise RpslSyntaxError(f"unterminated AS-path regex at offset {index}")
            tokens.append(Token(TokenKind.REGEX, text[index : end + 1], index))
            index = end + 1
            continue
        start = index
        while index < length and not text[index].isspace() and text[index] not in _PUNCT and text[index] != "<":
            index += 1
        tokens.append(Token(TokenKind.WORD, text[start:index], start))
    return tokens


class TokenStream:
    """Cursor over a token list with the peek/next/expect trio."""

    __slots__ = ("tokens", "index")

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.index = 0

    @classmethod
    def of(cls, text: str) -> "TokenStream":
        """Tokenize ``text`` and wrap the result."""
        return cls(tokenize(text))

    def peek(self, ahead: int = 0) -> Token | None:
        """The token ``ahead`` positions from the cursor, or None at EOF."""
        position = self.index + ahead
        if position < len(self.tokens):
            return self.tokens[position]
        return None

    def next(self) -> Token:
        """Consume and return the next token; raise at EOF."""
        token = self.peek()
        if token is None:
            raise RpslSyntaxError("unexpected end of expression")
        self.index += 1
        return token

    def expect(self, kind: TokenKind) -> Token:
        """Consume the next token, requiring the given kind."""
        token = self.next()
        if token.kind is not kind:
            raise RpslSyntaxError(
                f"expected {kind.value}, found {token.text!r} at offset {token.position}"
            )
        return token

    def at_keyword(self, *keywords: str) -> bool:
        """Whether the next token is one of the given keywords."""
        token = self.peek()
        return token is not None and token.is_keyword(*keywords)

    def take_keyword(self, *keywords: str) -> bool:
        """Consume the next token if it is one of the keywords."""
        if self.at_keyword(*keywords):
            self.index += 1
            return True
        return False

    def exhausted(self) -> bool:
        """Whether the cursor is at EOF."""
        return self.index >= len(self.tokens)

    def rest_text(self) -> str:
        """The remaining tokens re-joined (used in error messages)."""
        return " ".join(token.text for token in self.tokens[self.index :])
