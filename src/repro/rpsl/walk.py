"""AST walkers shared by the verifier, baselines, and statistics.

These are read-only traversals over the policy/filter/peering ASTs:
iterating factors of a (possibly structured) policy, all nodes of a filter,
and the OR-level atoms of a filter (used by the relaxed-filter checks,
which ask "does this filter *contain* the exporting AS as a term?").
"""

from __future__ import annotations

from typing import Iterator

from repro.rpsl.filter import Filter, FilterAnd, FilterNot, FilterOr
from repro.rpsl.peering import (
    AsExpr,
    PeerAnd,
    PeerAsn,
    PeerAsSet,
    PeerExcept,
    PeerOr,
    Peering,
)
from repro.rpsl.policy import PolicyExcept, PolicyExpr, PolicyFactor, PolicyRefine, PolicyTerm

__all__ = [
    "iter_policy_factors",
    "iter_policy_terms",
    "iter_filter_nodes",
    "iter_peerings",
    "iter_as_expr_nodes",
    "or_atoms",
    "positive_peer_asns",
]


def iter_policy_terms(expr: PolicyExpr) -> Iterator[PolicyTerm]:
    """All terms of a policy expression, outermost first."""
    current: PolicyExpr | None = expr
    while current is not None:
        if isinstance(current, PolicyTerm):
            yield current
            current = None
        elif isinstance(current, (PolicyExcept, PolicyRefine)):
            yield current.term
            current = current.rest
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown policy expression {current!r}")


def iter_policy_factors(expr: PolicyExpr) -> Iterator[PolicyFactor]:
    """All factors of a policy expression, regardless of nesting."""
    for term in iter_policy_terms(expr):
        yield from term.factors


def iter_filter_nodes(node: Filter) -> Iterator[Filter]:
    """Depth-first iteration over every node of a filter AST."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (FilterAnd, FilterOr)):
            stack.append(current.left)
            stack.append(current.right)
        elif isinstance(current, FilterNot):
            stack.append(current.inner)


def or_atoms(node: Filter) -> Iterator[Filter]:
    """The positive atoms of a filter's top-level OR decomposition.

    ``A OR (B OR C)`` yields A, B, C; anything under AND or NOT is *not*
    decomposed (those change the atom's meaning).
    """
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, FilterOr):
            stack.append(current.left)
            stack.append(current.right)
        else:
            yield current


def iter_peerings(expr: PolicyExpr) -> Iterator[Peering]:
    """Every peering mentioned anywhere in a policy expression."""
    for factor in iter_policy_factors(expr):
        for peering_action in factor.peerings:
            yield peering_action.peering


def iter_as_expr_nodes(expr: AsExpr) -> Iterator[AsExpr]:
    """Depth-first iteration over an AS-expression AST."""
    stack = [expr]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (PeerAnd, PeerOr, PeerExcept)):
            stack.append(current.left)
            stack.append(current.right)


def positive_peer_asns(expr: AsExpr) -> tuple[set[int], bool]:
    """ASNs a peering's AS-expression names positively.

    Returns ``(asns, simple)`` where ``simple`` is False when the
    expression contains anything but plain ASNs and ORs (sets, AS-ANY,
    EXCEPT...) — callers like the only-provider-policies check bail out on
    non-simple expressions rather than guess.
    """
    asns: set[int] = set()
    simple = True
    stack = [expr]
    while stack:
        current = stack.pop()
        if isinstance(current, PeerAsn):
            asns.add(current.asn)
        elif isinstance(current, PeerOr):
            stack.append(current.left)
            stack.append(current.right)
        elif isinstance(current, PeerAsSet):
            simple = False
        else:
            simple = False
    return asns, simple
