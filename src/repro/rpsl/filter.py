"""RPSL policy filters (RFC 2622 Section 5.4).

A *filter* limits the routes a rule accepts or announces.  The grammar,
as implemented here:

.. code-block:: text

    filter  := term (OR term)* | term term ...     # juxtaposition is OR
    term    := factor (AND factor)*
    factor  := NOT factor | primary
    primary := '(' filter ')' [^op]
             | ANY | PeerAS | AS-ANY | RS-ANY
             | <as-path-regex>
             | '{' prefix [, prefix]* '}' [^op]
             | ASN [^op] | as-set [^op] | route-set [^op] | fltr-set
             | community(...) | community.method(...)

The ``[^op]`` range operators on *route-sets* are the non-standard-but-
common extension the paper adds support for (Appendix B); range operators
on ASNs and as-sets are standard.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.prefix import Prefix, PrefixError, RangeOp, RangeOpKind
from repro.rpsl.aspath import AsPathRegexNode, parse_as_path_regex
from repro.rpsl.errors import RpslSyntaxError
from repro.rpsl.names import NameKind, classify_name
from repro.rpsl.tokens import Token, TokenKind, TokenStream

__all__ = [
    "Filter",
    "FilterAny",
    "FilterPeerAs",
    "FilterAsn",
    "FilterAsSet",
    "FilterRouteSet",
    "FilterFltrSetRef",
    "FilterPrefixSet",
    "FilterAsPathRegex",
    "FilterCommunity",
    "FilterAnd",
    "FilterOr",
    "FilterNot",
    "parse_filter",
    "parse_filter_text",
]


class Filter:
    """Base class for filter AST nodes."""

    __slots__ = ()

    def to_rpsl(self) -> str:
        """Render back to RPSL filter syntax."""
        raise NotImplementedError

    def _atom_rpsl(self) -> str:
        """Rendering used when this node appears under AND/OR/NOT."""
        return self.to_rpsl()


def _op_suffix(op: RangeOp) -> str:
    return str(op)


@dataclass(frozen=True, slots=True)
class FilterAny(Filter):
    """The ``ANY`` keyword: matches every route."""

    def to_rpsl(self) -> str:
        return "ANY"


@dataclass(frozen=True, slots=True)
class FilterPeerAs(Filter):
    """``PeerAS``: routes originated by the neighbor the rule applies to."""

    def to_rpsl(self) -> str:
        return "PeerAS"


@dataclass(frozen=True, slots=True)
class FilterAsn(Filter):
    """An ASN filter: routes registered with this *origin* (plus range op)."""

    asn: int
    op: RangeOp = RangeOp()

    def to_rpsl(self) -> str:
        return f"AS{self.asn}{_op_suffix(self.op)}"


@dataclass(frozen=True, slots=True)
class FilterAsSet(Filter):
    """An *as-set* filter: routes originated by any member of the set.

    ``any_member`` marks the ``AS-ANY`` keyword used in filter position.
    """

    name: str
    op: RangeOp = RangeOp()
    any_member: bool = False

    def to_rpsl(self) -> str:
        return f"{self.name}{_op_suffix(self.op)}"


@dataclass(frozen=True, slots=True)
class FilterRouteSet(Filter):
    """A *route-set* filter; ``any_member`` marks ``RS-ANY``."""

    name: str
    op: RangeOp = RangeOp()
    any_member: bool = False

    def to_rpsl(self) -> str:
        return f"{self.name}{_op_suffix(self.op)}"


@dataclass(frozen=True, slots=True)
class FilterFltrSetRef(Filter):
    """A reference to a *filter-set* object (``FLTR-...``)."""

    name: str

    def to_rpsl(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class FilterPrefixSet(Filter):
    """An inline address-prefix set ``{ p1, p2, ... }`` with per-member ops.

    ``op`` is an operator applied to the whole set (e.g. ``{...}^+``).
    """

    members: tuple[tuple[Prefix, RangeOp], ...]
    op: RangeOp = RangeOp()

    def to_rpsl(self) -> str:
        inner = ", ".join(f"{prefix}{_op_suffix(op)}" for prefix, op in self.members)
        return f"{{{inner}}}{_op_suffix(self.op)}"


@dataclass(frozen=True, slots=True)
class FilterAsPathRegex(Filter):
    """An AS-path regex filter ``<...>``."""

    regex: AsPathRegexNode

    def to_rpsl(self) -> str:
        return f"<{self.regex.to_rpsl()}>"


@dataclass(frozen=True, slots=True)
class FilterCommunity(Filter):
    """A BGP-community filter, e.g. ``community(65535:666)``.

    The paper parses these but skips rules using them in verification,
    because communities may be stripped in flight.
    """

    method: str
    args: tuple[str, ...]

    def to_rpsl(self) -> str:
        head = "community" if not self.method else f"community.{self.method}"
        return f"{head}({', '.join(self.args)})"


@dataclass(frozen=True, slots=True)
class FilterAnd(Filter):
    """Conjunction of two filters."""

    left: Filter
    right: Filter

    def to_rpsl(self) -> str:
        return f"{self.left._atom_rpsl()} AND {self.right._atom_rpsl()}"

    def _atom_rpsl(self) -> str:
        return f"({self.to_rpsl()})"


@dataclass(frozen=True, slots=True)
class FilterOr(Filter):
    """Disjunction of two filters (explicit OR or juxtaposition)."""

    left: Filter
    right: Filter

    def to_rpsl(self) -> str:
        return f"{self.left._atom_rpsl()} OR {self.right._atom_rpsl()}"

    def _atom_rpsl(self) -> str:
        return f"({self.to_rpsl()})"


@dataclass(frozen=True, slots=True)
class FilterNot(Filter):
    """Negation of a filter."""

    inner: Filter

    def to_rpsl(self) -> str:
        return f"NOT {self.inner._atom_rpsl()}"

    def _atom_rpsl(self) -> str:
        return f"({self.to_rpsl()})"


def _split_range_op(word: str) -> tuple[str, RangeOp]:
    """Split a trailing ``^...`` range operator off a word token."""
    caret = word.find("^")
    if caret < 0:
        return word, RangeOp()
    try:
        return word[:caret], RangeOp.parse(word[caret:])
    except PrefixError as exc:
        raise RpslSyntaxError(str(exc)) from exc


def _parse_prefix_member(word: str) -> tuple[Prefix, RangeOp]:
    base, op = _split_range_op(word)
    try:
        prefix = Prefix.parse(base)
    except PrefixError as exc:
        raise RpslSyntaxError(str(exc)) from exc
    return prefix, op


def _parse_prefix_set(stream: TokenStream) -> FilterPrefixSet:
    members: list[tuple[Prefix, RangeOp]] = []
    while True:
        token = stream.next()
        if token.kind is TokenKind.RBRACE:
            break
        if token.kind is TokenKind.COMMA:
            continue
        if token.kind is not TokenKind.WORD:
            raise RpslSyntaxError(f"unexpected {token.text!r} in prefix set")
        members.append(_parse_prefix_member(token.text))
    op = _maybe_trailing_op(stream)
    return FilterPrefixSet(tuple(members), op)


def _maybe_trailing_op(stream: TokenStream) -> RangeOp:
    """Consume a standalone ``^...`` word following a set or group."""
    token = stream.peek()
    if token is not None and token.kind is TokenKind.WORD and token.text.startswith("^"):
        stream.next()
        try:
            return RangeOp.parse(token.text)
        except PrefixError as exc:
            raise RpslSyntaxError(str(exc)) from exc
    return RangeOp()


def _parse_community(stream: TokenStream, head: str) -> FilterCommunity:
    method = head[len("community") :].lstrip(".")
    args: list[str] = []
    token = stream.peek()
    if token is not None and token.kind is TokenKind.LPAREN:
        stream.next()
        while True:
            token = stream.next()
            if token.kind is TokenKind.RPAREN:
                break
            if token.kind is TokenKind.COMMA:
                continue
            args.append(token.text)
    elif token is not None and token.kind is TokenKind.LBRACE:
        # "community == {...}" style — swallow the braced list.
        stream.next()
        while True:
            token = stream.next()
            if token.kind is TokenKind.RBRACE:
                break
            if token.kind is not TokenKind.COMMA:
                args.append(token.text)
    return FilterCommunity(method, tuple(args))


def _word_primary(stream: TokenStream, token: Token) -> Filter:
    lowered = token.text.lower()
    if lowered.startswith("community"):
        return _parse_community(stream, lowered)
    base, op = _split_range_op(token.text)
    kind = classify_name(base)
    if kind is NameKind.ANY:
        return FilterAny()
    if kind is NameKind.PEER_AS:
        return FilterPeerAs()
    if kind is NameKind.AS_ANY:
        return FilterAsSet("AS-ANY", op, any_member=True)
    if kind is NameKind.RS_ANY:
        return FilterRouteSet("RS-ANY", op, any_member=True)
    if kind is NameKind.ASN:
        return FilterAsn(int(base[2:]), op)
    if kind is NameKind.AS_SET:
        return FilterAsSet(base.upper(), op)
    if kind is NameKind.ROUTE_SET:
        return FilterRouteSet(base.upper(), op)
    if kind is NameKind.FILTER_SET:
        if op.kind is not RangeOpKind.NONE:
            raise RpslSyntaxError(f"range operator not allowed on filter-set {base!r}")
        return FilterFltrSetRef(base.upper())
    if "/" in base:
        # A bare prefix outside braces: tolerated by IRRd, normalize to a set.
        prefix, member_op = _parse_prefix_member(token.text)
        return FilterPrefixSet(((prefix, member_op),))
    raise RpslSyntaxError(f"unrecognized filter term {token.text!r}")


_STOP_KEYWORDS = ("and", "or", "not", "except", "refine")


def _parse_primary(stream: TokenStream) -> Filter:
    token = stream.next()
    if token.kind is TokenKind.LPAREN:
        inner = _parse_or(stream)
        stream.expect(TokenKind.RPAREN)
        op = _maybe_trailing_op(stream)
        if op.kind is not RangeOpKind.NONE:
            inner = _apply_op(inner, op)
        return inner
    if token.kind is TokenKind.LBRACE:
        return _parse_prefix_set(stream)
    if token.kind is TokenKind.REGEX:
        return FilterAsPathRegex(parse_as_path_regex(token.text))
    if token.kind is TokenKind.WORD:
        return _word_primary(stream, token)
    raise RpslSyntaxError(f"unexpected {token.text!r} in filter")


def _apply_op(node: Filter, op: RangeOp) -> Filter:
    """Push a trailing range operator onto a parenthesized sub-filter."""
    if isinstance(node, FilterAsn):
        return FilterAsn(node.asn, node.op.compose(op))
    if isinstance(node, FilterAsSet):
        return FilterAsSet(node.name, node.op.compose(op), node.any_member)
    if isinstance(node, FilterRouteSet):
        return FilterRouteSet(node.name, node.op.compose(op), node.any_member)
    if isinstance(node, FilterPrefixSet):
        return FilterPrefixSet(node.members, node.op.compose(op))
    if isinstance(node, FilterOr):
        return FilterOr(_apply_op(node.left, op), _apply_op(node.right, op))
    if isinstance(node, FilterAnd):
        return FilterAnd(_apply_op(node.left, op), _apply_op(node.right, op))
    raise RpslSyntaxError(f"range operator not applicable to {node.to_rpsl()!r}")


def _parse_not(stream: TokenStream) -> Filter:
    if stream.take_keyword("not"):
        return FilterNot(_parse_not(stream))
    return _parse_primary(stream)


def _parse_and(stream: TokenStream) -> Filter:
    node = _parse_not(stream)
    while stream.take_keyword("and"):
        node = FilterAnd(node, _parse_not(stream))
    return node


def _starts_primary(token: Token) -> bool:
    if token.kind in (TokenKind.LPAREN, TokenKind.LBRACE, TokenKind.REGEX):
        return True
    if token.kind is TokenKind.WORD:
        return token.text.lower() not in _STOP_KEYWORDS and not token.text.startswith("^")
    return False


def _parse_or(stream: TokenStream) -> Filter:
    node = _parse_and(stream)
    while True:
        if stream.take_keyword("or"):
            node = FilterOr(node, _parse_and(stream))
            continue
        token = stream.peek()
        if token is not None and (_starts_primary(token) or token.is_keyword("not")):
            # Juxtaposition of filters is an implicit OR (RFC 2622 §5.4).
            node = FilterOr(node, _parse_and(stream))
            continue
        return node


def parse_filter(stream: TokenStream) -> Filter:
    """Parse a filter from a token stream, consuming every token."""
    node = _parse_or(stream)
    if not stream.exhausted():
        raise RpslSyntaxError(f"trailing tokens in filter: {stream.rest_text()!r}")
    return node


def parse_filter_text(text: str) -> Filter:
    """Parse a filter from a standalone string (e.g. a filter-set body)."""
    return parse_filter(TokenStream.of(text))
