"""The shared request core: deadlines, backpressure, batched execution.

Both front-ends (HTTP and the WHOIS line protocol) reduce their requests
to :class:`Query` values and await :meth:`VerifyService.submit`.  The
service owns admission control and execution semantics so the protocol
handlers stay thin:

* **bounded queue** — submission is ``put_nowait`` onto the
  :class:`~repro.serve.batcher.MicroBatcher`'s queue; overflow raises
  :class:`BusyError`, which the front-ends translate to HTTP 429 or
  ``%% BUSY``.  Nothing in the daemon buffers unboundedly.
* **adaptive load shedding** — with a worker pool attached, a
  :class:`~repro.serve.supervisor.LatencyShedder` watches measured
  queue-wait latency and refuses admission (429/``%% BUSY``) while the
  wait stays above target, *before* the queue fills.
* **per-request deadlines** — every query carries a wall deadline
  (client-supplied, validated positive and clamped to
  ``max_deadline``).  A query still queued when its deadline passes is
  never executed; the waiter gets a structured :class:`DeadlineExpired`
  (HTTP 504 / ``%% DEADLINE``) and the miss is counted.
* **micro-batching** — concurrent queries coalesce into one indexed
  verify pass (see :mod:`repro.serve.batcher`), so the compiled index
  is consulted once per hop, never recompiled per request.
* **supervised execution** — with ``workers > 0`` batches ship to a
  self-healing pool of warm worker processes
  (:class:`~repro.serve.supervisor.WorkerSupervisor`); a batch the pool
  cannot serve (crashes, open breaker, degraded pool) falls back to the
  in-process serial path, so every admitted request still gets its
  verdict.

Serving metrics (reported into the session's registry, exposed at
``GET /metrics``): ``serve_request_seconds{endpoint=}`` latency
histograms, ``serve_queue_depth``,
``serve_queue_wait_seconds{outcome=}`` (recorded for executed *and*
shed/refused/expired traffic, so backpressure tuning sees the latency
of what it rejected), ``serve_stage_seconds{stage=}`` (the per-request
accept → queue → coalesce → dispatch → execute → respond breakdown, see
:mod:`repro.serve.telemetry`), ``serve_batch_size``,
``serve_deadline_miss_total``, ``serve_shed_total``,
``serve_requests_total{endpoint=,outcome=}``, and the supervisor's
worker/breaker gauges.

Every request additionally carries a correlation id (honoring a
client-supplied ``X-Request-Id``) that is echoed in the response,
stamped on each access-log line and flight-recorder event — including
the events the pool workers record in their own processes — so one id
greps the whole story of a request across the stack.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.api import Session
from repro.core.degradation import DegradationReport
from repro.irr.journal import Journal
from repro.core.report import RouteReport
from repro.net.prefix import Prefix, PrefixError
from repro.obs.flight import (
    NULL_FLIGHT,
    FlightRecorder,
    clean_request_id,
    new_request_id,
)
from repro.serve.batcher import MicroBatcher, QueueFull
from repro.serve.supervisor import (
    LatencyShedder,
    SupervisorConfig,
    WorkerSupervisor,
)
from repro.serve.telemetry import STAGES, AccessLog, RequestTelemetry

__all__ = [
    "BadRequestError",
    "BusyError",
    "DeadlineExpired",
    "Query",
    "ServeConfig",
    "ServeError",
    "VerifyService",
    "SERVE_BATCH_BUCKETS",
    "report_as_dict",
]

# Histogram bounds for batch sizes: 1..512, doubling.
SERVE_BATCH_BUCKETS: tuple[float, ...] = tuple(float(2**i) for i in range(10))

# Hard cap on AS-path length accepted over the wire; real paths top out
# in the dozens, so anything longer is abuse, not routing.
MAX_AS_PATH_LEN = 512


class ServeError(Exception):
    """Base class for structured serving errors; ``code`` keys the JSON."""

    code = "error"


class BusyError(ServeError):
    """The service refuses admission (queue full, shedding, draining)."""

    code = "busy"


class DeadlineExpired(ServeError):
    """The request's deadline passed before a verdict was produced."""

    code = "deadline"


class BadRequestError(ServeError):
    """The request was malformed (bad prefix, bad path, bad JSON shape)."""

    code = "bad-request"


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Knobs for the resident service; defaults suit a local daemon.

    ``http_port``/``whois_port`` of 0 bind an ephemeral port (tests);
    ``None`` disables that front-end.  ``queue_size`` bounds admitted but
    unexecuted queries — the backpressure threshold.  ``batch_window`` is
    how long the batcher lingers after the first query of a batch so
    concurrent arrivals coalesce.  Deadlines are seconds of wall time; a
    request may ask for less than ``default_deadline`` but never more
    than ``max_deadline``.  ``drain_timeout`` bounds the graceful
    SIGTERM drain.

    ``workers`` > 0 attaches the self-healing multi-process pool (see
    :mod:`repro.serve.supervisor`); 0 (the default) keeps the original
    in-process single-thread execution.  ``shed_target`` of ``None``
    auto-enables CoDel-style load shedding at a 100 ms queue-wait target
    when a pool is attached and disables it otherwise; a float forces
    that target, 0 disables shedding outright.

    ``journal_path`` attaches the NRTM-style journal follower: the
    daemon polls the file every ``journal_poll`` seconds and hot-swaps
    any not-yet-absorbed entries into the live index (see
    :meth:`VerifyService.reload`).

    Telemetry: ``telemetry`` (on by default) enables request correlation
    ids, the per-stage latency histograms, and the access log;
    ``access_log`` is the JSONL access-log path (None disables the
    file); ``slow_ms`` > 0 promotes requests at or above that many
    milliseconds to the slow-query log (``<access_log>.slow``) and the
    flight recorder; ``flight_events`` sizes the always-on flight ring
    (0 disables it); ``incident_dir`` is where incident dumps land
    (default: the working directory).
    """

    host: str = "127.0.0.1"
    http_port: int | None = 8080
    whois_port: int | None = None
    queue_size: int = 256
    batch_max: int = 64
    batch_window: float = 0.002
    default_deadline: float = 5.0
    max_deadline: float = 30.0
    drain_timeout: float = 5.0
    workers: int = 0
    hang_timeout: float = 10.0
    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 2.0
    restart_budget: int = 8
    breaker_failures: int = 3
    breaker_cooldown: float = 1.0
    shed_target: float | None = None
    shed_interval: float = 1.0
    start_method: str | None = None
    journal_path: str | None = None
    journal_poll: float = 2.0
    telemetry: bool = True
    access_log: str | None = None
    slow_ms: float = 0.0
    flight_events: int = 2048
    incident_dir: str | None = None


@dataclass(frozen=True, slots=True)
class Query:
    """One unit of work: verify or explain a ⟨prefix, AS-path⟩.

    ``request_id`` is the correlation id assigned by the front-end; it
    rides the query through the batcher and the worker pipe protocol so
    events recorded inside worker processes carry the same id the client
    saw in its response.
    """

    kind: str  # "verify" or "explain"
    prefix: str
    as_path: tuple[int, ...]
    collector: str = "serve"
    deadline_s: float | None = None
    request_id: str = ""

    @staticmethod
    def from_payload(payload: dict, kind: str, request_id: str = "") -> "Query":
        """Validate a JSON request body into a query.

        Raises :class:`BadRequestError` with a human-readable message on
        any malformed field — the front-end turns it into a 400/``F``.
        """
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        prefix = payload.get("prefix")
        if not isinstance(prefix, str):
            raise BadRequestError("'prefix' must be a string")
        try:
            Prefix.parse(prefix)
        except PrefixError as exc:
            raise BadRequestError(f"bad prefix: {exc}") from exc
        raw_path = payload.get("as_path")
        if not isinstance(raw_path, (list, tuple)) or not raw_path:
            raise BadRequestError("'as_path' must be a non-empty list of ASNs")
        if len(raw_path) > MAX_AS_PATH_LEN:
            raise BadRequestError(f"as_path longer than {MAX_AS_PATH_LEN}")
        try:
            as_path = tuple(int(asn) for asn in raw_path)
        except (TypeError, ValueError) as exc:
            raise BadRequestError("'as_path' entries must be integers") from exc
        if any(asn < 0 or asn > 0xFFFFFFFF for asn in as_path):
            raise BadRequestError("'as_path' entries must be 32-bit ASNs")
        deadline = payload.get("deadline_s")
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError) as exc:
                raise BadRequestError("'deadline_s' must be a number") from exc
            if deadline <= 0:
                raise BadRequestError("'deadline_s' must be positive")
        collector = payload.get("collector", "serve")
        if not isinstance(collector, str):
            raise BadRequestError("'collector' must be a string")
        return Query(
            kind=kind,
            prefix=prefix,
            as_path=as_path,
            collector=collector[:64],
            deadline_s=deadline,
            request_id=request_id,
        )


def report_as_dict(report: RouteReport) -> dict:
    """A route report as stable JSON — the ``/verify`` response payload.

    ``text`` is the Appendix-C rendering, character-identical to what the
    batch pipeline prints for the same route; the structured fields are
    derived from the same hops.
    """
    entry = report.entry
    return {
        "prefix": str(entry.prefix),
        "as_path": list(entry.as_path),
        "collector": entry.collector,
        "ignored": report.ignored,
        "hops": [
            {
                "direction": hop.direction,
                "from_asn": hop.from_asn,
                "to_asn": hop.to_asn,
                "status": hop.status.label,
                "peer_matched": hop.peer_matched,
                "items": [str(item) for item in hop.items],
            }
            for hop in report.hops
        ],
        "text": str(report),
    }


@dataclass(slots=True)
class _Pending:
    """A submitted query waiting for the batcher."""

    query: Query
    future: asyncio.Future
    deadline: float  # time.monotonic() value
    submitted: float = field(default_factory=time.monotonic)
    telemetry: RequestTelemetry | None = None


class VerifyService:
    """The request core shared by every front-end.

    Wraps a warm :class:`~repro.api.Session` (the session must carry AS
    relationships) behind a micro-batched, deadline- and
    backpressure-aware ``submit``.  With ``workers=0`` all execution
    happens on the batcher's single executor thread, which doubles as
    the session's serialization point; with ``workers>0`` batches ship
    to the supervised worker pool and the executor threads only wait on
    pipes, with the in-process path (guarded by a lock) as the fallback
    whenever the pool cannot serve a batch.
    """

    def __init__(self, session: Session, config: ServeConfig | None = None):
        self.session = session
        self.config = config or ServeConfig()
        self.started_at = time.time()
        self.draining = False
        self.degradation = DegradationReport()
        self.supervisor: WorkerSupervisor | None = None
        # Chaos/test instrumentation: called on an executor thread with
        # the batch's queries before execution.  Never set in production.
        self.fault_hook: Callable[[Sequence[Query]], None] | None = None
        # Serializes hot swaps so two concurrent reloads cannot interleave
        # their worker-pool sweeps.
        self._reload_lock = asyncio.Lock()
        registry = session.registry
        self._registry = registry
        # The registry is not thread-safe; with a pool attached both the
        # event loop and several executor threads record into it, so all
        # serving-path mutations go through this lock.
        self._metrics_lock = threading.Lock()
        # Serializes fallback (and workers=0) execution on the session,
        # which is not thread-safe either.
        self._serial_lock = threading.Lock()
        self._queue_depth = registry.gauge("serve_queue_depth")
        self._batch_size = registry.histogram(
            "serve_batch_size", buckets=SERVE_BATCH_BUCKETS
        )
        # Queue wait is labeled by what happened to the request: executed
        # and expired observed at batch admission, shed/refused/deadline
        # at the refusal/expiry site — so backpressure tuning sees the
        # latency of rejected traffic, not only the survivors'.
        self._queue_wait = {
            outcome: registry.histogram(
                "serve_queue_wait_seconds", outcome=outcome
            )
            for outcome in ("executed", "expired", "shed", "refused", "deadline")
        }
        self._deadline_miss = registry.counter("serve_deadline_miss_total")
        self._shed_total = registry.counter("serve_shed_total")
        # -- request-scoped telemetry (ids, stage breakdown, flight ring) --
        if session.flight is not None:
            self.flight = session.flight
        elif self.config.flight_events > 0:
            self.flight = FlightRecorder(
                capacity=self.config.flight_events,
                incident_dir=self.config.incident_dir,
            )
            # Session-level access: session.flight_events() reads the
            # same ring the daemon records into.
            session.flight = self.flight
        else:
            self.flight = NULL_FLIGHT
        self._stage_seconds = {
            stage: registry.histogram("serve_stage_seconds", stage=stage)
            for stage in STAGES
        }
        # The finish path observes all six stages for every request, so
        # the bound observe methods are pre-resolved in STAGES order
        # (matching RequestTelemetry.stage_values) and guarded by their
        # own lock: the shared _metrics_lock is contended by the batch
        # executor threads, and making each response wait on it there
        # is measurable.
        self._stage_observes = tuple(
            self._stage_seconds[stage].observe for stage in STAGES
        )
        self._stage_lock = threading.Lock()
        self._access_log = AccessLog(
            self.config.access_log, slow_ms=self.config.slow_ms
        )
        shed_target = self.config.shed_target
        if shed_target is None:
            shed_target = 0.1 if self.config.workers > 0 else 0.0
        self._shedder = (
            LatencyShedder(target=shed_target, interval=self.config.shed_interval)
            if shed_target > 0
            else None
        )
        self._batcher = MicroBatcher(
            self._run_batch,
            # With a pool attached, batches are dispatched natively on
            # the event loop (pipe waits via add_reader) instead of
            # parking executor threads on poll() — the thread wakeups
            # lose more GIL time than the batches cost.
            execute_async=self._run_batch_async if self.config.workers > 0 else None,
            queue_size=self.config.queue_size,
            batch_max=self.config.batch_max,
            batch_window=self.config.batch_window,
            concurrency=max(1, self.config.workers),
            on_batch=self._observe_batch,
            on_collect=self._mark_collected,
            discard=self._discard_pending,
        )

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "VerifyService":
        """Warm the session, spawn the worker pool, start the batcher."""
        self.session.warm()
        if self.config.workers > 0:
            self.supervisor = WorkerSupervisor(
                self.session.ir,
                self.session.relationships,
                self.session.options,
                self.session.index,
                SupervisorConfig(
                    workers=self.config.workers,
                    hang_timeout=self.config.hang_timeout,
                    heartbeat_interval=self.config.heartbeat_interval,
                    heartbeat_timeout=self.config.heartbeat_timeout,
                    restart_budget=self.config.restart_budget,
                    breaker_failures=self.config.breaker_failures,
                    breaker_cooldown=self.config.breaker_cooldown,
                    start_method=self.config.start_method,
                ),
                registry=self._registry,
                metrics_lock=self._metrics_lock,
                degradation=self.degradation,
                flight=self.flight,
            )
            self.supervisor.start()
        await self._batcher.start()
        self.flight.record(
            "service-start",
            workers=self.config.workers,
            generation=self.session.generation,
        )
        return self

    def begin_drain(self) -> None:
        """Refuse new submissions; queued work keeps executing."""
        if not self.draining:
            self.flight.record("drain-begin", queued=self._batcher.qsize())
        self.draining = True

    async def drain(self, timeout: float | None = None) -> bool:
        """Wait (bounded) for queued and in-flight work to finish."""
        self.begin_drain()
        drained = await self._batcher.drain(
            self.config.drain_timeout if timeout is None else timeout
        )
        self.flight.record("drain-done", clean=drained)
        return drained

    async def stop(self) -> None:
        """Stop the batcher and the pool; still-queued waiters get BusyError."""
        self.draining = True
        await self._batcher.stop()
        if self.supervisor is not None:
            self.supervisor.stop()
        self.flight.record("service-stop")
        self._access_log.close()

    def _discard_pending(self, pending: "_Pending") -> None:
        """Fail a queued-but-never-executed waiter at shutdown."""
        if not pending.future.done():
            pending.future.set_exception(BusyError("shutting down"))
        self._finish_request(pending.telemetry, "refused")

    # -- submission --------------------------------------------------------

    def _outcome(self, kind: str, outcome: str):
        return self._registry.counter(
            "serve_requests_total", endpoint=kind, outcome=outcome
        )

    @property
    def degraded(self) -> bool:
        """Whether the worker pool has degraded to serial execution."""
        return self.supervisor is not None and self.supervisor.degraded

    # -- request telemetry ---------------------------------------------------

    def new_telemetry(
        self, frontend: str, raw_id: str | None = None
    ) -> RequestTelemetry | None:
        """Open request-scoped telemetry for one front-end request.

        Honors a client-supplied id when it is a clean header token,
        generates a fresh one otherwise.  Returns None when telemetry is
        disabled — front-ends skip the id echo entirely in that case.
        """
        if not self.config.telemetry:
            return None
        request_id = clean_request_id(raw_id) or new_request_id()
        return RequestTelemetry(request_id, frontend)

    def finish_telemetry(
        self,
        telemetry: RequestTelemetry | None,
        outcome: str,
        verdicts: int = 0,
    ) -> None:
        """Close a request the front-end never submitted (parse errors)."""
        self._finish_request(telemetry, outcome, verdicts)

    def _finish_request(
        self,
        telemetry: RequestTelemetry | None,
        outcome: str,
        verdicts: int = 0,
    ) -> None:
        """One request is over: stage histograms, access log, flight event.

        Idempotent — the first closer (usually ``submit``) wins, so a
        front-end can finish defensively in its error paths without
        double-counting.
        """
        if telemetry is None or not telemetry.finish(outcome, verdicts):
            return
        values = telemetry.stage_values()
        with self._stage_lock:
            for observe, seconds in zip(self._stage_observes, values):
                observe(seconds)
        total_ms = sum(values) * 1000.0
        slow = self.config.slow_ms > 0 and total_ms >= self.config.slow_ms
        # One serialization serves both sinks: the access-log line IS the
        # flight ring's "request" event, spliced in pre-serialized — and
        # the stage breakdown just observed is reused, not recomputed.
        line = telemetry.line(values)
        if self._access_log.active:
            self._access_log.write(line, slow=slow)
        self.flight.splice(line)
        if slow:
            self.flight.record(
                "slow-request",
                request_id=telemetry.request_id,
                outcome=outcome,
                total_ms=round(total_ms, 3),
            )

    def _observe_queue_wait(self, outcome: str, wait_s: float) -> None:
        with self._metrics_lock:
            self._queue_wait[outcome].observe(wait_s)

    def _mark_collected(self, pending: "_Pending") -> None:
        """Batcher hook: the dispatcher pulled this item off the queue."""
        if pending.telemetry is not None:
            pending.telemetry.mark_collected()

    async def submit(
        self, query: Query, telemetry: RequestTelemetry | None = None
    ) -> dict:
        """Run one query through the batched core; returns the JSON payload.

        Raises :class:`BadRequestError` on an invalid deadline,
        :class:`BusyError` on backpressure (queue full, shedding, or
        draining) and :class:`DeadlineExpired` when the query's wall
        deadline passes first.  ``telemetry`` is the front-end's
        request-scoped record; direct callers may omit it (one is opened
        here, keyed by the query's id, so embedded use is attributable
        too).
        """
        if telemetry is None and self.config.telemetry:
            telemetry = RequestTelemetry(
                query.request_id or new_request_id(), "direct"
            )
        if telemetry is not None:
            telemetry.endpoint = query.kind
        if self.draining:
            with self._metrics_lock:
                self._outcome(query.kind, "busy").inc()
            if telemetry is not None:
                self._observe_queue_wait("refused", telemetry.queue_wait)
                self._finish_request(telemetry, "refused")
            raise BusyError("shutting down")
        if query.deadline_s is not None and query.deadline_s <= 0:
            # Zero/negative deadlines used to be clamped by min() into an
            # instant 504; they are a malformed request, not a timeout.
            with self._metrics_lock:
                self._outcome(query.kind, "bad-request").inc()
            self._finish_request(telemetry, "bad-request")
            raise BadRequestError("'deadline_s' must be positive")
        if self._shedder is not None and self._shedder.should_shed():
            with self._metrics_lock:
                self._shed_total.inc()
                self._outcome(query.kind, "busy").inc()
            if telemetry is not None:
                self._observe_queue_wait("shed", telemetry.queue_wait)
                self.flight.record(
                    "request-shed",
                    request_id=telemetry.request_id,
                    endpoint=query.kind,
                )
                self._finish_request(telemetry, "shed")
            raise BusyError("shedding load: queue wait above target")
        timeout = min(
            query.deadline_s
            if query.deadline_s is not None
            else self.config.default_deadline,
            self.config.max_deadline,
        )
        loop = asyncio.get_running_loop()
        if telemetry is not None:
            telemetry.mark_submitted()
        pending = _Pending(
            query,
            loop.create_future(),
            time.monotonic() + timeout,
            telemetry=telemetry,
        )
        try:
            self._batcher.submit_nowait(pending)
        except QueueFull:
            with self._metrics_lock:
                self._outcome(query.kind, "busy").inc()
            if telemetry is not None:
                self._observe_queue_wait("refused", telemetry.queue_wait)
                self.flight.record(
                    "request-refused",
                    request_id=telemetry.request_id,
                    endpoint=query.kind,
                    why="queue-full",
                )
                self._finish_request(telemetry, "busy")
            raise BusyError(
                f"queue full ({self.config.queue_size} queries pending)"
            ) from None
        with self._metrics_lock:
            self._queue_depth.set(self._batcher.qsize())
        try:
            result = await asyncio.wait_for(pending.future, timeout)
        except asyncio.TimeoutError:
            # wait_for cancelled the future, so the batcher will discard
            # any late outcome instead of delivering into the void.
            with self._metrics_lock:
                self._deadline_miss.inc()
                self._outcome(query.kind, "deadline").inc()
            if telemetry is not None:
                self._observe_queue_wait("deadline", telemetry.queue_wait)
                self.flight.record(
                    "request-deadline",
                    request_id=telemetry.request_id,
                    endpoint=query.kind,
                    timeout_s=timeout,
                )
                self._finish_request(telemetry, "deadline")
            raise DeadlineExpired(
                f"no verdict within the {timeout:g}s deadline"
            ) from None
        except ServeError as exc:
            with self._metrics_lock:
                self._outcome(query.kind, exc.code).inc()
            if telemetry is not None:
                self.flight.record(
                    "request-error",
                    request_id=telemetry.request_id,
                    endpoint=query.kind,
                    code=exc.code,
                )
                self._finish_request(telemetry, exc.code)
            raise
        except Exception as exc:
            with self._metrics_lock:
                self._outcome(query.kind, "error").inc()
            if telemetry is not None:
                self.flight.record(
                    "request-error",
                    request_id=telemetry.request_id,
                    endpoint=query.kind,
                    code="error",
                    detail=str(exc)[:200],
                )
                self._finish_request(telemetry, "error")
            raise
        with self._metrics_lock:
            self._registry.histogram(
                "serve_request_seconds", endpoint=query.kind
            ).observe(time.monotonic() - pending.submitted)
            self._outcome(query.kind, "ok").inc()
        self._finish_request(telemetry, "ok", verdicts=len(result.get("hops", ())))
        return result

    # -- execution (batcher executor threads) --------------------------------

    def _observe_batch(self, size: int) -> None:
        with self._metrics_lock:
            self._batch_size.observe(size)

    def _run_batch(self, batch: Sequence[_Pending]) -> list:
        """Execute one coalesced batch — via the pool or in-process.

        Returns an outcome per item; exceptions become the waiter's
        exception.  Queries whose deadline passed while queued are
        skipped (their waiters have already timed out, this just avoids
        wasted work), and every item's measured queue wait feeds the
        latency shedder.
        """
        if self.fault_hook is not None:
            self.fault_hook([pending.query for pending in batch])
        outcomes, live = self._admit_batch(batch)
        if live:
            results, timings = self._execute_queries(
                [batch[position].query for position in live]
            )
            self._apply_batch_timings(batch, live, timings)
            for position, result in zip(live, results):
                outcomes[position] = result
        return outcomes

    def _admit_batch(self, batch: Sequence[_Pending]) -> tuple[list, list[int]]:
        """Per-item bookkeeping shared by the sync and async batch paths:
        observe queue waits (metrics + shedder) and skip expired items."""
        outcomes: list = [None] * len(batch)
        live: list[int] = []
        now = time.monotonic()
        for position, pending in enumerate(batch):
            wait = now - pending.submitted
            expired = pending.deadline <= now or pending.future.done()
            with self._metrics_lock:
                self._queue_wait["expired" if expired else "executed"].observe(
                    wait
                )
            if self._shedder is not None:
                self._shedder.observe(wait)
            if expired:
                outcomes[position] = DeadlineExpired("expired while queued")
                if pending.telemetry is not None:
                    self.flight.record(
                        "request-expired",
                        request_id=pending.telemetry.request_id,
                        endpoint=pending.query.kind,
                        queued_s=round(wait, 6),
                    )
            else:
                if pending.telemetry is not None:
                    pending.telemetry.mark_admitted()
                live.append(position)
        return outcomes, live

    def _apply_batch_timings(
        self,
        batch: Sequence[_Pending],
        live: Sequence[int],
        timings: dict | None,
    ) -> None:
        """Attribute batch-level dispatch/execute durations to each live
        request — they coalesced precisely so they would share those costs."""
        if not timings:
            return
        dispatch_s = timings.get("dispatch_s")
        execute_s = timings.get("execute_s")
        for position in live:
            telemetry = batch[position].telemetry
            if telemetry is not None:
                telemetry.dispatch_s = dispatch_s
                telemetry.execute_s = execute_s

    async def _run_batch_async(self, batch: Sequence[_Pending]) -> list:
        """The pool fast path: dispatch on the event loop, no thread hop.

        Falls back to the full blocking path (on the batcher's executor)
        whenever it cannot stay non-blocking: a chaos hook installed, or
        the pool degraded/unable so queries must run in-process.
        """
        supervisor = self.supervisor
        if self.fault_hook is not None or supervisor is None or supervisor.degraded:
            return await self._batcher.run_blocking(self._run_batch, batch)
        outcomes, live = self._admit_batch(batch)
        if not live:
            return outcomes
        queries = [batch[position].query for position in live]
        items = [
            (
                query.kind,
                query.prefix,
                query.as_path,
                query.collector,
                query.request_id,
            )
            for query in queries
        ]
        dispatched = await supervisor.dispatch_async(items)
        if dispatched is not None:
            batch_outcomes, timings = dispatched
            self._apply_batch_timings(batch, live, timings)
            results = [
                payload if tag == "ok" else BadRequestError(payload)
                for tag, payload in batch_outcomes
            ]
        else:
            if supervisor.degraded:
                self._note_degraded()
            serial_start = time.monotonic()
            results = await self._batcher.run_blocking(
                self._execute_serial, queries
            )
            self._apply_batch_timings(
                batch, live, {"execute_s": time.monotonic() - serial_start}
            )
        for position, result in zip(live, results):
            outcomes[position] = result
        return outcomes

    def _execute_queries(
        self, queries: Sequence[Query]
    ) -> tuple[list, dict | None]:
        """Run queries through the pool, falling back serially when it can't.

        Returns ``(results, timings)`` where ``timings`` is the batch's
        ``{"dispatch_s", "execute_s"}`` breakdown (None when the pool
        path never engaged)."""
        if self.supervisor is not None:
            if not self.supervisor.degraded:
                items = [
                    (
                        query.kind,
                        query.prefix,
                        query.as_path,
                        query.collector,
                        query.request_id,
                    )
                    for query in queries
                ]
                dispatched = self.supervisor.dispatch(items)
                if dispatched is not None:
                    batch_outcomes, timings = dispatched
                    return [
                        payload if tag == "ok" else BadRequestError(payload)
                        for tag, payload in batch_outcomes
                    ], timings
            if self.supervisor.degraded:
                self._note_degraded()
        serial_start = time.monotonic()
        results = self._execute_serial(queries)
        return results, {"execute_s": time.monotonic() - serial_start}

    def _note_degraded(self) -> None:
        # The supervisor records the budget-exhaustion event itself (the
        # degradation report is shared); this logs the first serial batch.
        if not self.degradation.by_kind().get("serve/degraded-to-serial"):
            self.degradation.record(
                "serve", "degraded-to-serial", "pool unavailable; serving in-process"
            )

    def _execute_serial(self, queries: Sequence[Query]) -> list:
        """The in-process path: the session under its serialization lock."""
        outcomes: list = []
        with self._serial_lock:
            for query in queries:
                try:
                    if query.kind == "explain":
                        report, events = self.session.explain(
                            query.prefix, query.as_path, collector=query.collector
                        )
                        payload = report_as_dict(report)
                        payload["events"] = events
                    else:
                        report = self.session.verify_route(
                            query.prefix, query.as_path, collector=query.collector
                        )
                        payload = report_as_dict(report)
                    outcomes.append(payload)
                except Exception as exc:  # noqa: BLE001 - per-query isolation
                    outcomes.append(
                        exc
                        if isinstance(exc, ServeError)
                        else BadRequestError(str(exc))
                    )
        return outcomes

    # -- incremental ingestion (hot swap) ------------------------------------

    def _apply_journal_blocking(self, journal: Journal):
        """Patch the parent session under the serial lock (executor thread).

        Entries whose serial the index has already absorbed are filtered
        out first — that makes re-reading a growing journal file (the
        follower) and retrying a ``POST /reload`` idempotent instead of
        tripping the stale-serial degradation.  Returns ``(fresh,
        report)`` where ``report`` is ``None`` when nothing was applied.
        """
        with self._serial_lock:
            applied = self.session.serials
            fresh = Journal(
                entries=[
                    entry
                    for entry in journal.entries
                    if entry.serial > applied.get(entry.source, -1)
                ],
                issues=list(journal.issues),
            )
            if not fresh.entries and not fresh.issues:
                return fresh, None
            return fresh, self.session.apply_deltas(fresh)

    async def reload(self, journal: Journal) -> dict:
        """Hot-swap journal deltas into the live service; returns a summary.

        The parent session is patched first (off the event loop, under
        the serial lock so the in-process fallback path never observes a
        half-swapped session), then every pool worker is swapped via the
        supervisor's lease-serialized reload — in-flight requests keep
        flowing throughout; at worst a batch is answered by a worker one
        generation behind, never dropped.
        """
        if self.draining:
            raise BusyError("shutting down")
        async with self._reload_lock:
            self.flight.record(
                "reload-begin",
                entries=len(journal.entries),
                generation=self.session.generation,
            )
            try:
                fresh, report = await self._batcher.run_blocking(
                    self._apply_journal_blocking, journal
                )
            except Exception as exc:
                self.flight.record("reload-abort", error=str(exc)[:200])
                raise
            summary = {
                "applied": len(fresh.entries),
                "generation": self.session.generation,
                "serials": self.session.serials,
                "degraded": bool(report),
                "delta_apply_s": self.session.last_delta_seconds,
            }
            if report:
                summary["degradation"] = report.as_dict()
            if report is None:
                self.flight.record(
                    "reload-commit",
                    applied=0,
                    generation=self.session.generation,
                )
                return summary
            if self.supervisor is not None:
                summary["pool"] = await self._batcher.run_blocking(
                    self.supervisor.reload,
                    self.session.ir,
                    self.session.index,
                    fresh,
                )
            self.flight.record(
                "reload-commit",
                applied=len(fresh.entries),
                generation=self.session.generation,
                serials=self.session.serials,
                degraded=bool(report),
            )
            return summary

    # -- health ------------------------------------------------------------

    def health(self) -> dict:
        """The ``/healthz`` payload: liveness plus headline counters."""
        if self.draining:
            status = "draining"
        elif self.degraded:
            status = "degraded"
        else:
            status = "ok"
        payload = {
            "status": status,
            "uptime_s": round(time.time() - self.started_at, 3),
            "queue_depth": self._batcher.qsize(),
            "queue_size": self.config.queue_size,
            "batches": self._batcher.batches,
            "queries": self._batcher.items,
            "shedding": bool(self._shedder is not None and self._shedder.shedding),
            "shed_total": self._shed_total.value,
            "index_digest": (
                self.session.index.digest if self.session.index is not None else None
            ),
            "index_generation": self.session.generation,
            "journal_serials": self.session.serials,
            "last_delta_apply_s": self.session.last_delta_seconds,
        }
        if self.flight.enabled:
            payload["flight"] = self.flight.stats()
        if self.supervisor is not None:
            payload["supervisor"] = self.supervisor.state()
        return payload
