"""The shared request core: deadlines, backpressure, batched execution.

Both front-ends (HTTP and the WHOIS line protocol) reduce their requests
to :class:`Query` values and await :meth:`VerifyService.submit`.  The
service owns admission control and execution semantics so the protocol
handlers stay thin:

* **bounded queue** — submission is ``put_nowait`` onto the
  :class:`~repro.serve.batcher.MicroBatcher`'s queue; overflow raises
  :class:`BusyError`, which the front-ends translate to HTTP 429 or
  ``%% BUSY``.  Nothing in the daemon buffers unboundedly.
* **per-request deadlines** — every query carries a wall deadline
  (client-supplied, clamped to ``max_deadline``).  A query still queued
  when its deadline passes is never executed; the waiter gets a
  structured :class:`DeadlineExpired` (HTTP 504 / ``%% DEADLINE``) and
  the miss is counted.
* **micro-batching** — concurrent queries coalesce into one indexed
  verify pass over the session's warm verifier (see
  :mod:`repro.serve.batcher`), so the compiled index is consulted once
  per hop, never recompiled per request.

Serving metrics (reported into the session's registry, exposed at
``GET /metrics``): ``serve_request_seconds{endpoint=}`` latency
histograms, ``serve_queue_depth``, ``serve_batch_size``,
``serve_deadline_miss_total``, and
``serve_requests_total{endpoint=,outcome=}``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.api import Session
from repro.core.report import RouteReport
from repro.net.prefix import Prefix, PrefixError
from repro.serve.batcher import MicroBatcher, QueueFull

__all__ = [
    "BadRequestError",
    "BusyError",
    "DeadlineExpired",
    "Query",
    "ServeConfig",
    "ServeError",
    "VerifyService",
    "SERVE_BATCH_BUCKETS",
    "report_as_dict",
]

# Histogram bounds for batch sizes: 1..512, doubling.
SERVE_BATCH_BUCKETS: tuple[float, ...] = tuple(float(2**i) for i in range(10))

# Hard cap on AS-path length accepted over the wire; real paths top out
# in the dozens, so anything longer is abuse, not routing.
MAX_AS_PATH_LEN = 512


class ServeError(Exception):
    """Base class for structured serving errors; ``code`` keys the JSON."""

    code = "error"


class BusyError(ServeError):
    """The bounded queue is full (or the daemon is draining): back off."""

    code = "busy"


class DeadlineExpired(ServeError):
    """The request's deadline passed before a verdict was produced."""

    code = "deadline"


class BadRequestError(ServeError):
    """The request was malformed (bad prefix, bad path, bad JSON shape)."""

    code = "bad-request"


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Knobs for the resident service; defaults suit a local daemon.

    ``http_port``/``whois_port`` of 0 bind an ephemeral port (tests);
    ``None`` disables that front-end.  ``queue_size`` bounds admitted but
    unexecuted queries — the backpressure threshold.  ``batch_window`` is
    how long the batcher lingers after the first query of a batch so
    concurrent arrivals coalesce.  Deadlines are seconds of wall time; a
    request may ask for less than ``default_deadline`` but never more
    than ``max_deadline``.  ``drain_timeout`` bounds the graceful
    SIGTERM drain.
    """

    host: str = "127.0.0.1"
    http_port: int | None = 8080
    whois_port: int | None = None
    queue_size: int = 256
    batch_max: int = 64
    batch_window: float = 0.002
    default_deadline: float = 5.0
    max_deadline: float = 30.0
    drain_timeout: float = 5.0


@dataclass(frozen=True, slots=True)
class Query:
    """One unit of work: verify or explain a ⟨prefix, AS-path⟩."""

    kind: str  # "verify" or "explain"
    prefix: str
    as_path: tuple[int, ...]
    collector: str = "serve"
    deadline_s: float | None = None

    @staticmethod
    def from_payload(payload: dict, kind: str) -> "Query":
        """Validate a JSON request body into a query.

        Raises :class:`BadRequestError` with a human-readable message on
        any malformed field — the front-end turns it into a 400/``F``.
        """
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        prefix = payload.get("prefix")
        if not isinstance(prefix, str):
            raise BadRequestError("'prefix' must be a string")
        try:
            Prefix.parse(prefix)
        except PrefixError as exc:
            raise BadRequestError(f"bad prefix: {exc}") from exc
        raw_path = payload.get("as_path")
        if not isinstance(raw_path, (list, tuple)) or not raw_path:
            raise BadRequestError("'as_path' must be a non-empty list of ASNs")
        if len(raw_path) > MAX_AS_PATH_LEN:
            raise BadRequestError(f"as_path longer than {MAX_AS_PATH_LEN}")
        try:
            as_path = tuple(int(asn) for asn in raw_path)
        except (TypeError, ValueError) as exc:
            raise BadRequestError("'as_path' entries must be integers") from exc
        if any(asn < 0 or asn > 0xFFFFFFFF for asn in as_path):
            raise BadRequestError("'as_path' entries must be 32-bit ASNs")
        deadline = payload.get("deadline_s")
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError) as exc:
                raise BadRequestError("'deadline_s' must be a number") from exc
            if deadline <= 0:
                raise BadRequestError("'deadline_s' must be positive")
        collector = payload.get("collector", "serve")
        if not isinstance(collector, str):
            raise BadRequestError("'collector' must be a string")
        return Query(
            kind=kind,
            prefix=prefix,
            as_path=as_path,
            collector=collector[:64],
            deadline_s=deadline,
        )


def report_as_dict(report: RouteReport) -> dict:
    """A route report as stable JSON — the ``/verify`` response payload.

    ``text`` is the Appendix-C rendering, character-identical to what the
    batch pipeline prints for the same route; the structured fields are
    derived from the same hops.
    """
    entry = report.entry
    return {
        "prefix": str(entry.prefix),
        "as_path": list(entry.as_path),
        "collector": entry.collector,
        "ignored": report.ignored,
        "hops": [
            {
                "direction": hop.direction,
                "from_asn": hop.from_asn,
                "to_asn": hop.to_asn,
                "status": hop.status.label,
                "peer_matched": hop.peer_matched,
                "items": [str(item) for item in hop.items],
            }
            for hop in report.hops
        ],
        "text": str(report),
    }


@dataclass(slots=True)
class _Pending:
    """A submitted query waiting for the batcher."""

    query: Query
    future: asyncio.Future
    deadline: float  # time.monotonic() value
    submitted: float = field(default_factory=time.monotonic)


class VerifyService:
    """The request core shared by every front-end.

    Wraps a warm :class:`~repro.api.Session` (the session must carry AS
    relationships) behind a micro-batched, deadline- and
    backpressure-aware ``submit``.  All query execution happens on the
    batcher's single executor thread, which doubles as the session's
    serialization point.
    """

    def __init__(self, session: Session, config: ServeConfig | None = None):
        self.session = session
        self.config = config or ServeConfig()
        self.started_at = time.time()
        self.draining = False
        # Chaos/test instrumentation: called on the executor thread with
        # the batch's queries before execution.  Never set in production.
        self.fault_hook: Callable[[Sequence[Query]], None] | None = None
        registry = session.registry
        self._registry = registry
        self._queue_depth = registry.gauge("serve_queue_depth")
        self._batch_size = registry.histogram(
            "serve_batch_size", buckets=SERVE_BATCH_BUCKETS
        )
        self._deadline_miss = registry.counter("serve_deadline_miss_total")
        self._batcher = MicroBatcher(
            self._run_batch,
            queue_size=self.config.queue_size,
            batch_max=self.config.batch_max,
            batch_window=self.config.batch_window,
            on_batch=self._batch_size.observe,
        )

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "VerifyService":
        """Warm the session (index adoption) and start the batcher."""
        self.session.warm()
        await self._batcher.start()
        return self

    def begin_drain(self) -> None:
        """Refuse new submissions; queued work keeps executing."""
        self.draining = True

    async def drain(self, timeout: float | None = None) -> bool:
        """Wait (bounded) for queued and in-flight work to finish."""
        self.begin_drain()
        return await self._batcher.drain(
            self.config.drain_timeout if timeout is None else timeout
        )

    async def stop(self) -> None:
        """Stop the batcher; queued-but-unexecuted queries get BusyError."""
        self.draining = True
        await self._batcher.stop()

    # -- submission --------------------------------------------------------

    def _outcome(self, kind: str, outcome: str):
        return self._registry.counter(
            "serve_requests_total", endpoint=kind, outcome=outcome
        )

    async def submit(self, query: Query) -> dict:
        """Run one query through the batched core; returns the JSON payload.

        Raises :class:`BusyError` on backpressure (queue full or
        draining) and :class:`DeadlineExpired` when the query's wall
        deadline passes first.
        """
        if self.draining:
            self._outcome(query.kind, "busy").inc()
            raise BusyError("shutting down")
        timeout = min(
            query.deadline_s
            if query.deadline_s is not None
            else self.config.default_deadline,
            self.config.max_deadline,
        )
        loop = asyncio.get_running_loop()
        pending = _Pending(
            query, loop.create_future(), time.monotonic() + timeout
        )
        try:
            self._batcher.submit_nowait(pending)
        except QueueFull:
            self._outcome(query.kind, "busy").inc()
            raise BusyError(
                f"queue full ({self.config.queue_size} queries pending)"
            ) from None
        self._queue_depth.set(self._batcher.qsize())
        try:
            result = await asyncio.wait_for(pending.future, timeout)
        except asyncio.TimeoutError:
            # wait_for cancelled the future, so the batcher will discard
            # any late outcome instead of delivering into the void.
            self._deadline_miss.inc()
            self._outcome(query.kind, "deadline").inc()
            raise DeadlineExpired(
                f"no verdict within the {timeout:g}s deadline"
            ) from None
        except ServeError:
            raise
        except Exception:
            self._outcome(query.kind, "error").inc()
            raise
        self._registry.histogram(
            "serve_request_seconds", endpoint=query.kind
        ).observe(time.monotonic() - pending.submitted)
        self._outcome(query.kind, "ok").inc()
        return result

    # -- execution (batcher's executor thread) -----------------------------

    def _run_batch(self, batch: Sequence[_Pending]) -> list:
        """Execute one coalesced batch on the warm session.

        Returns an outcome per item; exceptions become the waiter's
        exception.  Queries whose deadline passed while queued are
        skipped (their waiters have already timed out, this just avoids
        wasted work); queries whose client vanished are skipped via the
        done-future check in the batcher.
        """
        if self.fault_hook is not None:
            self.fault_hook([pending.query for pending in batch])
        outcomes: list = []
        now = time.monotonic()
        for pending in batch:
            query = pending.query
            if pending.deadline <= now or pending.future.done():
                outcomes.append(DeadlineExpired("expired while queued"))
                continue
            try:
                if query.kind == "explain":
                    report, events = self.session.explain(
                        query.prefix, query.as_path, collector=query.collector
                    )
                    payload = report_as_dict(report)
                    payload["events"] = events
                else:
                    report = self.session.verify_route(
                        query.prefix, query.as_path, collector=query.collector
                    )
                    payload = report_as_dict(report)
                outcomes.append(payload)
            except Exception as exc:  # noqa: BLE001 - per-query isolation
                outcomes.append(
                    exc if isinstance(exc, ServeError) else BadRequestError(str(exc))
                )
            now = time.monotonic()
        return outcomes

    # -- health ------------------------------------------------------------

    def health(self) -> dict:
        """The ``/healthz`` payload: liveness plus headline counters."""
        return {
            "status": "draining" if self.draining else "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "queue_depth": self._batcher.qsize(),
            "queue_size": self.config.queue_size,
            "batches": self._batcher.batches,
            "queries": self._batcher.items,
            "index_digest": (
                self.session.index.digest if self.session.index is not None else None
            ),
        }
