"""The shared request core: deadlines, backpressure, batched execution.

Both front-ends (HTTP and the WHOIS line protocol) reduce their requests
to :class:`Query` values and await :meth:`VerifyService.submit`.  The
service owns admission control and execution semantics so the protocol
handlers stay thin:

* **bounded queue** — submission is ``put_nowait`` onto the
  :class:`~repro.serve.batcher.MicroBatcher`'s queue; overflow raises
  :class:`BusyError`, which the front-ends translate to HTTP 429 or
  ``%% BUSY``.  Nothing in the daemon buffers unboundedly.
* **adaptive load shedding** — with a worker pool attached, a
  :class:`~repro.serve.supervisor.LatencyShedder` watches measured
  queue-wait latency and refuses admission (429/``%% BUSY``) while the
  wait stays above target, *before* the queue fills.
* **per-request deadlines** — every query carries a wall deadline
  (client-supplied, validated positive and clamped to
  ``max_deadline``).  A query still queued when its deadline passes is
  never executed; the waiter gets a structured :class:`DeadlineExpired`
  (HTTP 504 / ``%% DEADLINE``) and the miss is counted.
* **micro-batching** — concurrent queries coalesce into one indexed
  verify pass (see :mod:`repro.serve.batcher`), so the compiled index
  is consulted once per hop, never recompiled per request.
* **supervised execution** — with ``workers > 0`` batches ship to a
  self-healing pool of warm worker processes
  (:class:`~repro.serve.supervisor.WorkerSupervisor`); a batch the pool
  cannot serve (crashes, open breaker, degraded pool) falls back to the
  in-process serial path, so every admitted request still gets its
  verdict.

Serving metrics (reported into the session's registry, exposed at
``GET /metrics``): ``serve_request_seconds{endpoint=}`` latency
histograms, ``serve_queue_depth``, ``serve_queue_wait_seconds``,
``serve_batch_size``, ``serve_deadline_miss_total``,
``serve_shed_total``, ``serve_requests_total{endpoint=,outcome=}``, and
the supervisor's worker/breaker gauges.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.api import Session
from repro.core.degradation import DegradationReport
from repro.irr.journal import Journal
from repro.core.report import RouteReport
from repro.net.prefix import Prefix, PrefixError
from repro.serve.batcher import MicroBatcher, QueueFull
from repro.serve.supervisor import (
    LatencyShedder,
    SupervisorConfig,
    WorkerSupervisor,
)

__all__ = [
    "BadRequestError",
    "BusyError",
    "DeadlineExpired",
    "Query",
    "ServeConfig",
    "ServeError",
    "VerifyService",
    "SERVE_BATCH_BUCKETS",
    "report_as_dict",
]

# Histogram bounds for batch sizes: 1..512, doubling.
SERVE_BATCH_BUCKETS: tuple[float, ...] = tuple(float(2**i) for i in range(10))

# Hard cap on AS-path length accepted over the wire; real paths top out
# in the dozens, so anything longer is abuse, not routing.
MAX_AS_PATH_LEN = 512


class ServeError(Exception):
    """Base class for structured serving errors; ``code`` keys the JSON."""

    code = "error"


class BusyError(ServeError):
    """The service refuses admission (queue full, shedding, draining)."""

    code = "busy"


class DeadlineExpired(ServeError):
    """The request's deadline passed before a verdict was produced."""

    code = "deadline"


class BadRequestError(ServeError):
    """The request was malformed (bad prefix, bad path, bad JSON shape)."""

    code = "bad-request"


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Knobs for the resident service; defaults suit a local daemon.

    ``http_port``/``whois_port`` of 0 bind an ephemeral port (tests);
    ``None`` disables that front-end.  ``queue_size`` bounds admitted but
    unexecuted queries — the backpressure threshold.  ``batch_window`` is
    how long the batcher lingers after the first query of a batch so
    concurrent arrivals coalesce.  Deadlines are seconds of wall time; a
    request may ask for less than ``default_deadline`` but never more
    than ``max_deadline``.  ``drain_timeout`` bounds the graceful
    SIGTERM drain.

    ``workers`` > 0 attaches the self-healing multi-process pool (see
    :mod:`repro.serve.supervisor`); 0 (the default) keeps the original
    in-process single-thread execution.  ``shed_target`` of ``None``
    auto-enables CoDel-style load shedding at a 100 ms queue-wait target
    when a pool is attached and disables it otherwise; a float forces
    that target, 0 disables shedding outright.

    ``journal_path`` attaches the NRTM-style journal follower: the
    daemon polls the file every ``journal_poll`` seconds and hot-swaps
    any not-yet-absorbed entries into the live index (see
    :meth:`VerifyService.reload`).
    """

    host: str = "127.0.0.1"
    http_port: int | None = 8080
    whois_port: int | None = None
    queue_size: int = 256
    batch_max: int = 64
    batch_window: float = 0.002
    default_deadline: float = 5.0
    max_deadline: float = 30.0
    drain_timeout: float = 5.0
    workers: int = 0
    hang_timeout: float = 10.0
    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 2.0
    restart_budget: int = 8
    breaker_failures: int = 3
    breaker_cooldown: float = 1.0
    shed_target: float | None = None
    shed_interval: float = 1.0
    start_method: str | None = None
    journal_path: str | None = None
    journal_poll: float = 2.0


@dataclass(frozen=True, slots=True)
class Query:
    """One unit of work: verify or explain a ⟨prefix, AS-path⟩."""

    kind: str  # "verify" or "explain"
    prefix: str
    as_path: tuple[int, ...]
    collector: str = "serve"
    deadline_s: float | None = None

    @staticmethod
    def from_payload(payload: dict, kind: str) -> "Query":
        """Validate a JSON request body into a query.

        Raises :class:`BadRequestError` with a human-readable message on
        any malformed field — the front-end turns it into a 400/``F``.
        """
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        prefix = payload.get("prefix")
        if not isinstance(prefix, str):
            raise BadRequestError("'prefix' must be a string")
        try:
            Prefix.parse(prefix)
        except PrefixError as exc:
            raise BadRequestError(f"bad prefix: {exc}") from exc
        raw_path = payload.get("as_path")
        if not isinstance(raw_path, (list, tuple)) or not raw_path:
            raise BadRequestError("'as_path' must be a non-empty list of ASNs")
        if len(raw_path) > MAX_AS_PATH_LEN:
            raise BadRequestError(f"as_path longer than {MAX_AS_PATH_LEN}")
        try:
            as_path = tuple(int(asn) for asn in raw_path)
        except (TypeError, ValueError) as exc:
            raise BadRequestError("'as_path' entries must be integers") from exc
        if any(asn < 0 or asn > 0xFFFFFFFF for asn in as_path):
            raise BadRequestError("'as_path' entries must be 32-bit ASNs")
        deadline = payload.get("deadline_s")
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError) as exc:
                raise BadRequestError("'deadline_s' must be a number") from exc
            if deadline <= 0:
                raise BadRequestError("'deadline_s' must be positive")
        collector = payload.get("collector", "serve")
        if not isinstance(collector, str):
            raise BadRequestError("'collector' must be a string")
        return Query(
            kind=kind,
            prefix=prefix,
            as_path=as_path,
            collector=collector[:64],
            deadline_s=deadline,
        )


def report_as_dict(report: RouteReport) -> dict:
    """A route report as stable JSON — the ``/verify`` response payload.

    ``text`` is the Appendix-C rendering, character-identical to what the
    batch pipeline prints for the same route; the structured fields are
    derived from the same hops.
    """
    entry = report.entry
    return {
        "prefix": str(entry.prefix),
        "as_path": list(entry.as_path),
        "collector": entry.collector,
        "ignored": report.ignored,
        "hops": [
            {
                "direction": hop.direction,
                "from_asn": hop.from_asn,
                "to_asn": hop.to_asn,
                "status": hop.status.label,
                "peer_matched": hop.peer_matched,
                "items": [str(item) for item in hop.items],
            }
            for hop in report.hops
        ],
        "text": str(report),
    }


@dataclass(slots=True)
class _Pending:
    """A submitted query waiting for the batcher."""

    query: Query
    future: asyncio.Future
    deadline: float  # time.monotonic() value
    submitted: float = field(default_factory=time.monotonic)


class VerifyService:
    """The request core shared by every front-end.

    Wraps a warm :class:`~repro.api.Session` (the session must carry AS
    relationships) behind a micro-batched, deadline- and
    backpressure-aware ``submit``.  With ``workers=0`` all execution
    happens on the batcher's single executor thread, which doubles as
    the session's serialization point; with ``workers>0`` batches ship
    to the supervised worker pool and the executor threads only wait on
    pipes, with the in-process path (guarded by a lock) as the fallback
    whenever the pool cannot serve a batch.
    """

    def __init__(self, session: Session, config: ServeConfig | None = None):
        self.session = session
        self.config = config or ServeConfig()
        self.started_at = time.time()
        self.draining = False
        self.degradation = DegradationReport()
        self.supervisor: WorkerSupervisor | None = None
        # Chaos/test instrumentation: called on an executor thread with
        # the batch's queries before execution.  Never set in production.
        self.fault_hook: Callable[[Sequence[Query]], None] | None = None
        # Serializes hot swaps so two concurrent reloads cannot interleave
        # their worker-pool sweeps.
        self._reload_lock = asyncio.Lock()
        registry = session.registry
        self._registry = registry
        # The registry is not thread-safe; with a pool attached both the
        # event loop and several executor threads record into it, so all
        # serving-path mutations go through this lock.
        self._metrics_lock = threading.Lock()
        # Serializes fallback (and workers=0) execution on the session,
        # which is not thread-safe either.
        self._serial_lock = threading.Lock()
        self._queue_depth = registry.gauge("serve_queue_depth")
        self._batch_size = registry.histogram(
            "serve_batch_size", buckets=SERVE_BATCH_BUCKETS
        )
        self._queue_wait = registry.histogram("serve_queue_wait_seconds")
        self._deadline_miss = registry.counter("serve_deadline_miss_total")
        self._shed_total = registry.counter("serve_shed_total")
        shed_target = self.config.shed_target
        if shed_target is None:
            shed_target = 0.1 if self.config.workers > 0 else 0.0
        self._shedder = (
            LatencyShedder(target=shed_target, interval=self.config.shed_interval)
            if shed_target > 0
            else None
        )
        self._batcher = MicroBatcher(
            self._run_batch,
            # With a pool attached, batches are dispatched natively on
            # the event loop (pipe waits via add_reader) instead of
            # parking executor threads on poll() — the thread wakeups
            # lose more GIL time than the batches cost.
            execute_async=self._run_batch_async if self.config.workers > 0 else None,
            queue_size=self.config.queue_size,
            batch_max=self.config.batch_max,
            batch_window=self.config.batch_window,
            concurrency=max(1, self.config.workers),
            on_batch=self._observe_batch,
            discard=self._discard_pending,
        )

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "VerifyService":
        """Warm the session, spawn the worker pool, start the batcher."""
        self.session.warm()
        if self.config.workers > 0:
            self.supervisor = WorkerSupervisor(
                self.session.ir,
                self.session.relationships,
                self.session.options,
                self.session.index,
                SupervisorConfig(
                    workers=self.config.workers,
                    hang_timeout=self.config.hang_timeout,
                    heartbeat_interval=self.config.heartbeat_interval,
                    heartbeat_timeout=self.config.heartbeat_timeout,
                    restart_budget=self.config.restart_budget,
                    breaker_failures=self.config.breaker_failures,
                    breaker_cooldown=self.config.breaker_cooldown,
                    start_method=self.config.start_method,
                ),
                registry=self._registry,
                metrics_lock=self._metrics_lock,
                degradation=self.degradation,
            )
            self.supervisor.start()
        await self._batcher.start()
        return self

    def begin_drain(self) -> None:
        """Refuse new submissions; queued work keeps executing."""
        self.draining = True

    async def drain(self, timeout: float | None = None) -> bool:
        """Wait (bounded) for queued and in-flight work to finish."""
        self.begin_drain()
        return await self._batcher.drain(
            self.config.drain_timeout if timeout is None else timeout
        )

    async def stop(self) -> None:
        """Stop the batcher and the pool; still-queued waiters get BusyError."""
        self.draining = True
        await self._batcher.stop()
        if self.supervisor is not None:
            self.supervisor.stop()

    def _discard_pending(self, pending: "_Pending") -> None:
        """Fail a queued-but-never-executed waiter at shutdown."""
        if not pending.future.done():
            pending.future.set_exception(BusyError("shutting down"))

    # -- submission --------------------------------------------------------

    def _outcome(self, kind: str, outcome: str):
        return self._registry.counter(
            "serve_requests_total", endpoint=kind, outcome=outcome
        )

    @property
    def degraded(self) -> bool:
        """Whether the worker pool has degraded to serial execution."""
        return self.supervisor is not None and self.supervisor.degraded

    async def submit(self, query: Query) -> dict:
        """Run one query through the batched core; returns the JSON payload.

        Raises :class:`BadRequestError` on an invalid deadline,
        :class:`BusyError` on backpressure (queue full, shedding, or
        draining) and :class:`DeadlineExpired` when the query's wall
        deadline passes first.
        """
        if self.draining:
            with self._metrics_lock:
                self._outcome(query.kind, "busy").inc()
            raise BusyError("shutting down")
        if query.deadline_s is not None and query.deadline_s <= 0:
            # Zero/negative deadlines used to be clamped by min() into an
            # instant 504; they are a malformed request, not a timeout.
            with self._metrics_lock:
                self._outcome(query.kind, "bad-request").inc()
            raise BadRequestError("'deadline_s' must be positive")
        if self._shedder is not None and self._shedder.should_shed():
            with self._metrics_lock:
                self._shed_total.inc()
                self._outcome(query.kind, "busy").inc()
            raise BusyError("shedding load: queue wait above target")
        timeout = min(
            query.deadline_s
            if query.deadline_s is not None
            else self.config.default_deadline,
            self.config.max_deadline,
        )
        loop = asyncio.get_running_loop()
        pending = _Pending(
            query, loop.create_future(), time.monotonic() + timeout
        )
        try:
            self._batcher.submit_nowait(pending)
        except QueueFull:
            with self._metrics_lock:
                self._outcome(query.kind, "busy").inc()
            raise BusyError(
                f"queue full ({self.config.queue_size} queries pending)"
            ) from None
        with self._metrics_lock:
            self._queue_depth.set(self._batcher.qsize())
        try:
            result = await asyncio.wait_for(pending.future, timeout)
        except asyncio.TimeoutError:
            # wait_for cancelled the future, so the batcher will discard
            # any late outcome instead of delivering into the void.
            with self._metrics_lock:
                self._deadline_miss.inc()
                self._outcome(query.kind, "deadline").inc()
            raise DeadlineExpired(
                f"no verdict within the {timeout:g}s deadline"
            ) from None
        except ServeError as exc:
            with self._metrics_lock:
                self._outcome(query.kind, exc.code).inc()
            raise
        except Exception:
            with self._metrics_lock:
                self._outcome(query.kind, "error").inc()
            raise
        with self._metrics_lock:
            self._registry.histogram(
                "serve_request_seconds", endpoint=query.kind
            ).observe(time.monotonic() - pending.submitted)
            self._outcome(query.kind, "ok").inc()
        return result

    # -- execution (batcher executor threads) --------------------------------

    def _observe_batch(self, size: int) -> None:
        with self._metrics_lock:
            self._batch_size.observe(size)

    def _run_batch(self, batch: Sequence[_Pending]) -> list:
        """Execute one coalesced batch — via the pool or in-process.

        Returns an outcome per item; exceptions become the waiter's
        exception.  Queries whose deadline passed while queued are
        skipped (their waiters have already timed out, this just avoids
        wasted work), and every item's measured queue wait feeds the
        latency shedder.
        """
        if self.fault_hook is not None:
            self.fault_hook([pending.query for pending in batch])
        outcomes, live = self._admit_batch(batch)
        if live:
            results = self._execute_queries(
                [batch[position].query for position in live]
            )
            for position, result in zip(live, results):
                outcomes[position] = result
        return outcomes

    def _admit_batch(self, batch: Sequence[_Pending]) -> tuple[list, list[int]]:
        """Per-item bookkeeping shared by the sync and async batch paths:
        observe queue waits (metrics + shedder) and skip expired items."""
        outcomes: list = [None] * len(batch)
        live: list[int] = []
        now = time.monotonic()
        for position, pending in enumerate(batch):
            wait = now - pending.submitted
            with self._metrics_lock:
                self._queue_wait.observe(wait)
            if self._shedder is not None:
                self._shedder.observe(wait)
            if pending.deadline <= now or pending.future.done():
                outcomes[position] = DeadlineExpired("expired while queued")
            else:
                live.append(position)
        return outcomes, live

    async def _run_batch_async(self, batch: Sequence[_Pending]) -> list:
        """The pool fast path: dispatch on the event loop, no thread hop.

        Falls back to the full blocking path (on the batcher's executor)
        whenever it cannot stay non-blocking: a chaos hook installed, or
        the pool degraded/unable so queries must run in-process.
        """
        supervisor = self.supervisor
        if self.fault_hook is not None or supervisor is None or supervisor.degraded:
            return await self._batcher.run_blocking(self._run_batch, batch)
        outcomes, live = self._admit_batch(batch)
        if not live:
            return outcomes
        queries = [batch[position].query for position in live]
        items = [
            (query.kind, query.prefix, query.as_path, query.collector)
            for query in queries
        ]
        dispatched = await supervisor.dispatch_async(items)
        if dispatched is not None:
            results = [
                payload if tag == "ok" else BadRequestError(payload)
                for tag, payload in dispatched
            ]
        else:
            if supervisor.degraded:
                self._note_degraded()
            results = await self._batcher.run_blocking(
                self._execute_serial, queries
            )
        for position, result in zip(live, results):
            outcomes[position] = result
        return outcomes

    def _execute_queries(self, queries: Sequence[Query]) -> list:
        """Run queries through the pool, falling back serially when it can't."""
        if self.supervisor is not None:
            if not self.supervisor.degraded:
                items = [
                    (query.kind, query.prefix, query.as_path, query.collector)
                    for query in queries
                ]
                dispatched = self.supervisor.dispatch(items)
                if dispatched is not None:
                    return [
                        payload if tag == "ok" else BadRequestError(payload)
                        for tag, payload in dispatched
                    ]
            if self.supervisor.degraded:
                self._note_degraded()
        return self._execute_serial(queries)

    def _note_degraded(self) -> None:
        # The supervisor records the budget-exhaustion event itself (the
        # degradation report is shared); this logs the first serial batch.
        if not self.degradation.by_kind().get("serve/degraded-to-serial"):
            self.degradation.record(
                "serve", "degraded-to-serial", "pool unavailable; serving in-process"
            )

    def _execute_serial(self, queries: Sequence[Query]) -> list:
        """The in-process path: the session under its serialization lock."""
        outcomes: list = []
        with self._serial_lock:
            for query in queries:
                try:
                    if query.kind == "explain":
                        report, events = self.session.explain(
                            query.prefix, query.as_path, collector=query.collector
                        )
                        payload = report_as_dict(report)
                        payload["events"] = events
                    else:
                        report = self.session.verify_route(
                            query.prefix, query.as_path, collector=query.collector
                        )
                        payload = report_as_dict(report)
                    outcomes.append(payload)
                except Exception as exc:  # noqa: BLE001 - per-query isolation
                    outcomes.append(
                        exc
                        if isinstance(exc, ServeError)
                        else BadRequestError(str(exc))
                    )
        return outcomes

    # -- incremental ingestion (hot swap) ------------------------------------

    def _apply_journal_blocking(self, journal: Journal):
        """Patch the parent session under the serial lock (executor thread).

        Entries whose serial the index has already absorbed are filtered
        out first — that makes re-reading a growing journal file (the
        follower) and retrying a ``POST /reload`` idempotent instead of
        tripping the stale-serial degradation.  Returns ``(fresh,
        report)`` where ``report`` is ``None`` when nothing was applied.
        """
        with self._serial_lock:
            applied = self.session.serials
            fresh = Journal(
                entries=[
                    entry
                    for entry in journal.entries
                    if entry.serial > applied.get(entry.source, -1)
                ],
                issues=list(journal.issues),
            )
            if not fresh.entries and not fresh.issues:
                return fresh, None
            return fresh, self.session.apply_deltas(fresh)

    async def reload(self, journal: Journal) -> dict:
        """Hot-swap journal deltas into the live service; returns a summary.

        The parent session is patched first (off the event loop, under
        the serial lock so the in-process fallback path never observes a
        half-swapped session), then every pool worker is swapped via the
        supervisor's lease-serialized reload — in-flight requests keep
        flowing throughout; at worst a batch is answered by a worker one
        generation behind, never dropped.
        """
        if self.draining:
            raise BusyError("shutting down")
        async with self._reload_lock:
            fresh, report = await self._batcher.run_blocking(
                self._apply_journal_blocking, journal
            )
            summary = {
                "applied": len(fresh.entries),
                "generation": self.session.generation,
                "serials": self.session.serials,
                "degraded": bool(report),
                "delta_apply_s": self.session.last_delta_seconds,
            }
            if report:
                summary["degradation"] = report.as_dict()
            if report is None:
                return summary
            if self.supervisor is not None:
                summary["pool"] = await self._batcher.run_blocking(
                    self.supervisor.reload,
                    self.session.ir,
                    self.session.index,
                    fresh,
                )
            return summary

    # -- health ------------------------------------------------------------

    def health(self) -> dict:
        """The ``/healthz`` payload: liveness plus headline counters."""
        if self.draining:
            status = "draining"
        elif self.degraded:
            status = "degraded"
        else:
            status = "ok"
        payload = {
            "status": status,
            "uptime_s": round(time.time() - self.started_at, 3),
            "queue_depth": self._batcher.qsize(),
            "queue_size": self.config.queue_size,
            "batches": self._batcher.batches,
            "queries": self._batcher.items,
            "shedding": bool(self._shedder is not None and self._shedder.shedding),
            "shed_total": self._shed_total.value,
            "index_digest": (
                self.session.index.digest if self.session.index is not None else None
            ),
            "index_generation": self.session.generation,
            "journal_serials": self.session.serials,
            "last_delta_apply_s": self.session.last_delta_seconds,
        }
        if self.supervisor is not None:
            payload["supervisor"] = self.supervisor.state()
        return payload
