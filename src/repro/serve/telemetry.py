"""Request-scoped serve telemetry: stage timings and the access log.

One :class:`RequestTelemetry` rides along with each request from the
front-end through the micro-batcher and back, collecting monotonic marks
at every hand-off.  The serve core turns the marks into the per-stage
latency breakdown (``serve_stage_seconds{stage=}`` histograms and the
``stages_ms`` block of each access-log line):

* ``accept``   — front-end receipt → enqueued on the batcher's queue
  (parse, validation, admission checks);
* ``queue``    — enqueued → pulled off the queue by the dispatcher;
* ``coalesce`` — pulled → the batch it joined began executing (the
  batcher's coalescing window plus any concurrency-semaphore wait);
* ``dispatch`` — waiting for a pool worker lease (or the serial lock);
* ``execute``  — the batch executing (pipe round-trip + verification);
  dispatch/execute are measured per *batch* and attributed to every
  request in it — the requests coalesced precisely so they would share
  those costs;
* ``respond``  — everything after execution: future delivery, response
  serialization bookkeeping.  Computed as the remainder of the total,
  so the stages always sum to the end-to-end latency.

The :class:`AccessLog` writes one JSONL line per finished request —
``{"ts", "id", "frontend", "endpoint", "outcome", "verdicts",
"total_ms", "stages_ms"}`` — and promotes requests slower than
``slow_ms`` to a dedicated slow-query log with the same (full) record,
so tail latency is greppable without replaying the main log.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

__all__ = ["AccessLog", "RequestTelemetry", "STAGES"]

STAGES = ("accept", "queue", "coalesce", "dispatch", "execute", "respond")


class RequestTelemetry:
    """Per-request correlation id plus stage timing marks.

    Marks are ``time.monotonic()`` values; ``dispatch_s``/``execute_s``
    are explicit batch-level durations set by the execution path.  The
    object is mutated from the event loop and (for the collected mark
    and batch durations) the executor threads, but each field has
    exactly one writer, so no lock is needed.
    """

    __slots__ = (
        "request_id",
        "frontend",
        "endpoint",
        "wall_start",
        "accepted",
        "submitted",
        "collected",
        "admitted",
        "finished",
        "dispatch_s",
        "execute_s",
        "outcome",
        "verdicts",
        "done",
    )

    def __init__(self, request_id: str, frontend: str, endpoint: str = ""):
        self.request_id = request_id
        self.frontend = frontend
        self.endpoint = endpoint
        self.wall_start = time.time()
        self.accepted = time.monotonic()
        self.submitted: float | None = None
        self.collected: float | None = None
        self.admitted: float | None = None
        self.finished: float | None = None
        self.dispatch_s: float | None = None
        self.execute_s: float | None = None
        self.outcome: str | None = None
        self.verdicts = 0
        self.done = False

    def mark_submitted(self) -> None:
        self.submitted = time.monotonic()

    def mark_collected(self) -> None:
        self.collected = time.monotonic()

    def mark_admitted(self) -> None:
        self.admitted = time.monotonic()

    @property
    def queue_wait(self) -> float:
        """Seconds spent between submission and now (refusals/expiries)."""
        origin = self.submitted if self.submitted is not None else self.accepted
        return max(0.0, time.monotonic() - origin)

    def finish(self, outcome: str, verdicts: int = 0) -> bool:
        """Close the request once; returns False on a repeat call."""
        if self.done:
            return False
        self.done = True
        self.finished = time.monotonic()
        self.outcome = outcome
        self.verdicts = verdicts
        return True

    def stage_values(self) -> tuple[float, float, float, float, float, float]:
        """Per-stage seconds in :data:`STAGES` order — the hot-path form.

        Stages a refused request never reached are 0.  ``respond`` is
        the remainder of the end-to-end latency after the measured
        stages, clamped at zero, so the breakdown always sums to the
        total the client saw.  A tuple of locals instead of a dict: the
        finish path runs this once per request and feeds the values to
        both the stage histograms and :meth:`line`.
        """
        end = self.finished if self.finished is not None else time.monotonic()
        total = end - self.accepted
        if total < 0.0:
            total = 0.0
        submitted, collected, admitted = self.submitted, self.collected, self.admitted
        accept = total if submitted is None else max(0.0, submitted - self.accepted)
        queue = (
            max(0.0, collected - submitted)
            if collected is not None and submitted is not None
            else 0.0
        )
        coalesce = 0.0
        if admitted is not None:
            origin = collected if collected is not None else submitted
            if origin is not None:
                coalesce = max(0.0, admitted - origin)
        dispatch = max(0.0, self.dispatch_s) if self.dispatch_s is not None else 0.0
        execute = max(0.0, self.execute_s) if self.execute_s is not None else 0.0
        respond = max(0.0, total - (accept + queue + coalesce + dispatch + execute))
        return (accept, queue, coalesce, dispatch, execute, respond)

    def stages(self) -> dict[str, float]:
        """Per-stage seconds keyed by stage name (:meth:`stage_values`)."""
        return dict(zip(STAGES, self.stage_values()))

    def total_ms(self) -> float:
        end = self.finished if self.finished is not None else time.monotonic()
        return max(0.0, (end - self.accepted) * 1000.0)

    def record(self) -> dict:
        """The access-log record for this request (the documented schema)."""
        return {
            "ts": round(self.wall_start, 6),
            "type": "request",
            "id": self.request_id,
            "frontend": self.frontend,
            "endpoint": self.endpoint,
            "outcome": self.outcome or "unknown",
            "verdicts": self.verdicts,
            "total_ms": round(self.total_ms(), 3),
            "stages_ms": {
                stage: round(seconds * 1000.0, 3)
                for stage, seconds in self.stages().items()
            },
        }

    def line(self, values: tuple | None = None) -> str:
        """:meth:`record` pre-serialized — the hot path.

        Hand-formatted instead of ``json.dumps``: the id is validated to
        the header-safe token alphabet, and frontend/outcome are
        server-chosen tokens, so only the client-controlled endpoint
        needs real JSON escaping.  One string serves both the access log
        and the flight ring (spliced verbatim), so a finished request
        serializes exactly once.  The caller may pass the
        :meth:`stage_values` tuple it already computed for the
        histograms so the stage math runs once per request, not twice.
        """
        if values is None:
            values = self.stage_values()
        accept, queue, coalesce, dispatch, execute, respond = values
        endpoint = self.endpoint
        return (
            '{"ts":%.6f,"type":"request","id":"%s","frontend":"%s",'
            '"endpoint":%s,"outcome":"%s","verdicts":%d,"total_ms":%.3f,'
            '"stages_ms":{"accept":%.3f,"queue":%.3f,"coalesce":%.3f,'
            '"dispatch":%.3f,"execute":%.3f,"respond":%.3f}}'
            % (
                self.wall_start,
                self.request_id,
                self.frontend,
                # Endpoints are almost always bare serve tokens
                # ("verify", "!v"); full JSON escaping only when not.
                '"%s"' % endpoint
                if endpoint.replace("!", "").replace("/", "").isalnum()
                else json.dumps(endpoint),
                self.outcome or "unknown",
                self.verdicts,
                # respond is the clamped remainder, so the stages sum to
                # the end-to-end total by construction.
                (accept + queue + coalesce + dispatch + execute + respond)
                * 1000.0,
                accept * 1000.0,
                queue * 1000.0,
                coalesce * 1000.0,
                dispatch * 1000.0,
                execute * 1000.0,
                respond * 1000.0,
            )
        )


class AccessLog:
    """JSONL access + slow-query logs for the serve daemon.

    ``path`` is the access log (every finished request, one line each);
    when ``slow_ms`` > 0, requests at or above the threshold are also
    appended to ``<path>.slow`` (or ``slow_path``).  Either file may be
    None — a daemon can run with only the slow log, or neither (stage
    histograms and the flight recorder still capture the breakdown).

    The access stream is block-buffered — a per-line flush would cost a
    syscall on the event loop for every request — so a crashing daemon
    may lose its final block of lines (the flight ring still has them).
    The slow log *is* line-buffered: slow requests are rare and are
    exactly the lines someone is tailing.  Writes are serialized by a
    lock.
    """

    def __init__(
        self,
        path: str | Path | None,
        *,
        slow_ms: float = 0.0,
        slow_path: str | Path | None = None,
    ):
        self.slow_ms = slow_ms
        self._lock = threading.Lock()
        self._stream = None
        self._slow_stream = None
        if path is not None:
            self._stream = open(path, "a", encoding="utf-8")
            if slow_ms > 0 and slow_path is None:
                slow_path = f"{path}.slow"
        if slow_ms > 0 and slow_path is not None:
            self._slow_stream = open(slow_path, "a", buffering=1, encoding="utf-8")

    @property
    def active(self) -> bool:
        return self._stream is not None or self._slow_stream is not None

    def write(self, line: str, *, slow: bool = False) -> None:
        """Append one pre-serialized JSONL line (no trailing newline)."""
        with self._lock:
            if self._stream is not None:
                self._stream.write(line + "\n")
            if slow and self._slow_stream is not None:
                self._slow_stream.write(line + "\n")

    def log(self, record: dict, *, slow: bool = False) -> None:
        self.write(
            json.dumps(record, separators=(",", ":"), sort_keys=True), slow=slow
        )

    def flush(self) -> None:
        with self._lock:
            for stream in (self._stream, self._slow_stream):
                if stream is not None:
                    try:
                        stream.flush()
                    except OSError:  # pragma: no cover
                        pass

    def close(self) -> None:
        with self._lock:
            for stream in (self._stream, self._slow_stream):
                if stream is not None:
                    try:
                        stream.close()
                    except OSError:  # pragma: no cover
                        pass
            self._stream = None
            self._slow_stream = None
