"""The WHOIS line-protocol front-end of the resident daemon.

Speaks the same dialect as :mod:`repro.irr.whois` — plain lookups and
IRRd bang commands over one TCP connection, one query per line — but as
an asyncio protocol inside the serve daemon, sharing its
:class:`~repro.serve.core.VerifyService` with the HTTP front-end.  On
top of the stock dialect it adds the verification command:

* ``!v <prefix> <asn> <asn>...`` — verify the route against registry
  policy; the response is the Appendix-C report text in IRRd ``A``
  framing, character-identical to the batch pipeline's rendering.

Service conditions surface as WHOIS comment lines: ``%% BUSY <detail>``
under backpressure (clients should back off and retry) and
``%% DEADLINE <detail>`` when a ``!v`` misses its deadline.  Malformed
commands get the stock ``F <message>`` error frame.

Every ``!v`` response — verdict and error alike — is prefixed with a
``%% id <request-id>`` comment line carrying the request's correlation
id (the WHOIS analogue of the HTTP ``X-Request-Id`` echo; IRRd uses the
same comment convention for its banner).  Plain lookups and the other
bang commands stay id-free: they never enter the request core.

Plain lookups and bang commands are pure dictionary reads on the IR and
run inline on the event loop; only ``!v`` goes through the batched
request core.
"""

from __future__ import annotations

import asyncio
import logging

from repro.irr.whois import MAX_QUERY_BYTES, WhoisEngine, _frame
from repro.net.asn import AsnError, parse_asn
from repro.serve.core import (
    BusyError,
    DeadlineExpired,
    Query,
    ServeError,
    VerifyService,
)

__all__ = ["WhoisFrontend"]

log = logging.getLogger("repro.serve.whois")

_QUIT = frozenset(("!q", "!e", "-k q", "q"))


class WhoisFrontend:
    """Owns the listening socket for the line protocol."""

    def __init__(self, service: VerifyService, host: str, port: int):
        self.service = service
        self.engine = WhoisEngine(service.session.ir)
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> "WhoisFrontend":
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_QUERY_BYTES + 1,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Line longer than the stream limit: the connection
                    # cannot be resynchronized reliably, so refuse and drop.
                    writer.write(b"F query line too long\n\n")
                    await writer.drain()
                    return
                if not line:
                    return
                text = line.decode("utf-8", errors="replace").strip()
                if text in _QUIT:
                    return
                response = await self._answer(text)
                writer.write(response.encode("utf-8") + b"\n\n")
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except Exception:  # noqa: BLE001 - connection isolation
            log.exception("unhandled error on whois connection")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _answer(self, text: str) -> str:
        if text.startswith("!v"):
            return await self._verify(text[2:])
        if text.startswith("!"):
            return self.engine.bang(text)
        found = self.engine.lookup(text)
        return found if found is not None else "%  No entries found"

    # -- verification ------------------------------------------------------

    async def _verify(self, argument: str) -> str:
        """``!v <prefix> <asn> <asn>...`` through the shared request core."""
        telemetry = self.service.new_telemetry("whois")
        rid = telemetry.request_id if telemetry is not None else ""
        prefix_comment = f"%% id {rid}\n" if rid else ""

        def answer(response: str, outcome: str) -> str:
            # Defensive close for paths the core never saw (parse errors);
            # idempotent for responses submit() already recorded.
            self.service.finish_telemetry(telemetry, outcome)
            return prefix_comment + response

        parts = argument.split()
        if len(parts) < 2:
            return answer("F usage: !v <prefix> <asn> <asn>...", "bad-request")
        try:
            # Accept both asplain ("AS174") and bare integers ("174").
            as_path = tuple(
                int(part) if part.isdigit() else parse_asn(part)
                for part in parts[1:]
            )
        except (AsnError, ValueError) as exc:
            return answer(f"F invalid AS path: {exc}", "bad-request")
        try:
            query = Query.from_payload(
                {"prefix": parts[0], "as_path": list(as_path), "collector": "whois"},
                "verify",
                request_id=rid,
            )
            result = await self.service.submit(query, telemetry)
        except BusyError as exc:
            return answer(f"%% BUSY {exc}", "busy")
        except DeadlineExpired as exc:
            return answer(f"%% DEADLINE {exc}", "deadline")
        except ServeError as exc:
            return answer(f"F {exc}", exc.code)
        return answer(_frame(result["text"]), "ok")
