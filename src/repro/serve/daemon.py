"""The serve daemon: lifecycle glue around the request core.

:class:`ServeDaemon` owns the event loop's view of the service — it
starts the :class:`~repro.serve.core.VerifyService` and whichever
front-ends the :class:`~repro.serve.core.ServeConfig` enables, installs
signal handlers, and runs the graceful-shutdown sequence:

1. stop accepting connections (close the listening sockets);
2. mark the service draining — queries already admitted keep executing,
   new submissions on surviving connections get BUSY;
3. wait (bounded by ``drain_timeout``) for the queue and the in-flight
   batches to finish, so every accepted request gets its answer;
4. stop the batcher (waiters the drain never reached get an explicit
   ``BusyError``, not a hang) and the worker pool, then return.

The :class:`~repro.serve.core.VerifyService` is started *before* the
front-ends bind, so the worker pool's forked processes never inherit
the listening sockets.

SIGTERM and SIGINT both trigger that sequence, so ``kill <pid>`` on the
daemon is a clean drain, not a mid-verdict abort.  SIGQUIT instead dumps
the flight recorder to a timestamped incident file and keeps serving —
the classic "what is this daemon doing right now" probe.

For tests and embedding there is :meth:`ServeDaemon.start_in_thread`,
which runs the daemon on a private event loop in a daemon thread and
returns a :class:`ServeHandle` exposing the bound ports and a blocking
``stop()``.
"""

from __future__ import annotations

import asyncio
import logging
import signal
import threading
from typing import Callable

from repro.api import Session
from repro.serve.core import ServeConfig, VerifyService
from repro.serve.http import HttpFrontend
from repro.serve.whois import WhoisFrontend

__all__ = ["ServeDaemon", "ServeHandle"]

log = logging.getLogger("repro.serve")


class ServeDaemon:
    """One resident service over one session.

    The session should carry AS relationships (``!v``/``/verify`` need
    them) and ideally its own :class:`~repro.obs.MetricsRegistry` so
    ``GET /metrics`` reflects this daemon alone.
    """

    def __init__(self, session: Session, config: ServeConfig | None = None):
        self.session = session
        self.config = config or ServeConfig()
        self.service: VerifyService | None = None
        self.http: HttpFrontend | None = None
        self.whois: WhoisFrontend | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._follower: asyncio.Task | None = None

    # -- the daemon coroutine ---------------------------------------------

    async def run(self, *, on_ready: Callable[["ServeDaemon"], None] | None = None) -> None:
        """Serve until a shutdown is requested, then drain and return."""
        config = self.config
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._install_signal_handlers()
        self.service = await VerifyService(self.session, config).start()
        try:
            if config.http_port is not None:
                self.http = await HttpFrontend(
                    self.service, config.host, config.http_port
                ).start()
                log.info("http front-end on %s:%d", config.host, self.http.port)
            if config.whois_port is not None:
                self.whois = await WhoisFrontend(
                    self.service, config.host, config.whois_port
                ).start()
                log.info("whois front-end on %s:%d", config.host, self.whois.port)
            if self.http is None and self.whois is None:
                raise ValueError("ServeConfig enables no front-end")
            if config.journal_path is not None:
                self._follower = asyncio.create_task(
                    self._follow_journal(), name="rpslyzer-journal-follower"
                )
            if on_ready is not None:
                on_ready(self)
            await self._shutdown.wait()
        finally:
            await self._graceful_stop()

    async def _follow_journal(self) -> None:
        """Poll the configured journal file, hot-swapping fresh entries.

        The whole file is re-read on every change; the service's reload
        filters already-absorbed serials, so a growing NRTM-style journal
        is applied incrementally and re-reads are idempotent.  Unreadable
        or failing reloads are logged and retried on the next poll —
        the follower never takes the daemon down.
        """
        from pathlib import Path

        from repro.irr.journal import JournalError, load_journal

        path = Path(self.config.journal_path)
        last_signature: tuple[int, int] | None = None
        while True:
            await asyncio.sleep(self.config.journal_poll)
            try:
                stat = path.stat()
            except OSError:
                continue  # not there (yet): keep watching
            signature = (stat.st_mtime_ns, stat.st_size)
            if signature == last_signature:
                continue
            try:
                journal = load_journal(path)
            except (JournalError, OSError) as exc:
                log.warning("journal follower: unreadable %s: %s", path, exc)
                continue
            try:
                summary = await self.service.reload(journal)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - keep following
                log.warning("journal follower: reload failed: %s", exc)
                continue
            # Commit the signature only after the reload landed: a
            # transient read or reload failure must be retried on the
            # next poll even if the file itself never changes again.
            last_signature = signature
            if summary["applied"]:
                log.info(
                    "journal follower: applied %d entries "
                    "(generation %d%s)",
                    summary["applied"],
                    summary["generation"],
                    ", degraded to full recompile" if summary["degraded"] else "",
                )

    def request_shutdown(self) -> None:
        """Trigger the drain sequence; safe to call from any thread."""
        if self._loop is None or self._shutdown is None:
            return
        self._loop.call_soon_threadsafe(self._shutdown.set)

    def _install_signal_handlers(self) -> None:
        assert self._loop is not None
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self._on_signal, signum)
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-main thread or platform without loop signal support
                # (start_in_thread, Windows): shutdown comes via the handle.
                return
        quit_signal = getattr(signal, "SIGQUIT", None)
        if quit_signal is not None:
            try:
                self._loop.add_signal_handler(quit_signal, self._on_sigquit)
            except (NotImplementedError, RuntimeError, ValueError):
                pass

    def _on_signal(self, signum: int) -> None:
        log.info("received %s: draining", signal.Signals(signum).name)
        self._shutdown.set()

    def _on_sigquit(self) -> None:
        """SIGQUIT: dump the flight ring to an incident file, keep serving."""
        if self.service is None:
            return
        path = self.service.flight.dump_incident(
            "sigquit", trigger={"type": "signal", "signal": "SIGQUIT"}
        )
        if path is not None:
            log.info("SIGQUIT: flight recorder dumped to %s", path)
        else:
            log.info("SIGQUIT: flight dump skipped (disabled or rate-limited)")

    async def _graceful_stop(self) -> None:
        # 0. Stop the journal follower before the service goes away.
        if self._follower is not None:
            self._follower.cancel()
            try:
                await self._follower
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._follower = None
        # 1. Stop accepting new connections.
        for frontend in (self.http, self.whois):
            if frontend is not None:
                await frontend.close()
        if self.service is None:
            return
        # 2–3. Refuse new queries, let admitted ones finish.
        drained = await self.service.drain()
        if not drained:  # pragma: no cover - only under pathological load
            log.warning(
                "drain timed out after %.1fs with %d queries pending",
                self.config.drain_timeout,
                self.service.health()["queue_depth"],
            )
        # 4. Release the batcher and its executor thread.
        await self.service.stop()
        log.info("serve daemon stopped")

    # -- threaded embedding (tests, notebooks) -----------------------------

    def start_in_thread(self, *, timeout: float = 30.0) -> "ServeHandle":
        """Run the daemon on a private loop in a daemon thread.

        Blocks until the front-ends are bound (so the handle's ports are
        real) or the daemon dies during startup, in which case the
        startup exception is re-raised here.
        """
        ready = threading.Event()
        failure: list[BaseException] = []

        def _main() -> None:
            try:
                asyncio.run(self.run(on_ready=lambda _self: ready.set()))
            except BaseException as exc:  # noqa: BLE001 - reported via handle
                failure.append(exc)
                ready.set()

        thread = threading.Thread(target=_main, name="rpslyzer-serve", daemon=True)
        thread.start()
        if not ready.wait(timeout):
            self.request_shutdown()
            raise TimeoutError("serve daemon did not start within %.1fs" % timeout)
        if failure:
            raise failure[0]
        return ServeHandle(self, thread)


class ServeHandle:
    """A running threaded daemon: bound ports plus a blocking stop."""

    def __init__(self, daemon: ServeDaemon, thread: threading.Thread):
        self.daemon = daemon
        self._thread = thread

    @property
    def host(self) -> str:
        return self.daemon.config.host

    @property
    def http_port(self) -> int | None:
        return self.daemon.http.port if self.daemon.http is not None else None

    @property
    def whois_port(self) -> int | None:
        return self.daemon.whois.port if self.daemon.whois is not None else None

    def stop(self, timeout: float = 30.0) -> None:
        """Request the drain sequence and wait for the daemon to exit."""
        self.daemon.request_shutdown()
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover
            raise TimeoutError("serve daemon did not stop within %.1fs" % timeout)

    def __enter__(self) -> "ServeHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
