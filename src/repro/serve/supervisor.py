"""The worker-pool supervisor: self-healing multi-process query execution.

One executor thread serializing the non-thread-safe Session was the
serve daemon's remaining bottleneck — and its remaining single point of
failure: a crashed or wedged evaluation stalled every client.  This
module adds the missing robustness layer, modeled on how the batch pool
(:mod:`repro.core.parallel`) already survives dying workers:

* **warm workers** — each worker process builds its own
  :class:`~repro.api.Session` from the parent's parsed IR and compiled
  index (shared copy-on-write under ``fork``, pickled once under
  ``spawn``), so it answers queries warm without ever recompiling.
* **supervision** — a monitor thread health-checks idle workers with
  heartbeat pings, SIGKILLs hung ones (a worker that stops answering
  mid-batch is caught by the per-batch ``hang_timeout``), and respawns
  crashed ones with exponential backoff under a bounded *restart
  budget*.  Budget exhausted ⇒ the pool degrades gracefully: the
  service falls back to its in-process single-thread path and records
  the event in the :class:`~repro.core.degradation.DegradationReport`
  and ``/healthz``.
* **crash isolation** — a dying worker fails only its in-flight batch,
  which is retried on another worker with bounded attempts; the
  service's serial fallback guarantees the clients still get verdicts.
* **circuit breaker** — dispatch is wrapped in a closed/open/half-open
  :class:`CircuitBreaker`, so a collapsing pool sheds to the serial
  path immediately instead of timing out every batch.
* **adaptive load shedding** — :class:`LatencyShedder` watches measured
  queue-wait latency CoDel-style (shed while the wait has been above
  ``target`` continuously for at least ``interval``) so the daemon
  answers 429/``%% BUSY`` *before* the bounded queue fills.

Pipe discipline: a worker's :class:`~multiprocessing.connection.Connection`
is only ever touched by whoever holds the worker leased from the free
queue — batch executors and the heartbeat monitor alike — so request
and pong frames never interleave.
"""

from __future__ import annotations

import asyncio
import logging
import multiprocessing
import os
import queue
import signal
import threading
import time
from dataclasses import dataclass, field

from repro.bgp.topology import AsRelationships
from repro.core.compiled import CompiledIndex
from repro.core.degradation import DegradationReport
from repro.core.verify import VerifyOptions
from repro.ir.model import Ir

__all__ = [
    "CircuitBreaker",
    "LatencyShedder",
    "PoolUnavailable",
    "SupervisorConfig",
    "WorkerCrash",
    "WorkerSupervisor",
]

log = logging.getLogger("repro.serve.supervisor")


class WorkerCrash(RuntimeError):
    """A worker died or hung while executing a batch."""


class PoolUnavailable(RuntimeError):
    """No healthy worker could be leased in time."""


@dataclass(frozen=True, slots=True)
class SupervisorConfig:
    """Knobs for the worker pool; defaults suit a local daemon.

    ``hang_timeout`` bounds one batch's execution in a worker — a worker
    that exceeds it is presumed wedged and SIGKILLed.  ``heartbeat_*``
    drive the idle-worker liveness probe.  ``restart_budget`` is the
    total number of respawns before the pool gives up and degrades to
    the in-process serial path; ``backoff_base``/``backoff_max`` shape
    the exponential respawn backoff after consecutive failures.
    ``batch_retries`` bounds how many times one batch is retried on
    another worker after a crash before falling back serially.
    """

    workers: int = 2
    hang_timeout: float = 10.0
    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 2.0
    spawn_timeout: float = 60.0
    lease_timeout: float = 5.0
    restart_budget: int = 8
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    batch_retries: int = 2
    breaker_failures: int = 3
    breaker_cooldown: float = 1.0
    start_method: str | None = None


class CircuitBreaker:
    """A closed/open/half-open breaker around pool dispatch.

    ``failures`` consecutive failures open the breaker; after
    ``cooldown`` seconds one probe is allowed through (half-open) — its
    success closes the breaker, its failure re-opens and re-arms the
    cooldown.  ``clock`` is injectable for deterministic tests.
    ``on_transition(old, new)`` is invoked outside the lock on every
    state change — the supervisor uses it to land breaker transitions in
    the flight recorder.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failures: int = 3,
        cooldown: float = 1.0,
        clock=time.monotonic,
        on_transition=None,
    ):
        self.failures = max(1, failures)
        self.cooldown = cooldown
        self._clock = clock
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive = 0
        self._opened_at = 0.0
        self._probing = False

    def _notify(self, old: str, new: str) -> None:
        if old != new and self.on_transition is not None:
            try:
                self.on_transition(old, new)
            except Exception:  # noqa: BLE001 - observers never break dispatch
                log.exception("breaker on_transition callback failed")

    @property
    def state(self) -> str:
        with self._lock:
            # Surface the imminent half-open transition so health checks
            # don't report "open" forever on an idle daemon.
            if (
                self._state == self.OPEN
                and self._clock() - self._opened_at >= self.cooldown
            ):
                return self.HALF_OPEN
            return self._state

    def allow(self) -> bool:
        """Whether a dispatch may proceed right now."""
        old = new = None
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at >= self.cooldown:
                    old, new = self._state, self.HALF_OPEN
                    self._state = self.HALF_OPEN
                    self._probing = True
                else:
                    return False
            elif self._probing:
                # Half-open: exactly one probe in flight at a time.
                return False
            else:
                self._probing = True
                return True
        self._notify(old, new)
        return True

    def record_success(self) -> None:
        with self._lock:
            old = self._state
            self._consecutive = 0
            self._probing = False
            self._state = self.CLOSED
        self._notify(old, self.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            old = self._state
            self._probing = False
            if self._state == self.HALF_OPEN:
                self._state = self.OPEN
                self._opened_at = self._clock()
            else:
                self._consecutive += 1
                if self._consecutive >= self.failures:
                    self._state = self.OPEN
                    self._opened_at = self._clock()
            new = self._state
        self._notify(old, new)


class LatencyShedder:
    """CoDel-style admission control on measured queue-wait latency.

    ``observe(wait)`` is called with each executed query's time spent
    queued; shedding turns on once the wait has been above ``target``
    continuously for at least ``interval`` seconds, and turns off on the
    first below-target observation.  ``should_shed()`` also expires
    shedding when no observation has arrived for ``interval`` — a shed
    queue goes quiet, and without the expiry nothing would ever be
    admitted to produce the below-target observation that clears it.
    """

    def __init__(
        self,
        target: float = 0.1,
        interval: float = 1.0,
        clock=time.monotonic,
    ):
        self.target = target
        self.interval = interval
        self._clock = clock
        self._lock = threading.Lock()
        self._above_since: float | None = None
        self._last_observation: float | None = None
        self._shedding = False

    @property
    def shedding(self) -> bool:
        return self._shedding

    def observe(self, wait_s: float) -> None:
        now = self._clock()
        with self._lock:
            self._last_observation = now
            if wait_s < self.target:
                self._above_since = None
                self._shedding = False
                return
            if self._above_since is None:
                self._above_since = now
            elif now - self._above_since >= self.interval:
                self._shedding = True

    def should_shed(self) -> bool:
        with self._lock:
            if not self._shedding:
                return False
            if (
                self._last_observation is None
                or self._clock() - self._last_observation > self.interval
            ):
                self._shedding = False
                self._above_since = None
                return False
            return True


def _worker_main(
    conn,
    worker_id: int,
    ir: Ir,
    relationships: AsRelationships,
    options: VerifyOptions | None,
    index: CompiledIndex | None,
) -> None:
    """The worker process body: one warm Session answering batch frames.

    Frames in: ``("batch", batch_id, items)`` where each item is
    ``(kind, prefix, as_path, collector, request_id)``, ``("ping",
    seq)``, ``("reload", expected_generation, journal)``, and
    ``("stop",)``.  Frames out: ``("ready", pid)`` once warm,
    ``("result", batch_id, outcomes, flight_lines)`` with per-item
    ``("ok", payload)`` or ``("err", message)``, ``("pong", seq)``, and
    ``("reloaded", generation, degraded)`` / ``("reload-failed",
    message)``.

    The worker keeps its own small :class:`~repro.obs.flight.FlightRecorder`
    and stamps a ``worker-execute`` event (carrying the request's
    correlation id, this worker's id/pid, and the per-query duration)
    for every item it runs; the pre-serialized event lines ride back in
    the result frame and the parent splices them into the daemon's ring,
    so one request id greps across process boundaries.

    A reload replays the journal onto the worker's own session
    (:meth:`repro.api.Session.apply_deltas` — the same deterministic
    patch the parent ran), so the swap ships kilobytes of delta down the
    pipe instead of re-pickling the whole index.  The generation check
    makes redundant reloads no-ops.
    """
    # Imported lazily: under spawn this module is re-imported in the
    # child, and repro.serve.core imports this module at its top level.
    from repro.api import Session
    from repro.core.parallel import reset_worker_observability
    from repro.obs.flight import FlightRecorder
    from repro.serve.core import report_as_dict

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    reset_worker_observability(False)
    session = Session(ir, relationships, options=options, index=index)
    session.warm()
    # A small local ring: drained into every result frame, so its
    # capacity only needs to cover one batch's worth of events.
    recorder = FlightRecorder(capacity=256)
    pid = os.getpid()
    recorder.record("worker-online", worker=worker_id, pid=pid)
    conn.send(("ready", pid))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "stop":
            return
        if kind == "ping":
            conn.send(("pong", message[1]))
            continue
        if kind == "reload":
            expected_generation, journal = message[1], message[2]
            if session.generation >= expected_generation:
                # Already at (or past) the target: a respawned worker was
                # built from the parent's post-patch state.
                conn.send(("reloaded", session.generation, False))
                continue
            try:
                report = session.apply_deltas(journal)
            except Exception as exc:  # noqa: BLE001 - supervisor retires us
                conn.send(("reload-failed", str(exc)))
                continue
            recorder.record(
                "worker-reloaded",
                worker=worker_id,
                pid=pid,
                generation=session.generation,
            )
            conn.send(("reloaded", session.generation, bool(report)))
            continue
        batch_id, items = message[1], message[2]
        outcomes = []
        for query_kind, prefix, as_path, collector, request_id in items:
            item_start = time.monotonic()
            try:
                if query_kind == "explain":
                    report, events = session.explain(
                        prefix, as_path, collector=collector
                    )
                    payload = report_as_dict(report)
                    payload["events"] = events
                else:
                    report = session.verify_route(
                        prefix, as_path, collector=collector
                    )
                    payload = report_as_dict(report)
                outcomes.append(("ok", payload))
                item_outcome = "ok"
            except Exception as exc:  # noqa: BLE001 - per-query isolation
                outcomes.append(("err", str(exc)))
                item_outcome = "err"
            recorder.record(
                "worker-execute",
                request_id=request_id or None,
                worker=worker_id,
                pid=pid,
                endpoint=query_kind,
                outcome=item_outcome,
                ms=round((time.monotonic() - item_start) * 1000.0, 3),
            )
        try:
            conn.send(("result", batch_id, outcomes, recorder.drain_lines()))
        except (BrokenPipeError, OSError):
            return


@dataclass(slots=True)
class _Worker:
    """One live worker process and the parent's end of its pipe."""

    worker_id: int
    process: multiprocessing.Process
    conn: object
    pid: int
    started: float = field(default_factory=time.monotonic)


class WorkerSupervisor:
    """Owns the pool: spawn, lease, heartbeat, restart, degrade.

    ``execute``/``dispatch`` are called from the batcher's executor
    threads; the monitor thread runs heartbeats and respawns.  Every
    state transition lands in the supervisor's metrics (when a registry
    is given) and crashes/degradation in the ``degradation`` report.
    """

    def __init__(
        self,
        ir: Ir,
        relationships: AsRelationships,
        options: VerifyOptions | None,
        index: CompiledIndex | None,
        config: SupervisorConfig | None = None,
        *,
        registry=None,
        metrics_lock: threading.Lock | None = None,
        degradation: DegradationReport | None = None,
        flight=None,
    ):
        self.config = config or SupervisorConfig()
        if self.config.workers < 1:
            raise ValueError("SupervisorConfig.workers must be >= 1")
        self._ir = ir
        self._relationships = relationships
        self._options = options
        self._index = index
        start_method = self.config.start_method or (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        self._ctx = multiprocessing.get_context(start_method)
        self.degradation = (
            degradation if degradation is not None else DegradationReport()
        )
        if flight is None:
            from repro.obs.flight import NULL_FLIGHT

            flight = NULL_FLIGHT
        self.flight = flight
        self.breaker = CircuitBreaker(
            failures=self.config.breaker_failures,
            cooldown=self.config.breaker_cooldown,
            on_transition=self._on_breaker_transition,
        )
        self.degraded = False
        self._stopping = False
        self._lock = threading.Lock()
        self._free: queue.Queue[_Worker] = queue.Queue()
        self._workers: dict[int, _Worker] = {}
        self._next_id = 0
        self._batch_seq = 0
        self.restarts = 0
        self._consecutive_spawn_failures = 0
        self._monitor: threading.Thread | None = None
        self._registry = registry
        self._metrics_lock = metrics_lock or threading.Lock()
        if registry is not None:
            self._gauge_live = registry.gauge("serve_workers_live")
            self._gauge_restarting = registry.gauge("serve_workers_restarting")
            self._counter_restarts = registry.counter("serve_worker_restarts_total")
            self._gauge_breaker = registry.gauge("serve_breaker_state")
            self._gauge_degraded = registry.gauge("serve_degraded")
        else:
            self._gauge_live = self._gauge_restarting = None
            self._counter_restarts = self._gauge_breaker = None
            self._gauge_degraded = None

    def _on_breaker_transition(self, old: str, new: str) -> None:
        """Flight-record every breaker transition; dump the ring on open.

        Breaker-open is one of the incidents the flight recorder exists
        for — the ring at that moment holds the crashes/hangs that
        tripped it.  The dump itself is rate-limited per reason inside
        the recorder, so a flapping breaker costs one file per interval.
        """
        self.flight.record("breaker-transition", old=old, new=new)
        if new == CircuitBreaker.OPEN:
            self.flight.dump_incident(
                "breaker-open", trigger={"type": "breaker-transition", "old": old}
            )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "WorkerSupervisor":
        """Spawn the initial pool and the monitor thread.

        A worker that fails to come up during initial start consumes
        restart budget like any later crash would; a pool that cannot
        field a single worker starts degraded instead of raising.
        """
        for _ in range(self.config.workers):
            try:
                self._admit(self._spawn_worker())
            except WorkerCrash as exc:
                self._note_restart_needed(f"startup spawn failed: {exc}")
        if not self._workers:
            self._degrade("no worker survived startup")
        self._monitor = threading.Thread(
            target=self._monitor_loop,
            name="rpslyzer-serve-supervisor",
            daemon=True,
        )
        self._monitor.start()
        self._publish_metrics()
        return self

    def stop(self) -> None:
        """Kill every worker and stop the monitor thread."""
        self._stopping = True
        with self._lock:
            workers = list(self._workers.values())
            self._workers.clear()
        # Drain the free queue so the monitor can't lease a dying worker.
        while True:
            try:
                self._free.get_nowait()
            except queue.Empty:
                break
        for worker in workers:
            self._terminate(worker)
        if self._monitor is not None:
            self._monitor.join(timeout=5)
            self._monitor = None
        self._publish_metrics()

    def _terminate(self, worker: _Worker) -> None:
        try:
            worker.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        worker.process.join(timeout=0.5)
        if worker.process.is_alive():
            try:
                os.kill(worker.pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):  # pragma: no cover
                pass
            worker.process.join(timeout=5)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass

    # -- spawning ----------------------------------------------------------

    def _spawn_worker(self) -> _Worker:
        with self._lock:
            worker_id = self._next_id
            self._next_id += 1
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                worker_id,
                self._ir,
                self._relationships,
                self._options,
                self._index,
            ),
            name=f"rpslyzer-serve-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(self.config.spawn_timeout):
            process.kill()
            process.join(timeout=5)
            parent_conn.close()
            raise WorkerCrash(f"worker {worker_id} never reported ready")
        try:
            message = parent_conn.recv()
        except (EOFError, OSError) as exc:
            process.kill()
            process.join(timeout=5)
            parent_conn.close()
            raise WorkerCrash(f"worker {worker_id} died during warmup") from exc
        assert message[0] == "ready"
        return _Worker(worker_id, process, parent_conn, message[1])

    def _admit(self, worker: _Worker) -> None:
        with self._lock:
            self._workers[worker.worker_id] = worker
        self.flight.record(
            "worker-spawn", worker=worker.worker_id, pid=worker.pid
        )
        self._free.put(worker)
        self._consecutive_spawn_failures = 0

    # -- leasing and execution (batcher executor threads) -------------------

    def _lease(self) -> _Worker:
        deadline = time.monotonic() + self.config.lease_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise PoolUnavailable(
                    f"no worker free within {self.config.lease_timeout:g}s"
                )
            try:
                worker = self._free.get(timeout=remaining)
            except queue.Empty:
                raise PoolUnavailable(
                    f"no worker free within {self.config.lease_timeout:g}s"
                ) from None
            with self._lock:
                live = worker.worker_id in self._workers
            if live:
                return worker
            # A worker retired while sitting in the free queue: skip it.

    def execute(self, items: list) -> tuple[list, dict]:
        """Run one batch on a leased worker; raises on crash or hang.

        Returns ``(outcomes, timings)`` where ``timings`` holds the
        batch's ``dispatch_s`` (lease wait) and ``execute_s`` (pipe
        round-trip including verification) — the stage breakdown the
        telemetry attributes to every request in the batch.
        """
        lease_start = time.monotonic()
        worker = self._lease()
        dispatch_s = time.monotonic() - lease_start
        with self._lock:
            self._batch_seq += 1
            batch_id = self._batch_seq
        execute_start = time.monotonic()
        try:
            worker.conn.send(("batch", batch_id, items))
            while True:
                if not worker.conn.poll(self.config.hang_timeout):
                    raise TimeoutError(
                        f"no result within hang_timeout={self.config.hang_timeout:g}s"
                    )
                message = worker.conn.recv()
                if message[0] == "result" and message[1] == batch_id:
                    outcomes = message[2]
                    self.flight.absorb(message[3])
                    break
                # Stale frame (a late pong): ignore and keep reading.
        except (EOFError, BrokenPipeError, OSError, TimeoutError) as exc:
            why = "hung" if isinstance(exc, TimeoutError) else "crashed"
            self._retire(worker, why)
            raise WorkerCrash(
                f"worker {worker.worker_id} {why} mid-batch: {exc}"
            ) from exc
        self._free.put(worker)
        return outcomes, {
            "dispatch_s": dispatch_s,
            "execute_s": time.monotonic() - execute_start,
        }

    def dispatch(self, items: list) -> tuple[list, dict] | None:
        """Breaker-wrapped, bounded-retry execute.

        Returns ``(outcomes, timings)``, or None when the pool cannot
        serve this batch (breaker open, degraded, no worker available,
        retries exhausted) — the caller then falls back to its serial
        path, so no client request is ever lost to a dying worker.
        """
        if self.degraded or self._stopping:
            return None
        if not self.breaker.allow():
            return None
        failure: Exception | None = None
        for _ in range(self.config.batch_retries + 1):
            try:
                dispatched = self.execute(items)
            except PoolUnavailable as exc:
                self.breaker.record_failure()
                self._publish_metrics()
                failure = exc
                break
            except WorkerCrash as exc:
                self.breaker.record_failure()
                failure = exc
                continue
            else:
                self.breaker.record_success()
                self._publish_metrics()
                return dispatched
        log.warning("pool dispatch failed, falling back serially: %s", failure)
        self._publish_metrics()
        return None

    # -- async dispatch (the event-loop fast path) ---------------------------
    #
    # The thread-based execute() parks an executor thread on conn.poll()
    # per batch; every wakeup then has to win the GIL back from the busy
    # event loop, which under sustained load costs more than the batch
    # itself.  The async variant keeps all parent-side work on the loop
    # thread — send, await readability via add_reader, recv — so worker
    # processes run truly in parallel with zero thread churn.  Semantics
    # (lease exclusivity, breaker, retries, retirement) are identical.

    async def _lease_async(self) -> _Worker:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.lease_timeout
        while True:
            try:
                worker = self._free.get_nowait()
            except queue.Empty:
                if loop.time() >= deadline:
                    raise PoolUnavailable(
                        f"no worker free within {self.config.lease_timeout:g}s"
                    ) from None
                await asyncio.sleep(0.001)
                continue
            with self._lock:
                live = worker.worker_id in self._workers
            if live:
                return worker
            # A worker retired while sitting in the free queue: skip it.

    @staticmethod
    async def _readable(conn, timeout: float) -> None:
        """Await readability of a worker pipe; TimeoutError on silence."""
        loop = asyncio.get_running_loop()
        ready: asyncio.Future = loop.create_future()
        fd = conn.fileno()
        loop.add_reader(fd, lambda: ready.done() or ready.set_result(None))
        try:
            await asyncio.wait_for(ready, timeout)
        finally:
            loop.remove_reader(fd)

    async def execute_async(self, items: list) -> tuple[list, dict]:
        """execute(), but awaiting the pipe on the event loop."""
        lease_start = time.monotonic()
        worker = await self._lease_async()
        dispatch_s = time.monotonic() - lease_start
        with self._lock:
            self._batch_seq += 1
            batch_id = self._batch_seq
        execute_start = time.monotonic()
        try:
            worker.conn.send(("batch", batch_id, items))
            while True:
                await self._readable(worker.conn, self.config.hang_timeout)
                message = worker.conn.recv()
                if message[0] == "result" and message[1] == batch_id:
                    outcomes = message[2]
                    self.flight.absorb(message[3])
                    break
                # Stale frame (a late pong): ignore and keep reading.
        except asyncio.CancelledError:
            # Shutdown cancelled the batch, not a worker fault: hand the
            # worker back (its late result is skipped as a stale frame).
            self._free.put(worker)
            raise
        except (EOFError, BrokenPipeError, OSError, TimeoutError) as exc:
            why = "hung" if isinstance(exc, TimeoutError) else "crashed"
            self._retire(worker, why)
            raise WorkerCrash(
                f"worker {worker.worker_id} {why} mid-batch: {exc}"
            ) from exc
        self._free.put(worker)
        return outcomes, {
            "dispatch_s": dispatch_s,
            "execute_s": time.monotonic() - execute_start,
        }

    async def dispatch_async(self, items: list) -> tuple[list, dict] | None:
        """dispatch(), breaker and retries included, on the event loop."""
        if self.degraded or self._stopping:
            return None
        if not self.breaker.allow():
            return None
        failure: Exception | None = None
        for _ in range(self.config.batch_retries + 1):
            try:
                dispatched = await self.execute_async(items)
            except PoolUnavailable as exc:
                self.breaker.record_failure()
                self._publish_metrics()
                failure = exc
                break
            except WorkerCrash as exc:
                self.breaker.record_failure()
                failure = exc
                continue
            else:
                self.breaker.record_success()
                return dispatched
        log.warning("pool dispatch failed, falling back serially: %s", failure)
        self._publish_metrics()
        return None

    # -- hot swap -------------------------------------------------------------

    def reload(self, ir: Ir, index: CompiledIndex | None, journal) -> dict:
        """Swap every live worker to the patched state without dropping work.

        The parent state is updated first (under the lock), so any worker
        the monitor respawns from here on warms straight from the new IR
        and index.  Each live worker is then *leased* from the free queue
        before its reload frame is sent — leasing is the same exclusivity
        the batch executors use, so a reload never interleaves with an
        in-flight batch and no client request is dropped: batches simply
        queue behind the (millisecond-scale) per-worker patch.

        Workers that crash, wedge, or fail the patch are retired; the
        monitor respawns them from the already-updated parent state.
        Past the deadline any still-unswapped worker is retired too, so
        no worker keeps answering from the old index indefinitely.
        Returns a summary dict (``reloaded``/``retired``/``degraded``).
        """
        with self._lock:
            self._ir = ir
            self._index = index
            targets = set(self._workers)
        expected_generation = index.generation if index is not None else 0
        done: set[int] = set()
        degraded_applies = 0
        retired = 0
        deadline = time.monotonic() + (
            self.config.lease_timeout + 2 * self.config.hang_timeout
        )
        while True:
            with self._lock:
                remaining = {
                    wid for wid in targets if wid in self._workers
                } - done
            if not remaining:
                break
            if time.monotonic() >= deadline:
                with self._lock:
                    stragglers = [
                        worker
                        for wid, worker in self._workers.items()
                        if wid in remaining
                    ]
                for worker in stragglers:
                    self._retire(worker, "stale-after-reload")
                    retired += 1
                break
            try:
                worker = self._lease()
            except PoolUnavailable:
                continue
            if worker.worker_id not in remaining:
                # Freshly spawned (already on the new state) or already
                # swapped: hand it back and let a pending one come free.
                self._free.put(worker)
                time.sleep(0.001)
                continue
            try:
                worker.conn.send(("reload", expected_generation, journal))
                while True:
                    if not worker.conn.poll(self.config.hang_timeout):
                        raise TimeoutError("no reload ack")
                    message = worker.conn.recv()
                    if message[0] == "reloaded":
                        break
                    if message[0] == "reload-failed":
                        raise WorkerCrash(message[1])
                    # Stale frame (late pong / cancelled batch result).
            # TimeoutError IS an OSError (since 3.3): it must come first.
            except TimeoutError:
                self._retire(worker, "hung")
                retired += 1
            except (WorkerCrash, EOFError, BrokenPipeError, OSError):
                self._retire(worker, "reload-failed")
                retired += 1
            else:
                done.add(worker.worker_id)
                if message[2]:
                    degraded_applies += 1
                self._free.put(worker)
        self._publish_metrics()
        return {
            "reloaded": len(done),
            "retired": retired,
            "degraded": degraded_applies,
        }

    # -- retirement and respawn ---------------------------------------------

    def _retire(self, worker: _Worker, why: str) -> None:
        """Remove a worker from service and SIGKILL its process."""
        with self._lock:
            known = self._workers.pop(worker.worker_id, None)
        if known is None:
            return  # already retired by another path
        try:
            os.kill(worker.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):
            pass
        worker.process.join(timeout=5)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        self.degradation.record(
            "serve", f"worker-{why}", f"worker {worker.worker_id} (pid {worker.pid})"
        )
        self.flight.record(
            "worker-retired", worker=worker.worker_id, pid=worker.pid, why=why
        )
        log.warning(
            "retired worker %d (pid %d): %s", worker.worker_id, worker.pid, why
        )
        self._publish_metrics()

    def _note_restart_needed(self, why: str) -> None:
        self.degradation.record("serve", "worker-spawn-failed", why)

    def _degrade(self, why: str) -> None:
        if self.degraded:
            return
        self.degraded = True
        self.degradation.record("serve", "pool-degraded", why)
        self.flight.record("pool-degraded", why=why)
        # Restart-budget exhaustion is a forensic moment: the ring holds
        # the retirement sequence that burned the budget.
        self.flight.dump_incident(
            "pool-degraded", trigger={"type": "pool-degraded", "why": why}
        )
        log.error("worker pool degraded to serial execution: %s", why)
        self._publish_metrics()

    def _monitor_loop(self) -> None:
        while not self._stopping:
            time.sleep(self.config.heartbeat_interval)
            if self._stopping:
                return
            try:
                self._respawn_missing()
                self._heartbeat_idle()
            except Exception:  # noqa: BLE001 - the monitor must survive
                log.exception("supervisor monitor iteration failed")
            self._publish_metrics()

    def _respawn_missing(self) -> None:
        if self.degraded:
            return
        with self._lock:
            deficit = self.config.workers - len(self._workers)
        for _ in range(deficit):
            if self.restarts >= self.config.restart_budget:
                self._degrade(
                    f"restart budget ({self.config.restart_budget}) exhausted"
                )
                return
            if self._consecutive_spawn_failures:
                delay = min(
                    self.config.backoff_base
                    * (2 ** (self._consecutive_spawn_failures - 1)),
                    self.config.backoff_max,
                )
                time.sleep(delay)
            if self._stopping:
                return
            self.restarts += 1
            if self._counter_restarts is not None:
                with self._metrics_lock:
                    self._counter_restarts.inc()
            try:
                self._admit(self._spawn_worker())
            except WorkerCrash as exc:
                self._consecutive_spawn_failures += 1
                self._note_restart_needed(str(exc))
                self.flight.record("worker-spawn-failed", error=str(exc)[:200])
            else:
                self.degradation.record("serve", "worker-restarted")
                self.flight.record(
                    "worker-respawn",
                    restarts=self.restarts,
                    budget_remaining=max(
                        0, self.config.restart_budget - self.restarts
                    ),
                )

    def _heartbeat_idle(self) -> None:
        """Ping every idle worker; retire the ones that do not answer.

        Leasing from the free queue gives the monitor exclusive use of
        each pipe, so pings never interleave with batch frames.
        """
        idle: list[_Worker] = []
        while True:
            try:
                idle.append(self._free.get_nowait())
            except queue.Empty:
                break
        for worker in idle:
            with self._lock:
                live = worker.worker_id in self._workers
            if not live:
                continue
            if not worker.process.is_alive():
                self._retire(worker, "crashed")
                continue
            try:
                worker.conn.send(("ping", worker.worker_id))
                if not worker.conn.poll(self.config.heartbeat_timeout):
                    raise TimeoutError("no pong")
                worker.conn.recv()
            # TimeoutError IS an OSError (since 3.3), so it must come first
            # or every wedge would be misfiled as a crash.
            except TimeoutError:
                self._retire(worker, "hung")
            except (EOFError, BrokenPipeError, OSError):
                self._retire(worker, "crashed")
            else:
                self._free.put(worker)

    # -- introspection -------------------------------------------------------

    def worker_pids(self) -> list[int]:
        """PIDs of the live workers (chaos faults target these)."""
        with self._lock:
            return [worker.pid for worker in self._workers.values()]

    def state(self) -> dict:
        """The ``/healthz`` supervisor block."""
        with self._lock:
            live = len(self._workers)
        return {
            "workers": self.config.workers,
            "live": live,
            "restarting": max(0, self.config.workers - live)
            if not self.degraded
            else 0,
            "restarts_total": self.restarts,
            "restart_budget_remaining": max(
                0, self.config.restart_budget - self.restarts
            ),
            "breaker": self.breaker.state,
            "degraded": self.degraded,
        }

    def _publish_metrics(self) -> None:
        if self._gauge_live is None:
            return
        snapshot = self.state()
        breaker_code = {"closed": 0.0, "half-open": 1.0, "open": 2.0}
        with self._metrics_lock:
            self._gauge_live.set(float(snapshot["live"]))
            self._gauge_restarting.set(float(snapshot["restarting"]))
            self._gauge_breaker.set(breaker_code[snapshot["breaker"]])
            self._gauge_degraded.set(1.0 if self.degraded else 0.0)
