"""The micro-batcher: coalesce concurrent requests into one warm pass.

Per-query latency against a resident index is dominated by fixed costs —
an executor hop, tracer/metric bookkeeping — not by the index lookups
themselves.  The :class:`MicroBatcher` amortizes those costs: submitters
enqueue work items onto a *bounded* queue (overflow is the backpressure
signal, surfaced as HTTP 429 / ``%% BUSY`` by the front-ends), and a
single dispatcher coroutine collects whatever has accumulated — waiting
at most ``batch_window`` seconds after the first item so concurrent
arrivals coalesce — then executes the whole batch in one hop on a
single-threaded executor.

One executor thread is load-bearing, not a simplification: the session's
warm :class:`~repro.core.verify.Verifier` (and its hop cache) is not
thread-safe, so the batcher doubles as the serialization point for all
query execution.  Verification is pure CPU-bound Python; running it off
the event loop keeps the protocol handlers responsive while a batch runs.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

__all__ = ["MicroBatcher", "QueueFull"]

QueueFull = asyncio.QueueFull

_STOP = object()


class MicroBatcher:
    """Bounded queue + dispatcher + single-thread executor.

    ``execute`` is called on the executor thread with each batch (a list
    of submitted items) and must return one outcome per item, in order;
    an outcome that is an ``Exception`` instance is set as the item
    future's exception, anything else as its result.  Items must expose
    an asyncio ``future`` attribute; outcomes for futures that are
    already done (deadline hit, client gone) are discarded.
    """

    def __init__(
        self,
        execute: Callable[[Sequence], list],
        *,
        queue_size: int = 256,
        batch_max: int = 64,
        batch_window: float = 0.002,
        on_batch: Callable[[int], None] | None = None,
    ):
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        self._execute = execute
        self._queue_size = queue_size
        self._batch_max = batch_max
        self._batch_window = batch_window
        self._on_batch = on_batch
        self._queue: asyncio.Queue | None = None
        self._task: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._busy = False
        self.batches = 0
        self.items = 0

    async def start(self) -> "MicroBatcher":
        """Create the queue and dispatcher inside the running loop."""
        if self._task is not None:
            return self
        self._queue = asyncio.Queue(maxsize=self._queue_size)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="rpslyzer-serve-batch"
        )
        self._task = asyncio.create_task(self._dispatch(), name="serve-batcher")
        return self

    # -- submission --------------------------------------------------------

    def submit_nowait(self, item) -> None:
        """Enqueue one item; raises :data:`QueueFull` when saturated.

        The caller turns that into its protocol's backpressure response —
        the queue bound is the service's explicit admission control.
        """
        assert self._queue is not None, "MicroBatcher.start() was not awaited"
        self._queue.put_nowait(item)

    def qsize(self) -> int:
        """Items currently queued (excludes the batch being executed)."""
        return self._queue.qsize() if self._queue is not None else 0

    @property
    def busy(self) -> bool:
        """Whether a batch is executing right now."""
        return self._busy

    # -- dispatch ----------------------------------------------------------

    async def _collect(self, first) -> list:
        """One batch: the first item plus whatever coalesced behind it."""
        batch = [first]
        if self._batch_window > 0 and self._batch_max > 1:
            # Let concurrent submitters land in the queue before we run.
            await asyncio.sleep(self._batch_window)
        while len(batch) < self._batch_max:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is _STOP:
                # Preserve the sentinel for the outer loop.
                self._queue.put_nowait(item)
                break
            batch.append(item)
        return batch

    async def _dispatch(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is _STOP:
                return
            batch = await self._collect(first)
            self._busy = True
            try:
                outcomes = await loop.run_in_executor(
                    self._executor, self._execute, batch
                )
            except Exception as exc:  # noqa: BLE001 - fail the whole batch
                outcomes = [exc] * len(batch)
            finally:
                self._busy = False
            self.batches += 1
            self.items += len(batch)
            if self._on_batch is not None:
                self._on_batch(len(batch))
            for item, outcome in zip(batch, outcomes):
                future = item.future
                if future.done():
                    continue  # deadline already hit or client went away
                if isinstance(outcome, Exception):
                    future.set_exception(outcome)
                else:
                    future.set_result(outcome)

    # -- shutdown ----------------------------------------------------------

    async def drain(self, timeout: float) -> bool:
        """Wait (bounded) until the queue is empty and no batch is running."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while (self.qsize() or self._busy) and loop.time() < deadline:
            await asyncio.sleep(0.005)
        return not self.qsize() and not self._busy

    async def stop(self) -> None:
        """Stop the dispatcher and release the executor thread."""
        if self._task is None:
            return
        try:
            self._queue.put_nowait(_STOP)
        except asyncio.QueueFull:  # abandoned queue contents: hard stop
            self._task.cancel()
        try:
            await asyncio.wait_for(self._task, timeout=5)
        except (asyncio.TimeoutError, asyncio.CancelledError):  # pragma: no cover
            self._task.cancel()
        self._task = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
