"""The micro-batcher: coalesce concurrent requests into warm passes.

Per-query latency against a resident index is dominated by fixed costs —
an executor hop, tracer/metric bookkeeping — not by the index lookups
themselves.  The :class:`MicroBatcher` amortizes those costs: submitters
enqueue work items onto a *bounded* queue (overflow is the backpressure
signal, surfaced as HTTP 429 / ``%% BUSY`` by the front-ends), and a
dispatcher coroutine collects whatever has accumulated — waiting at most
``batch_window`` seconds after the first item so concurrent arrivals
coalesce — then executes the whole batch in one hop on the executor.

``concurrency`` bounds how many batches execute at once.  The default of
1 is load-bearing, not a simplification: the session's warm
:class:`~repro.core.verify.Verifier` (and its hop cache) is not
thread-safe, so a single executor thread doubles as the serialization
point for all query execution.  The serve daemon raises it only when a
:class:`~repro.serve.supervisor.WorkerSupervisor` is attached — each
batch then ships to its own worker process, and the executor threads
merely wait on pipes.  Verification is pure CPU-bound Python; running it
off the event loop keeps the protocol handlers responsive while batches
run.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

__all__ = ["MicroBatcher", "QueueFull"]

QueueFull = asyncio.QueueFull

_STOP = object()


class MicroBatcher:
    """Bounded queue + dispatcher + bounded-concurrency executor.

    ``execute`` is called on an executor thread with each batch (a list
    of submitted items) and must return one outcome per item, in order;
    an outcome that is an ``Exception`` instance is set as the item
    future's exception, anything else as its result.  Items must expose
    an asyncio ``future`` attribute; outcomes for futures that are
    already done (deadline hit, client gone) are discarded.

    ``discard`` is called with each item still queued when the batcher
    stops — the owner fails those waiters explicitly (the serve core
    raises ``BusyError``) instead of leaving them to hang until their
    deadline.
    """

    def __init__(
        self,
        execute: Callable[[Sequence], list],
        *,
        execute_async: Callable[[Sequence], "asyncio.Future"] | None = None,
        queue_size: int = 256,
        batch_max: int = 64,
        batch_window: float = 0.002,
        concurrency: int = 1,
        on_batch: Callable[[int], None] | None = None,
        on_collect: Callable[[object], None] | None = None,
        discard: Callable[[object], None] | None = None,
    ):
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self._execute = execute
        self._execute_async = execute_async
        self._queue_size = queue_size
        self._batch_max = batch_max
        self._batch_window = batch_window
        self._concurrency = concurrency
        self._on_batch = on_batch
        self._on_collect = on_collect
        self._discard = discard
        self._queue: asyncio.Queue | None = None
        self._task: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._inflight = 0
        self.batches = 0
        self.items = 0

    async def start(self) -> "MicroBatcher":
        """Create the queue and dispatcher inside the running loop."""
        if self._task is not None:
            return self
        self._queue = asyncio.Queue(maxsize=self._queue_size)
        self._executor = ThreadPoolExecutor(
            max_workers=self._concurrency,
            thread_name_prefix="rpslyzer-serve-batch",
        )
        self._task = asyncio.create_task(self._dispatch(), name="serve-batcher")
        return self

    # -- submission --------------------------------------------------------

    def submit_nowait(self, item) -> None:
        """Enqueue one item; raises :data:`QueueFull` when saturated.

        The caller turns that into its protocol's backpressure response —
        the queue bound is the service's explicit admission control.
        """
        assert self._queue is not None, "MicroBatcher.start() was not awaited"
        self._queue.put_nowait(item)

    def qsize(self) -> int:
        """Items currently queued (excludes batches being executed)."""
        return self._queue.qsize() if self._queue is not None else 0

    @property
    def busy(self) -> bool:
        """Whether any batch is executing right now."""
        return self._inflight > 0

    # -- dispatch ----------------------------------------------------------

    async def _collect(self, first) -> list:
        """One batch: the first item plus whatever coalesced behind it.

        ``on_collect`` fires as each item leaves the queue — this is the
        end of its queue-wait stage, before the coalescing window.
        """
        if self._on_collect is not None:
            self._on_collect(first)
        batch = [first]
        if (
            self._batch_window > 0
            and self._batch_max > 1
            and self._queue.qsize() < self._batch_max - 1
        ):
            # Let concurrent submitters land in the queue before we run —
            # but only when a full batch hasn't already accumulated: the
            # window is coalescing aid, not a pacing delay, and sleeping
            # while the queue holds a batch would cap the dispatch rate
            # at batches/window under sustained load.
            await asyncio.sleep(self._batch_window)
        while len(batch) < self._batch_max:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is _STOP:
                # Preserve the sentinel for the outer loop.
                self._queue.put_nowait(item)
                break
            if self._on_collect is not None:
                self._on_collect(item)
            batch.append(item)
        return batch

    async def _dispatch(self) -> None:
        semaphore = asyncio.Semaphore(self._concurrency)
        running: set[asyncio.Task] = set()
        while True:
            first = await self._queue.get()
            if first is _STOP:
                break
            batch = await self._collect(first)
            # The semaphore bounds concurrent batches; with concurrency 1
            # this is exactly the old serialize-on-one-thread behavior.
            await semaphore.acquire()
            task = asyncio.create_task(self._run_batch(batch, semaphore))
            running.add(task)
            task.add_done_callback(running.discard)
        if running:
            await asyncio.gather(*running, return_exceptions=True)

    def run_blocking(self, fn: Callable, *args):
        """Run a blocking callable on the batcher's executor (awaitable).

        Exposed so an ``execute_async`` implementation can push its own
        blocking sections (a serial fallback, a chaos hook) off the loop
        while still sharing the executor's concurrency bound.
        """
        return asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    async def _run_batch(self, batch: list, semaphore: asyncio.Semaphore) -> None:
        self._inflight += 1
        try:
            try:
                if self._execute_async is not None:
                    outcomes = await self._execute_async(batch)
                else:
                    outcomes = await self.run_blocking(self._execute, batch)
            except Exception as exc:  # noqa: BLE001 - fail the whole batch
                outcomes = [exc] * len(batch)
            self.batches += 1
            self.items += len(batch)
            if self._on_batch is not None:
                self._on_batch(len(batch))
            for item, outcome in zip(batch, outcomes):
                future = item.future
                if future.done():
                    continue  # deadline already hit or client went away
                if isinstance(outcome, Exception):
                    future.set_exception(outcome)
                else:
                    future.set_result(outcome)
        finally:
            self._inflight -= 1
            semaphore.release()

    # -- shutdown ----------------------------------------------------------

    async def drain(self, timeout: float) -> bool:
        """Wait (bounded) until the queue is empty and no batch is running."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while (self.qsize() or self.busy) and loop.time() < deadline:
            await asyncio.sleep(0.005)
        return not self.qsize() and not self.busy

    async def stop(self) -> None:
        """Stop the dispatcher and release the executor threads.

        Items still queued (a drain that timed out, or a full queue at
        shutdown) are handed to ``discard`` so their waiters get an
        explicit refusal rather than a hang.
        """
        if self._task is None:
            return
        # Anything still queued is refused, not executed: stop() runs
        # after the drain window has closed, and the waiters must get an
        # explicit BusyError rather than surprise late verdicts.  This
        # runs on the loop thread between the dispatcher's awaits, so
        # the hand-off is race-free.
        leftovers = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not _STOP:
                leftovers.append(item)
        self._queue.put_nowait(_STOP)
        try:
            await asyncio.wait_for(self._task, timeout=5)
        except (asyncio.TimeoutError, asyncio.CancelledError):  # pragma: no cover
            self._task.cancel()
        self._task = None
        for item in leftovers:
            if self._discard is not None:
                self._discard(item)
            elif not item.future.done():  # pragma: no cover - fallback
                item.future.cancel()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
