"""The HTTP/JSON front-end: asyncio streams speaking just enough HTTP/1.1.

Endpoints (all responses are JSON unless noted):

* ``POST /verify``  — body ``{"prefix", "as_path", "collector"?,
  "deadline_s"?}`` → the route report (see
  :func:`repro.serve.core.report_as_dict`).
* ``POST /explain`` — same body → the report plus decision-provenance
  ``events``.
* ``GET /healthz``  — liveness, headline counters, index
  generation/serials, and (with a worker pool) supervisor state; 503
  while draining *or* degraded to serial execution.
* ``GET /metrics``  — Prometheus exposition text for the session's
  registry (content type ``text/plain; version=0.0.4``).
* ``GET /debug/flight`` — the live flight-recorder ring (see
  :mod:`repro.obs.flight`); filter with ``?id=``, ``&type=`` (repeat
  for several), ``&since=``/``&until=`` (epoch seconds), ``&limit=``.
* ``POST /reload``  — body ``{"journal": <journal jsonable>}`` or
  ``{"journal_path": "<file>"}`` → hot-swap the deltas into the live
  index (already-absorbed serials are skipped, so retries are
  idempotent); responds with the applied count, the new generation, and
  the per-source serials.

Every request is assigned a correlation id — a client-sent
``X-Request-Id`` header is honored when it is a clean token — and the id
is echoed as ``X-Request-Id`` on *every* response, success and error
alike, so a client can grep its id straight into the access log and
flight ring.

Error mapping: malformed request → 400, backpressure → 429 (with
``Retry-After``), deadline expiry → 504, unknown path → 404, anything
unexpected → 500.  Every error body is ``{"error": <code>, "detail":
<message>}``.

This is deliberately a hand-rolled stream handler, not
``http.server``: the daemon is a single asyncio process and the request
core is already async, so a thread-per-connection HTTP stack would just
reintroduce the contention the batcher removes.  Keep-alive is
supported; pipelining is not (requests on one connection are handled in
order).
"""

from __future__ import annotations

import asyncio
import json
import logging
from urllib.parse import parse_qs

from repro.obs import PROMETHEUS_CONTENT_TYPE, render_prometheus_snapshot
from repro.serve.core import (
    BadRequestError,
    BusyError,
    DeadlineExpired,
    Query,
    ServeError,
    VerifyService,
)

__all__ = ["HttpFrontend", "MAX_BODY_BYTES", "MAX_HEADER_BYTES"]

log = logging.getLogger("repro.serve.http")

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

# ServeError code → HTTP status.
_ERROR_STATUS = {
    BadRequestError.code: 400,
    BusyError.code: 429,
    DeadlineExpired.code: 504,
}


class _HttpError(Exception):
    """Protocol-level failure (before the request core is reached)."""

    def __init__(self, status: int, detail: str):
        super().__init__(detail)
        self.status = status
        self.detail = detail


class HttpFrontend:
    """Owns the listening socket and per-connection handler tasks."""

    def __init__(self, service: VerifyService, host: str, port: int):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> "HttpFrontend":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        # Resolve the ephemeral port for handles/tests.
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        """Stop accepting; existing connections finish their request."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_request(reader, writer)
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        except Exception:  # noqa: BLE001 - connection isolation
            log.exception("unhandled error on HTTP connection")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; returns whether to keep the connection."""
        try:
            request_line = await reader.readline()
        except ValueError as exc:  # line longer than the stream limit
            raise _HttpError(400, str(exc)) from exc
        if not request_line:
            return False  # clean EOF between requests
        try:
            method, target, version = (
                request_line.decode("latin-1").rstrip("\r\n").split(" ", 2)
            )
        except ValueError:
            await self._send_error(writer, 400, "malformed request line")
            return False
        headers, header_bytes = {}, len(request_line)
        while True:
            line = await reader.readline()
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                await self._send_error(writer, 400, "headers too large")
                return False
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        keep_alive = version != "HTTP/1.0" and (
            headers.get("connection", "").lower() != "close"
        )
        target_path, _, query_string = target.partition("?")
        telemetry = self.service.new_telemetry(
            "http", headers.get("x-request-id")
        )
        id_headers: tuple[tuple[str, str], ...] = ()
        if telemetry is not None:
            telemetry.endpoint = target_path.lstrip("/") or "/"
            id_headers = (("X-Request-Id", telemetry.request_id),)
        try:
            body = await self._read_body(reader, headers)
            status, payload, content_type = await self._route(
                method, target_path, query_string, body, telemetry
            )
        except _HttpError as exc:
            self.service.finish_telemetry(
                telemetry, "bad-request" if exc.status < 500 else "error"
            )
            await self._send_error(
                writer, exc.status, exc.detail, extra_headers=id_headers
            )
            return keep_alive
        except ServeError as exc:
            status = _ERROR_STATUS.get(exc.code, 500)
            self.service.finish_telemetry(telemetry, exc.code)
            await self._send_error(
                writer, status, str(exc), code=exc.code, extra_headers=id_headers
            )
            return keep_alive
        except Exception as exc:  # noqa: BLE001 - request isolation
            log.exception("unhandled error serving %s %s", method, target)
            self.service.finish_telemetry(telemetry, "error")
            await self._send_error(
                writer, 500, str(exc), extra_headers=id_headers
            )
            return keep_alive
        # For submitted queries the service already closed the record;
        # the GET endpoints (healthz/metrics/debug) close here.
        self.service.finish_telemetry(telemetry, "ok")
        await self._send(
            writer,
            status,
            payload,
            content_type,
            keep_alive,
            extra_headers=id_headers,
        )
        return keep_alive

    async def _read_body(self, reader: asyncio.StreamReader, headers: dict) -> bytes:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body larger than {MAX_BODY_BYTES} bytes")
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise _HttpError(400, "chunked bodies are not supported")
        return await reader.readexactly(length) if length else b""

    # -- dispatch ----------------------------------------------------------

    async def _route(
        self, method: str, path: str, query_string: str, body: bytes, telemetry
    ) -> tuple[int, bytes, str]:
        if path in ("/verify", "/explain"):
            if method != "POST":
                raise _HttpError(405, f"{path} expects POST")
            try:
                payload = json.loads(body.decode("utf-8") or "null")
            except (ValueError, UnicodeDecodeError) as exc:
                raise BadRequestError(f"bad JSON body: {exc}") from exc
            query = Query.from_payload(
                payload,
                path.lstrip("/"),
                request_id=telemetry.request_id if telemetry is not None else "",
            )
            result = await self.service.submit(query, telemetry)
            return 200, _json_bytes(result), "application/json"
        if path == "/reload":
            if method != "POST":
                raise _HttpError(405, "/reload expects POST")
            try:
                payload = json.loads(body.decode("utf-8") or "null")
            except (ValueError, UnicodeDecodeError) as exc:
                raise BadRequestError(f"bad JSON body: {exc}") from exc
            journal = _journal_from_payload(payload)
            summary = await self.service.reload(journal)
            return 200, _json_bytes(summary), "application/json"
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "/healthz expects GET")
            health = self.service.health()
            status = 200 if health["status"] == "ok" else 503
            return status, _json_bytes(health), "application/json"
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, "/metrics expects GET")
            text = render_prometheus_snapshot(self.service.session.metrics_snapshot())
            return 200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE
        if path == "/debug/flight":
            if method != "GET":
                raise _HttpError(405, "/debug/flight expects GET")
            return (
                200,
                _json_bytes(self._flight_payload(query_string)),
                "application/json",
            )
        raise _HttpError(404, f"no such endpoint: {path}")

    def _flight_payload(self, query_string: str) -> dict:
        """The ``/debug/flight`` body: recorder stats plus filtered events."""
        params = parse_qs(query_string, keep_blank_values=False)

        def scalar(name: str) -> str | None:
            values = params.get(name)
            return values[-1] if values else None

        def number(name: str) -> float | None:
            raw = scalar(name)
            if raw is None:
                return None
            try:
                return float(raw)
            except ValueError:
                raise _HttpError(400, f"'{name}' must be a number") from None

        limit = number("limit")
        recorder = self.service.flight
        events = recorder.events(
            request_id=scalar("id"),
            types=params.get("type"),
            since=number("since"),
            until=number("until"),
            limit=int(limit) if limit is not None else None,
        )
        return {
            "enabled": recorder.enabled,
            "stats": recorder.stats(),
            "events": events,
        }

    # -- responses ---------------------------------------------------------

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str,
        keep_alive: bool,
        extra_headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in extra_headers)
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + payload)
        await writer.drain()

    async def _send_error(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        detail: str,
        *,
        code: str | None = None,
        extra_headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        body = _json_bytes(
            {"error": code or _STATUS_TEXT.get(status, "error").lower(), "detail": detail}
        )
        extra = tuple(extra_headers)
        if status == 429:
            extra += (("Retry-After", "1"),)
        await self._send(
            writer, status, body, "application/json", True, extra_headers=extra
        )


def _journal_from_payload(payload):
    """Build a Journal from a ``/reload`` body; BadRequestError on misuse."""
    from repro.irr.journal import Journal, JournalError, load_journal

    if not isinstance(payload, dict):
        raise BadRequestError("request body must be a JSON object")
    if "journal_path" in payload:
        path = payload["journal_path"]
        if not isinstance(path, str):
            raise BadRequestError("'journal_path' must be a string")
        try:
            return load_journal(path)
        except (JournalError, OSError) as exc:
            raise BadRequestError(f"unreadable journal: {exc}") from exc
    if "journal" in payload:
        try:
            return Journal.from_jsonable(payload["journal"])
        except (JournalError, TypeError, KeyError, AttributeError) as exc:
            raise BadRequestError(f"bad journal payload: {exc}") from exc
    raise BadRequestError("provide 'journal' or 'journal_path'")


def _json_bytes(value) -> bytes:
    return json.dumps(value, separators=(",", ":"), sort_keys=True).encode("utf-8")
