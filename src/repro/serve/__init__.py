"""``repro.serve`` — the resident verification service (``rpslyzer serve``).

The batch pipeline answers "does this route conform to registry policy?"
by paying process startup, IR load, and index adoption on every
invocation.  This package keeps all of that *resident*: a long-running
asyncio daemon loads the IR once through :func:`repro.api.open_session`,
adopts the digest-cached :class:`~repro.core.compiled.CompiledIndex`, and
answers verification queries warm over two front-ends:

* an HTTP/JSON endpoint — ``POST /verify``, ``POST /explain``,
  ``GET /healthz``, ``GET /metrics`` (Prometheus exposition text),
  ``GET /debug/flight`` (the flight recorder's event ring);
* the WHOIS-style line protocol the IRRs themselves speak, extended with
  a ``!v <prefix> <asn> <asn>...`` verification command.

Both front-ends dispatch into one shared request core
(:class:`~repro.serve.core.VerifyService`): concurrent route queries are
coalesced by a micro-batcher into single indexed verify passes on a warm
verifier, every request carries a deadline, the queue is bounded with
explicit backpressure (HTTP 429 / ``%% BUSY``), and SIGTERM drains
in-flight work before exiting.  With ``ServeConfig(workers=N)`` the
batches execute on a supervised pool of warm worker processes
(:mod:`repro.serve.supervisor`): heartbeat health checks, SIGKILL +
respawn of hung/crashed workers under a restart budget, a circuit
breaker around dispatch, CoDel-style load shedding on measured
queue-wait latency, and graceful degradation to the in-process serial
path when the pool collapses.  See ``docs/serving.md``.

Every request is observable end to end (:mod:`repro.serve.telemetry`):
a correlation id (honouring a client ``X-Request-Id``) is threaded from
the front-end through the batcher and into the worker processes, echoed
back on the response, and stamped on every log, metric, and flight event
the request touches; per-stage latency (accept → queue → coalesce →
dispatch → execute → respond) lands in ``serve_stage_seconds`` histograms
and an optional JSONL access log with slow-query promotion.  The
:class:`~repro.obs.flight.FlightRecorder` keeps an always-on bounded ring
of lifecycle events (worker churn, breaker transitions, reloads, sheds)
and dumps it to timestamped incident files on breaker-open, pool
collapse, and SIGQUIT — inspect live via ``GET /debug/flight`` or
offline via ``rpslyzer debug``.

Programmatic use::

    from repro import api
    from repro.obs import MetricsRegistry
    from repro.serve import ServeConfig, ServeDaemon

    session = api.open_session("dumps/", as_rel="as-rel.txt",
                               registry=MetricsRegistry())
    with ServeDaemon(session, ServeConfig(http_port=0)).start_in_thread() as handle:
        ...  # query http://127.0.0.1:<handle.http_port>/verify
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.core import (
    BadRequestError,
    BusyError,
    DeadlineExpired,
    Query,
    ServeConfig,
    ServeError,
    VerifyService,
    report_as_dict,
)
from repro.serve.daemon import ServeDaemon, ServeHandle
from repro.serve.supervisor import (
    CircuitBreaker,
    LatencyShedder,
    SupervisorConfig,
    WorkerSupervisor,
)

__all__ = [
    "BadRequestError",
    "BusyError",
    "CircuitBreaker",
    "DeadlineExpired",
    "LatencyShedder",
    "MicroBatcher",
    "Query",
    "ServeConfig",
    "ServeDaemon",
    "ServeError",
    "ServeHandle",
    "SupervisorConfig",
    "VerifyService",
    "WorkerSupervisor",
    "report_as_dict",
]
