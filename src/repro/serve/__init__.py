"""``repro.serve`` — the resident verification service (``rpslyzer serve``).

The batch pipeline answers "does this route conform to registry policy?"
by paying process startup, IR load, and index adoption on every
invocation.  This package keeps all of that *resident*: a long-running
asyncio daemon loads the IR once through :func:`repro.api.open_session`,
adopts the digest-cached :class:`~repro.core.compiled.CompiledIndex`, and
answers verification queries warm over two front-ends:

* an HTTP/JSON endpoint — ``POST /verify``, ``POST /explain``,
  ``GET /healthz``, ``GET /metrics`` (Prometheus exposition text);
* the WHOIS-style line protocol the IRRs themselves speak, extended with
  a ``!v <prefix> <asn> <asn>...`` verification command.

Both front-ends dispatch into one shared request core
(:class:`~repro.serve.core.VerifyService`): concurrent route queries are
coalesced by a micro-batcher into single indexed verify passes on a warm
verifier, every request carries a deadline, the queue is bounded with
explicit backpressure (HTTP 429 / ``%% BUSY``), and SIGTERM drains
in-flight work before exiting.  With ``ServeConfig(workers=N)`` the
batches execute on a supervised pool of warm worker processes
(:mod:`repro.serve.supervisor`): heartbeat health checks, SIGKILL +
respawn of hung/crashed workers under a restart budget, a circuit
breaker around dispatch, CoDel-style load shedding on measured
queue-wait latency, and graceful degradation to the in-process serial
path when the pool collapses.  See ``docs/serving.md``.

Programmatic use::

    from repro import api
    from repro.obs import MetricsRegistry
    from repro.serve import ServeConfig, ServeDaemon

    session = api.open_session("dumps/", as_rel="as-rel.txt",
                               registry=MetricsRegistry())
    with ServeDaemon(session, ServeConfig(http_port=0)).start_in_thread() as handle:
        ...  # query http://127.0.0.1:<handle.http_port>/verify
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.core import (
    BadRequestError,
    BusyError,
    DeadlineExpired,
    Query,
    ServeConfig,
    ServeError,
    VerifyService,
    report_as_dict,
)
from repro.serve.daemon import ServeDaemon, ServeHandle
from repro.serve.supervisor import (
    CircuitBreaker,
    LatencyShedder,
    SupervisorConfig,
    WorkerSupervisor,
)

__all__ = [
    "BadRequestError",
    "BusyError",
    "CircuitBreaker",
    "DeadlineExpired",
    "LatencyShedder",
    "MicroBatcher",
    "Query",
    "ServeConfig",
    "ServeDaemon",
    "ServeError",
    "ServeHandle",
    "SupervisorConfig",
    "VerifyService",
    "WorkerSupervisor",
    "report_as_dict",
]
