"""Structured degradation reporting for the resilient pipeline.

The pipeline's robustness contract (see ``docs/robustness.md``) is that a
fault — a truncated dump, a killed verification worker, a flaky whois
connection — never crashes or hangs a run; instead the affected work is
skipped, quarantined, or retried, and the *fact* of the degradation is
recorded so an operator can tell a clean run from a limped-through one.

A :class:`DegradationReport` is that record: a multiset of
``(component, kind, detail)`` events.  It rides on
:class:`~repro.stats.verification.VerificationStats`, merges across
worker processes exactly like the stats themselves, and is embedded in
the run manifest (``build_manifest(..., degradation=...)``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

__all__ = ["DegradationEvent", "DegradationReport"]


@dataclass(frozen=True, slots=True)
class DegradationEvent:
    """One kind of degradation observed, with an occurrence count.

    ``component`` names the pipeline layer (``ingest``, ``verify``,
    ``whois``); ``kind`` the fault handling that happened
    (``chunk-requeued``, ``worker-lost``, ``truncated-object``, ...);
    ``detail`` is free-form context for humans.
    """

    component: str
    kind: str
    detail: str = ""
    count: int = 1

    def as_dict(self) -> dict:
        """JSON-able form of the event."""
        return {
            "component": self.component,
            "kind": self.kind,
            "detail": self.detail,
            "count": self.count,
        }

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        times = f" x{self.count}" if self.count != 1 else ""
        return f"[{self.component}/{self.kind}]{suffix}{times}"


class DegradationReport:
    """An accumulating, mergeable multiset of degradation events."""

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    def record(
        self, component: str, kind: str, detail: str = "", count: int = 1
    ) -> None:
        """Count one (or ``count``) occurrences of a degradation."""
        self._counts[(component, kind, detail)] += count

    def merge(self, other: "DegradationReport") -> None:
        """Fold another report into this one (parallel verification)."""
        self._counts.update(other._counts)

    def events(self) -> list[DegradationEvent]:
        """All events, deterministically ordered."""
        return [
            DegradationEvent(component, kind, detail, count)
            for (component, kind, detail), count in sorted(self._counts.items())
        ]

    def by_kind(self) -> dict[str, int]:
        """Occurrence totals keyed ``component/kind`` (detail collapsed)."""
        totals: Counter = Counter()
        for (component, kind, _), count in self._counts.items():
            totals[f"{component}/{kind}"] += count
        return dict(sorted(totals.items()))

    def as_dict(self) -> dict:
        """JSON-able form, stable across runs with the same events."""
        return {
            "total": len(self),
            "events": [event.as_dict() for event in self.events()],
        }

    def __len__(self) -> int:
        return sum(self._counts.values())

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __str__(self) -> str:
        if not self._counts:
            return "no degradation"
        return "; ".join(str(event) for event in self.events())
