"""Verification statuses and special-case labels (Section 5 of the paper).

The classification order is significant: when several statuses could apply
to an import/export, the earliest in :class:`VerifyStatus` wins — exactly
the check order the paper specifies (Verified, Skip, Unrecorded, Relaxed,
Safelisted, Unverified).
"""

from __future__ import annotations

from enum import Enum, IntEnum

__all__ = ["VerifyStatus", "SpecialCase", "UnrecordedReason"]


class VerifyStatus(IntEnum):
    """The six verification statuses, in classification-priority order."""

    VERIFIED = 0
    SKIP = 1
    UNRECORDED = 2
    RELAXED = 3
    SAFELISTED = 4
    UNVERIFIED = 5

    @property
    def label(self) -> str:
        """Lower-case label used in figures and reports."""
        return self.name.lower()


class SpecialCase(Enum):
    """The six common RPSL misuses of Section 5.1, in check order.

    The first three are *relaxed filters*, the last three *safelisted
    relationships*.
    """

    EXPORT_SELF = "export-self"
    IMPORT_CUSTOMER = "import-customer"
    MISSING_ROUTES = "missing-routes"
    ONLY_PROVIDER_POLICIES = "only-provider-policies"
    TIER1_PAIR = "tier1-pair"
    UPHILL = "uphill"

    @property
    def is_relaxation(self) -> bool:
        """Whether this case yields RELAXED (else SAFELISTED)."""
        return self in (
            SpecialCase.EXPORT_SELF,
            SpecialCase.IMPORT_CUSTOMER,
            SpecialCase.MISSING_ROUTES,
        )


class UnrecordedReason(Enum):
    """Sub-reasons of the UNRECORDED status (Figure 5 of the paper)."""

    NO_AUT_NUM = "no-aut-num"
    NO_RULES = "no-rules"
    ZERO_ROUTE_AS = "zero-route-as"
    MISSING_SET = "missing-set"
