"""Symbolic AS-path regex matching (Appendix B of the paper).

To match an AS-path regex R against an observed AS-path A:

1. every distinct *AS token* in R (an ASN, an as-set, ``PeerAS``, or an ASN
   range) is assigned a private-use-plane symbol character, and R is
   compiled into a Python :mod:`re` pattern over those symbols (``.``
   wildcards stay ``.``; ``[...]`` sets become character classes);
2. each ASN n in A maps to the set N of symbols whose token matches n,
   plus a universal *other* symbol ω (so wildcards and complemented
   classes can match ASes no token names);
3. the Cartesian product of the per-position symbol sets yields candidate
   symbol strings; A matches R iff any candidate matches the compiled
   pattern.

The product is capped: beyond :attr:`AsPathMatcher.product_cap` candidate
strings the matcher samples deterministically and flags the evaluation as
approximate (real-world paths essentially never get there — positions
rarely map to more than two symbols).

Same-pattern operators (``~+``) compile to back-references, and ASN ranges
get their own symbols, so both *can* be evaluated — but the verifier skips
rules containing them by default, matching the paper's accounting.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass

from repro.core.query import QueryEngine
from repro.rpsl.aspath import (
    AsPathRegexNode,
    ReAlt,
    ReAsn,
    ReAsnRange,
    ReAsSet,
    ReBegin,
    ReCharSet,
    ReEnd,
    RePeerAs,
    ReRepeat,
    ReSeq,
    ReWildcard,
)

__all__ = ["CompiledAsPathRegex", "AsPathMatcher", "AsPathMatchResult"]

_SYMBOL_BASE = 0xE000  # Unicode private use area


@dataclass(frozen=True, slots=True)
class AsPathMatchResult:
    """Outcome of one regex evaluation."""

    matched: bool
    approximate: bool = False
    unrecorded_sets: tuple[str, ...] = ()
    # How many candidate symbol strings were tried before matching (or
    # exhausting the product) — surfaced in decision traces.
    candidates_tried: int = 0


@dataclass(slots=True)
class CompiledAsPathRegex:
    """A regex compiled to symbols: the pattern plus the token table."""

    pattern: re.Pattern
    tokens: tuple[AsPathRegexNode, ...]
    symbols: dict[AsPathRegexNode, str]
    other_symbol: str


class _Compiler:
    def __init__(self) -> None:
        self.symbols: dict[AsPathRegexNode, str] = {}
        self.group_count = 0

    def _symbol(self, token: AsPathRegexNode) -> str:
        symbol = self.symbols.get(token)
        if symbol is None:
            symbol = chr(_SYMBOL_BASE + len(self.symbols))
            self.symbols[token] = symbol
        return symbol

    def build(self, node: AsPathRegexNode) -> str:
        """Recursively translate the AST into a Python regex string."""
        if isinstance(node, (ReAsn, ReAsSet, RePeerAs, ReAsnRange)):
            return self._symbol(node)
        if isinstance(node, ReWildcard):
            return "."
        if isinstance(node, ReBegin):
            return "^"
        if isinstance(node, ReEnd):
            return "$"
        if isinstance(node, ReCharSet):
            wildcard = any(isinstance(item, ReWildcard) for item in node.items)
            symbols = "".join(
                self._symbol(item) for item in node.items if not isinstance(item, ReWildcard)
            )
            if node.complemented:
                if wildcard:
                    return "(?!x)x"  # [^ . ...] can never match
                return f"[^{symbols}]" if symbols else "."
            if wildcard:
                return "."
            return f"[{symbols}]" if symbols else "(?!x)x"
        if isinstance(node, ReSeq):
            return "".join(self.build(part) for part in node.parts)
        if isinstance(node, ReAlt):
            return "(?:" + "|".join(self.build(option) for option in node.options) + ")"
        if isinstance(node, ReRepeat):
            return self._build_repeat(node)
        raise TypeError(f"unknown AS-path regex node {node!r}")

    def _build_repeat(self, node: ReRepeat) -> str:
        inner = self.build(node.inner)
        low, high = node.low, node.high
        if node.same_pattern:
            # ~+ / ~{n,m}: every repetition must be the *same* AS, which for
            # symbol strings means the same character: use a back-reference.
            self.group_count += 1
            group = self.group_count
            tail_low = max(low - 1, 0)
            tail = f"\\{group}{{{tail_low},{'' if high is None else high - 1}}}"
            body = f"({inner}){tail}"
            if low == 0:
                return f"(?:{body})?"
            return body
        if (low, high) == (0, None):
            return f"(?:{inner})*"
        if (low, high) == (1, None):
            return f"(?:{inner})+"
        if (low, high) == (0, 1):
            return f"(?:{inner})?"
        bound = f"{{{low},{'' if high is None else high}}}" if high != low else f"{{{low}}}"
        return f"(?:{inner}){bound}"


class AsPathMatcher:
    """Evaluates AS-path regexes against observed paths via a QueryEngine.

    ``compiled`` pre-seeds the regex→program cache (the compile-once
    pass); the dict is copied so lazy compilations never mutate the shared
    artifact.
    """

    def __init__(
        self,
        query: QueryEngine,
        product_cap: int = 65536,
        compiled: dict[AsPathRegexNode, CompiledAsPathRegex] | None = None,
    ):
        self.query = query
        self.product_cap = product_cap
        self._compiled: dict[AsPathRegexNode, CompiledAsPathRegex] = (
            dict(compiled) if compiled else {}
        )

    def compile(self, node: AsPathRegexNode) -> CompiledAsPathRegex:
        """Compile (and cache) a regex AST."""
        cached = self._compiled.get(node)
        if cached is not None:
            return cached
        compiler = _Compiler()
        pattern_text = compiler.build(node)
        other = chr(_SYMBOL_BASE + len(compiler.symbols))
        compiled = CompiledAsPathRegex(
            pattern=re.compile(pattern_text),
            tokens=tuple(compiler.symbols),
            symbols=dict(compiler.symbols),
            other_symbol=other,
        )
        self._compiled[node] = compiled
        return compiled

    def _token_matches(
        self, token: AsPathRegexNode, asn: int, peer_asn: int, unrecorded: set[str]
    ) -> bool:
        if isinstance(token, ReAsn):
            return token.asn == asn
        if isinstance(token, RePeerAs):
            return asn == peer_asn
        if isinstance(token, ReAsnRange):
            return token.low <= asn <= token.high
        if isinstance(token, ReAsSet):
            resolution = self.query.flatten_as_set(token.name)
            if not resolution.recorded:
                unrecorded.add(token.name)
            if resolution.contains_any:
                return True
            return asn in resolution.members
        return False

    def match(
        self, node: AsPathRegexNode, as_path: tuple[int, ...], peer_asn: int
    ) -> AsPathMatchResult:
        """Match an AS-path (neighbor-first, origin-last) against the regex."""
        compiled = self.compile(node)
        unrecorded: set[str] = set()
        position_symbols: list[str] = []
        other_base = ord(compiled.other_symbol)
        other_by_asn: dict[int, str] = {}
        for asn in as_path:
            symbols = [
                compiled.symbols[token]
                for token in compiled.tokens
                if self._token_matches(token, asn, peer_asn, unrecorded)
            ]
            if not symbols:
                # ω_i: an AS no token names — matched only by wildcards and
                # complemented classes.  It must not be offered for ASes a
                # token *does* name, or "[^AS1]" would falsely match AS1;
                # and each distinct unnamed ASN gets its own ω so that
                # same-pattern back-references can tell them apart.
                other = other_by_asn.get(asn)
                if other is None:
                    other = chr(other_base + len(other_by_asn))
                    other_by_asn[asn] = other
                symbols.append(other)
            position_symbols.append("".join(symbols))

        total = 1
        approximate = False
        for symbols in position_symbols:
            total *= len(symbols)
            if total > self.product_cap:
                approximate = True
                break

        candidates = itertools.product(*position_symbols)
        if approximate:
            candidates = itertools.islice(candidates, self.product_cap)
        search = compiled.pattern.search
        tried = 0
        for candidate in candidates:
            tried += 1
            if search("".join(candidate)) is not None:
                return AsPathMatchResult(
                    True, approximate, tuple(sorted(unrecorded)), tried
                )
        return AsPathMatchResult(False, approximate, tuple(sorted(unrecorded)), tried)
